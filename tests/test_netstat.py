"""netstat introspection: session rows, live gauges, CLI, invariants."""

from types import SimpleNamespace

from repro.analysis.netstat import (
    format_report,
    host_report,
    tcp_sessions,
    udp_sessions,
)
from repro.core.sockets import SOCK_DGRAM, SOCK_STREAM
from repro.net.addr import ip_aton
from repro.sim.engine import Simulator
from repro.stack.engine import UDPSession
from repro.world.configs import build_network

IP1 = ip_aton("10.0.0.1")
IP2 = ip_aton("10.0.0.2")


# ----------------------------------------------------------------------
# TCP rows
# ----------------------------------------------------------------------

def _echo_world(port):
    net, pa, pb = build_network("library-shm-ipf")
    api_a = pa.new_app()
    api_b = pb.new_app()
    ready = net.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, port)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, _ = yield from api_a.accept(fd)
        yield from api_a.recv(cfd, 100)
        return "done"

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, port))
        yield from api_b.send_all(fd, b"ping")

    net.run_all([server(), client()], until=120_000_000)
    return net, pa, pb


def test_tcp_rows_cover_states_and_live_gauges():
    _net, pa, _pb = _echo_world(7470)
    report = host_report(pa)
    tcp_rows = [r for r in report["sessions"] if r["proto"] == "tcp"]
    states = {r["state"] for r in tcp_rows}
    assert "LISTEN" in states
    assert "ESTABLISHED" in states
    for row in tcp_rows:
        assert row["cwnd"] > 0
        assert row["ssthresh"] > 0
        assert row["srtt"] >= 0
        buffers = row["buffers"]
        assert {"sndq", "snd_space", "rcvq", "rcv_space", "reass"} == set(buffers)
        assert buffers["snd_space"] >= 0
    established = [r for r in tcp_rows if r["state"] == "ESTABLISHED"]
    assert any(r["srtt"] > 0 for r in established)


def test_tcp_rows_are_sorted_by_port():
    _net, pa, _pb = _echo_world(7480)
    backend = pa._backend
    stacks = [backend.stack] + [lib.stack for lib in backend._apps.values()]
    for stack in stacks:
        rows = tcp_sessions(stack)
        ports = [int(r["local"].rsplit(".", 1)[1]) for r in rows]
        assert ports == sorted(ports)


# ----------------------------------------------------------------------
# UDP rows: ordering, dedup, queue depth
# ----------------------------------------------------------------------

def _stub_stack(sim):
    """The minimal stack surface a UDPSession touches."""
    return SimpleNamespace(ctx=SimpleNamespace(sim=sim), metrics=None)


def test_udp_rows_sorted_and_deduplicated():
    sim = Simulator()
    stack = _stub_stack(sim)
    s_high = UDPSession(stack, (IP1, 9300))
    s_low = UDPSession(stack, (IP1, 9100))
    s_conn = UDPSession(stack, (IP1, 9200))
    s_conn.remote = (IP2, 53)
    # Insertion order scrambled; the connected session appears under both
    # its wildcard and connected keys, as a re-connect can leave it.
    stack._udp = {
        (9300, None, None): s_high,
        (9200, IP2, 53): s_conn,
        (9100, None, None): s_low,
        (9200, None, None): s_conn,
    }
    rows = udp_sessions(stack)
    assert [r["local"] for r in rows] == [
        "10.0.0.1.9100", "10.0.0.1.9200", "10.0.0.1.9300"]
    assert sum(1 for r in rows if r["local"].endswith(".9200")) == 1
    assert rows[1]["remote"] == "10.0.0.2.53"
    # Calling twice gives the same order (the original bug: dict order).
    assert udp_sessions(stack) == rows


def test_udp_rows_surface_queue_depth_and_drops():
    sim = Simulator()
    stack = _stub_stack(sim)
    session = UDPSession(stack, (IP1, 9400), hiwat=100)
    stack._udp = {(9400, None, None): session}
    assert session.enqueue((IP2, 1234), b"x" * 60)
    assert session.enqueue((IP2, 1234), b"y" * 30)
    assert not session.enqueue((IP2, 1234), b"z" * 30)  # over hiwat: dropped
    (row,) = udp_sessions(stack)
    assert row["rcvq"] == 90
    assert row["queued_datagrams"] == 2
    assert row["drops"] == 1
    session.dequeue()
    (row,) = udp_sessions(stack)
    assert row["rcvq"] == 30
    assert row["queued_datagrams"] == 1


# ----------------------------------------------------------------------
# host_report extensions
# ----------------------------------------------------------------------

def test_host_report_carries_resource_and_telemetry_blocks():
    net, pa, pb = build_network("library-shm-ipf")
    api_a = pa.new_app()
    api_b = pb.new_app()

    def server():
        fd = yield from api_a.socket(SOCK_DGRAM)
        yield from api_a.bind(fd, 9410)
        yield from api_a.recvfrom(fd)

    def client():
        fd = yield from api_b.socket(SOCK_DGRAM)
        yield from api_b.sendto(fd, b"hello", (IP1, 9410))

    net.run_all([server(), client()], until=60_000_000)
    report = host_report(pa)
    assert report["cpu"]["busy_us"] > 0
    assert report["cpu"]["charges"] > 0
    assert 0.0 <= report["cpu"]["utilization"] <= 1.0
    assert report["nic"]["frames_received"] > 0
    assert report["tracer"]["enabled"] is False
    assert report["metrics"]["enabled"] is False
    assert report["migrations_out"] >= 1
    text = format_report(report)
    assert "CPU:" in text
    assert "Telemetry:" in text
    assert "Session migrations" in text


def test_host_report_reflects_enabled_metrics():
    net, pa, pb = build_network("library-shm-ipf")
    net.metrics.enable()
    from repro.apps.ttcp import ttcp

    ttcp(net, pb, pa, total_bytes=65536)
    report = host_report(pa)
    assert report["metrics"]["enabled"] is True
    assert report["metrics"]["tcp_probes"] > 0
    assert "metrics on" in format_report(report)


# ----------------------------------------------------------------------
# Telemetry invariants on the paper collectors
# ----------------------------------------------------------------------

def test_enabled_registry_leaves_table1_bit_equal():
    from repro.analysis.experiments import run_proxy_calls

    assert run_proxy_calls(telemetry=True) == run_proxy_calls()


def test_enabled_registry_leaves_figure1_bit_equal():
    from repro.analysis.experiments import run_crossings

    assert run_crossings("ux", telemetry=True) == run_crossings("ux")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_netstat_smoke(capsys):
    from repro.__main__ import main

    assert main(["netstat", "--bytes", "65536"]) == 0
    out = capsys.readouterr().out
    assert "Active sessions on" in out
    assert "Telemetry:" in out


def test_cli_probe_exports_and_markdown(tmp_path, capsys):
    from repro.__main__ import main

    jsonl = tmp_path / "probe.jsonl"
    assert main(["probe", "--bytes", "65536", "--jsonl", str(jsonl)]) == 0
    out = capsys.readouterr().out
    assert "cwnd" in out
    assert jsonl.exists() and jsonl.read_text().strip()

    assert main(["probe", "--bytes", "65536", "--markdown"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("### tcp_probe summary")
    assert "| connection |" in out
