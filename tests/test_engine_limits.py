"""Protocol-engine resource limits and isolation properties."""

import pytest

from repro.core.sockets import SOCK_DGRAM, SOCK_STREAM
from repro.net.addr import ip_aton
from repro.world.configs import build_network

IP1 = ip_aton("10.0.0.1")
BOUND = 300_000_000


def test_listen_backlog_bounds_pending_connections():
    """SYNs beyond the backlog are dropped (the peers retry); the engine
    never holds more embryonic+completed children than the backlog."""
    net, pa, pb = build_network("mach25")
    api_a = pa.new_app()
    ready = net.sim.event()
    results = []

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7500)
        yield from api_a.listen(fd, backlog=2)
        ready.succeed()
        # Never accept: the backlog stays full.
        yield net.sim.timeout(30_000_000)
        listener = api_a.fds.get(fd).payload
        return len(listener.accept_queue) + len(listener.children)

    def client(api):
        yield ready
        fd = yield from api.socket(SOCK_STREAM)
        try:
            yield from api.connect(fd, (IP1, 7500))
            results.append("connected")
        except Exception:
            results.append("failed")

    gens = [server()] + [client(pb.new_app()) for _ in range(5)]
    pending = net.run_all(gens, until=BOUND)[0]
    assert pending <= 2
    assert results.count("connected") <= 2


def test_udp_receive_buffer_overflow_drops():
    net, pa, pb = build_network("mach25")
    api_a = pa.new_app()
    api_b = pb.new_app()
    ready = net.sim.event()

    def receiver():
        fd = yield from api_a.socket(SOCK_DGRAM)
        yield from api_a.bind(fd, 9750)
        session = api_a.fds.get(fd).payload
        session.hiwat = 4096  # tiny socket buffer
        ready.succeed()
        yield net.sim.timeout(60_000_000)  # never read while flooded
        return session.drops, session.queued_bytes

    def flooder():
        yield ready
        fd = yield from api_b.socket(SOCK_DGRAM)
        for _ in range(20):
            yield from api_b.sendto(fd, b"F" * 1024, (IP1, 9750))

    (drops, queued), _f = net.run_all([receiver(), flooder()], until=BOUND)
    assert queued <= 4096
    assert drops >= 15


def test_apps_cannot_see_each_others_traffic():
    """The security property of Section 3.1/3.4, end to end: app A's
    packet filter never delivers app B's packets, so a nosy application
    receives nothing that is not addressed to its own sessions."""
    net, pa, pb = build_network("library-shm-ipf")
    victim = pa.new_app(name="victim")
    nosy = pa.new_app(name="nosy")
    sender = pb.new_app(name="sender")
    ready = net.sim.event()

    def victim_app():
        fd = yield from victim.socket(SOCK_DGRAM)
        yield from victim.bind(fd, 9760)
        ready.succeed()
        data, _src = yield from victim.recvfrom(fd)
        return data

    def nosy_app():
        fd = yield from nosy.socket(SOCK_DGRAM)
        yield from nosy.bind(fd, 9761)  # a *different* port
        r, _w = yield from nosy.select([fd], timeout=20_000_000)
        return r

    def sender_app():
        yield ready
        fd = yield from sender.socket(SOCK_DGRAM)
        yield from sender.sendto(fd, b"secret", (IP1, 9760))

    secret, nosy_ready, _s = net.run_all(
        [victim_app(), nosy_app(), sender_app()], until=BOUND
    )
    assert secret == b"secret"
    assert nosy_ready == []  # nothing leaked into the other app
    # Belt and braces: the nosy app's library stack saw zero frames.
    assert nosy.library.stack.mbuf_stats.allocated == 0


def test_tcp_receive_buffer_never_overfills():
    """Invariant: the engine never buffers more than the receive window
    allows, regardless of sender behaviour."""
    net, pa, pb = build_network("mach25")
    api_a = pa.new_app()
    api_b = pb.new_app()
    ready = net.sim.event()
    high_water = []

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.setsockopt(fd, "rcvbuf", 8192)
        yield from api_a.bind(fd, 7510)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, _ = yield from api_a.accept(fd)
        session = api_a.fds.get(cfd).payload
        got = 0
        while got < 60_000:
            chunk = yield from api_a.recv(cfd, 2048)
            high_water.append(len(session.conn.rcv_buffer))
            got += len(chunk)
        return got

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, 7510))
        yield from api_b.send_all(fd, b"B" * 60_000)

    got, _c = net.run_all([server(), client()], until=BOUND)
    assert got == 60_000
    assert max(high_water) <= 8192


def test_ephemeral_ports_recycle_through_proxy():
    """Repeated short-lived UDP sockets must not exhaust the namespace."""
    net, pa, _pb = build_network("library-shm-ipf")
    api = pa.new_app()

    def prog():
        ports = set()
        for _ in range(30):
            fd = yield from api.socket(SOCK_DGRAM)
            yield from api.bind(fd, 0)
            ports.add(api.fds.get(fd).payload.lport)
            yield from api.close(fd)
        return ports

    ports = net.run_all([prog()], until=BOUND)[0]
    assert len(ports) == 30  # fresh ephemeral each time, all released


def test_proxy_bind_zero_allocates_ephemeral():
    net, pa, _pb = build_network("library-shm-ipf")
    api = pa.new_app()

    def prog():
        fd = yield from api.socket(SOCK_DGRAM)
        yield from api.bind(fd, 0)
        return api.fds.get(fd).payload.lport

    port = net.run_all([prog()], until=BOUND)[0]
    assert 1024 <= port <= 5000
