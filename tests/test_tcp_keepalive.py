"""SO_KEEPALIVE: probing idle peers and dropping dead ones."""

import pytest

from repro.net.tcp import TCPConfig, TCPConnection, TCPState
from repro.net.tcp.header import ACK, TCPSegment
from repro.net.tcp.tcb import ConnectionTimedOut

from tests.test_tcp_conn import A_IP, B_IP, pump

KA_CFG = dict(nodelay=True, delayed_ack=False, keepalive=True,
              keepalive_idle_ticks=4, keepalive_interval_ticks=2,
              keepalive_probes=3)


def make_pair(a_keepalive=True):
    a = TCPConnection((A_IP, 1000),
                      config=TCPConfig(**KA_CFG) if a_keepalive
                      else TCPConfig(nodelay=True, delayed_ack=False))
    b = TCPConnection((B_IP, 2000),
                      config=TCPConfig(nodelay=True, delayed_ack=False))
    b.open_passive()
    a.open_active((B_IP, 2000))
    pump(a, b)
    return a, b


def tick_both(a, b, n=1):
    for _ in range(n):
        a.tick_slow()
        b.tick_slow()


def test_probe_sent_after_idle_threshold():
    a, b = make_pair()
    for _ in range(5):
        a.tick_slow()
    probes = a.take_output()
    assert probes
    probe = probes[0]
    assert probe.flags & ACK
    # The garbage-sequence probe sits one byte before snd_una.
    assert (a.snd_una - probe.seq) % (1 << 32) == 1


def test_live_peer_answers_and_connection_survives():
    a, b = make_pair()
    for _ in range(40):
        tick_both(a, b)
        pump(a, b)  # probes flow, corrective ACKs come back
    assert a.state == TCPState.ESTABLISHED
    assert b.state == TCPState.ESTABLISHED
    assert a._keep_probes_sent <= a.config.keepalive_probes


def test_dead_peer_detected_and_dropped():
    a, b = make_pair()
    # b dies silently: its frames never flow again.
    for _ in range(40):
        a.tick_slow()
        a.take_output()  # the probes vanish into the void
        if a.state == TCPState.CLOSED:
            break
    assert a.state == TCPState.CLOSED
    with pytest.raises(ConnectionTimedOut, match="keepalive"):
        a.raise_if_dead()


def test_traffic_resets_probe_counter():
    a, b = make_pair()
    for _ in range(5):
        a.tick_slow()  # idle, probes accumulate unanswered
    assert a._keep_probes_sent >= 1
    a.take_output()
    b.send(b"sign of life")
    pump(a, b)
    for _ in range(3):  # the pending keep timer fires, sees fresh traffic
        tick_both(a, b)
        pump(a, b)
    assert a._keep_probes_sent == 0
    assert a.state == TCPState.ESTABLISHED


def test_keepalive_off_by_default():
    a, b = make_pair(a_keepalive=False)
    for _ in range(40):
        a.tick_slow()
    assert a.take_output() == []  # silent idle: no probes, no drop
    assert a.state == TCPState.ESTABLISHED
