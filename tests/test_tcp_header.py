"""TCP segment encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addr import ip_aton
from repro.net.tcp.header import (
    ACK,
    FIN,
    PSH,
    SYN,
    TCPSegment,
    flags_str,
)

SRC = ip_aton("10.0.0.1")
DST = ip_aton("10.0.0.2")


def test_roundtrip_with_mss():
    seg = TCPSegment(1234, 80, seq=111, ack=222, flags=SYN | ACK,
                     window=8192, mss_option=1460)
    out = TCPSegment.unpack(SRC, DST, seg.pack(SRC, DST))
    assert out.src_port == 1234
    assert out.dst_port == 80
    assert out.seq == 111
    assert out.ack == 222
    assert out.flags == SYN | ACK
    assert out.window == 8192
    assert out.mss_option == 1460


@given(
    st.binary(max_size=1460),
    st.integers(0, (1 << 32) - 1),
    st.integers(0, (1 << 32) - 1),
    st.integers(0, 65535),
)
def test_roundtrip_property(payload, seqno, ackno, window):
    seg = TCPSegment(5, 6, seq=seqno, ack=ackno, flags=ACK | PSH,
                     window=window, payload=payload)
    out = TCPSegment.unpack(SRC, DST, seg.pack(SRC, DST))
    assert out.payload == payload
    assert out.seq == seqno
    assert out.ack == ackno
    assert out.window == window
    assert out.mss_option is None


@given(st.integers(0, 53), st.integers(1, 255))
def test_checksum_detects_corruption(pos, flip):
    seg = TCPSegment(5, 6, seq=1, flags=ACK, payload=b"corruptible data")
    packed = bytearray(seg.pack(SRC, DST))
    pos %= len(packed)
    packed[pos] ^= flip
    with pytest.raises(ValueError):
        TCPSegment.unpack(SRC, DST, bytes(packed))


def test_checksum_covers_pseudo_header():
    seg = TCPSegment(5, 6, flags=ACK)
    packed = seg.pack(SRC, DST)
    with pytest.raises(ValueError):
        TCPSegment.unpack(ip_aton("10.0.0.3"), DST, packed)


def test_short_segment_rejected():
    with pytest.raises(ValueError):
        TCPSegment.unpack(SRC, DST, b"\x00" * 10)


def test_bad_data_offset_rejected():
    seg = TCPSegment(1, 2, flags=ACK)
    packed = bytearray(seg.pack(SRC, DST))
    packed[12] = 0x30  # data offset 3 words < minimum 5
    with pytest.raises(ValueError, match="offset"):
        TCPSegment.unpack(SRC, DST, bytes(packed), verify=False)


def test_wire_len_counts_syn_fin():
    assert TCPSegment(1, 2, flags=SYN).wire_len == 1
    assert TCPSegment(1, 2, flags=FIN, payload=b"ab").wire_len == 3
    assert TCPSegment(1, 2, flags=ACK).wire_len == 0


def test_malformed_options_tolerated():
    seg = TCPSegment(1, 2, flags=SYN, mss_option=536)
    packed = bytearray(seg.pack(SRC, DST))
    packed[20] = 99  # unknown option kind with garbage length
    packed[21] = 0
    # Must not crash; the MSS is simply not recognized.
    out = TCPSegment.unpack(SRC, DST, bytes(packed), verify=False)
    assert out.mss_option is None


def test_flags_str():
    assert flags_str(SYN | ACK) == "SYN|ACK"
    assert flags_str(0) == "-"
