"""IPv4: headers, fragmentation, reassembly."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import ip
from repro.net.addr import ip_aton

SRC = ip_aton("10.0.0.1")
DST = ip_aton("10.0.0.2")


def test_header_roundtrip():
    packet = ip.encapsulate(SRC, DST, ip.PROTO_UDP, b"payload", ident=77)
    header, payload = ip.decapsulate(packet)
    assert header.src == SRC
    assert header.dst == DST
    assert header.proto == ip.PROTO_UDP
    assert header.ident == 77
    assert payload == b"payload"


def test_header_checksum_corruption_detected():
    packet = bytearray(ip.encapsulate(SRC, DST, ip.PROTO_TCP, b"x"))
    packet[8] ^= 0xFF  # mangle the TTL
    with pytest.raises(ValueError, match="checksum"):
        ip.decapsulate(bytes(packet))


def test_total_len_truncates_padding():
    # Ethernet pads short frames; decapsulate must honour total_len.
    packet = ip.encapsulate(SRC, DST, ip.PROTO_UDP, b"abc")
    padded = packet + b"\x00" * 20
    _header, payload = ip.decapsulate(padded)
    assert payload == b"abc"


def test_short_packet_rejected():
    with pytest.raises(ValueError):
        ip.IPHeader.unpack(b"\x45\x00")


def test_non_v4_rejected():
    packet = bytearray(ip.encapsulate(SRC, DST, ip.PROTO_UDP, b""))
    packet[0] = (6 << 4) | 5
    with pytest.raises(ValueError, match="IPv4"):
        ip.IPHeader.unpack(bytes(packet), verify=False)


def test_no_fragmentation_needed():
    packet = ip.encapsulate(SRC, DST, ip.PROTO_UDP, b"tiny")
    assert ip.fragment(packet, 1500) == [packet]


def test_df_blocks_fragmentation():
    packet = ip.encapsulate(SRC, DST, ip.PROTO_UDP, b"z" * 2000,
                            flags=ip.FLAG_DF)
    with pytest.raises(ValueError, match="DF"):
        ip.fragment(packet, 1500)


def test_fragment_offsets_multiple_of_8():
    packet = ip.encapsulate(SRC, DST, ip.PROTO_UDP, b"z" * 4000, ident=5)
    for frag in ip.fragment(packet, 1500):
        header = ip.IPHeader.unpack(frag)
        assert header.frag_off % 8 == 0
        assert len(frag) <= 1500


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@settings(max_examples=30, deadline=None)
@given(
    payload=st.binary(min_size=1, max_size=6000),
    mtu=st.integers(min_value=68, max_value=1500),
    order_seed=st.randoms(use_true_random=False),
)
def test_fragment_reassemble_roundtrip(payload, mtu, order_seed):
    """Property: any fragmentation, delivered in any order, reassembles."""
    packet = ip.encapsulate(SRC, DST, ip.PROTO_UDP, payload, ident=99)
    fragments = ip.fragment(packet, mtu)
    order_seed.shuffle(fragments)
    reasm = ip.Reassembler(FakeClock())
    outputs = [reasm.input(frag) for frag in fragments]
    complete = [o for o in outputs if o is not None]
    assert len(complete) == 1
    _header, out = ip.decapsulate(complete[0], verify=False)
    assert out == payload
    assert reasm.pending() == 0


def test_reassembly_hole_waits():
    packet = ip.encapsulate(SRC, DST, ip.PROTO_UDP, b"A" * 3000, ident=3)
    first, second, third = ip.fragment(packet, 1200)
    reasm = ip.Reassembler(FakeClock())
    assert reasm.input(first) is None
    assert reasm.input(third) is None
    assert reasm.input(second) is not None


def test_reassembly_timeout_discards():
    clock = FakeClock()
    reasm = ip.Reassembler(clock, timeout_us=1000.0)
    packet = ip.encapsulate(SRC, DST, ip.PROTO_UDP, b"B" * 3000, ident=4)
    frags = ip.fragment(packet, 1200)
    assert reasm.input(frags[0]) is None
    clock.now = 2000.0
    # A fresh fragment triggers expiry of the stale partial datagram.
    other = ip.encapsulate(SRC, DST, ip.PROTO_UDP, b"C" * 3000, ident=5)
    reasm.input(ip.fragment(other, 1200)[0])
    assert reasm.timed_out == 1


def test_distinct_idents_do_not_mix():
    reasm = ip.Reassembler(FakeClock())
    p1 = ip.encapsulate(SRC, DST, ip.PROTO_UDP, b"1" * 2500, ident=10)
    p2 = ip.encapsulate(SRC, DST, ip.PROTO_UDP, b"2" * 2500, ident=11)
    f1 = ip.fragment(p1, 1200)
    f2 = ip.fragment(p2, 1200)
    assert reasm.input(f1[0]) is None
    assert reasm.input(f2[0]) is None
    assert reasm.input(f2[1]) is None
    done2 = reasm.input(f2[2])
    assert done2 is not None
    assert ip.decapsulate(done2, verify=False)[1] == b"2" * 2500
    assert reasm.pending() == 1


def test_unfragmented_passthrough():
    reasm = ip.Reassembler(FakeClock())
    packet = ip.encapsulate(SRC, DST, ip.PROTO_TCP, b"through")
    assert reasm.input(packet) == packet
