"""Address conversions."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addr import (
    ip_aton,
    ip_ntoa,
    ip_pack,
    ip_unpack,
    mac_aton,
    mac_ntoa,
    make_mac,
    netmask_from_prefix,
)


def test_aton_basic():
    assert ip_aton("10.0.0.1") == 0x0A000001
    assert ip_aton("255.255.255.255") == 0xFFFFFFFF
    assert ip_aton(42) == 42


@pytest.mark.parametrize("bad", ["10.0.0", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"])
def test_aton_malformed(bad):
    with pytest.raises(ValueError):
        ip_aton(bad)


@given(st.integers(0, 0xFFFFFFFF))
def test_aton_ntoa_roundtrip(value):
    assert ip_aton(ip_ntoa(value)) == value


@given(st.integers(0, 0xFFFFFFFF))
def test_pack_unpack_roundtrip(value):
    assert ip_unpack(ip_pack(value)) == value


def test_mac_roundtrip():
    mac = bytes.fromhex("0200deadbeef")
    assert mac_aton(mac_ntoa(mac)) == mac


def test_mac_validation():
    with pytest.raises(ValueError):
        mac_aton("aa:bb:cc")
    with pytest.raises(ValueError):
        mac_ntoa(b"\x00" * 5)


def test_make_mac_deterministic_and_local():
    assert make_mac(7) == make_mac(7)
    assert make_mac(7) != make_mac(8)
    assert make_mac(7)[0] & 0x02  # locally administered bit


@pytest.mark.parametrize("prefix,expected", [
    (0, 0), (8, 0xFF000000), (24, 0xFFFFFF00), (32, 0xFFFFFFFF),
])
def test_netmask(prefix, expected):
    assert netmask_from_prefix(prefix) == expected


def test_netmask_range():
    with pytest.raises(ValueError):
        netmask_from_prefix(33)
