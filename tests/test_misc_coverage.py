"""Coverage for the remaining corners: contexts, configs, events, robustness."""

import pytest

from repro.hw.cpu import CPU, Priority
from repro.hw.platforms import DECSTATION_5000_200, GATEWAY_486
from repro.sim import Simulator, Timeout
from repro.sim.events import any_of
from repro.stack.context import ExecutionContext, light_locks, spl_locks
from repro.stack.instrument import Layer, LayerAccounting


# ----------------------------------------------------------------------
# ExecutionContext and lock packages
# ----------------------------------------------------------------------

def test_charge_attribution_to_layers(sim):
    cpu = CPU(sim, DECSTATION_5000_200)
    acct = LayerAccounting()
    ctx = ExecutionContext(sim, cpu, accounting=acct)

    def prog():
        yield from ctx.charge("layerA", 10.0)
        yield from ctx.charge("layerA", 5.0)
        yield from ctx.charge("layerB", 7.0)

    sim.run_process(prog())
    assert acct.total("layerA") == 15.0
    assert acct.total("layerB") == 7.0
    assert acct.mean("layerA") == 7.5
    assert acct.mean("layerA", per=3) == 5.0
    acct.reset()
    assert acct.total("layerA") == 0.0


def test_accounting_can_be_disabled(sim):
    cpu = CPU(sim, DECSTATION_5000_200)
    acct = LayerAccounting()
    acct.enabled = False
    ctx = ExecutionContext(sim, cpu, accounting=acct)

    def prog():
        yield from ctx.charge("x", 10.0)

    sim.run_process(prog())
    assert acct.total("x") == 0.0
    assert cpu.busy_time == 10.0  # the CPU time was still spent


def test_charge_copy_and_checksum_scale_with_bytes(sim):
    cpu = CPU(sim, DECSTATION_5000_200)
    acct = LayerAccounting()
    ctx = ExecutionContext(sim, cpu, accounting=acct)

    def prog():
        yield from ctx.charge_copy("c", 1000)
        yield from ctx.charge_checksum("k", 1000)

    sim.run_process(prog())
    p = DECSTATION_5000_200
    assert acct.total("c") == pytest.approx(p.copy_fixed + 1000 * p.copy_per_byte)
    assert acct.total("k") == pytest.approx(
        p.checksum_fixed + 1000 * p.checksum_per_byte
    )
    assert ctx.crossings.data_copies == 1


def test_lock_packages_differ():
    light = light_locks(DECSTATION_5000_200)
    heavy = spl_locks(DECSTATION_5000_200)
    assert heavy.lock_cost > light.lock_cost
    assert heavy.wakeup_cost > light.wakeup_cost
    assert light.name == "light" and heavy.name == "spl"


# ----------------------------------------------------------------------
# Platform parameters
# ----------------------------------------------------------------------

def test_gateway_derives_from_decstation():
    assert GATEWAY_486.name == "Gateway 486"
    # CPU costs scaled up, NIC per-byte costs overridden, not scaled.
    assert GATEWAY_486.trap == pytest.approx(DECSTATION_5000_200.trap * 1.45)
    assert GATEWAY_486.devmem_read_per_byte == 1.05
    assert GATEWAY_486.devmem_write_per_byte == 0.95


def test_scaled_preserves_name_and_overrides():
    scaled = DECSTATION_5000_200.scaled(2.0, trap=99.0)
    assert scaled.trap == 99.0
    assert scaled.copy_per_byte == pytest.approx(
        DECSTATION_5000_200.copy_per_byte * 2.0
    )
    assert scaled.name == DECSTATION_5000_200.name


# ----------------------------------------------------------------------
# Configuration registry
# ----------------------------------------------------------------------

def test_config_registry_is_consistent():
    from repro.world.configs import (
        CONFIGS,
        DECSTATION_ROWS,
        GATEWAY_ROWS,
        build_network,
    )

    for key, spec in CONFIGS.items():
        assert spec.key == key
        assert spec.style in ("kernel", "server", "library")
        assert spec.best_rcvbuf_kb > 0
        if spec.style == "library":
            assert spec.pf_variant in ("ipc", "shm", "shm_ipf")
        if spec.pf_variant == "shm_ipf" and spec.style == "library":
            assert spec.integrated_filter
    assert set(DECSTATION_ROWS) <= set(CONFIGS)
    assert set(GATEWAY_ROWS) <= set(CONFIGS)
    with pytest.raises(KeyError):
        build_network("no-such-config")
    with pytest.raises(ValueError):
        build_network("mach25", platform="vax")


def test_fault_injection_requires_rng():
    from repro.world.network import Network

    with pytest.raises(ValueError):
        Network(loss_rate=0.1)


# ----------------------------------------------------------------------
# any_of combinator
# ----------------------------------------------------------------------

def test_any_of_returns_first_winner(sim):
    late = sim.timeout(100, value="late")
    early = sim.timeout(10, value="early")

    def prog():
        winner, value = yield any_of(sim, [late, early])
        return winner is early, value

    first, value = sim.run_process(prog())
    assert first
    assert value == "early"
    assert sim.now == 10


def test_any_of_ignores_later_firings(sim):
    a = sim.timeout(5)
    b = sim.timeout(6)
    combined = any_of(sim, [a, b])
    sim.run()
    assert combined.triggered  # and the second firing did not explode


def test_any_of_requires_events(sim):
    with pytest.raises(ValueError):
        any_of(sim, [])


def test_any_of_propagates_failure(sim):
    failing = sim.event()
    sim.call_later(5, failing.fail, RuntimeError("inner"))

    def prog():
        try:
            yield any_of(sim, [failing, sim.timeout(100)])
        except RuntimeError as exc:
            return str(exc)

    assert sim.run_process(prog()) == "inner"


# ----------------------------------------------------------------------
# Robustness against malformed input
# ----------------------------------------------------------------------

def test_engine_survives_garbage_frames():
    """Arbitrary junk handed to the input path must be dropped, never
    crash the protocol thread."""
    from repro.world.configs import build_network

    net, pa, _pb = build_network("mach25")
    stack = pa._backend.stack

    def prog():
        for junk in (b"", b"\x00" * 10, b"\xff" * 64, b"\x45" + b"\x00" * 70):
            yield from stack.input_frame(junk)
        return True

    assert net.sim.run_process(prog(), until=10_000_000)


def test_icmp_error_with_truncated_quote_ignored():
    from repro.net import icmp
    from repro.net.ip import IPHeader
    from repro.world.configs import build_network

    net, pa, _pb = build_network("mach25")
    stack = pa._backend.stack
    bogus = icmp.ICMPMessage(icmp.TYPE_DEST_UNREACHABLE, code=3,
                             payload=b"\x45\x00")  # far too short
    header = IPHeader(src=1, dst=pa.host.ip, proto=1, total_len=0)
    stack._icmp_error(header, bogus)  # must not raise


def test_priority_constants_ordered():
    assert (Priority.INTERRUPT < Priority.KERNEL < Priority.SERVER
            < Priority.PROTOCOL < Priority.APPLICATION)
