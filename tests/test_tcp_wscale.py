"""RFC 1323 window scaling — the "TCP Extensions for High-Performance"
the paper cites as exactly the kind of protocol evolution a library
stack makes deployable per application."""

import random

from repro.net.addr import ip_aton
from repro.net.tcp import TCPConfig, TCPConnection, TCPState
from repro.net.tcp.header import TCPSegment

from tests.test_tcp_conn import A_IP, B_IP, pump


def make_pair(a_scale, b_scale, rcv_buf=256 * 1024):
    a = TCPConnection(
        (A_IP, 1000),
        config=TCPConfig(nodelay=True, delayed_ack=False,
                         window_scale=a_scale, rcv_buf=rcv_buf),
    )
    b = TCPConnection(
        (B_IP, 2000),
        config=TCPConfig(nodelay=True, delayed_ack=False,
                         window_scale=b_scale, rcv_buf=rcv_buf),
    )
    b.open_passive()
    a.open_active((B_IP, 2000))
    pump(a, b)
    return a, b


def test_negotiated_when_both_sides_offer():
    a, b = make_pair(2, 3)
    assert a.state == TCPState.ESTABLISHED
    assert (a.rcv_scale, a.snd_scale) == (2, 3)
    assert (b.rcv_scale, b.snd_scale) == (3, 2)


def test_disabled_when_one_side_missing():
    a, b = make_pair(2, None)
    assert (a.rcv_scale, a.snd_scale) == (0, 0)
    assert (b.rcv_scale, b.snd_scale) == (0, 0)


def test_scaled_window_exceeds_64k():
    a, b = make_pair(3, 3)
    # b advertises its big buffer; a's view of snd_wnd must exceed 64 KB.
    a.send(b"x")
    pump(a, b)
    b.receive(10)
    pump(a, b)
    assert a.snd_wnd > 0xFFFF


def test_unscaled_window_capped_at_64k():
    a, b = make_pair(None, None)
    a.send(b"x")
    pump(a, b)
    assert a.snd_wnd <= 0xFFFF


def test_wire_field_stays_16_bit():
    a, b = make_pair(4, 4)
    a.send(b"probe")
    for seg in a.take_output():
        packed = seg.pack(A_IP, B_IP)
        parsed = TCPSegment.unpack(A_IP, B_IP, packed)
        assert 0 <= parsed.window <= 0xFFFF
        b.segment_arrives(parsed)


def test_bulk_transfer_with_scaling_intact():
    a, b = make_pair(2, 2)
    a.cc.cwnd = 1 << 20  # remove the congestion cap for the check
    payload = bytes(random.Random(2).randbytes(200_000))
    sent = 0
    received = bytearray()
    while len(received) < len(payload):
        if sent < len(payload):
            sent += a.send(payload[sent:])
        pump(a, b)
        received += b.receive(1 << 22)
    assert bytes(received) == payload


def test_scaling_survives_migration():
    a, b = make_pair(2, 2)
    state = a.export_state()
    a2 = TCPConnection((0, 0), config=TCPConfig(window_scale=2,
                                                rcv_buf=256 * 1024))
    a2.import_state(state)
    assert a2.snd_scale == 2
    assert a2.rcv_scale == 2
    assert a2.cc.max_window == 0xFFFF << 2
    a2.send(b"post-migration")
    pump(a2, b)
    assert b.receive(100) == b"post-migration"


def test_wscale_capped_at_14():
    seg = TCPSegment(1, 2, flags=2, wscale_option=30)
    parsed = TCPSegment.unpack(A_IP, B_IP, seg.pack(A_IP, B_IP))
    assert parsed.wscale_option == 14


def test_config_validates_scale_range():
    import pytest

    with pytest.raises(ValueError):
        TCPConfig(window_scale=15)
    with pytest.raises(ValueError):
        TCPConfig(window_scale=-1)


def test_end_to_end_placement_with_scaling():
    """The library placement can enable scaling per application via
    tcp_defaults — no kernel involvement."""
    from repro.core.sockets import SOCK_STREAM
    from repro.world.configs import build_network

    net, pa, pb = build_network(
        "library-shm-ipf",
        tcp_defaults={"window_scale": 2, "rcv_buf": 200 * 1024},
    )
    api_a = pa.new_app()
    api_b = pb.new_app()
    ready = net.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7600)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, _ = yield from api_a.accept(fd)
        data = yield from api_a.recv_exactly(cfd, 50_000)
        return len(data)

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (ip_aton("10.0.0.1"), 7600))
        yield from api_b.send_all(fd, b"w" * 50_000)
        psock = api_b.fds.get(fd).payload
        return psock.session.conn.snd_scale, psock.session.conn.rcv_scale

    got, scales = net.run_all([server(), client()], until=200_000_000)
    assert got == 50_000
    assert scales == (2, 2)
