"""Per-packet tracing: propagation, bounding, and the tick-agreement
invariant between the span fold and the instrument ledgers."""

import json

import pytest

from repro.analysis.tracing import crosscheck, placement_ledgers
from repro.core.sockets import SOCK_DGRAM, SOCK_STREAM
from repro.net.addr import ip_aton
from repro.stack.instrument import Layer
from repro.trace import chrome_trace, text_timeline
from repro.world.configs import build_network

IP1 = ip_aton("10.0.0.1")
RUN_BOUND = 240_000_000


def run_udp_echo(net, pa, pb, payload=b"x" * 512, port=9000, rounds=1):
    ready = net.sim.event()

    def server(api):
        fd = yield from api.socket(SOCK_DGRAM)
        yield from api.bind(fd, port)
        ready.succeed()
        for _ in range(rounds):
            data, src = yield from api.recvfrom(fd)
            yield from api.sendto(fd, data, src)
        yield from api.close(fd)

    def client(api):
        yield ready
        fd = yield from api.socket(SOCK_DGRAM)
        for _ in range(rounds):
            yield from api.sendto(fd, payload, (IP1, port))
            data, _ = yield from api.recvfrom(fd)
        yield from api.close(fd)
        return data

    _s, data = net.run_all([server(pa.new_app()), client(pb.new_app())],
                           until=RUN_BOUND)
    assert data == payload


def run_tcp_echo(net, pa, pb, payload=b"y" * 512, port=7000):
    ready = net.sim.event()

    def server(api):
        fd = yield from api.socket(SOCK_STREAM)
        yield from api.bind(fd, port)
        yield from api.listen(fd)
        ready.succeed()
        cfd, _ = yield from api.accept(fd)
        data = yield from api.recv_exactly(cfd, len(payload))
        yield from api.send_all(cfd, data)
        yield from api.close(cfd)
        yield from api.close(fd)

    def client(api):
        yield ready
        fd = yield from api.socket(SOCK_STREAM)
        yield from api.connect(fd, (IP1, port))
        yield from api.send_all(fd, payload)
        data = yield from api.recv_exactly(fd, len(payload))
        yield from api.close(fd)
        return data

    _s, data = net.run_all([server(pa.new_app()), client(pb.new_app())],
                           until=RUN_BOUND)
    assert data == payload


# ----------------------------------------------------------------------


def test_disabled_by_default_records_nothing():
    net, pa, pb = build_network("mach25")
    assert not net.tracer.enabled
    run_udp_echo(net, pa, pb)
    assert net.tracer.spans_recorded == 0
    assert net.tracer.traces_started == 0
    assert len(net.tracer.spans) == 0
    # ...while the instrument ledgers kept accounting as always.
    assert pb.accounting.totals


def test_trace_id_propagates_across_proxy_ipc_boundary():
    """A packet sent through the library placement keeps one trace id
    from the client's socket entry, across the kernel and wire, through
    the server host's IPC packet-filter delivery, to its copyout."""
    net, pa, pb = build_network("library-ipc")
    net.tracer.enable()
    run_udp_echo(net, pa, pb)

    client_owner = pb.accounting.owner
    server_owner = pa.accounting.owner
    send_traces = [
        tid for tid in net.tracer.trace_ids()
        if net.tracer.meta(tid).kind == "send"
        and net.tracer.meta(tid).host == pb.host.name
    ]
    assert send_traces, "client socket entry must begin a send trace"
    # The client's request packet: spans on both hosts under one id.
    crossing = None
    for tid in send_traces:
        owners = {s.owner for s in net.tracer.trace(tid)}
        if client_owner in owners and server_owner in owners:
            crossing = tid
            break
    assert crossing is not None, "no trace crossed the host boundary"
    spans = net.tracer.trace(crossing)
    layers_client = {s.layer for s in spans if s.owner == client_owner}
    layers_server = {s.layer for s in spans if s.owner == server_owner}
    # Send path charged on the client...
    assert Layer.ENTRY_COPYIN in layers_client
    # ...and the server side's receive path — including the per-packet
    # IPC delivery into the receiving library (library-ipc's packet
    # filter port) — carries the same id.
    assert Layer.DEVICE_READ in layers_server
    assert Layer.KERNEL_COPYOUT in layers_server


def test_each_send_begins_a_fresh_trace():
    net, pa, pb = build_network("mach25")
    net.tracer.enable()
    run_udp_echo(net, pa, pb, rounds=3)
    births = [net.tracer.meta(tid) for tid in net.tracer.trace_ids()]
    client_sends = [m for m in births
                    if m.kind == "send" and m.host == pb.host.name]
    # One per datagram (per-packet tracing, not per-round-trip).
    assert len(client_sends) == 3
    assert len({m.trace_id for m in client_sends}) == 3


def test_ring_bounding_evicts_spans_but_counters_stay_exact():
    net, pa, pb = build_network("mach25")
    net.tracer.enable(capacity=32, max_traces=2)
    run_udp_echo(net, pa, pb, rounds=4)
    tracer = net.tracer
    assert len(tracer.spans) == 32
    assert tracer.spans_recorded > 32
    assert tracer.spans_evicted == tracer.spans_recorded - 32
    # Metadata is bounded too: old traces fall off, the counter doesn't.
    assert len(tracer.trace_ids()) <= 2
    assert tracer.traces_started > 2


@pytest.mark.parametrize("config_key",
                         ["mach25", "ux", "library-shm", "library-shm-ipf"])
@pytest.mark.parametrize("proto", ["udp", "tcp"])
def test_fold_matches_instrument_accounting_tick_for_tick(config_key, proto):
    """The standing invariant: replaying the span ring reproduces every
    ledger cell exactly — same floats, same addition order."""
    net, pa, pb = build_network(config_key)
    net.tracer.enable()
    if proto == "udp":
        run_udp_echo(net, pa, pb)
    else:
        run_tcp_echo(net, pa, pb)
    assert net.tracer.spans_evicted == 0
    ledgers = placement_ledgers(pa, pb)
    problems = crosscheck(net.tracer, ledgers)
    assert not problems, "\n".join(problems)
    # And the fold actually covered real work on both hosts.
    fold = net.tracer.fold()
    assert fold[pa.accounting.owner]
    assert fold[pb.accounting.owner]


@pytest.mark.parametrize("config_key", ["mach25", "ux", "library-shm-ipf"])
def test_traced_breakdown_equals_ledger_breakdown(config_key):
    """Table 4 derived from traces is the ledger-derived table, cell for
    cell, for every placement the paper breaks down."""
    from repro.analysis.experiments import run_breakdown
    from repro.analysis.tracing import run_traced_breakdown

    traced = run_traced_breakdown(config_key, "udp", 512, rounds=20)
    ledger = run_breakdown(config_key, "udp", 512, rounds=20)
    assert traced.breakdown == ledger
    assert traced.spans > 0
    assert traced.traces > 0


def test_chrome_trace_export():
    net, pa, pb = build_network("mach25")
    net.tracer.enable()
    run_udp_echo(net, pa, pb)
    doc = json.loads(chrome_trace(net.tracer))
    events = doc["traceEvents"]
    assert len(events) == len(net.tracer.spans)
    sample = events[0]
    assert sample["ph"] == "X"
    assert set(sample) >= {"name", "ts", "dur", "pid", "tid", "cat"}
    # Single-trace export filters down to that packet.
    tid = net.tracer.trace_ids()[0]
    only = json.loads(chrome_trace(net.tracer, trace_id=tid))
    assert 0 < len(only["traceEvents"]) < len(events)
    assert all(e["tid"] == tid for e in only["traceEvents"])


def test_text_timeline_export():
    net, pa, pb = build_network("mach25")
    net.tracer.enable()
    run_udp_echo(net, pa, pb)
    send_tid = next(tid for tid in net.tracer.trace_ids()
                    if net.tracer.meta(tid).kind == "send")
    text = text_timeline(net.tracer, send_tid)
    assert "trace #%d" % send_tid in text
    assert "total attributed CPU" in text
    assert Layer.ENTRY_COPYIN in text
