"""ICMP: wire format, echo service, and error delivery."""

import pytest
from hypothesis import given, strategies as st

from repro.net import icmp
from repro.net.addr import ip_aton
from repro.core.sockets import SOCK_DGRAM
from repro.stack.engine import PortUnreachable
from repro.world.configs import build_network

IP1 = ip_aton("10.0.0.1")
IP2 = ip_aton("10.0.0.2")
BOUND = 120_000_000


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------

def test_echo_roundtrip():
    request = icmp.ICMPMessage.echo_request(77, 3, payload=b"probe")
    parsed = icmp.ICMPMessage.unpack(request.pack())
    assert parsed.type == icmp.TYPE_ECHO_REQUEST
    assert parsed.ident == 77
    assert parsed.seq == 3
    assert parsed.payload == b"probe"
    reply = parsed.echo_reply()
    parsed_reply = icmp.ICMPMessage.unpack(reply.pack())
    assert parsed_reply.type == icmp.TYPE_ECHO_REPLY
    assert parsed_reply.ident == 77


@given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF),
       st.binary(max_size=512))
def test_echo_roundtrip_property(ident, seq, payload):
    message = icmp.ICMPMessage.echo_request(ident, seq, payload)
    parsed = icmp.ICMPMessage.unpack(message.pack())
    assert (parsed.ident, parsed.seq, parsed.payload) == (ident, seq, payload)


def test_checksum_detects_corruption():
    packed = bytearray(icmp.ICMPMessage.echo_request(1, 1, b"x").pack())
    packed[-1] ^= 0x55
    with pytest.raises(ValueError):
        icmp.ICMPMessage.unpack(bytes(packed))


def test_port_unreachable_quotes_original():
    from repro.net import ip as ipmod
    from repro.net import udp as udpmod

    dgram = udpmod.encapsulate(IP1, IP2, 5000, 9, b"payload")
    packet = ipmod.encapsulate(IP1, IP2, ipmod.PROTO_UDP, dgram)
    err = icmp.ICMPMessage.port_unreachable(packet)
    parsed = icmp.ICMPMessage.unpack(err.pack())
    assert parsed.type == icmp.TYPE_DEST_UNREACHABLE
    assert parsed.code == icmp.CODE_PORT_UNREACHABLE
    quoted = parsed.quoted_packet()
    inner = ipmod.IPHeader.unpack(quoted, verify=False)
    assert inner.src == IP1 and inner.dst == IP2
    assert len(quoted) == 28  # header + 8 bytes, per RFC 792


def test_reply_of_non_request_rejected():
    reply = icmp.ICMPMessage(icmp.TYPE_ECHO_REPLY, ident=1, seq=1)
    with pytest.raises(ValueError):
        reply.echo_reply()


# ----------------------------------------------------------------------
# Live behaviour, per placement
# ----------------------------------------------------------------------

@pytest.mark.parametrize("config", ["mach25", "ux", "library-shm-ipf"])
def test_ping_round_trip(config):
    net, pa, pb = build_network(config)
    api = pb.new_app()

    def prog():
        rtt = yield from api.ping(IP1)
        return rtt

    rtt = net.run_all([prog()], until=BOUND)[0]
    assert rtt is not None
    # Two minimum frames on the wire plus processing: 0.1 ms < rtt < 5 ms.
    assert 100 < rtt < 5_000
    assert pa.server.stack.icmp_echoes_answered == 1 if config != "mach25" \
        else True


def test_ping_timeout_when_host_absent():
    net, pa, pb = build_network("mach25")
    api = pb.new_app()

    def prog():
        rtt = yield from api.ping(ip_aton("10.0.0.99"), timeout_us=500_000)
        return rtt

    # 10.0.0.99 does not exist: ARP fails, then the ping times out.
    result = net.run_all([prog()], until=BOUND)
    assert result[0] is None


@pytest.mark.parametrize("config", ["mach25", "library-shm-ipf"])
def test_connected_udp_gets_port_unreachable(config):
    """A datagram to a dead port draws ICMP port unreachable, surfaced as
    an error on the connected socket (BSD's ECONNREFUSED)."""
    net, pa, pb = build_network(config)
    api = pb.new_app()

    def prog():
        fd = yield from api.socket(SOCK_DGRAM)
        yield from api.connect(fd, (IP1, 9999))  # nobody listens there
        yield from api.send(fd, b"anyone home?")
        try:
            yield from api.recv(fd, 100)
        except PortUnreachable:
            return "refused"
        return "no error"

    assert net.run_all([prog()], until=BOUND)[0] == "refused"


def test_unconnected_udp_does_not_see_errors():
    """Errors are only delivered to *connected* sockets (BSD semantics:
    an unconnected socket cannot associate the error with a peer)."""
    net, pa, pb = build_network("mach25")
    api = pb.new_app()

    def prog():
        fd = yield from api.socket(SOCK_DGRAM)
        yield from api.bind(fd, 9800)
        yield from api.sendto(fd, b"void", (IP1, 9999))
        r, _w = yield from api.select([fd], timeout=3_000_000)
        return r

    readable = net.run_all([prog()], until=BOUND)[0]
    assert readable == []  # no datagram, and no error surfaced


def test_library_icmp_error_upcall():
    """In the decomposed architecture the ICMP error arrives at the OS
    server, which upcalls it into the owning application session."""
    net, pa, pb = build_network("library-shm-ipf")
    api = pb.new_app()

    def prog():
        fd = yield from api.socket(SOCK_DGRAM)
        yield from api.connect(fd, (IP1, 9998))
        yield from api.send(fd, b"probe")
        try:
            yield from api.recv(fd, 100)
        except PortUnreachable:
            return "refused"

    assert net.run_all([prog()], until=BOUND)[0] == "refused"
    assert pb.server.icmp_upcalls == 1
    assert pa.server.stack.icmp_errors_sent == 1
