"""BSD socket semantics across all three protocol placements.

These tests run against the parametrized ``any_placement_pair`` fixture,
so every behaviour is checked for the in-kernel, server-based, and
library-based systems — the paper's source-compatibility goal.
"""

import pytest

from repro.core.sockets import SOCK_DGRAM, SOCK_STREAM, SocketError
from repro.net.addr import ip_aton

IP1 = ip_aton("10.0.0.1")
IP2 = ip_aton("10.0.0.2")
RUN_BOUND = 120_000_000


def test_tcp_echo_roundtrip(any_placement_pair):
    _name, net, pa, pb = any_placement_pair
    ready = net.sim.event()

    def server(api):
        fd = yield from api.socket(SOCK_STREAM)
        yield from api.bind(fd, 7000)
        yield from api.listen(fd)
        ready.succeed()
        cfd, addr = yield from api.accept(fd)
        assert addr[0] == IP2
        data = yield from api.recv_exactly(cfd, 2000)
        yield from api.send_all(cfd, data[::-1])
        yield from api.close(cfd)
        yield from api.close(fd)

    def client(api):
        yield ready
        fd = yield from api.socket(SOCK_STREAM)
        yield from api.connect(fd, (IP1, 7000))
        message = bytes(range(256)) * 8  # 2048 > 2000: partial reads too
        yield from api.send_all(fd, message[:2000])
        echoed = yield from api.recv_exactly(fd, 2000)
        yield from api.close(fd)
        return echoed == message[:2000][::-1]

    _s, ok = net.run_all([server(pa.new_app()), client(pb.new_app())],
                         until=RUN_BOUND)
    assert ok


def test_udp_exchange_and_addresses(any_placement_pair):
    _name, net, pa, pb = any_placement_pair
    ready = net.sim.event()

    def server(api):
        fd = yield from api.socket(SOCK_DGRAM)
        yield from api.bind(fd, 9000)
        ready.succeed()
        data, src = yield from api.recvfrom(fd)
        yield from api.sendto(fd, b"pong:" + data, src)
        yield from api.close(fd)
        return src

    def client(api):
        yield ready
        fd = yield from api.socket(SOCK_DGRAM)
        yield from api.sendto(fd, b"ping", (IP1, 9000))
        data, src = yield from api.recvfrom(fd)
        yield from api.close(fd)
        return data, src

    src_seen, (data, reply_src) = net.run_all(
        [server(pa.new_app()), client(pb.new_app())], until=RUN_BOUND
    )
    assert data == b"pong:ping"
    assert src_seen[0] == IP2
    assert reply_src == (IP1, 9000)


def test_connected_udp_send_recv(any_placement_pair):
    _name, net, pa, pb = any_placement_pair
    ready = net.sim.event()

    def server(api):
        fd = yield from api.socket(SOCK_DGRAM)
        yield from api.bind(fd, 9001)
        ready.succeed()
        data, src = yield from api.recvfrom(fd)
        yield from api.sendto(fd, data.upper(), src)

    def client(api):
        yield ready
        fd = yield from api.socket(SOCK_DGRAM)
        yield from api.connect(fd, (IP1, 9001))
        yield from api.send(fd, b"shout")
        reply = yield from api.recv(fd, 100)
        return reply

    _s, reply = net.run_all([server(pa.new_app()), client(pb.new_app())],
                            until=RUN_BOUND)
    assert reply == b"SHOUT"


def test_recv_sees_eof_after_peer_close(any_placement_pair):
    _name, net, pa, pb = any_placement_pair
    ready = net.sim.event()

    def server(api):
        fd = yield from api.socket(SOCK_STREAM)
        yield from api.bind(fd, 7001)
        yield from api.listen(fd)
        ready.succeed()
        cfd, _ = yield from api.accept(fd)
        yield from api.send_all(cfd, b"goodbye")
        yield from api.close(cfd)

    def client(api):
        yield ready
        fd = yield from api.socket(SOCK_STREAM)
        yield from api.connect(fd, (IP1, 7001))
        data = yield from api.recv_exactly(fd, 7)
        tail = yield from api.recv(fd, 100)
        yield from api.close(fd)
        return data, tail

    _s, (data, tail) = net.run_all([server(pa.new_app()), client(pb.new_app())],
                                   until=RUN_BOUND)
    assert data == b"goodbye"
    assert tail == b""


def test_bind_conflict_raises(any_placement_pair):
    _name, net, pa, _pb = any_placement_pair
    api1 = pa.new_app()
    api2 = pa.new_app()

    def first():
        fd = yield from api1.socket(SOCK_DGRAM)
        yield from api1.bind(fd, 9100)
        return "bound"

    def second():
        yield net.sim.timeout(10_000)
        fd = yield from api2.socket(SOCK_DGRAM)
        try:
            yield from api2.bind(fd, 9100)
        except Exception as exc:
            return type(exc).__name__
        return "no error"

    _f, err = net.run_all([first(), second()], until=RUN_BOUND)
    assert err in ("PortInUse", "SocketError")


def test_sequential_connections_to_same_listener(any_placement_pair):
    _name, net, pa, pb = any_placement_pair
    ready = net.sim.event()

    def server(api):
        fd = yield from api.socket(SOCK_STREAM)
        yield from api.bind(fd, 7002)
        yield from api.listen(fd, 5)
        ready.succeed()
        results = []
        for _ in range(2):
            cfd, _ = yield from api.accept(fd)
            data = yield from api.recv(cfd, 100)
            results.append(data)
            yield from api.close(cfd)
        return results

    def client(api):
        yield ready
        for tag in (b"first", b"second"):
            fd = yield from api.socket(SOCK_STREAM)
            yield from api.connect(fd, (IP1, 7002))
            yield from api.send_all(fd, tag)
            yield from api.close(fd)
            yield net.sim.timeout(2_000_000)  # let teardown settle

    results, _c = net.run_all([server(pa.new_app()), client(pb.new_app())],
                              until=RUN_BOUND)
    assert results == [b"first", b"second"]


def test_concurrent_clients_one_listener(any_placement_pair):
    _name, net, pa, pb = any_placement_pair
    ready = net.sim.event()
    n_clients = 3

    def server(api):
        fd = yield from api.socket(SOCK_STREAM)
        yield from api.bind(fd, 7003)
        yield from api.listen(fd, 8)
        ready.succeed()
        seen = []
        for _ in range(n_clients):
            cfd, _ = yield from api.accept(fd)
            data = yield from api.recv(cfd, 100)
            seen.append(data)
            yield from api.close(cfd)
        return sorted(seen)

    def client(api, tag):
        yield ready
        fd = yield from api.socket(SOCK_STREAM)
        yield from api.connect(fd, (IP1, 7003))
        yield from api.send_all(fd, tag)
        yield from api.close(fd)

    gens = [server(pa.new_app())]
    for i in range(n_clients):
        gens.append(client(pb.new_app(), b"c%d" % i))
    results = net.run_all(gens, until=RUN_BOUND)
    assert results[0] == [b"c0", b"c1", b"c2"]


def test_select_readable_on_udp(any_placement_pair):
    _name, net, pa, pb = any_placement_pair
    ready = net.sim.event()

    def server(api):
        fd1 = yield from api.socket(SOCK_DGRAM)
        yield from api.bind(fd1, 9200)
        fd2 = yield from api.socket(SOCK_DGRAM)
        yield from api.bind(fd2, 9201)
        ready.succeed()
        readable, _w = yield from api.select([fd1, fd2], timeout=30_000_000)
        assert readable, "select timed out"
        data, _src = yield from api.recvfrom(readable[0])
        return readable[0] == fd2, data

    def client(api):
        yield ready
        yield net.sim.timeout(1_000_000)
        fd = yield from api.socket(SOCK_DGRAM)
        yield from api.sendto(fd, b"to the second", (IP1, 9201))

    (hit_fd2, data), _c = net.run_all(
        [server(pa.new_app()), client(pb.new_app())], until=RUN_BOUND
    )
    assert hit_fd2
    assert data == b"to the second"


def test_select_timeout_returns_empty(any_placement_pair):
    _name, net, pa, _pb = any_placement_pair

    def prog(api):
        fd = yield from api.socket(SOCK_DGRAM)
        yield from api.bind(fd, 9300)
        start = net.sim.now
        r, w = yield from api.select([fd], timeout=500_000)
        return r, w, net.sim.now - start

    r, w, elapsed = net.run_all([prog(pa.new_app())], until=RUN_BOUND)[0]
    assert r == [] and w == []
    assert elapsed >= 500_000


def test_setsockopt_rcvbuf_applies(any_placement_pair):
    _name, net, pa, pb = any_placement_pair
    ready = net.sim.event()

    def server(api):
        fd = yield from api.socket(SOCK_STREAM)
        yield from api.setsockopt(fd, "rcvbuf", 4096)
        yield from api.bind(fd, 7004)
        yield from api.listen(fd)
        ready.succeed()
        cfd, _ = yield from api.accept(fd)
        # Without draining, the 4 KB receive buffer caps what can arrive.
        yield net.sim.timeout(20_000_000)
        data = yield from api.recv(cfd, 100_000)
        return len(data)

    def client(api):
        yield ready
        fd = yield from api.socket(SOCK_STREAM)
        yield from api.connect(fd, (IP1, 7004))
        n = yield from api.send(fd, b"x" * 3000)
        return n

    got, _sent = net.run_all([server(pa.new_app()), client(pb.new_app())],
                             until=RUN_BOUND)
    assert got <= 4096


def test_fork_child_shares_stream(any_placement_pair):
    _name, net, pa, pb = any_placement_pair
    ready = net.sim.event()

    def server(api):
        fd = yield from api.socket(SOCK_STREAM)
        yield from api.bind(fd, 7005)
        yield from api.listen(fd)
        ready.succeed()
        cfd, _ = yield from api.accept(fd)
        d1 = yield from api.recv_exactly(cfd, 7)
        d2 = yield from api.recv_exactly(cfd, 6)
        return d1, d2

    def client(api):
        yield ready
        fd = yield from api.socket(SOCK_STREAM)
        yield from api.connect(fd, (IP1, 7005))
        yield from api.send_all(fd, b"parent|")
        child = yield from api.fork()
        yield from child.send_all(fd, b"child!")
        return "sent"

    (d1, d2), _c = net.run_all([server(pa.new_app()), client(pb.new_app())],
                               until=RUN_BOUND)
    assert d1 == b"parent|"
    assert d2 == b"child!"


def test_bad_fd_raises(any_placement_pair):
    _name, net, pa, _pb = any_placement_pair
    api = pa.new_app()

    def prog():
        with pytest.raises(SocketError):
            yield from api.send(99, b"nope")
        return True

    assert net.run_all([prog()], until=RUN_BOUND)[0]
