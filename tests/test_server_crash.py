"""NetServer crash and restart: the failure-isolation half of the paper's
decomposition argument.

An OS-server crash must not take application-resident sessions with it:
their kernel packet filters, library stacks, and cached metastate all
live outside the server task.  What the crash does cost is every
server-side service — and those RPCs must fail cleanly, retry with
backoff, and succeed again once the restarted server has been repopulated
by the libraries' re-registration reports."""

import pytest

from repro.core.sockets import SOCK_STREAM, SocketError
from repro.kernel.ipc import ServerCrashed
from repro.net.ports import PortInUse
from repro.net.addr import ip_aton
from repro.world.configs import build_network

IP1 = ip_aton("10.0.0.1")
BOUND = 1_200_000_000


def test_crash_and_restart_guards():
    net, pa, _pb = build_network("library-shm-ipf")
    server = pa.server
    with pytest.raises(SocketError):
        server.restart()  # restart of a live server is a caller bug
    server.crash()
    assert not server.alive and server.crashes == 1
    assert server.rpc.broken
    with pytest.raises(SocketError):
        server.crash()  # double crash likewise
    server.restart()
    assert server.alive and server.generation == 1
    assert not server.rpc.broken


def test_call_against_dead_server_raises_server_crashed():
    net, pa, _pb = build_network("library-shm-ipf")
    api = pa.new_app()
    pa.server.crash()

    def attempt():
        # The raw (non-retrying) call path: immediate clean failure.
        yield from api.rpc.call(api.ctx, "proxy_socket",
                                args=(api.app_id, SOCK_STREAM))

    with pytest.raises(ServerCrashed):
        net.sim.run_process(attempt())


def test_transfer_survives_crash_and_close_retries_until_restart():
    """The headline scenario: the OS server dies mid-transfer and the
    app-managed TCP session keeps moving data (its data path never touches
    the server).  The eventual close RPC fails, retries with backoff, and
    completes against the restarted server's rebuilt records."""
    net, pa, pb = build_network("library-shm-ipf")
    api_a = pa.new_app(name="srv-app")
    api_b = pb.new_app(name="cli-app")
    nbytes = 60_000
    payload = bytes((i * 7 + 3) % 256 for i in range(nbytes))
    ready = net.sim.event()
    started = net.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7400)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, _ = yield from api_a.accept(fd)
        started.succeed()
        data = yield from api_a.recv_exactly(cfd, nbytes)
        yield from api_a.close(cfd)
        yield from api_a.close(fd)
        return data

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, 7400))
        yield from api_b.send_all(fd, payload)
        yield from api_b.close(fd)
        return "sent"

    def controller():
        yield started
        yield net.sim.timeout(5_000)  # mid-transfer
        crash_at = net.sim.now
        pa.server.crash()
        yield net.sim.timeout(2_000_000)  # dead for two full seconds
        pa.server.restart()
        return crash_at

    data, _sent, _crash_at = net.run_all(
        [server(), client(), controller()], until=BOUND
    )
    assert data == payload  # byte-exact through the outage
    server_obj = pa.server
    assert server_obj.generation == 1 and server_obj.crashes == 1
    assert api_a.reregistrations == 1
    # The listener and the accepted data session were both re-reported.
    assert server_obj.sessions_restored >= 2
    # Everything settled: the port is serving again, nothing queued.
    assert not server_obj.rpc.broken
    # The host-level ARP service survived the crash with the server's
    # own state gone.
    assert len(pa.host.arp.cache) > 0


def test_inflight_accept_retries_and_lands_on_rebuilt_listener():
    """An accept RPC parked inside the server when it dies: the client
    side sees the failure, backs off, waits for re-registration to rebuild
    the listener, and the retried accept then completes a real handshake."""
    net, pa, pb = build_network("library-shm-ipf")
    api_a = pa.new_app(name="srv-app")
    api_b = pb.new_app(name="cli-app")
    ready = net.sim.event()
    restarted = net.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7401)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, peer = yield from api_a.accept(fd)  # in flight at crash time
        data = yield from api_a.recv_exactly(cfd, 5)
        yield from api_a.close(cfd)
        yield from api_a.close(fd)
        return data

    def controller():
        yield ready
        yield net.sim.timeout(50_000)
        pa.server.crash()
        yield net.sim.timeout(1_000_000)
        pa.server.restart()
        restarted.succeed()

    def client():
        yield restarted
        yield net.sim.timeout(100_000)
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, 7401))
        yield from api_b.send_all(fd, b"hello")
        yield from api_b.close(fd)
        return "sent"

    data, _none, _sent = net.run_all(
        [server(), controller(), client()], until=BOUND
    )
    assert data == b"hello"
    assert pa.server.rpc.retried_calls > 0
    assert api_a.reregistrations == 1
    assert pa.server.sessions_restored >= 1  # the listener came back


def test_port_namespace_is_rebuilt_from_reregistration():
    """After restart the server's port table starts empty; re-registration
    must re-claim every surviving port so later binds still conflict."""
    net, pa, pb = build_network("library-shm-ipf")
    api_a = pa.new_app(name="srv-app")
    ready = net.sim.event()
    done = net.sim.event()

    def holder():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7402)
        yield from api_a.listen(fd)
        ready.succeed()
        yield done

    def controller():
        yield ready
        pa.server.crash()
        yield net.sim.timeout(500_000)
        pa.server.restart()
        yield net.sim.timeout(500_000)
        # Re-registration has run by now: the port must be taken again.
        fd2 = yield from api_a.socket(SOCK_STREAM)
        try:
            yield from api_a.bind(fd2, 7402)
        except (SocketError, PortInUse):
            done.succeed()
            return "conflict"
        done.succeed()
        return "rebound"

    _none, outcome = net.run_all([holder(), controller()], until=BOUND)
    assert outcome == "conflict"
    assert api_a.reregistrations == 1


def test_second_crash_is_survivable_too():
    """The watcher loops: two crash/restart cycles, two re-registrations,
    and the session still closes cleanly at the end."""
    net, pa, pb = build_network("library-shm-ipf")
    api_a = pa.new_app(name="srv-app")
    api_b = pb.new_app(name="cli-app")
    nbytes = 30_000
    payload = bytes((i * 13 + 1) % 256 for i in range(nbytes))
    ready = net.sim.event()
    started = net.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7403)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, _ = yield from api_a.accept(fd)
        started.succeed()
        data = yield from api_a.recv_exactly(cfd, nbytes)
        yield from api_a.close(cfd)
        yield from api_a.close(fd)
        return data

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, 7403))
        yield from api_b.send_all(fd, payload)
        yield from api_b.close(fd)
        return "sent"

    def controller():
        yield started
        for _ in range(2):
            yield net.sim.timeout(3_000)
            pa.server.crash()
            yield net.sim.timeout(800_000)
            pa.server.restart()
            yield net.sim.timeout(800_000)

    data, _sent, _none = net.run_all(
        [server(), client(), controller()], until=BOUND
    )
    assert data == payload
    assert pa.server.generation == 2 and pa.server.crashes == 2
    assert api_a.reregistrations == 2
