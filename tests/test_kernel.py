"""The simulated kernel: IPC, send trap, filter demux and delivery."""

import pytest

from repro.filter.compile import compile_ip_protocol_filter, compile_session_filter
from repro.hw.cpu import CPU, Priority
from repro.hw.nic import NIC
from repro.hw.platforms import DECSTATION_5000_200
from repro.hw.wire import EthernetWire
from repro.kernel.ipc import Message, MessagePort, RPCPort
from repro.kernel.kernel import IPCDelivery, Kernel, QueueDelivery, SHMDelivery
from repro.mem.shm import SharedPacketRing
from repro.net import ethernet, ip, udp
from repro.net.addr import ip_aton, make_mac
from repro.sim import Simulator
from repro.sim.sync import Channel
from repro.stack.context import ExecutionContext
from repro.stack.instrument import LayerAccounting

A = ip_aton("10.0.0.1")
B = ip_aton("10.0.0.2")


def make_world(integrated=False):
    sim = Simulator()
    wire = EthernetWire(sim)
    cpu_a = CPU(sim, DECSTATION_5000_200, "a")
    cpu_b = CPU(sim, DECSTATION_5000_200, "b")
    nic_a = NIC(sim, wire, make_mac(1), name="a")
    nic_b = NIC(sim, wire, make_mac(2), name="b")
    kern_a = Kernel(sim, cpu_a, nic_a, name="ka")
    kern_b = Kernel(sim, cpu_b, nic_b, integrated_filter=integrated, name="kb")
    return sim, kern_a, kern_b, cpu_a, cpu_b


def frame_for(dport, payload=b"data"):
    dgram = udp.encapsulate(A, B, 5000, dport, payload)
    packet = ip.encapsulate(A, B, ip.PROTO_UDP, dgram, ident=1)
    return ethernet.encapsulate(make_mac(2), make_mac(1),
                                ethernet.ETHERTYPE_IP, packet)


# ----------------------------------------------------------------------
# IPC
# ----------------------------------------------------------------------

def test_rpc_roundtrip_and_exception():
    sim = Simulator()
    cpu = CPU(sim, DECSTATION_5000_200)
    ctx = ExecutionContext(sim, cpu)
    rpc = RPCPort(sim)

    def server():
        while True:
            message = yield from rpc.serve(ctx)
            if message.op == "add":
                yield from rpc.reply(ctx, message, sum(message.args))
            else:
                yield from rpc.reply(ctx, message, ValueError("bad op"))

    def client():
        result = yield from rpc.call(ctx, "add", args=(2, 3))
        assert result == 5
        with pytest.raises(ValueError, match="bad op"):
            yield from rpc.call(ctx, "nope")
        return "done"

    sim.spawn(server())
    assert sim.run_process(client()) == "done"
    assert rpc.calls == 2


def test_rpc_counts_crossings_and_copies():
    sim = Simulator()
    cpu = CPU(sim, DECSTATION_5000_200)
    ctx = ExecutionContext(sim, cpu)
    rpc = RPCPort(sim)

    def server():
        message = yield from rpc.serve(ctx)
        yield from rpc.reply(ctx, message, len(message.data))

    def client():
        return (yield from rpc.call(ctx, "eat", data=b"x" * 100))

    sim.spawn(server())
    assert sim.run_process(client()) == 100
    assert ctx.crossings.server_rpcs == 1
    assert ctx.crossings.user_kernel >= 1
    assert ctx.crossings.data_copies >= 2  # client side + server side


def test_message_port_fifo():
    sim = Simulator()
    cpu = CPU(sim, DECSTATION_5000_200)
    ctx = ExecutionContext(sim, cpu)
    port = MessagePort(sim)

    def sender():
        yield from port.send(ctx, "layer", Message("m", data=b"1"))
        yield from port.send(ctx, "layer", Message("m", data=b"2"))

    def receiver():
        first = yield from port.receive(ctx, "layer")
        second = yield from port.receive(ctx, "layer")
        return first.data + second.data

    sim.spawn(sender())
    assert sim.run_process(receiver()) == b"12"


# ----------------------------------------------------------------------
# Send trap
# ----------------------------------------------------------------------

def test_netif_send_charges_trap_and_copy_for_user_space():
    sim, kern_a, _kb, cpu_a, _cb = make_world()
    acct = LayerAccounting()
    ctx = ExecutionContext(sim, cpu_a, accounting=acct)
    frame = frame_for(7)

    def send():
        yield from kern_a.netif_send(ctx, frame, wired=False)

    sim.run_process(send())
    user_cost = acct.total("ether_output")

    acct2 = LayerAccounting()
    ctx2 = ExecutionContext(sim, cpu_a, accounting=acct2)

    def send_wired():
        yield from kern_a.netif_send(ctx2, frame, wired=True)

    sim.run_process(send_wired())
    assert user_cost > acct2.total("ether_output")
    assert ctx.crossings.user_kernel == 1
    assert ctx2.crossings.user_kernel == 0


# ----------------------------------------------------------------------
# Demux and delivery
# ----------------------------------------------------------------------

def send_frames(sim, kern_a, frames):
    def blast():
        ctx = kern_a.ctx
        for frame in frames:
            yield from kern_a.netif_send(ctx, frame, wired=True)

    sim.spawn(blast())


def test_demux_first_match_wins_and_counts():
    sim, kern_a, kern_b, _ca, _cb = make_world()
    q1 = Channel(sim)
    q2 = Channel(sim)
    kern_b.install_filter(
        compile_session_filter(ip.PROTO_UDP, B, 7777), QueueDelivery(q1),
        name="specific", front=True,
    )
    kern_b.install_filter(
        compile_ip_protocol_filter(ip.PROTO_UDP), QueueDelivery(q2),
        name="catchall",
    )
    send_frames(sim, kern_a, [frame_for(7777), frame_for(8888)])
    sim.run()
    assert len(q1) == 1
    assert len(q2) == 1
    assert kern_b.frames_demuxed == 2


def test_unmatched_frames_dropped_and_counted():
    sim, kern_a, kern_b, _ca, _cb = make_world()
    kern_b.install_filter(
        compile_session_filter(ip.PROTO_UDP, B, 1), QueueDelivery(Channel(sim))
    )
    send_frames(sim, kern_a, [frame_for(9999)])
    sim.run()
    assert kern_b.frames_dropped_no_match == 1


def test_filter_remove():
    sim, kern_a, kern_b, _ca, _cb = make_world()
    q = Channel(sim)
    handle = kern_b.install_filter(
        compile_ip_protocol_filter(ip.PROTO_UDP), QueueDelivery(q)
    )
    kern_b.remove_filter(handle)
    assert kern_b.filter_count() == 0
    send_frames(sim, kern_a, [frame_for(7)])
    sim.run()
    assert len(q) == 0
    assert kern_b.frames_dropped_no_match == 1


def test_ipc_delivery_reaches_port():
    sim, kern_a, kern_b, _ca, cpu_b = make_world()
    port = MessagePort(sim)
    kern_b.install_filter(
        compile_ip_protocol_filter(ip.PROTO_UDP), IPCDelivery(port)
    )
    send_frames(sim, kern_a, [frame_for(42)])
    ctx = ExecutionContext(sim, cpu_b)

    def receiver():
        message = yield from port.receive(ctx, "layer")
        return message.data

    frame = frame_for(42)
    got = sim.run_process(receiver())
    assert got == frame


def test_shm_delivery_batches():
    sim, kern_a, kern_b, _ca, _cb = make_world()
    ring = SharedPacketRing(sim)
    kern_b.install_filter(
        compile_ip_protocol_filter(ip.PROTO_UDP), SHMDelivery(ring)
    )
    send_frames(sim, kern_a, [frame_for(1), frame_for(2), frame_for(3)])
    sim.run()
    assert len(ring) == 3


def test_integrated_filter_attribution():
    """IPF: the per-packet copy is charged once, at device-read rates, to
    the matched session's ledger — not to a pre-demux kernel copy."""
    frames = [frame_for(7777)]

    def copyout_for(integrated):
        sim, kern_a, kern_b, _ca, _cb = make_world(integrated=integrated)
        acct = LayerAccounting()
        ring = SharedPacketRing(sim)
        kern_b.install_filter(
            compile_session_filter(ip.PROTO_UDP, B, 7777),
            SHMDelivery(ring),
            accounting=acct,
        )
        send_frames(sim, kern_a, list(frames))
        sim.run()
        assert len(ring) == 1
        return acct.total("device intr/read"), acct.total("kernel copyout")

    plain_read, plain_copy = copyout_for(False)
    ipf_read, ipf_copy = copyout_for(True)
    # Non-integrated pays the device read up front and a ring copy later;
    # integrated defers into a single device-rate copy.
    assert plain_read > ipf_read
    assert ipf_copy > plain_copy  # the one copy moved to delivery...
    assert (ipf_read + ipf_copy) < (plain_read + plain_copy)  # ...and one was saved
