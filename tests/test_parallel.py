"""The multi-process island backend: partition soundness (property
tested), grouping determinism, and bit-identity with the single-process
engine on both a cuttable WAN world and a non-cuttable star."""

import json

from hypothesis import given, settings, strategies as st

from repro.analysis import tailstudy
from repro.sim.parallel import (
    harden_cut_wires,
    pack_groups,
    partition_world,
)
from repro.world.topology import TopologySpec, build_world


# ----------------------------------------------------------------------
# Property: the island partition is a true partition with honest
# lookahead, for any seeded fattree or WAN world
# ----------------------------------------------------------------------

random_spec = st.one_of(
    st.builds(
        dict,
        kind=st.just("fattree"),
        hosts=st.integers(2, 24),
        hosts_per_edge=st.integers(1, 8),
        spines=st.integers(1, 4),
        seed=st.integers(0, 10_000),
    ),
    st.builds(
        dict,
        kind=st.just("wan"),
        hosts=st.integers(2, 24),
        sites=st.integers(1, 6),
        seed=st.integers(0, 10_000),
    ),
)


@settings(max_examples=25, deadline=None)
@given(random_spec)
def test_partition_is_sound(spec_args):
    world = build_world(TopologySpec(placement="mach25", **spec_args))
    plan = partition_world(world)

    # Every host lands in exactly one island.
    seen = {}
    for island in plan.islands:
        for h in island.hosts:
            assert h not in seen, "host %d in two islands" % h
            seen[h] = island.index
    assert sorted(seen) == list(range(len(world.hosts)))
    # Same for routers (forwarding-only islands are allowed).
    routers = [r for island in plan.islands for r in island.routers]
    assert sorted(routers) == list(range(len(world.routers)))

    by_name = {w.name: w for w in world.wires}
    island_of_host = seen
    island_of_router = {r: island.index for island in plan.islands
                       for r in island.routers}

    def wire_islands(wire):
        members = set()
        for h, host in enumerate(world.hosts):
            if host.nic._wire is wire:
                members.add(island_of_host[h])
        for r, router in enumerate(world.routers):
            for iface in router.interfaces:
                if iface.nic._wire is wire:
                    members.add(island_of_router[r])
        return members

    cut = set(plan.cut_wires)
    for wire in world.wires:
        spanned = wire_islands(wire)
        if wire.name in cut:
            # A cut wire genuinely crosses islands, and its latency
            # honours the claimed lookahead.
            assert len(spanned) == 2
            assert wire.propagation_us >= plan.lookahead_us
        else:
            # Every uncut wire is internal to one island.
            assert len(spanned) <= 1 or len(plan.islands) == 1
    if cut:
        assert plan.lookahead_us > 0
        assert plan.lookahead_us == min(
            by_name[name].propagation_us for name in cut)
    else:
        assert len(plan.islands) == 1


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000), st.integers(2, 8))
def test_group_packing_is_deterministic_and_complete(seed, nprocs):
    world = build_world(TopologySpec(
        kind="wan", hosts=18, sites=4, seed=seed, placement="mach25"))
    plan = partition_world(world)
    groups = pack_groups(plan, nprocs)
    assert groups == pack_groups(plan, nprocs)
    packed = sorted(i for group in groups for i in group)
    assert packed == list(range(len(plan.islands)))
    assert len(groups) <= min(nprocs, len(plan.islands))


def test_harden_marks_only_cut_wires():
    world = build_world(TopologySpec(
        kind="wan", hosts=8, sites=2, seed=9, placement="mach25"))
    plan = partition_world(world)
    fingerprint_before = world.fingerprint()
    harden_cut_wires(world, plan)
    cut = set(plan.cut_wires)
    assert cut  # a 2-site WAN always has a long-haul link to cut
    for wire in world.wires:
        assert wire.full_duplex == (wire.name in cut)
    # The backend switch is invisible to the world's identity.
    assert world.fingerprint() == fingerprint_before


# ----------------------------------------------------------------------
# Bit-identity: parallel vs single-process
# ----------------------------------------------------------------------

_TOPOLOGY = dict(hosts=12, seed=21, hosts_per_edge=8, spines=2,
                 sites=2, router_speedup=8.0)
_WORKLOAD = dict(proto="udp", seed=21, clients=0, fanout=2,
                 request_bytes=64, reply_bytes=200, size_dist="fixed",
                 window_us=200_000.0, drain_us=150_000.0)


def _cells(kind, parallel, forensics=None, metrics=False, **overrides):
    targs = dict(_TOPOLOGY, kind=kind)
    wargs = dict(_WORKLOAD, **overrides)
    cell = tailstudy.run_cell(targs, wargs, "mach25", 0.1,
                              parallel=parallel, forensics=forensics,
                              metrics=metrics)
    # The volatile keys strip_volatile removes from full documents.
    cell.pop("wallclock_seconds")
    backend = cell.pop("backend")
    return cell, backend


def test_wan_parallel_matches_single_process_bit_for_bit():
    single, _ = _cells("wan", 0)
    parallel, backend = _cells("wan", 2)
    assert single["completed"] > 0
    assert backend == {"mode": "parallel", "workers": 2, "fallback": None}
    assert json.dumps(single, sort_keys=True) == \
        json.dumps(parallel, sort_keys=True)


def test_wan_parallel_telemetry_matches_single_process_bit_for_bit():
    # The distributed-telemetry contract: forensics attribution and the
    # merged metrics block from two island workers are byte-identical
    # to the single-process run of the same seeded cell.
    forensics = {"sample_every": 4, "capacity": 1 << 18, "exemplars": 3}
    single, _ = _cells("wan", 0, forensics=forensics, metrics=True)
    parallel, backend = _cells("wan", 2, forensics=forensics, metrics=True)
    assert backend["mode"] == "parallel"
    assert single["forensics"]["requests_sampled"] > 0
    assert single["forensics"]["attribution"]["requests"] > 0
    assert single["metrics"]["pull"] and single["metrics"]["gauges"]
    assert json.dumps(single, sort_keys=True) == \
        json.dumps(parallel, sort_keys=True)


def test_star_falls_back_and_stays_bit_identical(capsys):
    # A 200-host star has a host on every leaf segment, so no wire
    # qualifies as a cut: --parallel must fall back to single-process
    # and produce the byte-identical document (fingerprint included).
    targs = dict(_TOPOLOGY, kind="star", hosts=200)
    wargs = dict(_WORKLOAD, clients=6,
                 window_us=120_000.0, drain_us=100_000.0)
    single = tailstudy.run_cell(targs, wargs, "mach25", 0.05)
    parallel = tailstudy.run_cell(targs, wargs, "mach25", 0.05,
                                  parallel=2)
    assert "falling back" in capsys.readouterr().err
    assert single["completed"] > 0
    assert single["world_fingerprint"] == parallel["world_fingerprint"]
    assert parallel["backend"]["mode"] == "single"
    assert "no islands to cut" in parallel["backend"]["fallback"]
    for cell in (single, parallel):
        cell.pop("wallclock_seconds")
        cell.pop("backend")
    assert json.dumps(single, sort_keys=True) == \
        json.dumps(parallel, sort_keys=True)


def test_tcp_workload_falls_back(capsys):
    cell, backend = _cells("wan", 2, proto="tcp", window_us=120_000.0,
                           drain_us=100_000.0)
    assert "falling back" in capsys.readouterr().err
    assert backend["mode"] == "single"
    assert "TCP" in backend["fallback"]
    assert cell["issued"] > 0
