"""The simulator must be bit-deterministic run to run.

The CI perf-regression gate and the fast-path work in the sim core both
lean on one invariant: two in-process runs of the same harness produce
*exactly* equal metrics — not merely close.  These tests run the two
cheapest paper collectors (Table 1 and Figure 1) twice each and compare
the result dicts with ``==``; any nondeterminism (iteration-order leaks,
id()-based ordering, stray floating-point reordering) fails loudly here
before it can show up as mystery drift in the bench gate.
"""

from repro.analysis.experiments import run_crossings, run_proxy_calls


def test_table1_proxy_calls_bit_identical():
    first = run_proxy_calls()
    second = run_proxy_calls()
    assert first == second


def test_figure1_crossings_bit_identical():
    first = run_crossings("library-shm-ipf")
    second = run_crossings("library-shm-ipf")
    assert first == second


def test_crossings_deterministic_across_placements():
    # The UX-server placement exercises the priority-lock and IPC paths
    # the charge fast path rewrote; pin its determinism separately.
    assert run_crossings("ux") == run_crossings("ux")
