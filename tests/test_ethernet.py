"""Ethernet framing."""

import pytest
from hypothesis import given, strategies as st

from repro.net import ethernet
from repro.net.addr import make_mac

DST = make_mac(1)
SRC = make_mac(2)


def test_header_roundtrip():
    header = ethernet.EthernetHeader(DST, SRC, ethernet.ETHERTYPE_IP)
    parsed = ethernet.EthernetHeader.unpack(header.pack())
    assert parsed.dst == DST
    assert parsed.src == SRC
    assert parsed.ethertype == ethernet.ETHERTYPE_IP


def test_short_frame_rejected():
    with pytest.raises(ValueError):
        ethernet.EthernetHeader.unpack(b"\x00" * 10)


def test_minimum_padding():
    frame = ethernet.encapsulate(DST, SRC, ethernet.ETHERTYPE_IP, b"hi")
    assert len(frame) == ethernet.HEADER_LEN + ethernet.MIN_PAYLOAD
    _hdr, payload = ethernet.decapsulate(frame)
    assert payload.startswith(b"hi")


def test_mtu_enforced():
    with pytest.raises(ValueError):
        ethernet.encapsulate(DST, SRC, ethernet.ETHERTYPE_IP,
                             b"x" * (ethernet.MTU + 1))


@given(st.binary(min_size=ethernet.MIN_PAYLOAD, max_size=ethernet.MTU))
def test_roundtrip(payload):
    frame = ethernet.encapsulate(DST, SRC, ethernet.ETHERTYPE_ARP, payload)
    header, out = ethernet.decapsulate(frame)
    assert out == payload
    assert header.ethertype == ethernet.ETHERTYPE_ARP
