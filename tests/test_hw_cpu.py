"""The simulated CPU: charging, priorities, accounting."""

import pytest

from repro.hw.cpu import CPU, Priority
from repro.hw.platforms import DECSTATION_5000_200
from repro.sim import Timeout


def make_cpu(sim):
    return CPU(sim, DECSTATION_5000_200)


def test_charge_advances_clock(sim):
    cpu = make_cpu(sim)

    def worker():
        yield from cpu.execute(100.0)
        return sim.now

    assert sim.run_process(worker()) == 100.0
    assert cpu.busy_time == 100.0
    assert cpu.charge_count == 1


def test_zero_cost_is_free(sim):
    cpu = make_cpu(sim)

    def worker():
        yield from cpu.execute(0.0)
        return sim.now

    assert sim.run_process(worker()) == 0.0
    assert cpu.charge_count == 0


def test_negative_cost_raises(sim):
    cpu = make_cpu(sim)

    def worker():
        yield from cpu.execute(-1.0)

    proc = sim.spawn(worker())
    sim.run()
    assert not proc.ok
    assert isinstance(proc.value, ValueError)


def test_charges_serialize(sim):
    cpu = make_cpu(sim)
    finishes = []

    def worker(name):
        yield from cpu.execute(50.0)
        finishes.append((name, sim.now))

    sim.spawn(worker("a"))
    sim.spawn(worker("b"))
    sim.run()
    assert finishes == [("a", 50.0), ("b", 100.0)]


def test_priority_wins_at_release_point(sim):
    cpu = make_cpu(sim)
    order = []

    def app():
        yield from cpu.execute(10.0, Priority.APPLICATION)
        order.append("app1")
        yield from cpu.execute(10.0, Priority.APPLICATION)
        order.append("app2")

    def interrupt_handler():
        yield Timeout(1.0)  # arrives while the app's first charge runs
        yield from cpu.execute(5.0, Priority.INTERRUPT)
        order.append("intr")

    sim.spawn(app())
    sim.spawn(interrupt_handler())
    sim.run()
    assert order == ["app1", "intr", "app2"]


def test_account_callback(sim):
    cpu = make_cpu(sim)
    charged = []

    def worker():
        yield from cpu.execute(30.0, account=charged.append)

    sim.run_process(worker())
    assert charged == [30.0]


def test_utilization(sim):
    cpu = make_cpu(sim)

    def worker():
        yield from cpu.execute(25.0)
        yield Timeout(75.0)

    sim.run_process(worker())
    assert cpu.utilization() == pytest.approx(0.25)
