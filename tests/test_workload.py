"""Open-loop workload generation: samplers, schedules, and runners."""

from random import Random

import pytest

from repro.world.topology import TopologySpec, build_world, warm_arp
from repro.world.workload import (
    HEADER_BYTES,
    WorkloadSpec,
    bounded_pareto,
    build_schedules,
    poisson_arrivals,
    run_workload,
    schedule_fingerprint,
)


# ----------------------------------------------------------------------
# Samplers
# ----------------------------------------------------------------------

def test_poisson_arrivals_are_sorted_and_bounded():
    rng = Random(1)
    times = poisson_arrivals(rng, rate_per_us=100 / 1_000_000.0,
                             window_us=1_000_000.0)
    assert times == sorted(times)
    assert all(0 <= t < 1_000_000.0 for t in times)
    # ~100 expected; a Poisson count 5 sigma out would be ~50 off.
    assert 50 <= len(times) <= 150


def test_bounded_pareto_respects_bounds_and_skew():
    rng = Random(2)
    draws = [bounded_pareto(rng, 1.3, 8, 1400) for _ in range(2000)]
    assert all(8 <= d <= 1400 for d in draws)
    # Heavy tail: the mean sits well above the median.
    draws.sort()
    median = draws[len(draws) // 2]
    mean = sum(draws) / len(draws)
    assert mean > median


# ----------------------------------------------------------------------
# Schedules: deterministic, hashable, structurally sound
# ----------------------------------------------------------------------

def _spec(**overrides):
    base = dict(proto="udp", seed=9, rate_per_client=200.0, fanout=2,
                window_us=500_000.0, drain_us=200_000.0)
    base.update(overrides)
    return WorkloadSpec(**base)


def test_schedules_are_deterministic():
    assert build_schedules(_spec(), 8) == build_schedules(_spec(), 8)
    assert (schedule_fingerprint(_spec(), 8)
            == schedule_fingerprint(_spec(), 8))
    assert (schedule_fingerprint(_spec(), 8)
            != schedule_fingerprint(_spec(seed=10), 8))


def test_schedule_fingerprint_matches_golden():
    # Pinned across interpreters: the CI version matrix re-asserts this
    # exact value on 3.10/3.11/3.12.
    assert schedule_fingerprint(_spec(), 8) == (
        "c5c129d4f502e2e3afa9d98058501ff036355005291e6af2ed6d9dae7120cda4")


def test_schedule_targets_never_include_self():
    schedules = build_schedules(_spec(fanout=3), 6)
    for client, requests in schedules.items():
        assert requests, "expected a nonempty schedule"
        for _t, _id, targets, _rq, _rp in requests:
            assert client not in targets
            assert len(set(targets)) == 3


def test_pareto_sizes_are_clamped():
    schedules = build_schedules(_spec(size_dist="pareto", max_bytes=256), 4)
    for requests in schedules.values():
        for _t, _id, _targets, _rq, reply in requests:
            assert HEADER_BYTES <= reply <= 256


def test_unknown_size_dist_rejected():
    with pytest.raises(ValueError):
        build_schedules(_spec(size_dist="uniform"), 4)


# ----------------------------------------------------------------------
# Runners on a small star world
# ----------------------------------------------------------------------

def _small_world():
    world = build_world(TopologySpec(kind="star", hosts=4, seed=3))
    warm_arp(world)
    return world


def test_udp_workload_completes_requests():
    world = _small_world()
    spec = _spec(rate_per_client=100.0, fanout=2, clients=2)
    result = run_workload(world, spec)
    assert result.issued > 0
    assert result.completed > 0
    assert result.completed + result.censored == result.issued
    assert len(result.latencies_us) == result.completed
    assert all(lat > 0 for lat in result.latencies_us)
    # Light load on a warm world: nearly everything should finish.
    assert result.completion_rate > 0.9


def test_tcp_workload_completes_requests():
    world = _small_world()
    spec = _spec(proto="tcp", rate_per_client=50.0, fanout=1, clients=2)
    result = run_workload(world, spec)
    assert result.issued > 0
    assert result.completed > 0
    assert result.completion_rate > 0.9


def test_udp_workload_is_deterministic_run_to_run():
    results = []
    for _ in range(2):
        world = _small_world()
        result = run_workload(world, _spec(rate_per_client=100.0, clients=2))
        results.append((result.issued, result.completed,
                        tuple(result.latencies_us)))
    assert results[0] == results[1]
