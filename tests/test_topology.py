"""Seeded topology generators: determinism, routing, and scale shape."""

from dataclasses import replace

import pytest

from repro.apps.protolat import protolat
from repro.core.sockets import SOCK_STREAM
from repro.net.addr import ip_aton
from repro.net.routing import RouteTable
from repro.world.topology import TOPOLOGY_KINDS, TopologySpec, build_world

BOUND = 600_000_000


# ----------------------------------------------------------------------
# RouteTable /24 fast path (behavior must match the linear scan)
# ----------------------------------------------------------------------

def test_route_lookup_prefers_the_slash24():
    table = RouteTable()
    table.add("10.0.0.0", 8, iface="en0", gateway="10.1.0.254")
    table.add("10.1.2.0", 24, iface="en0")
    route = table.lookup("10.1.2.7")
    assert route.prefixlen == 24 and route.is_direct
    # Off-subnet addresses fall through to the /8.
    assert table.lookup("10.9.9.9").prefixlen == 8


def test_route_lookup_host_route_still_wins_over_slash24():
    table = RouteTable()
    table.add("10.1.2.0", 24, iface="en0")
    table.add("10.1.2.7", 32, iface="en1")
    assert table.lookup("10.1.2.7").prefixlen == 32
    assert table.lookup("10.1.2.8").prefixlen == 24


def test_route_remove_reindexes_the_fast_path():
    table = RouteTable()
    table.add("10.1.2.0", 24, iface="en0")
    table.add("0.0.0.0", 0, iface="en0", gateway="10.1.2.254")
    assert table.remove("10.1.2.0", 24)
    assert table.lookup("10.1.2.7").prefixlen == 0


def test_route_duplicate_slash24_returns_first_added():
    table = RouteTable()
    first = table.add("10.1.2.0", 24, iface="en0")
    table.add("10.1.2.0", 24, iface="en1")
    assert table.lookup("10.1.2.9") is first


# ----------------------------------------------------------------------
# Fingerprint determinism.  The golden hashes below must be identical on
# every supported interpreter (3.10/3.11/3.12): the CI matrix runs this
# same assertion on each, which is the cross-version determinism check.
# ----------------------------------------------------------------------

GOLDEN_FINGERPRINTS = {
    "star": "85e5111cc4b9f8043fe525c6d84794b0de025aba631ba7438af5d6c26a49ce49",
    "fattree": "4a0a8024eaa23ece07925cee71cb028ae50b91a41b6e5fdafc32e04b16e235a0",
    "wan": "794931c14d38804010e895b13bb4daa77b71ffd3d3cb722632020c6dba203ad6",
}


def _small_spec(kind):
    return TopologySpec(kind=kind, hosts=6, placement="mach25", seed=42,
                        hosts_per_edge=2, spines=2, sites=3)


@pytest.mark.parametrize("kind", TOPOLOGY_KINDS)
def test_same_seed_same_fingerprint(kind):
    a = build_world(_small_spec(kind))
    b = build_world(_small_spec(kind))
    assert a.fingerprint() == b.fingerprint()


@pytest.mark.parametrize("kind", TOPOLOGY_KINDS)
def test_different_seed_different_fingerprint(kind):
    spec = _small_spec(kind)
    a = build_world(spec)
    b = build_world(replace(spec, seed=43))
    assert a.fingerprint() != b.fingerprint()


@pytest.mark.parametrize("kind", TOPOLOGY_KINDS)
def test_fingerprint_matches_golden(kind):
    world = build_world(_small_spec(kind))
    assert world.fingerprint() == GOLDEN_FINGERPRINTS[kind]


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        build_world(TopologySpec(kind="torus", hosts=2))


# ----------------------------------------------------------------------
# Worlds actually carry traffic
# ----------------------------------------------------------------------

def test_star_crosses_the_hub():
    world = build_world(TopologySpec(kind="star", hosts=3, seed=7))
    assert len(world.hosts) == 3
    assert len(world.routers) == 1
    result = protolat(world, world.placements[1], world.placements[0],
                      proto="udp", message_size=64, rounds=3)
    assert result.rounds == 3
    assert world.routers[0].forwarded > 0


def test_fattree_routes_across_edges():
    # 5 hosts over edges of 2: h000/h001 on edge0, h004 alone on edge2.
    world = build_world(TopologySpec(kind="fattree", hosts=5, seed=7,
                                     hosts_per_edge=2, spines=2))
    assert len(world.routers) == 2 + 3  # 2 spines + 3 edges
    api_a = world.new_app(0)
    api_b = world.new_app(4)
    ready = world.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7700)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, peer = yield from api_a.accept(fd)
        data = yield from api_a.recv_exactly(cfd, 5000)
        return peer, data

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (world.hosts[0].ip, 7700))
        yield from api_b.send_all(fd, b"x" * 5000)
        return "sent"

    (peer, data), _ = world.run_all([server(), client()], until=BOUND)
    assert data == b"x" * 5000
    assert peer[0] == world.hosts[4].ip
    # The path crossed an edge router and a spine in each direction.
    assert sum(r.forwarded for r in world.routers) > 0


def test_fattree_same_edge_traffic_stays_local():
    world = build_world(TopologySpec(kind="fattree", hosts=4, seed=7,
                                     hosts_per_edge=4, spines=2))
    result = protolat(world, world.placements[1], world.placements[0],
                      proto="udp", message_size=64, rounds=3)
    assert result.rounds == 3
    assert sum(r.forwarded for r in world.routers) == 0


def test_wan_propagation_shows_up_in_rtt():
    near = build_world(TopologySpec(
        kind="wan", hosts=2, sites=2, seed=7,
        wan_propagation_us=(10.0, 11.0)))
    far = build_world(TopologySpec(
        kind="wan", hosts=2, sites=2, seed=7,
        wan_propagation_us=(20_000.0, 20_001.0)))

    def ping(world):
        api = world.new_app(1)

        def prog():
            return (yield from api.ping(world.hosts[0].ip))

        return world.run_all([prog()], until=BOUND)[0]

    rtt_near, rtt_far = ping(near), ping(far)
    assert rtt_near is not None and rtt_far is not None
    # Two traversals of a ~20 ms link dominate everything else.
    assert rtt_far - rtt_near > 30_000


def test_star_world_builds_at_scale():
    world = build_world(TopologySpec(kind="star", hosts=200, seed=1))
    assert len(world.hosts) == 200
    assert len(world.routers[0].interfaces) == 200
    # Host subnets roll over cleanly past the 200-per-octet boundary.
    assert world.hosts[0].ip == ip_aton("10.1.0.1")
    assert world.hosts[199].ip == ip_aton("10.1.199.1")
