"""SO_RCVTIMEO semantics across placements."""

import pytest

from repro.core.sockets import SOCK_DGRAM, SOCK_STREAM
from repro.net.addr import ip_aton
from repro.stack.engine import SocketTimeout
from repro.world.configs import build_network

IP1 = ip_aton("10.0.0.1")
BOUND = 200_000_000


@pytest.mark.parametrize("config", ["mach25", "ux", "library-shm-ipf"])
def test_udp_recv_times_out(config):
    net, pa, _pb = build_network(config)
    api = pa.new_app()

    def prog():
        fd = yield from api.socket(SOCK_DGRAM)
        yield from api.bind(fd, 9950)
        yield from api.setsockopt(fd, "rcvtimeo", 1_000_000)
        start = net.sim.now
        with pytest.raises(SocketTimeout):
            yield from api.recvfrom(fd)
        return net.sim.now - start

    elapsed = net.run_all([prog()], until=BOUND)[0]
    assert elapsed >= 1_000_000
    assert elapsed < 2_000_000


def test_tcp_recv_times_out_then_data_still_flows():
    net, pa, pb = build_network("library-shm-ipf")
    api_a = pa.new_app()
    api_b = pb.new_app()
    ready = net.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7960)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, _ = yield from api_a.accept(fd)
        yield from api_a.setsockopt(cfd, "rcvtimeo", 500_000)
        timed_out = False
        try:
            yield from api_a.recv(cfd, 100)
        except SocketTimeout:
            timed_out = True
        # Clear the timeout; the eventual data must still arrive.
        yield from api_a.setsockopt(cfd, "rcvtimeo", None)
        data = yield from api_a.recv(cfd, 100)
        return timed_out, data

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, 7960))
        yield net.sim.timeout(2_000_000)  # longer than the timeout
        yield from api_b.send_all(fd, b"eventually")

    (timed_out, data), _c = net.run_all([server(), client()], until=BOUND)
    assert timed_out
    assert data == b"eventually"


def test_timeout_not_triggered_when_data_is_prompt():
    net, pa, pb = build_network("mach25")
    api_a = pa.new_app()
    api_b = pb.new_app()
    ready = net.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_DGRAM)
        yield from api_a.bind(fd, 9951)
        yield from api_a.setsockopt(fd, "rcvtimeo", 10_000_000)
        ready.succeed()
        data, _src = yield from api_a.recvfrom(fd)
        return data

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_DGRAM)
        yield from api_b.sendto(fd, b"prompt", (IP1, 9951))

    data, _c = net.run_all([server(), client()], until=BOUND)
    assert data == b"prompt"
