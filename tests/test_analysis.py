"""The analysis toolkit: tables, netstat, experiment orchestration."""

import pytest

from repro.analysis.netstat import format_report, host_report
from repro.analysis.tables import format_table, render_latency_table
from repro.core.sockets import SOCK_DGRAM, SOCK_STREAM
from repro.net.addr import ip_aton
from repro.world.configs import build_network

IP1 = ip_aton("10.0.0.1")


# ----------------------------------------------------------------------
# Table rendering
# ----------------------------------------------------------------------

def test_format_table_alignment():
    text = format_table(
        ["name", "value"], [["short", 1], ["a-much-longer-name", 22.5]]
    )
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    # Right-aligned numeric column.
    assert lines[2].rstrip().endswith("1.00") or lines[2].rstrip().endswith("1")
    assert "a-much-longer-name" in lines[3]


def test_format_table_title_and_none():
    text = format_table(["a"], [[None]], title="My Table")
    assert text.startswith("My Table")
    assert "NA" in text


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only one"]])


def test_render_latency_table():
    text = render_latency_table(
        {"sys1": {1: 1.5, 100: 2.0}, "sys2": {1: 3.0, 100: 4.0}},
        sizes=(1, 100),
        title="Latency",
    )
    assert "1B" in text and "100B" in text
    assert "sys1" in text and "3.00" in text


# ----------------------------------------------------------------------
# netstat
# ----------------------------------------------------------------------

def test_host_report_covers_sessions_and_filters():
    net, pa, pb = build_network("library-shm-ipf")
    api_a = pa.new_app()
    api_b = pb.new_app()
    ready = net.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7450)
        yield from api_a.listen(fd)
        ufd = yield from api_a.socket(SOCK_DGRAM)
        yield from api_a.bind(ufd, 9450)
        ready.succeed()
        cfd, _ = yield from api_a.accept(fd)
        yield from api_a.recv(cfd, 100)
        return "done"

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, 7450))
        yield from api_b.send_all(fd, b"x")

    net.run_all([server(), client()], until=120_000_000)
    report = host_report(pa)
    protos = {row["proto"] for row in report["sessions"]}
    states = {row["state"] for row in report["sessions"]}
    wheres = {row["where"] for row in report["sessions"]}
    assert protos == {"tcp", "udp"}
    assert "LISTEN" in states
    assert "ESTABLISHED" in states
    assert "os" in wheres  # the listener lives with the OS server
    assert any(w.startswith("app:") for w in wheres)  # the child migrated
    assert report["migrations_out"] >= 2  # TCP child + UDP bind
    text = format_report(report)
    assert "LISTEN" in text
    assert "Session migrations" in text


def test_host_report_kernel_placement():
    net, pa, _pb = build_network("mach25")
    api = pa.new_app()

    def prog():
        fd = yield from api.socket(SOCK_DGRAM)
        yield from api.bind(fd, 9460)

    net.run_all([prog()], until=60_000_000)
    report = host_report(pa)
    assert any(row["proto"] == "udp" for row in report["sessions"])
    assert "migrations_out" not in report  # no migration in this world
    assert format_report(report)  # renders without error


# ----------------------------------------------------------------------
# Experiment orchestration
# ----------------------------------------------------------------------

def test_search_best_rcvbuf_finds_a_knee():
    from repro.analysis.experiments import search_best_rcvbuf

    best, sweep = search_best_rcvbuf(
        "mach25", sizes_kb=(4, 16, 48), total_bytes=256 * 1024
    )
    assert best in (16, 48)
    assert sweep[4] < sweep[best]
    assert set(sweep) == {4, 16, 48}


def test_run_breakdown_layers_complete():
    from repro.analysis.experiments import run_breakdown
    from repro.stack.instrument import Layer

    breakdown = run_breakdown("mach25", "udp", 1, rounds=20)
    for layer in Layer.SEND_PATH + Layer.RECEIVE_PATH:
        assert layer in breakdown
    assert breakdown["send path total"] > 0
    assert breakdown["receive path total"] > 0
    assert breakdown["measured rtt_us"] > 0
    # In-kernel: no kernel->user copy before the protocol.
    assert breakdown[Layer.KERNEL_COPYOUT] == 0
