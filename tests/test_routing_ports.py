"""Routing table and the port namespace manager."""

import pytest

from repro.net.addr import ip_aton
from repro.net.ports import PortInUse, PortManager
from repro.net.routing import RouteTable


def test_longest_prefix_wins():
    table = RouteTable()
    table.add("10.0.0.0", 8, iface="en0", gateway="10.1.1.1")
    table.add("10.2.0.0", 16, iface="en1")
    table.add("10.2.3.0", 24, iface="en2")
    assert table.lookup("10.2.3.4").iface == "en2"
    assert table.lookup("10.2.9.9").iface == "en1"
    assert table.lookup("10.9.9.9").iface == "en0"
    assert table.lookup("192.168.1.1") is None


def test_default_route():
    table = RouteTable()
    table.add("0.0.0.0", 0, iface="ppp0", gateway="10.0.0.254")
    route = table.lookup("8.8.8.8")
    assert route.gateway == ip_aton("10.0.0.254")
    assert not route.is_direct


def test_remove_and_generation():
    table = RouteTable()
    table.add("10.0.0.0", 24, iface="en0")
    gen = table.generation
    assert table.remove("10.0.0.0", 24)
    assert table.generation > gen
    assert not table.remove("10.0.0.0", 24)
    assert table.lookup("10.0.0.5") is None


def test_route_masks_prefix():
    table = RouteTable()
    route = table.add("10.0.0.77", 24, iface="en0")
    assert route.prefix == ip_aton("10.0.0.0")


# ----------------------------------------------------------------------


def test_bind_conflicts():
    ports = PortManager("tcp")
    ports.bind(ip_aton("10.0.0.1"), 80)
    with pytest.raises(PortInUse):
        ports.bind(ip_aton("10.0.0.1"), 80)
    with pytest.raises(PortInUse):
        ports.bind(0, 80)  # wildcard conflicts with specific


def test_wildcard_blocks_specific():
    ports = PortManager("tcp")
    ports.bind(0, 80)
    with pytest.raises(PortInUse):
        ports.bind(ip_aton("10.0.0.1"), 80)


def test_two_addresses_same_port():
    ports = PortManager("tcp")
    ports.bind(ip_aton("10.0.0.1"), 80)
    ports.bind(ip_aton("10.0.0.2"), 80)
    assert ports.is_bound(80)


def test_port_range_validation():
    ports = PortManager("udp")
    with pytest.raises(ValueError):
        ports.bind(0, 0)
    with pytest.raises(ValueError):
        ports.bind(0, 70000)


def test_ephemeral_allocation_and_reuse():
    ports = PortManager("tcp")
    first = ports.bind_ephemeral(0)
    second = ports.bind_ephemeral(0)
    assert first != second
    assert PortManager.EPHEMERAL_FIRST <= first <= PortManager.EPHEMERAL_LAST
    ports.release(0, first)
    assert not ports.is_bound(first)


def test_ephemeral_exhaustion():
    ports = PortManager("tcp")
    ports.EPHEMERAL_FIRST = 1024
    ports.EPHEMERAL_LAST = 1026
    ports._next_ephemeral = 1024
    allocated = [ports.bind_ephemeral(0) for _ in range(3)]
    assert sorted(allocated) == [1024, 1025, 1026]
    with pytest.raises(PortInUse):
        ports.bind_ephemeral(0)


def test_release_unbound_raises():
    ports = PortManager("tcp")
    with pytest.raises(KeyError):
        ports.release(0, 9999)


def test_bound_count():
    ports = PortManager("udp")
    ports.bind(0, 53)
    ports.bind(ip_aton("10.0.0.1"), 54)
    assert ports.bound_count() == 2
