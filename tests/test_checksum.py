"""The Internet checksum."""

import struct

from hypothesis import given, strategies as st

from repro.net.checksum import (
    internet_checksum,
    ones_complement_add,
    pseudo_header_sum,
    verify_checksum,
)


def test_rfc1071_example():
    # RFC 1071's worked example: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2,
    # checksum 220d.
    data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
    assert internet_checksum(data) == 0x220D


def test_odd_length_padding():
    assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")


def test_empty_data():
    assert internet_checksum(b"") == 0xFFFF


@given(st.binary(min_size=0, max_size=2048))
def test_checksum_verifies(data):
    """Appending the computed checksum makes the whole buffer verify."""
    checksum = internet_checksum(data)
    if len(data) % 2:
        # The checksum must be inserted at an even offset to verify; pad.
        data = data + b"\x00"
        checksum = internet_checksum(data)
    whole = data + struct.pack("!H", checksum)
    assert verify_checksum(whole)


@given(st.binary(min_size=2, max_size=512), st.integers(0, 511),
       st.integers(1, 255))
def test_corruption_detected(data, pos, flip):
    if len(data) % 2:
        data += b"\x00"
    checksum = internet_checksum(data)
    whole = bytearray(data + struct.pack("!H", checksum))
    pos %= len(data)
    whole[pos] ^= flip
    # A single-byte flip is always caught by the Internet checksum.
    assert not verify_checksum(bytes(whole))


@given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
def test_ones_complement_add_commutes(a, b):
    assert ones_complement_add(a, b) == ones_complement_add(b, a)
    assert 0 <= ones_complement_add(a, b) <= 0xFFFF


@given(st.integers(0, 0xFFFFFFFF), st.integers(0, 0xFFFFFFFF),
       st.integers(0, 255), st.integers(0, 65535))
def test_pseudo_header_sum_fits(src, dst, proto, length):
    total = pseudo_header_sum(src, dst, proto, length)
    assert 0 <= total <= 0xFFFF


@given(st.binary(max_size=256), st.binary(max_size=256))
def test_checksum_incremental_split(a, b):
    """Checksumming a+b equals folding a's raw sum into b's computation
    when the split point is even (16-bit alignment)."""
    if len(a) % 2:
        a += b"\x00"
    from repro.net.checksum import _raw_sum

    direct = internet_checksum(a + b)
    split = internet_checksum(b, initial=_raw_sum(a))
    assert direct == split


@given(st.binary(min_size=0, max_size=2048))
def test_memoryview_and_bytearray_inputs_match_bytes(data):
    """The zero-copy paths hand the checksum memoryviews and bytearrays;
    all buffer types must agree with the bytes result, odd lengths
    included."""
    expected = internet_checksum(data)
    assert internet_checksum(memoryview(data)) == expected
    assert internet_checksum(bytearray(data)) == expected
    view = memoryview(bytes(1) + data)[1:]  # non-zero-offset view
    assert internet_checksum(view) == expected


@given(st.binary(min_size=1, max_size=1024).filter(lambda d: len(d) % 2))
def test_odd_length_equals_zero_padded(data):
    """RFC 1071 pads odd-length data with a zero byte; the single-int
    fast path must do the same implicitly."""
    assert internet_checksum(data) == internet_checksum(data + b"\x00")


def test_ffff_multiples_fold_correctly():
    # The mod-0xFFFF fast path has one trap: a nonzero word sum that is
    # an exact multiple of 0xFFFF must fold to 0xFFFF, never to 0.
    assert internet_checksum(b"\xff\xff") == 0x0000
    assert internet_checksum(b"\xff\xff" * 37) == 0x0000
    assert internet_checksum(b"\x00" * 10) == 0xFFFF
