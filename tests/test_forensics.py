"""Tail forensics: head-based sampling, critical paths, attribution
exactness, bit-passivity of selective tracing, and the forensics CLI."""

import json
from fractions import Fraction

import pytest

from repro import __main__ as repro_main
from repro.analysis import experiments, tailstudy
from repro.analysis.forensics import (
    TRANSIT,
    attribute_path,
    cell_forensics,
    collect_request_spans,
    critical_path,
    request_forensics,
)
from repro.analysis.netstat import format_report, host_report
from repro.analysis.tracing import (
    TraceRingOverflow,
    crosscheck,
    placement_ledgers,
)
from repro.apps.ttcp import ttcp
from repro.sim.engine import Simulator
from repro.trace import RequestTracer, Span, WaitSpan
from repro.trace.request import _mix
from repro.world.configs import build_network
from repro.world.topology import TopologySpec, build_world, warm_arp
from repro.world.workload import WorkloadSpec, run_workload


# ----------------------------------------------------------------------
# Sampling: deterministic, version-stable, head-based
# ----------------------------------------------------------------------

def test_mix_is_version_stable():
    # Pinned: the sampling decision must never depend on hash
    # randomization or the interpreter version.
    assert _mix(1_000_001, 7) == 585771724
    assert [r for r in range(1, 40) if _mix(r, 0) % 4 == 0] == [
        1, 9, 10, 14, 16, 22, 28, 33, 36, 39]


def test_sampling_depends_only_on_id_and_seed():
    net, _pa, _pb = build_network("mach25")
    net.tracer.enable()
    rt1 = RequestTracer(net.tracer, sample_every=8, seed=3)
    ids1 = {r for r in range(1, 2000) if rt1.sampled(r)}

    net2, _pa2, _pb2 = build_network("mach25")
    net2.tracer.enable()
    rt2 = RequestTracer(net2.tracer, sample_every=8, seed=3)
    ids2 = {r for r in range(1, 2000) if rt2.sampled(r)}
    assert ids1 == ids2
    # Roughly 1-in-8, and a different seed picks a different set.
    assert 2000 // 16 < len(ids1) < 2000 // 4
    rt3 = RequestTracer(net2.tracer, sample_every=8, seed=4)
    assert ids1 != {r for r in range(1, 2000) if rt3.sampled(r)}


def test_sample_every_one_samples_everything():
    net, _pa, _pb = build_network("mach25")
    net.tracer.enable()
    rt = RequestTracer(net.tracer, sample_every=1, seed=0)
    assert all(rt.sampled(r) for r in range(1, 100))


def test_bad_sampling_rate_rejected():
    net, _pa, _pb = build_network("mach25")
    with pytest.raises(ValueError):
        RequestTracer(net.tracer, sample_every=0)


# ----------------------------------------------------------------------
# Critical path: priorities, transit remainder, exact telescoping
# ----------------------------------------------------------------------

def _cpu(start, cost, layer="l", owner="o"):
    return Span(1, owner, layer, start, cost)


def _wait(start, cost, kind, layer="w", owner="o"):
    return WaitSpan(1, owner, layer, kind, start, cost)


def test_critical_path_prioritizes_and_fills_transit():
    # [0,2] uncovered, [2,3] service only, [3,6] loss-recovery wins over
    # the tail of the service span, [6,10] uncovered again.
    path = critical_path([_cpu(2.0, 2.0)],
                         [_wait(3.0, 3.0, "loss-recovery")], 0.0, 10.0)
    blames = [(float(s["start"]), float(s["end"]), s["cause"])
              for s in path]
    assert blames == [
        (0.0, 2.0, "transit"),
        (2.0, 3.0, "service"),
        (3.0, 6.0, "loss-recovery"),
        (6.0, 10.0, "transit"),
    ]
    assert path[0]["layer"] == TRANSIT[0]
    total = sum((s["end"] - s["start"] for s in path), Fraction(0))
    assert total == Fraction(10)


def test_critical_path_merges_adjacent_same_blame():
    path = critical_path([_cpu(0.0, 2.0), _cpu(2.0, 3.0)], [], 0.0, 5.0)
    assert len(path) == 1
    assert path[0]["cause"] == "service"
    assert (path[0]["start"], path[0]["end"]) == (Fraction(0), Fraction(5))


def test_critical_path_clips_spans_to_the_request_interval():
    # A span overhanging both ends is clipped; attribution still
    # telescopes to exactly t1 - t0.
    path = critical_path([_cpu(-5.0, 20.0)], [], 1.0, 4.0)
    totals = attribute_path(path)
    assert sum(totals.values(), Fraction(0)) == Fraction(3)
    assert list(totals) == [("l", "service")]


def test_contention_beats_queue_beats_service():
    spans = [_cpu(0.0, 6.0)]
    waits = [_wait(1.0, 4.0, "queue"), _wait(2.0, 2.0, "contention")]
    path = critical_path(spans, waits, 0.0, 6.0)
    causes = [(float(s["start"]), s["cause"]) for s in path]
    assert causes == [(0.0, "service"), (1.0, "queue"),
                      (2.0, "contention"), (4.0, "queue"),
                      (5.0, "service")]


# ----------------------------------------------------------------------
# Live worlds: exact sums, bit-passivity, engine parity
# ----------------------------------------------------------------------

_WSPEC = dict(proto="udp", seed=3, rate_per_client=100.0, fanout=2,
              clients=2, window_us=300_000.0, drain_us=200_000.0)


def _forensic_run(sample_every=2, sim=None, trace=True):
    world = build_world(TopologySpec(kind="star", hosts=4, seed=3),
                        sim=sim)
    warm_arp(world)
    rt = None
    if trace:
        world.tracer.enable()
        rt = RequestTracer(world.tracer, sample_every=sample_every, seed=3)
    result = run_workload(world, WorkloadSpec(**_WSPEC), request_tracer=rt)
    return world, rt, result


def test_every_sampled_request_sums_exactly():
    """The acceptance invariant: each request's attributed causes sum to
    its end-to-end latency in ticks, exactly."""
    world, rt, _result = _forensic_run(sample_every=2)
    completed = rt.completed_records()
    assert completed, "expected sampled completed requests"
    assert world.tracer.waits_recorded > 0
    grouped = collect_request_spans(world.tracer, rt)
    for rec in completed:
        cpu_spans, wait_spans = grouped.get(rec.req_id, ((), ()))
        assert cpu_spans, "a sampled request must retain spans"
        _path, totals, exact = request_forensics(rec, cpu_spans, wait_spans)
        assert exact
        assert float(sum(totals.values(), Fraction(0))) == rec.latency_us


def test_selective_tracing_is_bit_passive_on_the_workload():
    _w1, _rt1, traced = _forensic_run(sample_every=2, trace=True)
    _w2, _rt2, plain = _forensic_run(trace=False)
    assert (traced.issued, traced.completed, traced.censored) == (
        plain.issued, plain.completed, plain.censored)
    assert tuple(traced.latencies_us) == tuple(plain.latencies_us)


@pytest.mark.parametrize("engine", [None, Simulator],
                         ids=["scale", "base"])
def test_trace_ids_survive_either_engine(engine):
    """CalendarQueue dispatch and per-host domain batching (the scale
    engine) and the plain heap engine each run the traced workload
    byte-identically to their own untraced run, sample the same request
    ids, and keep every binding consistent."""
    def make_sim():
        return None if engine is None else engine()

    world, rt, traced = _forensic_run(sample_every=2, sim=make_sim())
    _w, _rt, plain = _forensic_run(sim=make_sim(), trace=False)
    assert tuple(traced.latencies_us) == tuple(plain.latencies_us)
    # Sampling is a pure function of (id, seed): the records hold
    # exactly the ids the head-based predicate picks, regardless of how
    # the engine dispatched the sends.
    assert rt.records
    assert all(rt.sampled(r) for r in rt.records)
    assert rt.requests_sampled == len(rt.records)
    # Every span retained for a sampled request maps back to it through
    # a trace id that request owns.
    grouped = collect_request_spans(world.tracer, rt)
    for req_id, (cpu_spans, wait_spans) in grouped.items():
        owned = set(rt.records[req_id].tids)
        assert {s.trace_id for s in cpu_spans} <= owned
        assert {w.trace_id for w in wait_spans} <= owned
    # And the whole forensic block is deterministic run to run.
    world2, rt2, _res2 = _forensic_run(sample_every=2, sim=make_sim())
    assert (json.dumps(cell_forensics(world.tracer, rt), sort_keys=True)
            == json.dumps(cell_forensics(world2.tracer, rt2),
                          sort_keys=True))


def _world_fingerprint(net, result):
    return {
        "bytes": result.bytes_moved,
        "elapsed": result.elapsed_us,
        "tput": result.throughput_kbs,
        "now": net.sim.now,
        "frames": net.wire.frames_carried,
        "wire_bytes": net.wire.bytes_carried,
        "cpu_busy": [h.cpu.busy_time for h in net.hosts],
        "charges": [h.cpu.charge_count for h in net.hosts],
    }


def test_sampled_tracing_keeps_the_ttcp_fingerprint():
    net1, a1, b1 = build_network("library-shm-ipf")
    r1 = ttcp(net1, a1, b1, total_bytes=196608)

    net2, a2, b2 = build_network("library-shm-ipf")
    net2.tracer.enable()
    RequestTracer(net2.tracer, sample_every=4, seed=9)
    r2 = ttcp(net2, a2, b2, total_bytes=196608)
    assert _world_fingerprint(net1, r1) == _world_fingerprint(net2, r2)


def test_sampled_tracing_keeps_table1_and_figure1_byte_equal(monkeypatch):
    plain = json.dumps(
        {"table1": experiments.run_proxy_calls(),
         "figure1": experiments.run_crossings("mach25")},
        sort_keys=True)

    real_build = experiments.build_network

    def tracing_build(*args, **kwargs):
        net, pa, pb = real_build(*args, **kwargs)
        net.tracer.enable()
        RequestTracer(net.tracer, sample_every=4, seed=9)
        return net, pa, pb

    monkeypatch.setattr(experiments, "build_network", tracing_build)
    traced = json.dumps(
        {"table1": experiments.run_proxy_calls(),
         "figure1": experiments.run_crossings("mach25")},
        sort_keys=True)
    assert traced == plain


# ----------------------------------------------------------------------
# Ring overflow surfacing (netstat + crosscheck warning)
# ----------------------------------------------------------------------

def test_lossy_ring_warns_and_shows_in_netstat():
    net, pa, pb = build_network("mach25")
    net.tracer.enable(capacity=16)
    ttcp(net, pb, pa, total_bytes=65536)
    assert net.tracer.spans_evicted > 0
    assert net.tracer.lossy
    with pytest.warns(TraceRingOverflow, match="lossy ring"):
        crosscheck(net.tracer, placement_ledgers(pa, pb))
    report = host_report(pa)
    assert report["tracer"]["spans_evicted"] == net.tracer.spans_evicted
    assert report["tracer"]["waits_evicted"] == net.tracer.waits_evicted
    assert "LOSSY" in format_report(report)


def test_healthy_ring_does_not_warn():
    import warnings as _warnings

    net, pa, pb = build_network("mach25")
    net.tracer.enable()
    ttcp(net, pb, pa, total_bytes=16384)
    assert net.tracer.spans_evicted == 0
    with _warnings.catch_warnings():
        _warnings.simplefilter("error", TraceRingOverflow)
        crosscheck(net.tracer, placement_ledgers(pa, pb))
    assert "LOSSY" not in format_report(host_report(pa))


def test_clear_does_not_count_as_eviction():
    net, pa, pb = build_network("mach25")
    net.tracer.enable()
    ttcp(net, pb, pa, total_bytes=16384)
    assert net.tracer.spans_recorded > 0
    net.tracer.clear()
    assert net.tracer.spans_evicted == 0
    assert not net.tracer.lossy


# ----------------------------------------------------------------------
# The tailstudy integration + CLI
# ----------------------------------------------------------------------

_FAST = [
    "--hosts", "4", "--placements", "mach25", "--loads", "0.05",
    "--window-us", "300000", "--drain-us", "200000", "--seed", "7",
]


@pytest.fixture(scope="module")
def forensic_doc(tmp_path_factory):
    out = tmp_path_factory.mktemp("forensics") / "tail.json"
    rc = tailstudy.main(_FAST + ["--forensics", "--sample-every", "2",
                                 "-o", str(out)])
    assert rc == 0
    return out


def test_tailstudy_forensics_block_shape(forensic_doc):
    doc = json.loads(forensic_doc.read_text())
    assert doc["spec"]["forensics"] == {"enabled": True, "sample_every": 2}
    for cell in doc["results"]:
        block = cell["forensics"]
        assert block["sample_every"] == 2
        assert block["requests_sampled"] > 0
        assert block["sampled_completed"] > 0
        assert block["attribution_exact"] is True
        assert not block["lossy"]
        assert block["exemplars"], "every cell ships an exemplar"
        rows = block["attribution"]["rows"]
        assert rows and rows[0]["us"] > 0
        # Attributed shares cover the whole population exactly.
        assert sum(r["us"] for r in rows) == pytest.approx(
            block["attribution"]["total_us"], abs=0.01)
        for exemplar in block["exemplars"]:
            assert exemplar["path"], "exemplars carry a critical path"
            assert exemplar["spans"]
            path_us = sum(seg["us"] for seg in exemplar["path"])
            assert path_us == pytest.approx(exemplar["latency_us"],
                                            abs=0.01)


def test_tailstudy_forensics_is_deterministic(tmp_path):
    docs = []
    for run in range(2):
        out = tmp_path / ("tail%d.json" % run)
        rc = tailstudy.main(_FAST + ["--forensics", "--sample-every", "2",
                                     "-o", str(out)])
        assert rc == 0
        docs.append(out.read_text())
    # Byte-identical apart from the wall clock: same seed, same sampled
    # ids, same attribution JSON.
    parsed = []
    for text in docs:
        doc = tailstudy.strip_volatile(json.loads(text))
        parsed.append(json.dumps(doc, sort_keys=True))
    assert parsed[0] == parsed[1]


def test_tailstudy_forensics_leaves_latencies_untouched(tmp_path):
    plain_out = tmp_path / "plain.json"
    traced_out = tmp_path / "traced.json"
    assert tailstudy.main(_FAST + ["-o", str(plain_out)]) == 0
    assert tailstudy.main(_FAST + ["--forensics", "--sample-every", "2",
                                   "-o", str(traced_out)]) == 0
    plain = json.loads(plain_out.read_text())["results"]
    traced = json.loads(traced_out.read_text())["results"]
    for p, t in zip(plain, traced):
        t.pop("forensics")
        p.pop("wallclock_seconds")
        t.pop("wallclock_seconds")
        assert p == t


def test_tailstudy_markdown_carries_counts_and_attribution(capsys):
    rc = tailstudy.main(_FAST + ["--forensics", "--sample-every", "2",
                                 "--markdown"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "n=" in out and "c=" in out
    assert "p99 attribution" in out
    assert "| layer | cause | us | share |" in out


def test_tailstudy_rejects_bad_sample_every(capsys):
    assert tailstudy.main(_FAST + ["--forensics",
                                   "--sample-every", "0"]) == 2
    assert "--sample-every" in capsys.readouterr().err


def test_forensics_cli_renders_timeline(forensic_doc, capsys, tmp_path):
    chrome = tmp_path / "exemplar.json"
    rc = repro_main.main(["forensics", str(forensic_doc),
                          "--chrome", str(chrome)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "cell: mach25 load 0.05" in out
    assert "| layer | cause | us | share |" in out
    assert "end-to-end" in out
    trace = json.loads(chrome.read_text())
    assert trace["traceEvents"]
    assert any(e["pid"] == "critical path" for e in trace["traceEvents"])
    assert all(e["ph"] == "X" for e in trace["traceEvents"])


def test_forensics_cli_summary(forensic_doc, capsys):
    rc = repro_main.main(["forensics", str(forensic_doc),
                          "--summary", "--top", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Top p99 contributors" in out
    data_rows = [l for l in out.splitlines()
                 if l.startswith("| ") and not l.startswith("| #")]
    assert 1 <= len(data_rows) <= 2


def test_forensics_cli_rejects_plain_documents(tmp_path, capsys):
    plain = tmp_path / "plain.json"
    assert tailstudy.main(_FAST + ["-o", str(plain)]) == 0
    assert repro_main.main(["forensics", str(plain)]) == 2
    assert "no forensic cells" in capsys.readouterr().err


def test_forensics_cli_rejects_unknown_cell(forensic_doc, capsys):
    rc = repro_main.main(["forensics", str(forensic_doc),
                          "--placement", "warp9"])
    assert rc == 2
    assert "no cell matches" in capsys.readouterr().err


def test_forensics_cli_rejects_missing_file(tmp_path, capsys):
    rc = repro_main.main(["forensics", str(tmp_path / "nope.json")])
    assert rc == 2
    assert "cannot read" in capsys.readouterr().err
