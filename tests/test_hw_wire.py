"""The 10 Mb/s Ethernet wire model."""

import pytest

from repro.hw.nic import NIC
from repro.hw.wire import EthernetWire, frame_time, frame_wire_bytes
from repro.net.addr import make_mac
from repro.sim import Simulator


def test_min_frame_matches_paper():
    # The paper's measured 1-byte network transit: 51 us.
    assert frame_wire_bytes(10) == 64
    assert frame_time(10) == pytest.approx(51.2)


def test_full_segment_matches_paper():
    # 1460 TCP payload + 40 IP/TCP headers + 14 ether header = 1514 frame,
    # +4 CRC on the wire: the paper's 1214 us transit.
    assert frame_time(1514) == pytest.approx(1214.4)


def test_frame_time_scales_linearly():
    assert frame_time(1000) == pytest.approx((1004) * 0.8)


def make_pair():
    sim = Simulator()
    wire = EthernetWire(sim)
    a = NIC(sim, wire, make_mac(1), name="a")
    b = NIC(sim, wire, make_mac(2), name="b")
    return sim, wire, a, b


def test_delivery_excludes_sender():
    sim, wire, a, b = make_pair()

    def send():
        yield from a.start_transmit(b"x" * 100)

    sim.spawn(send())
    sim.run()
    assert b.frames_received == 1
    assert a.frames_received == 0


def test_medium_serializes_concurrent_senders():
    sim, wire, a, b = make_pair()
    arrivals = []

    def send(nic, payload):
        yield from nic.start_transmit(payload)

    def watch(nic):
        for _ in range(1):
            frame = yield from nic.rx_ring.get()
            nic.rx_release()
            arrivals.append((sim.now, len(frame)))

    sim.spawn(send(a, b"x" * 100))
    sim.spawn(send(b, b"y" * 100))
    sim.spawn(watch(a))
    sim.spawn(watch(b))
    sim.run()
    # Both frames are 104 wire bytes = 83.2 us; the second waits.
    times = sorted(t for t, _ in arrivals)
    assert times[0] == pytest.approx(83.2)
    assert times[1] == pytest.approx(166.4)
    assert wire.frames_carried == 2


def test_double_attach_rejected():
    sim = Simulator()
    wire = EthernetWire(sim)
    nic = NIC(sim, wire, make_mac(1))
    with pytest.raises(ValueError):
        wire.attach(nic)


def test_broadcast_reaches_all():
    sim = Simulator()
    wire = EthernetWire(sim)
    nics = [NIC(sim, wire, make_mac(i), name=str(i)) for i in range(1, 5)]

    def send():
        yield from nics[0].start_transmit(b"z" * 60)

    sim.spawn(send())
    sim.run()
    assert [n.frames_received for n in nics] == [0, 1, 1, 1]
