"""The continuous-telemetry layer: registry, tcp_probe, invariants.

The two standing contracts under test:

* **Zero overhead when disabled** — a world with its registry left
  disabled runs with every observation hook at ``None`` and produces
  byte-identical results to a world that predates the metrics layer.
* **Passive when enabled** — flipping the registry on records telemetry
  but changes no simulated metric: throughput, elapsed time, frame
  counts, and CPU busy time are all bit-identical to a disabled run.
"""

import io
import json

import pytest

from repro.analysis.timeseries import (
    export_csv,
    export_jsonl,
    load_jsonl,
    percentiles,
    probe_summary,
    resample,
    summarize,
    utilization_over_window,
)
from repro.apps.ttcp import ttcp
from repro.metrics import MetricsRegistry, TimeSeries
from repro.sim.engine import Simulator
from repro.world.configs import build_network


# ----------------------------------------------------------------------
# Metric types
# ----------------------------------------------------------------------

def test_counter_and_gauge_basics():
    registry = MetricsRegistry(Simulator())
    counter = registry.counter("events")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5

    gauge = registry.gauge("depth")
    gauge.record(3)
    gauge.record(7)
    assert gauge.value == 7
    assert gauge.recorded == 2
    assert [v for _t, v in gauge.samples] == [3, 7]


def test_gauge_history_is_bounded_but_count_is_not():
    registry = MetricsRegistry(Simulator(), capacity=4)
    gauge = registry.gauge("g")
    for i in range(10):
        gauge.record(i)
    assert len(gauge.samples) == 4
    assert gauge.recorded == 10
    assert [v for _t, v in gauge.samples] == [6, 7, 8, 9]


def test_histogram_buckets_and_stats():
    registry = MetricsRegistry(Simulator())
    hist = registry.histogram("h")
    for v in (0, 1, 2, 3, 4, 1000):
        hist.observe(v)
    snap = hist.snapshot()
    assert snap["count"] == 6
    assert snap["min"] == 0 and snap["max"] == 1000
    assert snap["mean"] == pytest.approx(1010 / 6)
    # Bucket layout: 0 -> bucket 0, 1 -> 1, 2..3 -> 2, 4 -> 3, 1000 -> 10.
    assert hist.counts[0] == 1 and hist.counts[1] == 1
    assert hist.counts[2] == 2 and hist.counts[3] == 1
    assert hist.counts[10] == 1
    # Percentiles are bucket-edge approximations clamped to min/max.
    assert snap["p50"] in (1, 2, 3)
    assert snap["p99"] == 1000


def test_timeseries_columns_and_last():
    registry = MetricsRegistry(Simulator())
    series = registry.timeseries("s", ("a", "b"))
    series.append(1.0, 10, 20)
    series.append(2.0, 11, 21)
    assert series.last() == (2.0, 11, 21)
    assert series.column("b") == [(1.0, 20), (2.0, 21)]


def test_registry_create_or_get_and_kind_mismatch():
    registry = MetricsRegistry(Simulator())
    assert registry.counter("x") is registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")
    assert registry.unique_name("x") == "x#2"
    registry.counter("x#2")
    assert registry.unique_name("x") == "x#3"
    assert set(registry.names()) == {"x", "x#2"}


def test_bindings_follow_enable_disable():
    registry = MetricsRegistry(Simulator())

    class Obj:
        hook = "sentinel"

    obj = Obj()
    gauge = registry.gauge("depth")
    registry.bind(obj, "hook", gauge)
    assert obj.hook is None  # disabled: hook costs one None test
    registry.enable()
    assert obj.hook is gauge
    registry.disable()
    assert obj.hook is None

    # Binding while already enabled goes live immediately.
    registry.enable()
    other = Obj()
    registry.bind(other, "hook", gauge)
    assert other.hook is gauge


def test_sample_dedupes_by_instant_and_reads_pull_sources():
    sim = Simulator()
    registry = MetricsRegistry(sim)
    reads = []
    registry.gauge("pull", fn=lambda: reads.append(1) or len(reads))
    registry.add_pull(lambda: {"bridge.a": 42})
    registry.sample()  # disabled: no-op
    assert reads == []
    registry.enable()
    registry.sample()
    registry.sample()  # same sim instant: deduped
    assert len(reads) == 1
    assert registry.get("bridge.a").value == 42


# ----------------------------------------------------------------------
# Time-series functions
# ----------------------------------------------------------------------

def test_resample_carries_last_observation_forward():
    samples = [(0.0, 1), (2.5, 2), (7.0, 3)]
    grid = resample(samples, step=2.0, t0=0.0, t1=8.0)
    assert grid == [(0.0, 1), (2.0, 1), (4.0, 2), (6.0, 2), (8.0, 3)]
    assert resample([(5.0, 9)], step=1.0, t0=3.0, t1=4.0) == [
        (3.0, None), (4.0, None)]
    with pytest.raises(ValueError):
        resample(samples, step=0)


def test_percentiles_and_summarize():
    pcts = percentiles(list(range(1, 101)), ps=(0.5, 0.99))
    assert pcts[0.5] == 50
    assert pcts[0.99] == 99
    stats = summarize([(0, 1), (1, 3), (2, "established"), (3, 2)])
    assert stats == {"count": 3, "min": 1, "median": 2, "max": 3, "mean": 2.0}
    assert summarize([])["count"] == 0


def test_utilization_over_window():
    # Cumulative busy time: 100us busy in [0, 1000], 900us in [1000, 2000].
    samples = [(0.0, 0.0), (1000.0, 100.0), (2000.0, 1000.0)]
    assert utilization_over_window(samples, 1000.0, 2000.0) == pytest.approx(0.9)
    assert utilization_over_window(samples, 2000.0, 2000.0) == pytest.approx(0.5)
    assert utilization_over_window([], 100.0, 50.0) == 0.0


# ----------------------------------------------------------------------
# The standing invariants, on a live world
# ----------------------------------------------------------------------

TRANSFER = 196608  # enough for slow start to open up; keeps the test fast


def _world_fingerprint(net, result):
    """Every simulated metric a telemetry bug could plausibly disturb."""
    return {
        "bytes": result.bytes_moved,
        "elapsed": result.elapsed_us,
        "tput": result.throughput_kbs,
        "sender_elapsed": result.sender_elapsed_us,
        "now": net.sim.now,
        "frames": net.wire.frames_carried,
        "wire_bytes": net.wire.bytes_carried,
        "cpu_busy": [h.cpu.busy_time for h in net.hosts],
        "charges": [h.cpu.charge_count for h in net.hosts],
    }


def test_disabled_world_keeps_every_hook_none():
    net, src, dst = build_network("library-shm-ipf")
    assert net.metrics.enabled is False
    ttcp(net, src, dst, total_bytes=TRANSFER)
    for host in net.hosts:
        assert host.nic.rx_depth_gauge is None
        assert host.nic.tx_depth_gauge is None
        assert host.cpu.scheduler.depth_gauge is None
    assert net.metrics.tcp_probes == []


def test_enabled_telemetry_is_bitwise_passive():
    net1, a1, b1 = build_network("library-shm-ipf")
    r1 = ttcp(net1, a1, b1, total_bytes=TRANSFER)

    net2, a2, b2 = build_network("library-shm-ipf")
    net2.metrics.enable()
    r2 = ttcp(net2, a2, b2, total_bytes=TRANSFER)

    assert _world_fingerprint(net1, r1) == _world_fingerprint(net2, r2)
    # ... and the enabled run actually observed things.
    assert net2.metrics.tcp_probes
    assert any(p.series.recorded for p in net2.metrics.tcp_probes)
    assert len(net2.metrics) > len(net1.metrics) or any(
        isinstance(m, TimeSeries) for m in
        (net2.metrics.get(n) for n in net2.metrics.names()))


def test_probe_final_sample_matches_connection_state():
    """The acceptance invariant: for a Table-2 style TCP transfer, the
    exported tcp_probe series ends exactly at the connection's ending
    cwnd and srtt."""
    net, src, dst = build_network("library-shm-ipf")
    net.metrics.enable()
    ttcp(net, src, dst, total_bytes=TRANSFER)

    buffer = io.StringIO()
    export_jsonl(net.metrics, buffer)
    buffer.seek(0)
    by_series = load_jsonl(buffer)

    checked = 0
    for probe in net.metrics.tcp_probes:
        if not probe.series.samples:
            continue
        rows = by_series[probe.series.name]
        final = rows[-1]
        assert final["cwnd"] == probe.conn.cc.cwnd
        assert final["srtt"] == probe.conn.rtt.srtt
        assert final["ssthresh"] == probe.conn.cc.ssthresh
        checked += 1
    assert checked >= 2  # at least the ttcp sender and receiver


def test_enabled_run_populates_gauges_and_histogram():
    net, src, dst = build_network("library-shm-ipf")
    net.metrics.enable()
    ttcp(net, src, dst, total_bytes=TRANSFER)
    m = net.metrics
    snap = m.snapshot()
    # Pull gauges sampled on the slow tick: CPU busy time and wire counters.
    assert any(name.endswith(".cpu.busy_us") and value
               for name, value in snap["gauges"].items())
    assert snap["gauges"]["ether0.frames"] == net.wire.frames_carried
    # Event gauges recorded at the choke points.
    waitq = [m.get(n) for n in m.names() if n.endswith(".cpu.waitq")]
    assert any(g.recorded for g in waitq)
    # The RTT histogram saw measurement samples.
    assert m.get("tcp.rtt_ticks").count > 0
    summary = probe_summary(m)
    assert summary
    for row in summary.values():
        assert row["cwnd"]["count"] == row["samples"]


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------

def _small_registry():
    registry = MetricsRegistry(Simulator())
    registry.enable()
    series = registry.timeseries("probe", ("event", "cwnd"))
    series.append(1.0, "ack", 1460)
    series.append(2.0, "ack", 2920)
    gauge = registry.gauge("depth")
    gauge.record(5)
    return registry


def test_jsonl_roundtrip():
    registry = _small_registry()
    buffer = io.StringIO()
    assert export_jsonl(registry, buffer) == 3
    buffer.seek(0)
    loaded = load_jsonl(buffer)
    assert loaded["probe"][1]["cwnd"] == 2920
    assert loaded["probe"][1]["event"] == "ack"
    assert loaded["depth"][0]["value"] == 5


def test_csv_export_long_format():
    registry = _small_registry()
    buffer = io.StringIO()
    rows = export_csv(registry, buffer)
    lines = buffer.getvalue().strip().splitlines()
    assert lines[0] == "series,t,field,value"
    assert rows == len(lines) - 1 == 5  # 2 samples x 2 fields + 1 gauge
    assert "probe,2.0,cwnd,2920" in lines


def test_chrome_trace_merges_counter_events():
    from repro.trace.export import chrome_trace

    class FakeRecorder:
        spans = ()

    registry = _small_registry()
    doc = json.loads(chrome_trace(FakeRecorder(), metrics=registry))
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert counters
    # Numeric fields only: the string-valued "event" field is skipped.
    names = {e["name"] for e in counters}
    assert "probe.cwnd" in names
    assert "depth" in names
    assert not any("event" in n for n in names)
    assert all(e["pid"] == "telemetry" for e in counters)


# ----------------------------------------------------------------------
# Bench runner integration
# ----------------------------------------------------------------------

def test_bench_compare_ignores_metrics_block():
    from repro.analysis.bench_json import compare

    baseline = {"schema": "repro-bench/1", "figure1": {"ux": {"rpcs": 2.0}}}
    current = dict(baseline)
    current["metrics"] = {"throughput_kbs": 123.0}
    assert compare(baseline, current) == []
    # ... but a real drift still trips the gate.
    drifted = {"schema": "repro-bench/1", "figure1": {"ux": {"rpcs": 3.0}}}
    assert compare(baseline, drifted)


def test_collect_metrics_block_shape():
    from repro.analysis.bench_json import collect_metrics_block

    block = collect_metrics_block(total_bytes=131072)
    assert block["config"] == "library-shm-ipf"
    assert block["throughput_kbs"] > 0
    assert block["tcp_probes"]
    assert block["rtt_ticks"]["count"] > 0
    for row in block["tcp_probes"].values():
        assert {"samples", "cwnd", "srtt"} <= set(row)
