"""TCP support machinery: state table, timers, congestion, reassembly."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.tcp.congestion import MAXWIN, REXMT_THRESH, CongestionControl
from repro.net.tcp.reassembly import ReassemblyQueue
from repro.net.tcp.state import (
    SEND_OK,
    SYNCHRONIZED,
    TCPState,
    legal_transition,
)
from repro.net.tcp.timers import (
    BACKOFF,
    RTTEstimator,
    TCPTV_MIN,
    TCPTV_REXMTMAX,
    TCP_MAXRXTSHIFT,
)


# ----------------------------------------------------------------------
# State machine
# ----------------------------------------------------------------------

def test_legal_transitions():
    assert legal_transition(TCPState.CLOSED, TCPState.SYN_SENT)
    assert legal_transition(TCPState.SYN_SENT, TCPState.ESTABLISHED)
    assert legal_transition(TCPState.ESTABLISHED, TCPState.FIN_WAIT_1)
    assert legal_transition(TCPState.FIN_WAIT_1, TCPState.CLOSING)
    assert legal_transition(TCPState.LAST_ACK, TCPState.CLOSED)


def test_illegal_transitions():
    assert not legal_transition(TCPState.CLOSED, TCPState.ESTABLISHED)
    assert not legal_transition(TCPState.TIME_WAIT, TCPState.ESTABLISHED)
    assert not legal_transition(TCPState.FIN_WAIT_2, TCPState.FIN_WAIT_1)


def test_state_sets_consistent():
    assert TCPState.ESTABLISHED in SEND_OK
    assert TCPState.CLOSE_WAIT in SEND_OK
    assert TCPState.LISTEN not in SYNCHRONIZED
    assert SEND_OK <= SYNCHRONIZED


# ----------------------------------------------------------------------
# RTT estimation
# ----------------------------------------------------------------------

def test_rtt_first_sample_seeds():
    est = RTTEstimator()
    est.update(4)
    assert est.srtt == 4 << 3
    assert est.rto_ticks() >= TCPTV_MIN


def test_rtt_converges_to_stable_rtt():
    est = RTTEstimator()
    for _ in range(50):
        est.update(4)
    # Stable RTT of 2 seconds: RTO should be modest and bounded.
    assert TCPTV_MIN <= est.rto_ticks() <= 12


def test_rto_bounds():
    est = RTTEstimator()
    est.update(1)
    assert est.rto_ticks() >= TCPTV_MIN
    for _ in range(20):
        est.backoff()
    assert est.rto_ticks() <= TCPTV_REXMTMAX


def test_backoff_gives_up_eventually():
    est = RTTEstimator()
    drops = [est.backoff() for _ in range(TCP_MAXRXTSHIFT + 1)]
    assert drops[-1] is True
    assert not any(drops[:-1])


def test_backoff_table_monotonic():
    assert all(b2 >= b1 for b1, b2 in zip(BACKOFF, BACKOFF[1:]))


def test_measurement_resets_backoff():
    est = RTTEstimator()
    est.update(4)
    est.backoff()
    est.backoff()
    high = est.rto_ticks()
    est.update(4)
    assert est.rto_ticks() < high


@given(st.lists(st.integers(1, 100), min_size=1, max_size=100))
def test_rtt_always_positive(samples):
    est = RTTEstimator()
    for sample in samples:
        est.update(sample)
        assert est.srtt > 0
        assert est.rttvar > 0
        assert est.rto_ticks() >= TCPTV_MIN


# ----------------------------------------------------------------------
# Congestion control
# ----------------------------------------------------------------------

def test_slow_start_doubles_per_window():
    cc = CongestionControl(mss=1000)
    assert cc.cwnd == 1000
    cc.on_ack(True)
    assert cc.cwnd == 2000
    assert cc.in_slow_start()


def test_congestion_avoidance_linear():
    cc = CongestionControl(mss=1000)
    cc.ssthresh = 2000
    cc.cwnd = 4000
    before = cc.cwnd
    cc.on_ack(True)
    assert 0 < cc.cwnd - before <= 260  # ~mss^2/cwnd


def test_cwnd_capped():
    cc = CongestionControl(mss=1000)
    cc.cwnd = MAXWIN
    cc.on_ack(True)
    assert cc.cwnd == MAXWIN


def test_timeout_collapses_to_one_segment():
    cc = CongestionControl(mss=1000)
    cc.cwnd = 16000
    cc.on_timeout(flight_size=16000)
    assert cc.cwnd == 1000
    assert cc.ssthresh == 8000
    assert cc.timeouts == 1


def test_ssthresh_floor_two_segments():
    cc = CongestionControl(mss=1000)
    cc.on_timeout(flight_size=1000)
    assert cc.ssthresh == 2000


def test_fast_retransmit_on_third_dupack():
    cc = CongestionControl(mss=1000)
    cc.cwnd = 8000
    fired = [cc.on_duplicate_ack(8000) for _ in range(REXMT_THRESH + 2)]
    assert fired == [False, False, True, False, False]
    assert cc.cwnd == 1000  # Tahoe collapse
    assert cc.fast_retransmits == 1


def test_new_ack_resets_dupack_count():
    cc = CongestionControl(mss=1000)
    cc.on_duplicate_ack(4000)
    cc.on_duplicate_ack(4000)
    cc.on_ack(True)
    assert cc.dupacks == 0


def test_window_is_min_of_peer_and_cwnd():
    cc = CongestionControl(mss=1000)
    cc.cwnd = 3000
    assert cc.window(10000) == 3000
    assert cc.window(2000) == 2000


# ----------------------------------------------------------------------
# Reassembly queue
# ----------------------------------------------------------------------

def test_reass_in_order_passthrough():
    q = ReassemblyQueue()
    q.insert(100, b"abc")
    data, nxt = q.extract(100)
    assert data == b"abc"
    assert nxt == 103


def test_reass_hole_blocks():
    q = ReassemblyQueue()
    q.insert(110, b"later")
    data, nxt = q.extract(100)
    assert data == b""
    assert nxt == 100
    q.insert(100, b"0123456789")
    data, nxt = q.extract(100)
    assert data == b"0123456789later"


def test_reass_exact_duplicate_dropped():
    q = ReassemblyQueue()
    q.insert(100, b"dup")
    q.insert(100, b"dup")
    data, _ = q.extract(100)
    assert data == b"dup"


def test_reass_overlap_trimmed():
    q = ReassemblyQueue()
    q.insert(100, b"abcdef")
    q.insert(103, b"defghi")
    data, nxt = q.extract(100)
    assert data == b"abcdefghi"
    assert nxt == 109
    assert q.overlaps_trimmed >= 1


@settings(max_examples=50, deadline=None)
@given(
    data=st.binary(min_size=1, max_size=400),
    chunk=st.integers(1, 50),
    seed=st.randoms(use_true_random=False),
    base=st.integers(0, (1 << 32) - 1),
)
def test_reass_random_order_roundtrip(data, chunk, seed, base):
    """Property: any segmentation, any arrival order (with duplicates),
    extracts exactly the original stream — including across seq wrap."""
    from repro.net.tcp.seq import seq_add

    segments = [
        (seq_add(base, off), data[off : off + chunk])
        for off in range(0, len(data), chunk)
    ]
    shuffled = segments + segments[:2]  # some duplicates
    seed.shuffle(shuffled)
    q = ReassemblyQueue()
    out = bytearray()
    nxt = base
    for seg_seq, payload in shuffled:
        q.insert(seg_seq, payload)
        got, nxt = q.extract(nxt)
        out.extend(got)
    assert bytes(out) == data
    assert len(q) == 0
