"""The control-plane fault layer: stages, targeting, determinism, and
the bit-passivity contract.

Three standing guarantees:

* **Targeting is safe by default** — request/reply stages never touch
  legitimately-long operations (accept, select, recv) unless a test
  names them explicitly, and a fault-dropped request always carries a
  deadline, so a drop can delay a caller but never hang one.
* **Seeded plans are deterministic** — the same scenario under the same
  seed produces identical counters, identical byte streams, and an
  identical simulation clock, twice.
* **Disabled is free** — a world with no control-fault plan attached is
  bit-identical (CPU charges, frame counts, clock) to a world carrying
  an attached-but-empty plan: the hot paths pay one ``None`` test.
"""

import pytest

from repro.analysis.chaos import (
    CI_SCENARIOS,
    FAMILY_CONFIGS,
    all_scenarios,
    run_scenario,
)
from repro.apps.ttcp import ttcp
from repro.faults import (
    ControlFaultPlan,
    IpcDelay,
    IpcDuplicate,
    IpcLoss,
    RpcDelay,
    RpcDrop,
    RpcDuplicate,
    RpcReplyDelay,
    ServerCrashOnOp,
    ServerFlakyOp,
    ServerSlowOp,
)
from repro.faults.control import LONG_OPS
from repro.kernel.ipc import DeadlineExpired
from repro.world.configs import build_network

TRANSFER = 98304


# ----------------------------------------------------------------------
# Stage targeting
# ----------------------------------------------------------------------

def test_default_targeting_skips_long_ops():
    """Drop/duplicate/delay must never target blocking ops by default:
    dropping an ``accept`` request is indistinguishable from a quiet
    network and would turn every fault run into a hang."""
    plan = ControlFaultPlan([RpcDrop(rate=1.0)], seed=1)
    for op in LONG_OPS:
        assert plan.on_request(op) == (False, False, 0.0)
    drop, _dup, _delay = plan.on_request("proxy_close")
    assert drop


def test_explicit_ops_override_the_long_op_guard():
    plan = ControlFaultPlan([RpcDrop(rate=1.0, ops=("proxy_accept",))],
                            seed=1)
    drop, _dup, _delay = plan.on_request("proxy_accept")
    assert drop
    assert plan.on_request("proxy_close") == (False, False, 0.0)


def test_plan_deadlines_skip_long_ops():
    plan = ControlFaultPlan([RpcDelay(rate=0.5, delay_us=100.0)], seed=1)
    assert plan.deadline_for("proxy_close") == plan.default_deadline_us
    for op in LONG_OPS:
        assert plan.deadline_for(op) is None


def test_empty_plan_arms_no_deadlines():
    plan = ControlFaultPlan([], seed=1)
    assert plan.deadline_for("proxy_close") is None


def test_serve_stage_tuple_shapes():
    plan = ControlFaultPlan(
        [ServerSlowOp(rate=1.0, stall_us=500.0), ServerFlakyOp(rate=1.0)],
        seed=1)
    stall, fail, crash = plan.on_serve("proxy_close")
    assert stall == 500.0
    assert fail is not None
    assert crash is None


def test_crash_stage_fires_exactly_once():
    plan = ControlFaultPlan([ServerCrashOnOp("proxy_close", nth=2)], seed=1)
    assert plan.on_serve("proxy_close")[2] is None  # call 1: not yet
    assert plan.on_serve("proxy_close")[2] == "before"  # call 2: fires
    assert plan.on_serve("proxy_close")[2] is None  # never again
    assert plan.on_serve("proxy_connect")[2] is None  # other ops untouched


def test_ipc_stage_tuples():
    plan = ControlFaultPlan(
        [IpcLoss(rate=1.0), IpcDuplicate(rate=1.0), IpcDelay(rate=1.0,
                                                             delay_us=50.0)],
        seed=1)
    drop, dup, delay = plan.on_ipc()
    assert drop and dup and delay == 50.0
    counters = plan.counters()
    assert counters["ipc-loss"]["dropped"] == 1
    assert counters["ipc-duplicate"]["duplicated"] == 1


def test_duplicate_stage_names_dedup_in_counters():
    plan = ControlFaultPlan([RpcDrop(rate=1.0), RpcDrop(rate=1.0)], seed=1)
    names = set(plan.counters())
    assert len(names) == 2  # "rpc-drop" and "rpc-drop#2", not one bucket


# ----------------------------------------------------------------------
# A dropped request can never hang its caller
# ----------------------------------------------------------------------

def test_dropped_request_expires_instead_of_hanging():
    net, pa, _pb = build_network("library-shm-ipf")
    api = pa.new_app(name="app")
    plan = ControlFaultPlan([RpcDrop(rate=1.0, ops=("proxy_status",))],
                            seed=3, default_deadline_us=20_000.0)
    plan.attach(pa.server, libraries=[api.library])

    def attempt():
        # The raw, non-retrying call path: the drop must surface as a
        # clean DeadlineExpired after the plan's deadline, not a wedge.
        yield from api.rpc.call(api.ctx, "proxy_status",
                                args=(api.app_id,))

    before = net.sim.now
    with pytest.raises(DeadlineExpired):
        net.sim.run_process(attempt())
    assert net.sim.now - before >= 20_000.0
    assert pa.server.rpc.deadline_expiries == 1
    assert plan.counters()["rpc-drop"]["dropped"] == 1


def test_retry_layer_recovers_from_a_drop():
    """The proxy's resilient caller re-issues the dropped request (same
    request id) and the operation completes."""
    net, pa, _pb = build_network("library-shm-ipf")
    api = pa.new_app(name="app")
    plan = ControlFaultPlan(
        [RpcDrop(rate=0.5, ops=("proxy_socket",))],
        seed=7, default_deadline_us=20_000.0)
    plan.attach(pa.server, libraries=[api.library])

    def worker():
        fds = []
        for _ in range(12):
            fd = yield from api.socket(1)
            fds.append(fd)
        for fd in fds:
            yield from api.close(fd)
        return len(fds)

    made = net.sim.run_process(worker())
    assert made == 12
    dropped = plan.counters()["rpc-drop"]["dropped"]
    assert dropped > 0
    assert pa.server.rpc.deadline_expiries >= dropped
    assert api.resilient.retries >= dropped


def test_duplicated_request_executes_once():
    """A duplicated mutation is absorbed by the replay cache: the server
    holds the duplicate, answers it with the original's reply, and the
    operation's side effects happen exactly once."""
    net, pa, _pb = build_network("library-shm-ipf")
    api = pa.new_app(name="app")
    plan = ControlFaultPlan([RpcDuplicate(rate=1.0, ops=("proxy_socket",))],
                            seed=5)
    plan.attach(pa.server, libraries=[api.library])

    def worker():
        fd = yield from api.socket(1)
        yield from api.close(fd)
        return fd

    net.sim.run_process(worker())
    server = pa.server
    assert plan.counters()["rpc-duplicate"]["duplicated"] >= 1
    assert server.duplicates_held + server.replays_served >= 1
    # Exactly one session was ever created for the duplicated request.
    assert len(server._records) <= 1


# ----------------------------------------------------------------------
# Determinism and matrix shape
# ----------------------------------------------------------------------

def test_seeded_scenario_is_deterministic():
    first = run_scenario("library-shm-ipf/churn/rpc", seed=23)
    second = run_scenario("library-shm-ipf/churn/rpc", seed=23)
    assert first == second
    assert first["ok"], first["violations"]


def test_matrix_is_at_least_the_promised_size():
    ids = all_scenarios()
    assert len(ids) >= 24
    assert len(set(ids)) == len(ids)
    for scenario_id in CI_SCENARIOS:
        assert scenario_id in ids
    for family, configs in FAMILY_CONFIGS.items():
        assert configs, family


# ----------------------------------------------------------------------
# Bit-passivity: an absent or empty plan changes nothing
# ----------------------------------------------------------------------

def _world_fingerprint(net, result):
    return {
        "bytes": result.bytes_moved,
        "elapsed": result.elapsed_us,
        "tput": result.throughput_kbs,
        "now": net.sim.now,
        "frames": net.wire.frames_carried,
        "wire_bytes": net.wire.bytes_carried,
        "cpu_busy": [h.cpu.busy_time for h in net.hosts],
        "charges": [h.cpu.charge_count for h in net.hosts],
    }


def test_absent_and_empty_plans_are_bitwise_identical():
    net1, a1, b1 = build_network("library-shm-ipf")
    r1 = ttcp(net1, a1, b1, total_bytes=TRANSFER)

    net2, a2, b2 = build_network("library-shm-ipf")
    api_probe = a2.new_app(name="probe")
    plan = ControlFaultPlan([], seed=9)
    plan.attach(a2.server, libraries=[api_probe.library])
    r2 = ttcp(net2, a2, b2, total_bytes=TRANSFER)

    assert _world_fingerprint(net1, r1) == _world_fingerprint(net2, r2)
    assert plan.counters() == {}


def test_stages_with_zero_rate_never_fire():
    plan = ControlFaultPlan(
        [RpcDrop(rate=0.0), RpcDuplicate(rate=0.0), RpcDelay(rate=0.0,
                                                             delay_us=10.0),
         RpcReplyDelay(rate=0.0, delay_us=10.0)],
        seed=11)
    for _ in range(200):
        assert plan.on_request("proxy_close") == (False, False, 0.0)
        assert plan.on_reply("proxy_close") == 0.0
    assert plan.total("dropped") == 0
    assert plan.total("duplicated") == 0
    assert plan.total("delayed") == 0
