"""Session migration between the application and the OS server.

These are the paper's Section 3.2 mechanisms, tested on the library
placement specifically: sessions migrate out on connect/accept/bind,
back on fork and close; in-flight data survives; stragglers never draw
RSTs; dying applications get cleaned up.
"""

import pytest

from repro.core.sockets import SOCK_DGRAM, SOCK_STREAM
from repro.net.addr import ip_aton
from repro.net.tcp.state import TCPState
from repro.world.configs import build_network

IP1 = ip_aton("10.0.0.1")
IP2 = ip_aton("10.0.0.2")
BOUND = 200_000_000


@pytest.fixture
def world():
    return build_network("library-shm-ipf")


def test_connect_migrates_session_into_app(world):
    net, pa, pb = world
    api_a = pa.new_app()
    api_b = pb.new_app()
    ready = net.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7100)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, _ = yield from api_a.accept(fd)
        return cfd

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, 7100))
        return fd

    net.run_all([server(), client()], until=BOUND)
    # The client's session now lives in its own library stack...
    assert api_b.library.stack.tcp_session_count() == 1
    # ...and the accepting side's accepted child lives in its library.
    assert api_a.library.stack.tcp_session_count() == 1
    # The server kept only the listener.
    assert pa.server.stack.tcp_session_count() == 1  # the LISTEN socket
    assert pb.server.stack.tcp_session_count() == 0
    assert pb.server.migrations_out == 1
    assert pa.server.migrations_out == 1


def test_data_transfer_bypasses_server(world):
    """Figure 1's claim: send/receive never involve the OS server."""
    net, pa, pb = world
    api_a = pa.new_app()
    api_b = pb.new_app()
    ready = net.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7101)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, _ = yield from api_a.accept(fd)
        data = yield from api_a.recv_exactly(cfd, 10000)
        return data

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, 7101))
        rpcs_before = api_b.ctx.crossings.server_rpcs
        yield from api_b.send_all(fd, b"z" * 10000)
        return api_b.ctx.crossings.server_rpcs - rpcs_before

    data, rpc_delta = net.run_all([server(), client()], until=BOUND)
    assert len(data) == 10000
    assert rpc_delta == 0  # not one server RPC on the data path


def test_data_arriving_before_accept_migrates_with_session(world):
    """The server completes the handshake and may buffer data before the
    application accepts; that data must arrive with the migrated state."""
    net, pa, pb = world
    api_a = pa.new_app()
    api_b = pb.new_app()
    ready = net.sim.event()
    sent = net.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7102)
        yield from api_a.listen(fd)
        ready.succeed()
        yield sent  # deliberately accept late
        yield net.sim.timeout(5_000_000)
        cfd, _ = yield from api_a.accept(fd)
        data = yield from api_a.recv_exactly(cfd, 12)
        return data

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, 7102))
        yield from api_b.send_all(fd, b"early birds!")
        sent.succeed()

    data, _ = net.run_all([server(), client()], until=BOUND)
    assert data == b"early birds!"


def test_close_hands_teardown_to_server(world):
    """Clean shutdown migrates the session back; the server drives the
    FIN handshake and eventually releases the port."""
    net, pa, pb = world
    api_a = pa.new_app()
    api_b = pb.new_app()
    ready = net.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7103)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, _ = yield from api_a.accept(fd)
        data = yield from api_a.recv(cfd, 100)
        eof = yield from api_a.recv(cfd, 100)
        yield from api_a.close(cfd)
        yield from api_a.close(fd)
        return data, eof

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, 7103))
        yield from api_b.send_all(fd, b"bye")
        yield from api_b.close(fd)
        return "closed"

    (data, eof), _ = net.run_all([server(), client()], until=BOUND)
    assert data == b"bye"
    assert eof == b""
    # The client app no longer owns the session; the server does (and is
    # running it through the shutdown states).
    assert api_b.library.stack.tcp_session_count() == 0
    assert pb.server.migrations_in >= 1
    # Let the 2MSL machinery finish; everything ends CLOSED.
    net.sim.run(until=net.sim.now + 130_000_000)
    for sess in list(pb.server.stack._tcp.values()):
        assert sess.conn.state == TCPState.CLOSED


def test_udp_bind_migrates_immediately(world):
    net, pa, _pb = world
    api = pa.new_app()

    def prog():
        fd = yield from api.socket(SOCK_DGRAM)
        yield from api.bind(fd, 9400)
        return fd

    net.run_all([prog()], until=BOUND)
    assert api.library.stack.udp_session_count() == 1
    assert pa.server.migrations_out == 1


def test_fork_returns_sessions_then_routes_via_server(world):
    net, pa, pb = world
    api_a = pa.new_app()
    api_b = pb.new_app()
    ready = net.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7104)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, _ = yield from api_a.accept(fd)
        one = yield from api_a.recv_exactly(cfd, 4)
        two = yield from api_a.recv_exactly(cfd, 4)
        three = yield from api_a.recv_exactly(cfd, 4)
        return one, two, three

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, 7104))
        yield from api_b.send_all(fd, b"pre.")
        child = yield from api_b.fork()
        # After fork both descriptors are server-routed; both may write.
        yield from api_b.send_all(fd, b"par.")
        yield from child.send_all(fd, b"chi.")
        rpcs = api_b.ctx.crossings.server_rpcs
        return rpcs

    (one, two, three), rpcs = net.run_all([server(), client()], until=BOUND)
    assert (one, two, three) == (b"pre.", b"par.", b"chi.")
    assert pb.server.migrations_in == 1
    assert rpcs > 0  # post-fork data moves by RPC


def test_migration_stragglers_do_not_reset(world):
    """Segments racing the accept-time migration must not draw RSTs."""
    net, pa, pb = world
    api_a = pa.new_app()
    api_b = pb.new_app()
    ready = net.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7105)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, _ = yield from api_a.accept(fd)
        data = yield from api_a.recv_exactly(cfd, 30000)
        return data

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, 7105))
        # Blast data immediately: some segments arrive while the accept
        # migration is in progress on the peer.
        yield from api_b.send_all(fd, b"s" * 30000)
        return "ok"

    data, _ = net.run_all([server(), client()], until=BOUND)
    assert data == b"s" * 30000
    # No RST was provoked on either host's server stack.
    assert pa.server.stack.unmatched_tcp == 0
    assert pb.server.stack.unmatched_tcp == 0


def test_app_death_aborts_sessions_and_quarantines_ports(world):
    net, pa, pb = world
    api_a = pa.new_app()
    api_b = pb.new_app()
    ready = net.sim.event()
    established = net.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7106)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, _ = yield from api_a.accept(fd)
        established.succeed()
        try:
            while True:
                data = yield from api_a.recv(cfd, 1000)
                if not data:
                    return "eof"
        except Exception as exc:  # the abort RST lands here
            return type(exc).__name__

    def client_then_die():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, 7106))
        yield established
        # The process dies without closing: the OS server cleans up.
        yield from pb.server.app_terminated(api_b.library.app_id)
        return "dead"

    net.run_all([server(), client_then_die()], until=BOUND)
    assert pb.server.aborted_for_death == 1
    assert len(pb.server.quarantined_ports) == 1
    # The quarantined port cannot be rebound immediately.
    port = next(iter(pb.server.quarantined_ports))
    with pytest.raises(Exception):
        pb.server._alloc_port("tcp", port)


def test_metastate_cache_and_invalidation(world):
    net, pa, pb = world
    api_b = pb.new_app()
    api_a = pa.new_app()
    ready = net.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_DGRAM)
        yield from api_a.bind(fd, 9500)
        ready.succeed()
        for _ in range(3):
            data, src = yield from api_a.recvfrom(fd)
            yield from api_a.sendto(fd, data, src)

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_DGRAM)
        yield from api_b.connect(fd, (IP1, 9500))
        for _ in range(3):
            yield from api_b.send(fd, b"m")
            yield from api_b.recv(fd, 10)
        return api_b.library.metastate.stats()

    _s, stats = net.run_all([server(), client()], until=BOUND)
    # One ARP RPC on first use; later sends hit the application cache.
    assert stats["arp_rpcs"] == 1
    assert stats["arp_hits"] >= 2
    # Server-driven invalidation empties the cached entry.
    meta = api_b.library.metastate
    pb.host.arp.invalidate(IP1)
    assert meta.arp_cache.lookup(IP1) is None
    assert meta.invalidations >= 1


def test_proxy_table1_mapping_is_exported():
    from repro.core.proxy import PROXY_CALL_MAP

    assert PROXY_CALL_MAP["socket"] == "proxy_socket"
    assert PROXY_CALL_MAP["fork"] == "proxy_return"
    assert PROXY_CALL_MAP["send/recv (all variants)"] is None
