"""Process semantics: joins, interrupts, failures, stale wakeups."""

import pytest

from repro.sim import Interrupt, Simulator, Timeout
from repro.sim.errors import SimulationError


def test_join_returns_value(sim):
    def child():
        yield Timeout(10)
        return "child-value"

    def parent():
        proc = sim.spawn(child())
        value = yield proc
        return value

    assert sim.run_process(parent()) == "child-value"


def test_join_already_finished_process(sim):
    def child():
        yield Timeout(1)
        return 7

    def parent():
        proc = sim.spawn(child())
        yield Timeout(50)  # child long finished
        value = yield proc
        return value

    assert sim.run_process(parent()) == 7


def test_child_failure_propagates_to_joiner(sim):
    def child():
        yield Timeout(1)
        raise ValueError("inner")

    def parent():
        proc = sim.spawn(child())
        try:
            yield proc
        except ValueError as exc:
            return "caught %s" % exc
        return "not caught"

    assert sim.run_process(parent()) == "caught inner"


def test_interrupt_wakes_with_cause(sim):
    def sleeper():
        try:
            yield Timeout(1000)
        except Interrupt as intr:
            return ("interrupted", intr.cause, sim.now)
        return "slept"

    proc = sim.spawn(sleeper())

    def interrupter():
        yield Timeout(10)
        proc.interrupt("wake up")

    sim.spawn(interrupter())
    sim.run()
    assert proc.value == ("interrupted", "wake up", 10)


def test_interrupt_stale_timeout_is_ignored(sim):
    """The abandoned Timeout must not resume the process later."""
    resumes = []

    def sleeper():
        try:
            yield Timeout(100)
        except Interrupt:
            pass
        resumes.append(sim.now)
        yield Timeout(5)
        resumes.append(sim.now)

    proc = sim.spawn(sleeper())
    sim.call_later(10, proc.interrupt)
    sim.run()
    assert resumes == [10, 15]  # not resumed again at t=100


def test_interrupt_finished_process_raises(sim):
    def quick():
        return "done"
        yield  # pragma: no cover

    proc = sim.spawn(quick())
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_yielding_garbage_fails_process(sim):
    def bad():
        yield 42

    proc = sim.spawn(bad())
    sim.run()
    assert proc.triggered and not proc.ok
    assert isinstance(proc.value, SimulationError)


def test_spawn_requires_generator(sim):
    def not_a_generator():
        return 1

    with pytest.raises(TypeError):
        sim.spawn(not_a_generator)


def test_process_alive_flag(sim):
    def worker():
        yield Timeout(10)

    proc = sim.spawn(worker())
    assert proc.alive
    sim.run()
    assert not proc.alive


def test_immediate_return_process(sim):
    def instant():
        return "now"
        yield  # pragma: no cover

    assert sim.run_process(instant()) == "now"
