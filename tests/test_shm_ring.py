"""Shared-memory packet rings: batching, drops, amortization."""

import pytest

from repro.mem.shm import SharedPacketRing
from repro.sim import Simulator, Timeout


def test_slots_validation(sim):
    with pytest.raises(ValueError):
        SharedPacketRing(sim, slots=0)


def test_deposit_then_receive(sim):
    ring = SharedPacketRing(sim)
    ring.deposit(b"one")
    ring.deposit(b"two")

    def reader():
        batch = yield from ring.receive()
        return batch

    assert sim.run_process(reader()) == [b"one", b"two"]
    assert ring.wakeups == 1
    assert ring.packets_delivered == 2


def test_blocking_receive_wakes_on_deposit(sim):
    ring = SharedPacketRing(sim)

    def reader():
        batch = yield from ring.receive()
        return sim.now, batch

    def writer():
        yield Timeout(50)
        assert ring.needs_wakeup()
        ring.deposit(b"pkt")

    proc = sim.spawn(reader())
    sim.spawn(writer())
    sim.run()
    assert proc.value == (50, [b"pkt"])


def test_overrun_drops(sim):
    ring = SharedPacketRing(sim, slots=4)
    for i in range(6):
        ring.deposit(b"p%d" % i)
    assert len(ring) == 4
    assert ring.packets_dropped == 2


def test_amortization_counts_batches(sim):
    ring = SharedPacketRing(sim)

    def traffic():
        for burst in range(3):
            for _ in range(4):
                ring.deposit(b"x")
            yield Timeout(10)

    def reader():
        total = 0
        while total < 12:
            batch = yield from ring.receive()
            total += len(batch)

    sim.spawn(traffic())
    sim.spawn(reader())
    sim.run()
    assert ring.packets_delivered == 12
    assert ring.wakeups <= 4
    assert ring.amortization() >= 3.0


def test_try_receive_nonblocking(sim):
    ring = SharedPacketRing(sim)
    assert ring.try_receive() == []
    ring.deposit(b"a")
    assert ring.try_receive() == [b"a"]


def test_needs_wakeup_only_with_waiter(sim):
    ring = SharedPacketRing(sim)
    assert not ring.needs_wakeup()
