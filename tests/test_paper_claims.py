"""The paper's quantitative claims, as shape assertions.

These are the acceptance tests of the reproduction: not the absolute 1993
numbers, but who wins, by roughly what factor, and where the crossovers
fall (Tables 2 and 3, Section 4).  Transfers are scaled down (steady-state
throughput is what matters); marked slow tests use bigger runs.
"""

import pytest

from repro.analysis.experiments import run_latency_row, run_throughput
from repro.apps.protolat import protolat
from repro.world.configs import build_network

MB = 1024 * 1024


@pytest.fixture(scope="module")
def tput():
    """Throughput (KB/s) for the Table 2 DECstation configurations."""
    keys = ("mach25", "ux", "library-ipc", "library-shm", "library-shm-ipf",
            "library-newapi-shm-ipf")
    return {key: run_throughput(key, total_bytes=MB).throughput_kbs
            for key in keys}


@pytest.fixture(scope="module")
def udp1():
    """Small-packet UDP RTT (ms) for the key configurations."""
    keys = ("mach25", "ux", "library-ipc", "library-shm-ipf")
    out = {}
    for key in keys:
        out[key] = run_latency_row(key, "udp", (1,), rounds=40)[1]
    return out


def test_library_throughput_comparable_to_kernel(tput):
    """Abstract: 'TCP/IP throughput ... comparable to that of a
    high-quality in-kernel implementation'."""
    assert tput["library-shm-ipf"] >= 0.95 * tput["mach25"]


def test_library_substantially_better_than_server(tput):
    """Abstract: '... and substantially better than a server-based one'
    (paper: 1088 vs 740, a 1.47x gap)."""
    assert tput["library-shm-ipf"] >= 1.3 * tput["ux"]


def test_server_pays_for_boundary_crossings(tput):
    """Section 2: server-based protocols trail the in-kernel placement."""
    assert tput["ux"] <= 0.8 * tput["mach25"]


def test_ipc_filter_is_the_slow_library_variant(tput):
    """Section 4.1: per-packet IPC reaches only ~85% of in-kernel
    throughput; SHM recovers most of it; SHM-IPF all of it."""
    assert 0.70 * tput["mach25"] <= tput["library-ipc"] <= 0.95 * tput["mach25"]
    assert tput["library-shm"] > tput["library-ipc"]
    assert tput["library-shm-ipf"] >= tput["library-shm"]


def test_newapi_improves_throughput_slightly():
    """Section 4.2: the shared-buffer interface helps a little (~1%),
    since the eliminated copy is off the critical path for throughput.
    Measured at steady state (2 MB): short transfers are dominated by
    slow-start ramp, where ack-clocking noise swamps the effect."""
    plain = run_throughput("library-shm-ipf", total_bytes=2 * MB)
    newapi = run_throughput("library-newapi-shm-ipf", total_bytes=2 * MB)
    gain = newapi.throughput_kbs / plain.throughput_kbs
    assert 1.0 <= gain <= 1.10


def test_udp_latency_library_comparable_to_kernel(udp1):
    """Abstract: 1.23 ms vs 1.45 ms — library comparable to (paper:
    slightly better than) the kernel."""
    assert udp1["library-shm-ipf"] <= 1.10 * udp1["mach25"]


def test_udp_latency_server_twice_library(udp1):
    """Abstract: 'more than twice as fast as a server-based one'."""
    assert udp1["ux"] >= 2.0 * udp1["library-shm-ipf"]


def test_udp_latency_shm_beats_ipc(udp1):
    assert udp1["library-shm-ipf"] < udp1["library-ipc"]


def test_latency_grows_with_message_size():
    """Table 2: latency rises roughly linearly, dominated by wire+copies;
    1472-byte RTT is 4-5x the 1-byte RTT for the fast placements."""
    row = run_latency_row("library-shm-ipf", "udp", (1, 512, 1472), rounds=30)
    assert row[1] < row[512] < row[1472]
    assert 3.0 <= row[1472] / row[1] <= 7.0
    # Two full-size frames on a 10 Mb/s wire alone cost 2.43 ms.
    assert row[1472] >= 2.4


def test_newapi_helps_large_message_latency():
    """Table 3: eliminating the app/stack copy matters most at 1460-1472
    bytes, where copy costs are significant."""
    plain = run_latency_row("library-shm-ipf", "udp", (1472,), rounds=30)
    newapi = run_latency_row("library-newapi-shm-ipf", "udp", (1472,),
                             rounds=30)
    assert newapi[1472] < plain[1472]


def test_gateway_is_nic_bound():
    """Table 2's Gateway column: the 8-bit PIO Ethernet card caps every
    placement's throughput around 350-500 KB/s, kernel or library."""
    kernel = run_throughput("mach25", platform="gateway",
                            total_bytes=MB).throughput_kbs
    library = run_throughput("library-shm", platform="gateway",
                             total_bytes=MB).throughput_kbs
    assert kernel < 520
    assert library < 520
    # And the library is at least competitive with the kernel there too.
    assert library >= 0.9 * kernel


def test_gateway_server_latency_worst():
    net, pa, pb = build_network("ux", platform="gateway")
    server_lat = protolat(net, pb, pa, proto="udp", message_size=1,
                          rounds=25).mean_rtt_ms
    net2, pa2, pb2 = build_network("mach25", platform="gateway")
    kernel_lat = protolat(net2, pb2, pa2, proto="udp", message_size=1,
                          rounds=25).mean_rtt_ms
    assert server_lat > 1.7 * kernel_lat


def test_tcp_and_udp_latency_similar_when_small():
    """Table 2: for 1-byte messages TCP and UDP RTTs are within ~15% of
    each other on the same system."""
    tcp = run_latency_row("mach25", "tcp", (1,), rounds=30)[1]
    udp = run_latency_row("mach25", "udp", (1,), rounds=30)[1]
    assert abs(tcp - udp) / udp < 0.25
