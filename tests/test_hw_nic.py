"""NIC models: transmit queueing and receive-ring overrun."""

import pytest

from repro.hw.nic import ETHERLINK_3C503, LANCE, NIC
from repro.hw.wire import EthernetWire
from repro.net.addr import make_mac
from repro.sim import Simulator, Timeout


def test_mac_validation():
    sim = Simulator()
    wire = EthernetWire(sim)
    with pytest.raises(ValueError):
        NIC(sim, wire, b"\x01\x02")


def test_rx_ring_overrun_drops():
    sim = Simulator()
    wire = EthernetWire(sim)
    sender = NIC(sim, wire, make_mac(1), name="tx")
    receiver = NIC(sim, wire, make_mac(2), model=ETHERLINK_3C503, name="rx")
    # 3C503 ring holds 16 frames; nobody drains, so extras drop.
    count = 24

    def blast():
        for _ in range(count):
            yield from sender.start_transmit(b"p" * 60)

    sim.spawn(blast())
    sim.run()
    assert receiver.frames_received == 16
    assert receiver.frames_dropped == count - 16


def test_rx_release_frees_ring_slot():
    sim = Simulator()
    wire = EthernetWire(sim)
    sender = NIC(sim, wire, make_mac(1))
    receiver = NIC(sim, wire, make_mac(2), model=ETHERLINK_3C503)

    def blast():
        for _ in range(20):
            yield from sender.start_transmit(b"p" * 60)

    def drain():
        while True:
            frame = yield from receiver.rx_ring.get()
            receiver.rx_release()

    sim.spawn(blast())
    sim.spawn(drain())
    sim.run(until=1_000_000)
    assert receiver.frames_dropped == 0
    assert receiver.frames_received == 20


def test_rx_release_without_frame_raises():
    sim = Simulator()
    wire = EthernetWire(sim)
    nic = NIC(sim, wire, make_mac(1))
    with pytest.raises(RuntimeError):
        nic.rx_release()


def test_tx_ring_backpressure():
    sim = Simulator()
    wire = EthernetWire(sim)
    sender = NIC(sim, wire, make_mac(1), model=ETHERLINK_3C503)  # 8 slots
    NIC(sim, wire, make_mac(2))
    progress = []

    def blast():
        for i in range(12):
            yield from sender.start_transmit(b"q" * 1000)
            progress.append((i, sim.now))

    sim.spawn(blast())
    sim.run(until=100)
    # 8 fit in the ring plus 1 in flight; the rest must wait for the wire.
    assert len(progress) <= 10
    sim.run()
    assert len(progress) == 12
    assert sender.frames_sent == 12


def test_models_have_distinct_ring_sizes():
    assert LANCE.rx_ring_frames > ETHERLINK_3C503.rx_ring_frames
