"""TCP urgent data (MSG_OOB with SO_OOBINLINE semantics)."""

from repro.net.tcp import TCPConfig, TCPConnection
from repro.net.tcp.header import URG

from tests.test_tcp_conn import A_IP, B_IP, make_pair, pump


def test_urgent_segment_carries_urg_and_pointer():
    a, b = make_pair()
    a.send_urgent(b"!")
    outs = a.take_output()
    assert outs
    seg = outs[0]
    assert seg.flags & URG
    assert seg.urgent == 1  # points just past the single urgent byte


def test_receiver_tracks_urgent_mark():
    a, b = make_pair()
    a.send(b"normal")
    pump(a, b)
    a.send_urgent(b"URGENT")
    pump(a, b)
    assert b.urgent_valid
    # 6 normal + 6 urgent bytes buffered; the mark sits at their end.
    assert b.urgent_offset() == 12
    data = b.receive(100)
    assert data == b"normalURGENT"  # OOBINLINE: data stays in-stream


def test_urgent_offset_none_without_urgent():
    a, b = make_pair()
    a.send(b"plain")
    pump(a, b)
    assert b.urgent_offset() is None


def test_urgent_mark_advances_with_reads():
    a, b = make_pair()
    a.send_urgent(b"ab")  # two bytes, mark after the second
    pump(a, b)
    assert b.urgent_offset() == 2
    b.receive(1)
    assert b.urgent_offset() == 1
    b.receive(1)
    assert b.urgent_offset() == 0  # SIOCATMARK: at the mark


def test_later_urgent_supersedes_earlier():
    a, b = make_pair()
    a.send_urgent(b"x")
    pump(a, b)
    a.send_urgent(b"y")
    pump(a, b)
    # Mark follows the most recent urgent byte (2 buffered bytes).
    assert b.urgent_offset() == 2


def test_urgent_survives_migration():
    a, b = make_pair()
    a.send_urgent(b"oob")
    pump(a, b)
    state = b.export_state()
    b2 = TCPConnection((0, 0), config=TCPConfig())
    b2.import_state(state)
    assert b2.urgent_valid
    assert b2.urgent_offset() == 3


def test_normal_data_after_urgent_clears_flag_on_wire():
    a, b = make_pair()
    a.send_urgent(b"u")
    pump(a, b)
    a.send(b"after")
    outs = a.take_output()
    assert outs and not outs[0].flags & URG
    for seg in outs:
        from repro.net.tcp.header import TCPSegment

        b.segment_arrives(TCPSegment.unpack(A_IP, B_IP, seg.pack(A_IP, B_IP)))
    assert b.receive(100) == b"uafter"
