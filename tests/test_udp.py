"""UDP datagram encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.net import udp
from repro.net.addr import ip_aton

SRC = ip_aton("10.0.0.1")
DST = ip_aton("10.0.0.2")


def test_roundtrip():
    dgram = udp.encapsulate(SRC, DST, 1234, 80, b"hello")
    header, payload = udp.decapsulate(SRC, DST, dgram)
    assert header.src_port == 1234
    assert header.dst_port == 80
    assert payload == b"hello"


@given(st.binary(max_size=2048), st.integers(1, 65535), st.integers(1, 65535))
def test_roundtrip_property(payload, sport, dport):
    dgram = udp.encapsulate(SRC, DST, sport, dport, payload)
    header, out = udp.decapsulate(SRC, DST, dgram)
    assert out == payload
    assert header.length == len(payload) + udp.HEADER_LEN


def test_checksum_covers_pseudo_header():
    dgram = udp.encapsulate(SRC, DST, 1, 2, b"data")
    # Same bytes, wrong claimed source address: checksum must fail.
    with pytest.raises(ValueError, match="checksum"):
        udp.decapsulate(ip_aton("10.0.0.9"), DST, dgram)


@given(st.integers(0, 11), st.integers(1, 255))
def test_corruption_detected(pos, flip):
    dgram = bytearray(udp.encapsulate(SRC, DST, 7, 8, b"ping"))
    dgram[pos] ^= flip
    with pytest.raises(ValueError):
        udp.decapsulate(SRC, DST, bytes(dgram))


def test_truncated_rejected():
    dgram = udp.encapsulate(SRC, DST, 7, 8, b"full message")
    with pytest.raises(ValueError):
        udp.decapsulate(SRC, DST, dgram[:6])


def test_bad_length_field_rejected():
    dgram = bytearray(udp.encapsulate(SRC, DST, 7, 8, b"x"))
    dgram[4:6] = (3).to_bytes(2, "big")  # length < header size
    with pytest.raises(ValueError, match="length"):
        udp.decapsulate(SRC, DST, bytes(dgram), verify=False)


def test_ethernet_padding_ignored():
    dgram = udp.encapsulate(SRC, DST, 7, 8, b"short")
    padded = dgram + b"\x00" * 30
    _header, payload = udp.decapsulate(SRC, DST, padded)
    assert payload == b"short"


def test_oversized_rejected():
    with pytest.raises(ValueError):
        udp.encapsulate(SRC, DST, 1, 2, b"x" * 65536)
