"""The tail-latency study CLI: argument validation, JSON shape,
determinism, and the chaos CLI's unknown-scenario exit."""

import json

import pytest

from repro.analysis import chaos, tailstudy


# ----------------------------------------------------------------------
# Argument validation: one-line stderr message, exit code 2
# ----------------------------------------------------------------------

def test_unknown_topology_exits_2(capsys):
    assert tailstudy.main(["--topology", "torus"]) == 2
    err = capsys.readouterr().err
    assert "unknown topology" in err
    assert "Traceback" not in err
    assert len(err.strip().splitlines()) == 1


def test_unknown_placement_exits_2(capsys):
    assert tailstudy.main(["--placements", "mach25,warp9"]) == 2
    err = capsys.readouterr().err
    assert "unknown placement" in err
    assert len(err.strip().splitlines()) == 1


def test_bad_loads_exit_2(capsys):
    assert tailstudy.main(["--loads", "0.1,fast"]) == 2
    assert "--loads" in capsys.readouterr().err


def test_empty_placements_exit_2(capsys):
    assert tailstudy.main(["--placements", ","]) == 2
    assert "at least one" in capsys.readouterr().err


def test_chaos_unknown_scenario_exits_2(capsys):
    assert chaos.main(["--scenario", "bogus/never/exists"]) == 2
    err = capsys.readouterr().err
    assert "unknown scenario" in err
    assert "Traceback" not in err
    assert len(err.strip().splitlines()) == 1


# ----------------------------------------------------------------------
# Happy path: all placements, all four percentiles, one command
# ----------------------------------------------------------------------

_FAST = [
    "--hosts", "4", "--loads", "0.05",
    "--window-us", "300000", "--drain-us", "200000",
    "--seed", "7",
]


def test_sweep_reports_all_percentiles_for_all_placements(
        tmp_path, capsys):
    out = tmp_path / "tail.json"
    rc = tailstudy.main(_FAST + [
        "--placements", "mach25,ux,library-shm",
        "-o", str(out), "--markdown",
    ])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["schema"] == tailstudy.SCHEMA
    assert len(doc["results"]) == 3
    assert ({r["placement"] for r in doc["results"]}
            == {"mach25", "ux", "library-shm"})
    for cell in doc["results"]:
        assert cell["completed"] > 0
        for _p, name in tailstudy.PERCENTILES:
            assert cell["latency_us"][name] is not None
            assert cell["latency_us"][name] > 0
        # Percentiles are monotone by construction.
        lat = cell["latency_us"]
        assert lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["p999"]
    table = capsys.readouterr().out
    for placement in ("mach25", "ux", "library-shm"):
        assert placement in table
    assert "| 0.05 |" in table


def test_sweep_is_deterministic_across_runs(tmp_path):
    docs = []
    for run in range(2):
        out = tmp_path / ("tail%d.json" % run)
        rc = tailstudy.main(_FAST + ["--placements", "mach25",
                                     "-o", str(out)])
        assert rc == 0
        doc = tailstudy.strip_volatile(json.loads(out.read_text()))
        docs.append(doc)
    assert docs[0] == docs[1]


def test_rate_for_load_scales_linearly():
    args = dict(request_bytes=64, reply_bytes=200, fanout=2,
                us_per_byte=0.8)
    r1 = tailstudy.rate_for_load(0.1, args)
    r2 = tailstudy.rate_for_load(0.2, args)
    assert r1 > 0
    assert r2 == pytest.approx(2 * r1)
