"""The composable fault pipeline: stage units, wire integration, and the
Deadlock diagnostics that make chaos failures debuggable."""

import random

import pytest

from repro.analysis.netstat import fault_report, format_fault_report
from repro.core.sockets import SOCK_DGRAM
from repro.faults import (
    Blackhole,
    BernoulliLoss,
    Corrupt,
    DelayJitter,
    Duplicate,
    FaultPlan,
    GilbertElliottLoss,
    Reorder,
    RxOverflow,
    Transit,
)
from repro.faults.stages import ETHER_HEADER, flip_payload_byte
from repro.hw.platforms import DECSTATION_5000_200
from repro.hw.wire import EthernetWire
from repro.net.addr import ip_aton
from repro.sim.engine import Simulator
from repro.sim.errors import Deadlock
from repro.world.network import Network

FRAME = b"\x00" * ETHER_HEADER + b"payload-bytes"
HEADER_ONLY = b"\x00" * ETHER_HEADER


def transit(frame=FRAME):
    return Transit(frame, sender=None)


# ----------------------------------------------------------------------
# flip_payload_byte (the corruption primitive and its no-payload fix)
# ----------------------------------------------------------------------


def test_flip_payload_byte_changes_exactly_one_payload_byte():
    rng = random.Random(1)
    mutated = flip_payload_byte(FRAME, rng)
    assert mutated is not None and mutated != FRAME
    assert len(mutated) == len(FRAME)
    assert mutated[:ETHER_HEADER] == FRAME[:ETHER_HEADER]  # header untouched
    diffs = [i for i in range(len(FRAME)) if mutated[i] != FRAME[i]]
    assert len(diffs) == 1 and diffs[0] >= ETHER_HEADER


@pytest.mark.parametrize("frame", [b"", b"\x00" * 5, HEADER_ONLY])
def test_flip_payload_byte_skips_payloadless_frames(frame):
    """Regression: a 14-byte (header-only) frame used to be corrupted in
    its header, which merely broke demux instead of testing checksums."""
    assert flip_payload_byte(frame, random.Random(1)) is None


def test_legacy_flip_byte_returns_payloadless_frame_unchanged():
    wire = EthernetWire(Simulator(), corrupt_rate=0.5, rng=random.Random(2))
    assert wire._flip_byte(HEADER_ONLY) == HEADER_ONLY
    assert wire._flip_byte(FRAME) != FRAME


def test_corrupt_stage_does_not_count_payloadless_frames():
    stage = Corrupt(rate=1.0)
    [t] = stage.transit(transit(HEADER_ONLY), random.Random(3), 0.0)
    assert t.frame == HEADER_ONLY
    assert stage.counters() == {"corrupted": 0}
    [t] = stage.transit(transit(), random.Random(3), 0.0)
    assert t.frame != FRAME
    assert stage.counters() == {"corrupted": 1}


# ----------------------------------------------------------------------
# Loss models
# ----------------------------------------------------------------------


def test_bernoulli_loss_rate_and_determinism():
    def drops(seed):
        stage = BernoulliLoss(0.3)
        rng = random.Random(seed)
        return [bool(stage.transit(transit(), rng, 0.0)) for _ in range(500)]

    assert drops(7) == drops(7)  # same seed, same fate
    stage = BernoulliLoss(0.3)
    rng = random.Random(7)
    for _ in range(500):
        stage.transit(transit(), rng, 0.0)
    assert 100 < stage.dropped < 200  # ~150 expected


def test_gilbert_elliott_losses_come_in_bursts():
    stage = GilbertElliottLoss(p_enter_bad=0.05, p_exit_bad=0.25, loss_bad=1.0)
    rng = random.Random(11)
    fates = []
    for _ in range(2000):
        fates.append(not stage.transit(transit(), rng, 0.0))
    assert stage.dropped == sum(fates) > 0
    assert stage.bursts > 0
    # Mean burst length 1/p_exit_bad = 4: dropped frames must cluster far
    # beyond what independent loss at the same average rate would produce.
    runs = []
    run = 0
    for dropped in fates:
        if dropped:
            run += 1
        elif run:
            runs.append(run)
            run = 0
    assert max(runs) >= 3
    assert stage.dropped / stage.bursts > 1.5  # bursty, not singletons


def test_gilbert_elliott_good_state_is_clean_by_default():
    stage = GilbertElliottLoss(p_enter_bad=0.0, p_exit_bad=1.0)
    rng = random.Random(1)
    for _ in range(100):
        assert stage.transit(transit(), rng, 0.0)
    assert stage.counters() == {"dropped": 0, "bursts": 0}


# ----------------------------------------------------------------------
# Duplication / delay / reordering
# ----------------------------------------------------------------------


def test_duplicate_fans_out_with_gap():
    stage = Duplicate(rate=1.0, gap_us=250.0)
    out = stage.transit(transit(), random.Random(1), 0.0)
    assert len(out) == 2
    assert out[0].delay_us == 0.0 and out[1].delay_us == 250.0
    assert out[0].frame == out[1].frame
    assert stage.counters() == {"duplicated": 1}


def test_delay_jitter_accumulates_bounded_delay():
    stage = DelayJitter(base_us=100.0, jitter_us=50.0)
    rng = random.Random(5)
    for _ in range(50):
        [t] = stage.transit(transit(), rng, 0.0)
        assert 100.0 <= t.delay_us < 150.0
    assert stage.delayed == 50
    assert stage.counters()["total_delay_us"] > 5000


def test_reorder_holds_selected_frames():
    stage = Reorder(rate=1.0, hold_us=3000.0)
    [t] = stage.transit(transit(), random.Random(1), 0.0)
    assert t.delay_us == 3000.0
    assert stage.counters() == {"reordered": 1}


# ----------------------------------------------------------------------
# Blackhole windows
# ----------------------------------------------------------------------


def test_blackhole_window_drops_everything_inside_it():
    stage = Blackhole(1000.0, 2000.0)
    rng = random.Random(1)
    assert stage.transit(transit(), rng, 999.0)  # before
    assert not stage.transit(transit(), rng, 1000.0)  # inside
    assert not stage.transit(transit(), rng, 1999.0)
    assert stage.transit(transit(), rng, 2000.0)  # after
    assert stage.counters()["dropped"] == 2


def test_blackhole_tx_and_rx_directions():
    victim, other = object(), object()
    rng = random.Random(1)
    tx = Blackhole(0.0, 100.0, nics={victim}, direction="tx")
    assert not tx.transit(Transit(FRAME, sender=victim), rng, 50.0)
    assert tx.transit(Transit(FRAME, sender=other), rng, 50.0)
    rx = Blackhole(0.0, 100.0, nics={victim}, direction="rx")
    [t] = rx.transit(Transit(FRAME, sender=other), rng, 50.0)
    assert victim in t.exclude
    assert rx.counters()["shunned"] == 1


def test_blackhole_rejects_bad_direction():
    with pytest.raises(ValueError):
        Blackhole(0.0, 1.0, direction="sideways")


# ----------------------------------------------------------------------
# FaultPlan plumbing
# ----------------------------------------------------------------------


def test_plan_fans_transits_through_stages_in_order():
    plan = FaultPlan([Duplicate(rate=1.0, gap_us=10.0),
                      DelayJitter(base_us=5.0)], seed=1)
    out = plan.apply(FRAME, sender=None, now=0.0)
    assert [t.delay_us for t in out] == [5.0, 15.0]
    assert plan.frames_in == 1 and plan.frames_delivered == 2


def test_plan_counters_deduplicate_repeated_stage_names():
    plan = FaultPlan([BernoulliLoss(0.0), BernoulliLoss(0.0)])
    assert set(plan.counters()) == {"loss", "loss#1"}
    assert plan.total("dropped") == 0


def test_plan_stops_once_every_transit_is_dropped():
    witness = Corrupt(rate=1.0)
    plan = FaultPlan([BernoulliLoss(1.0), witness], seed=1)
    assert plan.apply(FRAME, sender=None, now=0.0) == []
    assert witness.corrupted == 0  # never reached
    assert plan.total("dropped") == 1


def test_wire_rejects_plan_plus_legacy_scalars():
    sim = Simulator()
    with pytest.raises(ValueError):
        EthernetWire(sim, loss_rate=0.1, rng=random.Random(1),
                     fault_plan=FaultPlan())


# ----------------------------------------------------------------------
# Wire integration (a real two-host segment)
# ----------------------------------------------------------------------


def _two_host_net(**kwargs):
    net = Network(**kwargs)
    a = net.add_host("10.0.0.1", DECSTATION_5000_200, name="alpha")
    b = net.add_host("10.0.0.2", DECSTATION_5000_200, name="beta")
    return net, a, b


def _blast(net, sender_nic, frames=10, gap_us=500.0):
    def tx():
        for i in range(frames):
            yield from sender_nic.start_transmit(
                b"\xff" * ETHER_HEADER + b"frame%02d" % i
            )
            yield net.sim.timeout(gap_us)

    net.sim.run_process(tx())
    net.sim.run(until=net.sim.now + 50_000)


def test_blackhole_partitions_one_host_then_heals():
    plan = FaultPlan([Blackhole(0.0, 3000.0, nics=None)], seed=1)
    net, a, b = _two_host_net(fault_plan=plan)
    _blast(net, a.nic, frames=10, gap_us=1000.0)
    # Frames serialized before 3000us vanished; later ones got through.
    assert 0 < b.nic.frames_received < 10
    assert plan.total("dropped") == 10 - b.nic.frames_received


def test_rx_overflow_window_forces_nic_drops():
    net, a, b = _two_host_net()
    overflow = RxOverflow(0.0, 4000.0, nics=[b.nic], limit=0)
    plan = FaultPlan([overflow], seed=1)
    net.wire.set_fault_plan(plan)
    _blast(net, a.nic, frames=8, gap_us=1000.0)
    assert b.nic.frames_dropped > 0
    assert b.nic.rx_limit_override is None  # window closed
    assert overflow.counters()["overflow_drops"] == b.nic.frames_dropped
    assert overflow.counters()["windows"] == 1
    # Frames after the window still land.
    assert b.nic.frames_received > 0


def test_legacy_scalar_shim_builds_equivalent_plan():
    net, a, b = _two_host_net(loss_rate=0.5, rng=random.Random(13))
    assert isinstance(net.wire.fault_plan, FaultPlan)
    _blast(net, a.nic, frames=20)
    assert net.wire.frames_lost > 0
    assert net.wire.frames_lost + b.nic.frames_received == 20


# ----------------------------------------------------------------------
# netstat surfacing
# ----------------------------------------------------------------------


def test_fault_report_surfaces_stage_counters():
    plan = FaultPlan([GilbertElliottLoss(0.2, 0.3), Corrupt(0.2)], seed=3)
    net, a, b = _two_host_net(fault_plan=plan)
    _blast(net, a.nic, frames=20)
    report = fault_report(net.wire)
    assert report["wire"] == "ether0"
    assert report["frames_carried"] == 20
    assert report["frames_in"] == 20
    assert set(report["stages"]) == {"gilbert-elliott", "corrupt"}
    text = format_fault_report(report)
    assert "gilbert-elliott" in text and "pipeline" in text


def test_fault_report_without_a_plan():
    net, a, b = _two_host_net()
    report = fault_report(net.wire)
    assert "frames_in" not in report
    assert "lost" in format_fault_report(report)


# ----------------------------------------------------------------------
# Deadlock diagnostics (what a wedged chaos run prints)
# ----------------------------------------------------------------------


def test_deadlock_reports_each_blocked_process_and_its_primitive():
    sim = Simulator()
    gate = sim.event("gate")

    def stuck():
        yield gate

    sim.spawn(stuck(), name="consumer-1")
    sim.spawn(stuck(), name="consumer-2")
    with pytest.raises(Deadlock) as info:
        sim.run(detect_deadlock=True)
    text = str(info.value)
    assert "consumer-1" in text and "consumer-2" in text
    assert "gate" in text
    assert info.value.blocked[0][0] == "consumer-1"


def test_deadlock_from_run_process_names_the_waited_event():
    sim = Simulator()

    def waits_forever():
        yield sim.event("never")

    with pytest.raises(Deadlock) as info:
        sim.run_process(waits_forever(), name="victim")
    assert "victim" in str(info.value)
    assert any("never" in target for _name, target in info.value.blocked)
