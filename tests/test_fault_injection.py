"""End-to-end resilience: TCP survives a lossy, corrupting wire.

Fault injection exercises the full recovery machinery — retransmission
timers, fast retransmit, checksum rejection, reassembly — through each
complete placement, not just the TCP unit harness.
"""

import random

import pytest

from repro.core.sockets import SOCK_DGRAM, SOCK_STREAM
from repro.net.addr import ip_aton
from repro.world.configs import build_network

IP1 = ip_aton("10.0.0.1")
BOUND = 1_200_000_000  # loss recovery needs timer time


def run_transfer(net, pa, pb, nbytes=60_000, port=7300):
    ready = net.sim.event()
    api_a = pa.new_app()
    api_b = pb.new_app()
    payload = bytes(random.Random(3).randbytes(nbytes))

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, port)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, _ = yield from api_a.accept(fd)
        data = yield from api_a.recv_exactly(cfd, nbytes)
        return data

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, port))
        yield from api_b.send_all(fd, payload)
        return "sent"

    data, _ = net.run_all([server(), client()], until=BOUND)
    return data == payload


@pytest.mark.parametrize("config", ["mach25", "library-shm-ipf", "ux"])
def test_tcp_survives_packet_loss(config):
    net, pa, pb = build_network(config, loss_rate=0.05,
                                rng=random.Random(17))
    assert run_transfer(net, pa, pb)
    assert net.wire.frames_lost > 0  # faults actually happened


def test_tcp_survives_corruption():
    """Corrupted frames must be rejected by checksums and retransmitted;
    the delivered stream stays byte-exact."""
    net, pa, pb = build_network("library-shm-ipf", corrupt_rate=0.05,
                                rng=random.Random(23))
    assert run_transfer(net, pa, pb)
    assert net.wire.frames_corrupted > 0


def test_tcp_survives_heavy_loss_small_transfer():
    net, pa, pb = build_network("mach25", loss_rate=0.25,
                                rng=random.Random(5))
    assert run_transfer(net, pa, pb, nbytes=8_000, port=7301)


def test_handshake_through_loss():
    """Even SYN/SYN-ACK losses converge via retransmission."""
    rng = random.Random(41)
    net, pa, pb = build_network("library-shm-ipf", loss_rate=0.3, rng=rng)
    ready = net.sim.event()
    api_a = pa.new_app()
    api_b = pb.new_app()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7302)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, _ = yield from api_a.accept(fd)
        return "accepted"

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, 7302))
        return "connected"

    res = net.run_all([server(), client()], until=BOUND)
    assert res == ["accepted", "connected"]


def test_udp_is_lossy_by_design():
    """UDP makes no recovery promises: datagrams dropped on the wire are
    simply gone, and the application sees fewer of them."""
    rng = random.Random(9)
    net, pa, pb = build_network("mach25", loss_rate=0.4, rng=rng)
    ready = net.sim.event()
    api_a = pa.new_app()
    api_b = pb.new_app()
    total = 40

    def receiver():
        fd = yield from api_a.socket(SOCK_DGRAM)
        yield from api_a.bind(fd, 7303)
        ready.succeed()
        got = 0
        deadline = net.sim.now + 600_000_000
        while net.sim.now < deadline:
            r, _w = yield from api_a.select([fd], timeout=5_000_000)
            if not r:
                if got:
                    break  # the burst ended
                continue  # ARP may still be retrying through the loss
            yield from api_a.recvfrom(fd)
            got += 1
        return got

    def sender():
        yield ready
        fd = yield from api_b.socket(SOCK_DGRAM)
        for i in range(total):
            yield from api_b.sendto(fd, b"d%03d" % i, (IP1, 7303))
            yield net.sim.timeout(10_000)

    got, _s = net.run_all([receiver(), sender()], until=BOUND)
    assert 0 < got < total  # some arrived, some were lost, none recovered
