"""TCP sequence arithmetic near the 2**32 wrap."""

from hypothesis import given, strategies as st

from repro.net.tcp import seq

seqs = st.integers(0, (1 << 32) - 1)
small = st.integers(0, 1 << 20)


def test_wraparound_comparisons():
    near_top = (1 << 32) - 10
    assert seq.seq_lt(near_top, 5)  # 5 is "after" the wrap
    assert seq.seq_gt(5, near_top)
    assert seq.seq_add(near_top, 20) == 10


@given(seqs, small)
def test_lt_after_add(base, delta):
    if delta:
        assert seq.seq_lt(base, seq.seq_add(base, delta))
        assert seq.seq_gt(seq.seq_add(base, delta), base)


@given(seqs)
def test_reflexive(base):
    assert seq.seq_le(base, base)
    assert seq.seq_ge(base, base)
    assert not seq.seq_lt(base, base)
    assert seq.seq_diff(base, base) == 0


@given(seqs, small)
def test_diff_inverts_add(base, delta):
    assert seq.seq_diff(seq.seq_add(base, delta), base) == delta
    assert seq.seq_diff(base, seq.seq_add(base, delta)) == -delta


@given(seqs, small, small)
def test_between(base, a, b):
    low = seq.seq_add(base, min(a, b))
    high = seq.seq_add(base, max(a, b) + 1)
    mid = seq.seq_add(base, (min(a, b) + max(a, b)) // 2)
    assert seq.seq_between(low, mid, high)


@given(seqs, seqs)
def test_max_min_consistent(a, b):
    hi = seq.seq_max(a, b)
    lo = seq.seq_min(a, b)
    assert {hi, lo} == {a, b}
    assert seq.seq_ge(hi, lo)
