"""Proxy corner cases: reconnects, mixed select, NEWAPI placements."""

import pytest

from repro.core.sockets import SOCK_DGRAM, SOCK_STREAM, SocketError
from repro.net.addr import ip_aton
from repro.world.configs import build_network

IP1 = ip_aton("10.0.0.1")
IP2 = ip_aton("10.0.0.2")
BOUND = 300_000_000


def test_udp_reconnect_narrows_then_renarrows():
    """connect() on an already-bound UDP socket re-migrates with a
    narrower filter; a second connect() repeats the dance."""
    net, pa, pb = build_network("library-shm-ipf")
    api_a1 = pa.new_app()
    api_a2 = pa.new_app()
    api_b = pb.new_app()
    ready = net.sim.event()

    def peer(api, port):
        fd = yield from api.socket(SOCK_DGRAM)
        yield from api.bind(fd, port)
        data, src = yield from api.recvfrom(fd)
        yield from api.sendto(fd, data + b"/%d" % port, src)

    def client():
        fd = yield from api_b.socket(SOCK_DGRAM)
        yield from api_b.bind(fd, 9870)
        yield from api_b.connect(fd, (IP1, 9871))
        yield from api_b.send(fd, b"one")
        first = yield from api_b.recv(fd, 100)
        yield from api_b.connect(fd, (IP1, 9872))
        yield from api_b.send(fd, b"two")
        second = yield from api_b.recv(fd, 100)
        return first, second

    results = net.run_all(
        [peer(api_a1, 9871), peer(api_a2, 9872), client()], until=BOUND
    )
    assert results[2] == (b"one/9871", b"two/9872")


def test_sendto_on_connected_udp_to_third_party():
    """A connected library UDP socket's filter pins the remote; per BSD
    the socket can still *send* anywhere (our proxy primes the route)."""
    net, pa, pb = build_network("library-shm-ipf")
    api_a = pa.new_app()
    api_b = pb.new_app()
    ready = net.sim.event()

    def listener():
        fd = yield from api_a.socket(SOCK_DGRAM)
        yield from api_a.bind(fd, 9880)
        ready.succeed()
        data, src = yield from api_a.recvfrom(fd)
        return data, src

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_DGRAM)
        yield from api_b.connect(fd, (IP1, 9881))  # someone else
        yield from api_b.sendto(fd, b"side-channel", (IP1, 9880))

    (data, src), _c = net.run_all([listener(), client()], until=BOUND)
    assert data == b"side-channel"
    assert src[0] == IP2


def test_select_returns_server_side_readiness():
    """A select over a server-managed descriptor (post-fork) wakes when
    data arrives at the *server*."""
    net, pa, pb = build_network("library-shm-ipf")
    api_a = pa.new_app()
    api_b = pb.new_app()
    ready = net.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7950)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, _ = yield from api_a.accept(fd)
        yield net.sim.timeout(5_000_000)
        yield from api_a.send_all(cfd, b"late data")

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, 7950))
        yield from api_b.fork()  # fd becomes server-managed
        r, _w = yield from api_b.select([fd], timeout=60_000_000)
        assert r == [fd]
        data = yield from api_b.recv(fd, 100)
        return data

    _s, data = net.run_all([server(), client()], until=BOUND)
    assert data == b"late data"


def test_select_mixed_local_wins_via_proxy_status():
    """select over one server-managed and one app-managed descriptor,
    where the *local* one becomes ready while blocked in the server —
    the proxy_status upcall must unblock it (Section 3.2)."""
    net, pa, pb = build_network("library-shm-ipf")
    api_a = pa.new_app()
    api_b = pb.new_app()
    ready = net.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7951)
        yield from api_a.listen(fd)
        ufd = yield from api_a.socket(SOCK_DGRAM)
        yield from api_a.bind(ufd, 9890)
        ready.succeed()
        cfd, _ = yield from api_a.accept(fd)
        yield from api_a.fork()  # cfd now server-managed
        r, _w = yield from api_a.select([cfd, ufd], timeout=60_000_000)
        assert r, "select timed out"
        if r[0] == ufd:
            data, _src = yield from api_a.recvfrom(ufd)
        else:
            data = yield from api_a.recv(cfd, 100)
        return r[0] == ufd, data

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, 7951))
        yield net.sim.timeout(3_000_000)
        ufd = yield from api_b.socket(SOCK_DGRAM)
        yield from api_b.sendto(ufd, b"local datagram", (IP1, 9890))
        return "sent"

    (hit_local, data), _c = net.run_all([server(), client()], until=BOUND)
    assert hit_local
    assert data == b"local datagram"
    assert pa.server.rpc.calls > 0


@pytest.mark.parametrize("config", ["library-newapi-ipc",
                                    "library-newapi-shm",
                                    "library-newapi-shm-ipf"])
def test_newapi_placements_full_exchange(config):
    """Every NEWAPI variant carries a correct bidirectional exchange."""
    net, pa, pb = build_network(config)
    api_a = pa.new_app()
    api_b = pb.new_app()
    ready = net.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7952)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, _ = yield from api_a.accept(fd)
        data = yield from api_a.recv_exactly(cfd, 5000)
        yield from api_a.send_all(cfd, data[::-1])

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, 7952))
        payload = bytes(range(200)) * 25
        yield from api_b.send_all(fd, payload)
        echo = yield from api_b.recv_exactly(fd, 5000)
        return echo == payload[::-1]

    _s, ok = net.run_all([server(), client()], until=BOUND)
    assert ok
    assert api_b.library.stack.shared_buffers


def test_double_close_is_harmless():
    net, pa, _pb = build_network("library-shm-ipf")
    api = pa.new_app()

    def prog():
        fd = yield from api.socket(SOCK_DGRAM)
        yield from api.bind(fd, 9895)
        yield from api.close(fd)
        with pytest.raises(SocketError):
            yield from api.close(fd)  # EBADF on the second close
        return True

    assert net.run_all([prog()], until=BOUND)[0]


def test_operations_on_embryonic_tcp_socket_fail_cleanly():
    net, pa, _pb = build_network("library-shm-ipf")
    api = pa.new_app()

    def prog():
        fd = yield from api.socket(SOCK_STREAM)
        with pytest.raises(SocketError):
            yield from api.send(fd, b"too early")
        with pytest.raises(SocketError):
            yield from api.recv(fd, 10)
        return True

    assert net.run_all([prog()], until=BOUND)[0]
