"""The host ARP service: resolution, retry, caching, invalidation."""

import random

import pytest

from repro.hw.platforms import DECSTATION_5000_200
from repro.net.addr import ip_aton
from repro.net.arp import ArpTimeout
from repro.stack.context import ExecutionContext
from repro.world.network import Network

IP1 = ip_aton("10.0.0.1")
IP2 = ip_aton("10.0.0.2")


def make_pair(**wire_kwargs):
    net = Network(**wire_kwargs)
    a = net.add_host("10.0.0.1", DECSTATION_5000_200, name="a")
    b = net.add_host("10.0.0.2", DECSTATION_5000_200, name="b")
    return net, a, b


def ctx_for(host):
    return ExecutionContext(host.sim, host.cpu)


def test_resolution_round_trip():
    net, a, b = make_pair()

    def prog():
        mac = yield from a.arp.resolve(ctx_for(a), IP2)
        return mac

    mac = net.sim.run_process(prog())
    assert mac == b.mac
    # And b passively learned a's mapping from the request.
    assert b.arp.cache.lookup(IP1) == a.mac


def test_cache_hit_avoids_network():
    net, a, b = make_pair()

    def prog():
        yield from a.arp.resolve(ctx_for(a), IP2)
        sent_before = a.nic.frames_sent
        mac = yield from a.arp.resolve(ctx_for(a), IP2)
        return mac, a.nic.frames_sent - sent_before

    mac, extra_frames = net.sim.run_process(prog())
    assert mac == b.mac
    assert extra_frames == 0


def test_absent_host_times_out():
    net, a, _b = make_pair()

    def prog():
        with pytest.raises(ArpTimeout):
            yield from a.arp.resolve(ctx_for(a), ip_aton("10.0.0.77"))
        return net.sim.now

    elapsed = net.sim.run_process(prog())
    assert elapsed >= 5_000_000  # the full retry budget was spent


def test_retry_survives_lossy_wire():
    rng = random.Random(13)
    net, a, b = make_pair(loss_rate=0.5, rng=rng)

    def prog():
        mac = yield from a.arp.resolve(ctx_for(a), IP2)
        return mac

    mac = net.sim.run_process(prog(), until=60_000_000)
    assert mac == b.mac


def test_invalidation_reaches_registered_callbacks():
    net, a, _b = make_pair()
    invalidated = []
    a.arp.register_invalidation(invalidated.append)

    def prog():
        yield from a.arp.resolve(ctx_for(a), IP2)

    net.sim.run_process(prog())
    a.arp.invalidate(IP2)
    assert IP2 in invalidated
    assert a.arp.cache.lookup(IP2) is None


def test_generation_counter_tracks_changes():
    net, a, _b = make_pair()
    gen0 = a.arp.generation

    def prog():
        yield from a.arp.resolve(ctx_for(a), IP2)

    net.sim.run_process(prog())
    assert a.arp.generation > gen0


def test_hosts_answer_only_for_their_own_ip():
    net, a, b = make_pair()

    def prog():
        with pytest.raises(ArpTimeout):
            yield from a.arp.resolve(ctx_for(a), ip_aton("10.0.0.200"))

    net.sim.run_process(prog())
    # b saw the requests but never answered for a foreign address.
    assert b.arp.cache.lookup(IP1) == a.mac  # learned the sender though
