"""The packet-filter VM, validator, and session-filter compiler."""

import pytest

from repro.filter import (
    FilterError,
    FilterMachine,
    Insn,
    Op,
    compile_arp_filter,
    compile_ip_protocol_filter,
    compile_session_filter,
    validate,
)
from repro.net import ethernet, ip, udp
from repro.net.addr import ip_aton, make_mac
from repro.net.tcp.header import SYN, TCPSegment

SRC_MAC, DST_MAC = make_mac(1), make_mac(2)
A = ip_aton("10.0.0.1")
B = ip_aton("10.0.0.2")


def udp_frame(src=A, dst=B, sport=5000, dport=7777, payload=b"payload"):
    dgram = udp.encapsulate(src, dst, sport, dport, payload)
    packet = ip.encapsulate(src, dst, ip.PROTO_UDP, dgram, ident=1)
    return ethernet.encapsulate(DST_MAC, SRC_MAC, ethernet.ETHERTYPE_IP, packet)


def tcp_frame(src=A, dst=B, sport=5000, dport=7777):
    seg = TCPSegment(sport, dport, seq=1, flags=SYN)
    packet = ip.encapsulate(src, dst, ip.PROTO_TCP, seg.pack(src, dst), ident=2)
    return ethernet.encapsulate(DST_MAC, SRC_MAC, ethernet.ETHERTYPE_IP, packet)


# ----------------------------------------------------------------------
# VM semantics
# ----------------------------------------------------------------------

def run(program, packet):
    return FilterMachine().run(validate(program), packet)[0]


def test_ret_literal():
    assert run([Insn(Op.RET, k=7)], b"ab") == 7
    assert run([Insn(Op.RET, k=0)], b"ab") == 0


def test_loads_and_alu():
    packet = bytes([0x12, 0x34, 0x56, 0x78, 0x9A])
    program = [
        Insn(Op.LD_W, k=0),
        Insn(Op.AND, k=0x00FF0000),
        Insn(Op.RSH, k=16),
        Insn(Op.RET_A),
    ]
    assert run(program, packet) == 0x34


def test_indexed_loads():
    packet = bytes([0x02, 0, 0, 0xAB, 0xCD])
    program = [
        Insn(Op.LDX_IMM, k=3),
        Insn(Op.LD_IND_H, k=0),
        Insn(Op.RET_A),
    ]
    assert run(program, packet) == 0xABCD


def test_ldx_msh_ip_header_idiom():
    packet = bytes([0x46]) + b"\x00" * 40  # IHL=6 -> X = 24
    program = [Insn(Op.LDX_MSH, k=0), Insn(Op.TXA), Insn(Op.RET_A)]
    assert run(program, packet) == 24


def test_jumps():
    program = [
        Insn(Op.LD_B, k=0),
        Insn(Op.JEQ, k=5, jt=0, jf=1),
        Insn(Op.RET, k=100),
        Insn(Op.RET, k=0),
    ]
    assert run(program, bytes([5])) == 100
    assert run(program, bytes([6])) == 0


def test_jgt_jge_jset():
    def one(op, k, value):
        return run(
            [Insn(Op.LD_B, k=0), Insn(op, k=k, jt=0, jf=1),
             Insn(Op.RET, k=1), Insn(Op.RET, k=0)],
            bytes([value]),
        )

    assert one(Op.JGT, 5, 6) == 1
    assert one(Op.JGT, 5, 5) == 0
    assert one(Op.JGE, 5, 5) == 1
    assert one(Op.JSET, 0x80, 0x81) == 1
    assert one(Op.JSET, 0x80, 0x01) == 0


def test_short_packet_load_rejects():
    program = [Insn(Op.LD_W, k=100), Insn(Op.RET, k=1)]
    accepted, _count = FilterMachine().run(validate(program), b"tiny")
    assert accepted == 0


def test_insn_count_reported():
    program = [Insn(Op.LD_B, k=0), Insn(Op.RET_A)]
    machine = FilterMachine()
    _accepted, count = machine.run(validate(program), b"\x01")
    assert count == 2
    assert machine.insns_executed == 2
    assert machine.packets_examined == 1


# ----------------------------------------------------------------------
# Validator
# ----------------------------------------------------------------------

def test_validate_rejects_empty():
    with pytest.raises(FilterError):
        validate([])


def test_validate_rejects_missing_ret():
    with pytest.raises(FilterError):
        validate([Insn(Op.LD_B, k=0)])


def test_validate_rejects_out_of_range_jump():
    with pytest.raises(FilterError):
        validate([Insn(Op.JEQ, k=1, jt=5, jf=0), Insn(Op.RET, k=0)])


def test_validate_rejects_backward_jump():
    with pytest.raises(FilterError):
        validate([Insn(Op.JEQ, k=1, jt=-1, jf=0), Insn(Op.RET, k=0)])


def test_validate_rejects_overlong():
    program = [Insn(Op.LD_B, k=0)] * 600 + [Insn(Op.RET, k=0)]
    with pytest.raises(FilterError):
        validate(program)


def test_validate_rejects_non_insn():
    with pytest.raises(FilterError):
        validate(["bogus", Insn(Op.RET, k=0)])


# ----------------------------------------------------------------------
# Session filter compilation
# ----------------------------------------------------------------------

def test_session_filter_matches_exactly():
    machine = FilterMachine()
    program = compile_session_filter(ip.PROTO_UDP, B, 7777)
    assert machine.matches(program, udp_frame())
    assert not machine.matches(program, udp_frame(dport=7778))
    assert not machine.matches(program, udp_frame(dst=A))
    assert not machine.matches(program, tcp_frame())  # wrong protocol


def test_connected_session_filter_pins_remote():
    machine = FilterMachine()
    program = compile_session_filter(
        ip.PROTO_UDP, B, 7777, remote_ip=A, remote_port=5000
    )
    assert machine.matches(program, udp_frame())
    assert not machine.matches(program, udp_frame(sport=5001))
    assert not machine.matches(program, udp_frame(src=B))


def test_session_filter_rejects_non_first_fragment():
    machine = FilterMachine()
    program = compile_session_filter(ip.PROTO_UDP, B, 7777)
    dgram = udp.encapsulate(A, B, 5000, 7777, b"x" * 3000)
    packet = ip.encapsulate(A, B, ip.PROTO_UDP, dgram, ident=9)
    frags = ip.fragment(packet, 1500)
    frames = [
        ethernet.encapsulate(DST_MAC, SRC_MAC, ethernet.ETHERTYPE_IP, f)
        for f in frags
    ]
    assert machine.matches(program, frames[0])
    assert not any(machine.matches(program, f) for f in frames[1:])


def test_session_filter_handles_ip_options():
    """Filters must find the ports past a longer-than-20-byte IP header."""
    machine = FilterMachine()
    program = compile_session_filter(ip.PROTO_UDP, B, 7777)
    dgram = udp.encapsulate(A, B, 5000, 7777, b"opt")
    # Hand-build an IP header with 4 bytes of options (IHL=6).
    import struct

    from repro.net.checksum import internet_checksum

    total = 24 + len(dgram)
    header = struct.pack("!BBHHHBBHII", (4 << 4) | 6, 0, total, 1, 0, 64,
                         ip.PROTO_UDP, 0, A, B) + b"\x01\x01\x01\x00"
    checksum = internet_checksum(header)
    header = header[:10] + struct.pack("!H", checksum) + header[12:]
    frame = ethernet.encapsulate(
        DST_MAC, SRC_MAC, ethernet.ETHERTYPE_IP, header + dgram
    )
    assert machine.matches(program, frame)


def test_arp_filter():
    from repro.net import arp

    machine = FilterMachine()
    program = compile_arp_filter()
    request = arp.ArpPacket.request(SRC_MAC, A, B).pack()
    frame = ethernet.encapsulate(b"\xff" * 6, SRC_MAC,
                                 ethernet.ETHERTYPE_ARP, request)
    assert machine.matches(program, frame)
    assert not machine.matches(program, udp_frame())


def test_ip_protocol_filter():
    machine = FilterMachine()
    program = compile_ip_protocol_filter(ip.PROTO_TCP)
    assert machine.matches(program, tcp_frame())
    assert not machine.matches(program, udp_frame())


def test_security_isolation_between_sessions():
    """The paper's security property: a session's filter never accepts
    another session's packets, for any field that differs."""
    machine = FilterMachine()
    mine = compile_session_filter(ip.PROTO_UDP, B, 7000,
                                  remote_ip=A, remote_port=6000)
    for frame in (
        udp_frame(dport=7001, sport=6000),
        udp_frame(dport=7000, sport=6001),
        udp_frame(src=B, dst=B, dport=7000, sport=6000),
        tcp_frame(dport=7000, sport=6000),
    ):
        assert not machine.matches(mine, frame)
    assert machine.matches(mine, udp_frame(dport=7000, sport=6000))
