"""Multi-segment topologies through the IP router."""

import pytest

from repro.core.sockets import SOCK_DGRAM, SOCK_STREAM
from repro.hw.platforms import DECSTATION_5000_200
from repro.hw.wire import EthernetWire
from repro.net.addr import ip_aton
from repro.sim.engine import Simulator
from repro.world.configs import CONFIGS, Placement
from repro.world.host import Host
from repro.world.router import Router

NET1_HOST = "10.0.1.1"
NET2_HOST = "10.0.2.1"
GW1, GW2 = "10.0.1.254", "10.0.2.254"
BOUND = 600_000_000


def build_routed_world(config_key="mach25"):
    """Two hosts on different segments joined by a router."""
    sim = Simulator()
    wire1 = EthernetWire(sim, name="net1")
    wire2 = EthernetWire(sim, name="net2")
    spec = CONFIGS[config_key]
    host1 = Host(sim, wire1, NET1_HOST, DECSTATION_5000_200, name="h1",
                 integrated_filter=spec.integrated_filter)
    host2 = Host(sim, wire2, NET2_HOST, DECSTATION_5000_200, name="h2",
                 integrated_filter=spec.integrated_filter)
    host1.route_table.add("10.0.2.0", 24, iface="en0", gateway=GW1)
    host2.route_table.add("10.0.1.0", 24, iface="en0", gateway=GW2)
    router = Router(sim, DECSTATION_5000_200, name="rtr")
    router.attach(wire1, GW1)
    router.attach(wire2, GW2)
    p1 = Placement(spec, host1)
    p2 = Placement(spec, host2)

    class World:
        pass

    world = World()
    world.sim = sim
    world.router = router

    def run_all(gens, until=None):
        return sim.run_all(gens, until=until)

    world.run_all = run_all
    return world, p1, p2


def test_ping_across_router():
    world, p1, p2 = build_routed_world()
    api = p2.new_app()

    def prog():
        rtt = yield from api.ping(ip_aton(NET1_HOST))
        return rtt

    rtt = world.run_all([prog()], until=BOUND)[0]
    assert rtt is not None
    assert world.router.forwarded >= 2  # request and reply both forwarded


def test_ping_the_router_itself():
    world, _p1, p2 = build_routed_world()
    api = p2.new_app()

    def prog():
        return (yield from api.ping(ip_aton(GW2)))

    assert world.run_all([prog()], until=BOUND)[0] is not None


@pytest.mark.parametrize("config", ["mach25", "library-shm-ipf"])
def test_tcp_across_router(config):
    world, p1, p2 = build_routed_world(config)
    api_a = p1.new_app()
    api_b = p2.new_app()
    ready = world.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7700)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, peer = yield from api_a.accept(fd)
        data = yield from api_a.recv_exactly(cfd, 20_000)
        return peer, data

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (ip_aton(NET1_HOST), 7700))
        yield from api_b.send_all(fd, b"r" * 20_000)
        return "sent"

    (peer, data), _ = world.run_all([server(), client()], until=BOUND)
    assert data == b"r" * 20_000
    assert peer[0] == ip_aton(NET2_HOST)  # the real source, across subnets
    assert world.router.forwarded > 20


def test_udp_fragmentation_across_router():
    world, p1, p2 = build_routed_world()
    api_a = p1.new_app()
    api_b = p2.new_app()
    ready = world.sim.event()
    big = bytes(range(256)) * 12  # 3072 bytes: fragments on the wire

    def server():
        fd = yield from api_a.socket(SOCK_DGRAM)
        yield from api_a.bind(fd, 9700)
        ready.succeed()
        data, src = yield from api_a.recvfrom(fd)
        return data

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_DGRAM)
        yield from api_b.sendto(fd, big, (ip_aton(NET1_HOST), 9700))

    data, _ = world.run_all([server(), client()], until=BOUND)
    assert data == big


def test_traceroute_discovers_the_path():
    world, p1, p2 = build_routed_world()
    api = p2.new_app()

    def prog():
        hops = yield from api.traceroute(ip_aton(NET1_HOST))
        return hops

    hops = world.run_all([prog()], until=BOUND)[0]
    assert len(hops) == 2
    assert hops[0][1] == ip_aton(GW2)  # the router announces itself
    assert hops[1][1] == ip_aton(NET1_HOST)  # then the target replies
    assert all(rtt is not None and rtt > 0 for _h, _ip, rtt in hops)
    assert hops[0][2] < hops[1][2]  # nearer hop answers sooner


def test_traceroute_unreachable_target_fills_with_stars():
    world, _p1, p2 = build_routed_world()
    api = p2.new_app()

    def prog():
        # 10.0.1.77 routes via the gateway, but no such host answers ARP
        # on the far segment: probes beyond the router die silently.
        hops = yield from api.traceroute(ip_aton("10.0.1.77"), max_hops=3)
        return hops

    hops = world.run_all([prog()], until=BOUND)[0]
    assert len(hops) == 3
    assert hops[0][1] == ip_aton(GW2)  # TTL=1 still dies at the router
    assert all(ip_addr is None for _h, ip_addr, _r in hops[1:])


def test_ttl_expiry_draws_time_exceeded():
    """A packet whose TTL dies at the router is answered with ICMP time
    exceeded (the traceroute mechanism)."""
    world, p1, p2 = build_routed_world()
    host2 = p2.host
    from repro.net import icmp, ip
    from repro.net import udp as udpmod

    captured = []
    stack = p2._backend.stack  # the in-kernel stack of host 2
    original = stack._icmp_input

    def spy(header, payload):
        captured.append(icmp.ICMPMessage.unpack(payload, verify=False))
        yield from original(header, payload)

    stack._icmp_input = spy

    def prog():
        # Hand-build a TTL=1 datagram to the far side and transmit it
        # through the kernel send trap, bypassing the stack's default TTL.
        from repro.net import ethernet

        dgram = udpmod.encapsulate(host2.ip, ip_aton(NET1_HOST), 5000, 9,
                                   b"dies at the router")
        packet = ip.encapsulate(host2.ip, ip_aton(NET1_HOST), ip.PROTO_UDP,
                                dgram, ttl=1)
        gateway_mac = yield from host2.arp.resolve(stack.ctx, ip_aton(GW2))
        frame = ethernet.encapsulate(gateway_mac, host2.mac,
                                     ethernet.ETHERTYPE_IP, packet)
        yield from host2.kernel.netif_send(stack.ctx, frame, wired=True)

    world.run_all([prog()], until=BOUND)
    world.sim.run(until=world.sim.now + 10_000_000)
    assert world.router.ttl_expired == 1
    assert any(m.type == icmp.TYPE_TIME_EXCEEDED for m in captured)
