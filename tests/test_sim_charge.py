"""The Charge fast path: the process machinery executing CPU charges.

``yield ctx.charge(...)`` hands the process a :class:`Charge` request
that it executes directly — acquire the CPU's priority lock, sleep the
cost, release, account — without a charging subgenerator.  These tests
pin the semantics that path must preserve: serialization and priority,
zero-cost synchronous continuation, negative-cost errors raised at the
yield site, renege on interrupt (both queued and mid-sleep), the
``yield from`` compatibility path, and safe sharing of cached Charge
objects between processes.
"""

import pytest

from repro.hw.cpu import CPU, Priority
from repro.hw.platforms import DECSTATION_5000_200
from repro.sim import Timeout
from repro.sim.errors import Interrupt
from repro.sim.process import Charge
from repro.stack.context import ExecutionContext


def make_ctx(sim, priority=Priority.APPLICATION):
    cpu = CPU(sim, DECSTATION_5000_200)
    return ExecutionContext(sim, cpu, priority=priority, name="t")


def test_charge_advances_clock_and_accounts(sim):
    ctx = make_ctx(sim)

    def worker():
        yield ctx.charge("layer-a", 100.0)
        return sim.now

    assert sim.run_process(worker()) == 100.0
    assert ctx.cpu.busy_time == 100.0
    assert ctx.cpu.charge_count == 1
    assert ctx.accounting.totals["layer-a"] == 100.0
    assert ctx.accounting.counts["layer-a"] == 1


def test_charge_batch_bills_each_pair(sim):
    ctx = make_ctx(sim)

    def worker():
        yield ctx.charge_batch((("a", 10.0), ("b", 20.0), ("c", 30.0)))
        return sim.now

    assert sim.run_process(worker()) == 60.0
    assert ctx.cpu.charge_count == 3
    assert ctx.accounting.totals["b"] == 20.0


def test_zero_cost_continues_synchronously(sim):
    ctx = make_ctx(sim)

    def worker():
        yield ctx.charge("free", 0.0)
        yield ctx.charge_batch((("x", 0.0), ("y", 0.0)))
        return sim.now

    assert sim.run_process(worker()) == 0.0
    assert ctx.cpu.charge_count == 0
    assert ctx.accounting.totals["free"] == 0.0


def test_negative_cost_raises_at_yield_site(sim):
    ctx = make_ctx(sim)

    def worker():
        try:
            yield ctx.charge("bad", -1.0)
        except ValueError:
            return "caught"
        return "missed"

    assert sim.run_process(worker()) == "caught"
    assert not ctx.cpu._sched.locked  # nothing leaked


def test_charges_serialize_and_priority_wins(sim):
    ctx = make_ctx(sim)
    order = []

    def app():
        yield ctx.charge("app", 10.0)
        order.append("app1")
        yield ctx.charge("app", 10.0)
        order.append("app2")

    def interrupt_handler():
        yield Timeout(1.0)  # arrives while the app's first charge runs
        yield Charge(ctx.cpu, Priority.INTERRUPT, ctx.accounting,
                     (("intr", 5.0),))
        order.append("intr")

    sim.spawn(app())
    sim.spawn(interrupt_handler())
    sim.run()
    assert order == ["app1", "intr", "app2"]


def test_interrupt_mid_sleep_releases_cpu(sim):
    ctx = make_ctx(sim)

    def worker():
        yield ctx.charge("w", 100.0)

    proc = sim.spawn(worker())

    def killer():
        yield Timeout(10.0)
        proc.interrupt("die")
        # The CPU must be free again: this charge runs immediately.
        yield ctx.charge("k", 5.0)
        return sim.now

    assert sim.run_process(killer()) == 15.0
    assert not proc.ok
    assert isinstance(proc.value, Interrupt)
    assert not ctx.cpu._sched.locked


def test_interrupt_while_queued_withdraws_waiter(sim):
    ctx = make_ctx(sim)
    done = []

    def holder():
        yield ctx.charge("h", 50.0)
        done.append(("holder", sim.now))

    def queued():
        yield ctx.charge("q", 50.0)
        done.append(("queued", sim.now))  # pragma: no cover - interrupted

    sim.spawn(holder())
    victim = sim.spawn(queued())

    def killer():
        yield Timeout(10.0)
        victim.interrupt()

    sim.spawn(killer())
    sim.run()
    assert done == [("holder", 50.0)]
    assert not victim.ok
    assert not ctx.cpu._sched.locked  # the hand-off was not leaked
    assert ctx.cpu._sched.waiting() == 0


def test_yield_from_compat_path(sim):
    ctx = make_ctx(sim)

    def worker():
        yield from ctx.charge("compat", 40.0)
        return sim.now

    assert sim.run_process(worker()) == 40.0
    assert ctx.accounting.totals["compat"] == 40.0


def test_cached_charge_shared_between_processes(sim):
    ctx = make_ctx(sim)
    finishes = []

    def worker(name):
        yield ctx.charge("shared", 25.0)
        finishes.append((name, sim.now))

    # Identical requests share one immutable Charge object...
    assert ctx.charge("shared", 25.0) is ctx.charge("shared", 25.0)
    # ...and two processes can execute it concurrently, because all
    # execution state lives in the Process, not the Charge.
    sim.spawn(worker("a"))
    sim.spawn(worker("b"))
    sim.run()
    assert finishes == [("a", 25.0), ("b", 50.0)]
    assert ctx.accounting.totals["shared"] == 50.0
    assert ctx.accounting.counts["shared"] == 2


def test_waiting_on_reporting(sim):
    ctx = make_ctx(sim)
    seen = {}

    def holder():
        yield ctx.charge("h", 30.0)

    def queued():
        yield ctx.charge("q", 30.0)

    h = sim.spawn(holder())
    q = sim.spawn(queued())

    def observer():
        yield Timeout(10.0)
        seen["holder"] = repr(h.waiting_on)
        seen["queued"] = repr(q.waiting_on)

    sim.spawn(observer())
    sim.run()
    # Mid-sleep the holder waits on its Charge; the queued process waits
    # on the CPU lock's hand-off waiter — both show up in deadlock
    # diagnostics rather than as "nothing".
    assert "Charge" in seen["holder"]
    assert "waiter" in seen["queued"]


def test_deadlock_report_includes_charge(sim):
    ctx = make_ctx(sim)

    def worker():
        yield ctx.charge("w", 10.0)
        yield sim.event("never")  # blocks forever

    with pytest.raises(Exception) as err:
        sim.run_process(worker())
    assert "never" in str(err.value)
