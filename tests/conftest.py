"""Shared fixtures for the test suite."""

import pytest

from repro.hw.platforms import DECSTATION_5000_200
from repro.sim.engine import Simulator
from repro.world.configs import build_network
from repro.world.network import Network


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def network():
    """A bare two-host network (no placement) on the DECstation platform."""
    net = Network()
    net.add_host("10.0.0.1", DECSTATION_5000_200, name="alpha")
    net.add_host("10.0.0.2", DECSTATION_5000_200, name="beta")
    return net


def build(config_key, platform="decstation"):
    """Convenience wrapper used across integration tests."""
    return build_network(config_key, platform=platform)


@pytest.fixture(params=["mach25", "ux", "library-shm-ipf"])
def any_placement_pair(request):
    """One representative of each placement style."""
    net, pa, pb = build_network(request.param)
    return request.param, net, pa, pb
