"""The blocking chaos-conformance gate (ISSUE: satellite S5).

Runs the CI subset of the chaos matrix — one scenario per fault family,
three seeds each — as ordinary tests, so a control-plane regression
fails `pytest` with the standalone reproducer command in the message.
The full 27-scenario matrix is env-gated (CHAOS_FULL=1) because it is a
soak, not a unit test; CI runs it through the dedicated workflow job.
"""

import os

import pytest

from repro.analysis.chaos import (
    CI_SCENARIOS,
    DEFAULT_SEEDS,
    FAMILY_CONFIGS,
    WORKLOADS,
    all_scenarios,
    run_scenario,
)


def _describe(result):
    lines = ["chaos violation in %s seed %d:"
             % (result["scenario"], result["seed"])]
    lines.extend("  - %s" % v for v in result["violations"])
    lines.append("  REPRO: PYTHONPATH=src python -m repro.analysis.chaos "
                 "--scenario %s --seed %d"
                 % (result["scenario"], result["seed"]))
    return "\n".join(lines)


@pytest.mark.parametrize("seed", DEFAULT_SEEDS)
@pytest.mark.parametrize("scenario", CI_SCENARIOS)
def test_ci_subset_holds_invariants(scenario, seed):
    result = run_scenario(scenario, seed)
    assert result["ok"], _describe(result)


def test_matrix_is_at_least_24_by_3():
    """The acceptance floor: >= 24 scenario combinations x >= 3 seeds."""
    scenarios = all_scenarios()
    assert len(scenarios) >= 24
    assert len(set(scenarios)) == len(scenarios)
    assert len(DEFAULT_SEEDS) >= 3
    # Every cell is a real {placement} x {workload} x {family} combo.
    for scenario in scenarios:
        config, workload, family = scenario.split("/")
        assert workload in WORKLOADS
        assert config in FAMILY_CONFIGS[family]


def test_ci_subset_covers_control_plane_families():
    families = {scenario.split("/")[2] for scenario in CI_SCENARIOS}
    # The subset must exercise both control-plane families, including
    # the crash/restart outage that rides in "stress".
    assert {"rpc", "stress"} <= families


@pytest.mark.skipif(not os.environ.get("CHAOS_FULL"),
                    reason="full 81-run soak; set CHAOS_FULL=1 to enable")
@pytest.mark.parametrize("seed", DEFAULT_SEEDS)
@pytest.mark.parametrize("scenario", all_scenarios())
def test_full_matrix_holds_invariants(scenario, seed):
    result = run_scenario(scenario, seed)
    assert result["ok"], _describe(result)
