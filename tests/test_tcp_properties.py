"""Property-based TCP testing: random operation interleavings.

Drives two connections with randomized sequences of sends, receives,
lossy/reordered deliveries, timer ticks, and eventual close, checking the
invariants that must survive *any* interleaving:

* the received stream is byte-exact a prefix of the sent stream,
* sequence variables keep their ordering (snd_una <= snd_nxt <= snd_max),
* the state machine only makes legal transitions (asserted internally),
* with enough timer time, everything sent is eventually delivered.
"""

from hypothesis import given, settings, strategies as st

from repro.net.tcp import TCPConfig, TCPConnection
from repro.net.tcp.header import TCPSegment
from repro.net.tcp.seq import seq_le

A_IP, B_IP = 0x0A000001, 0x0A000002

ops = st.lists(
    st.one_of(
        st.tuples(st.just("send"), st.integers(1, 2000)),
        st.tuples(st.just("recv"), st.integers(1, 4096)),
        st.tuples(st.just("deliver"), st.floats(0.0, 0.4)),
        st.tuples(st.just("tick"), st.integers(1, 3)),
    ),
    min_size=5,
    max_size=60,
)


def check_seq_invariants(conn):
    assert seq_le(conn.snd_una, conn.snd_nxt) or conn.snd_nxt == conn.snd_una
    assert seq_le(conn.snd_nxt, conn.snd_max)


def deliver(src, dst, sip, dip, loss, rng):
    for seg in src.take_output():
        if rng.random() < loss:
            continue
        packed = seg.pack(sip, dip)
        dst.segment_arrives(TCPSegment.unpack(sip, dip, packed))


@settings(max_examples=40, deadline=None)
@given(script=ops, seed=st.integers(0, 2**32 - 1))
def test_random_interleavings_preserve_stream_integrity(script, seed):
    import random

    rng = random.Random(seed)
    cfg = TCPConfig(nodelay=True, delayed_ack=False, snd_buf=8192,
                    rcv_buf=8192)
    a = TCPConnection((A_IP, 1000), config=cfg)
    b = TCPConnection((B_IP, 2000), config=TCPConfig(
        nodelay=True, delayed_ack=False, snd_buf=8192, rcv_buf=8192))
    b.open_passive()
    a.open_active((B_IP, 2000))
    for _ in range(6):  # lossless handshake
        deliver(a, b, A_IP, B_IP, 0.0, rng)
        deliver(b, a, B_IP, A_IP, 0.0, rng)

    sent = bytearray()
    received = bytearray()
    payload_counter = 0

    for op, arg in script:
        if op == "send":
            chunk = bytes(
                (payload_counter + i) & 0xFF for i in range(arg)
            )
            taken = a.send(chunk)
            sent.extend(chunk[:taken])
            payload_counter += taken
        elif op == "recv":
            received.extend(b.receive(arg))
        elif op == "deliver":
            deliver(a, b, A_IP, B_IP, arg, rng)
            deliver(b, a, B_IP, A_IP, arg, rng)
        elif op == "tick":
            for _ in range(arg):
                a.tick_slow()
                a.tick_fast()
                b.tick_slow()
                b.tick_fast()
        check_seq_invariants(a)
        check_seq_invariants(b)
        # Whatever has been received so far is a prefix of what was sent.
        assert bytes(received) == bytes(sent[: len(received)])

    # Drain to completion: with lossless delivery plus timers, every
    # accepted byte must eventually arrive, in order.
    for _ in range(400):
        deliver(a, b, A_IP, B_IP, 0.0, rng)
        deliver(b, a, B_IP, A_IP, 0.0, rng)
        received.extend(b.receive(1 << 16))
        if len(received) == len(sent):
            break
        a.tick_slow()
        a.tick_fast()
        b.tick_slow()
        b.tick_fast()
    assert bytes(received) == bytes(sent)


@settings(max_examples=25, deadline=None)
@given(
    chunks=st.lists(st.binary(min_size=1, max_size=3000), min_size=1,
                    max_size=10),
    loss=st.floats(0.0, 0.3),
    seed=st.integers(0, 2**32 - 1),
)
def test_lossy_bulk_streams_are_exact(chunks, loss, seed):
    import random

    rng = random.Random(seed)
    cfg = TCPConfig(nodelay=True, delayed_ack=False)
    a = TCPConnection((A_IP, 1000), config=cfg)
    b = TCPConnection((B_IP, 2000), config=TCPConfig(nodelay=True,
                                                     delayed_ack=False))
    b.open_passive()
    a.open_active((B_IP, 2000))
    for _ in range(6):
        deliver(a, b, A_IP, B_IP, 0.0, rng)
        deliver(b, a, B_IP, A_IP, 0.0, rng)

    payload = b"".join(chunks)
    sent = 0
    received = bytearray()
    stall = 0
    while len(received) < len(payload) and stall < 2000:
        if sent < len(payload):
            sent += a.send(payload[sent:])
        deliver(a, b, A_IP, B_IP, loss, rng)
        deliver(b, a, B_IP, A_IP, loss, rng)
        got = b.receive(1 << 20)
        received.extend(got)
        if not got:
            stall += 1
            a.tick_slow()
            b.tick_slow()
        else:
            stall = 0
    assert bytes(received) == payload
