"""The chaos soak: everything at once, deterministically.

Each seeded run pushes multi-segment TCP transfers through a composed
fault pipeline — Gilbert–Elliott burst loss, reordering, duplication,
delay jitter, payload corruption — while the OS server crashes and
restarts mid-transfer with an accept RPC in flight.  The run must end
with byte-exact delivery on every connection, recovery counters
consistent with the injected faults, and every stack quiesced (no timer
processes alive, no sessions left in any TCP table).

CI runs this in its own non-blocking job: it is the longest test in the
repo by simulated time, and its whole point is to shake loose rare
interleavings rather than gate every push.
"""

import pytest

from repro.core.sockets import SOCK_STREAM
from repro.faults import (
    Corrupt,
    DelayJitter,
    Duplicate,
    FaultPlan,
    GilbertElliottLoss,
    Reorder,
)
from repro.net.addr import ip_aton
from repro.world.configs import build_network

IP1 = ip_aton("10.0.0.1")
BOUND = 1_200_000_000
PORT = 7500
NBYTES1 = 100_000  # conn1: the long transfer the crash lands inside
NBYTES2 = 20_000  # conn2: opened through the outage


def chaos_plan(seed):
    return FaultPlan(
        [
            GilbertElliottLoss(p_enter_bad=0.02, p_exit_bad=0.3,
                               loss_bad=0.9),
            Reorder(rate=0.05, hold_us=3000.0),
            Duplicate(rate=0.02, gap_us=150.0),
            DelayJitter(jitter_us=400.0),
            Corrupt(rate=0.01),
        ],
        seed=seed * 7,
    )


def payload(n, salt):
    return bytes((i * 31 + salt) % 256 for i in range(n))


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_chaos_soak(seed):
    plan = chaos_plan(seed)
    net, pa, pb = build_network("library-shm-ipf", fault_plan=plan)
    api_a = pa.new_app(name="soak-srv")
    api_b = pb.new_app(name="soak-cli")
    payload1 = payload(NBYTES1, salt=seed)
    payload2 = payload(NBYTES2, salt=seed + 1)

    ready = net.sim.event()
    conn1_ready = net.sim.event()
    started = net.sim.event()
    crashed = net.sim.event()

    def acceptor():
        """Accept both connections; the second accept RPC is parked in the
        server when the crash hits and must survive via retry."""
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, PORT)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd1, _ = yield from api_a.accept(fd)
        conn1_ready.succeed(cfd1)
        cfd2, _ = yield from api_a.accept(fd)
        data2 = yield from api_a.recv_exactly(cfd2, NBYTES2)
        yield from api_a.close(cfd2)
        yield from api_a.close(fd)
        return data2

    def receiver1():
        cfd1 = yield conn1_ready
        started.succeed()
        data1 = yield from api_a.recv_exactly(cfd1, NBYTES1)
        yield from api_a.close(cfd1)
        return data1

    def client1():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, PORT))
        yield from api_b.send_all(fd, payload1)
        retransmits = api_b.fds.get(fd).payload.session.conn.stats.retransmits
        yield from api_b.close(fd)
        return retransmits

    def client2():
        # Connect while the server is down: the SYN retransmits until
        # re-registration has rebuilt the listener and its filter.
        yield crashed
        yield net.sim.timeout(100_000)
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, PORT))
        yield from api_b.send_all(fd, payload2)
        retransmits = api_b.fds.get(fd).payload.session.conn.stats.retransmits
        yield from api_b.close(fd)
        return retransmits

    def controller():
        yield started
        yield net.sim.timeout(30_000)  # land inside conn1's data stream
        pa.server.crash()
        crashed.succeed()
        yield net.sim.timeout(3_000_000)
        pa.server.restart()

    data2, data1, rexmt1, rexmt2, _none = net.run_all(
        [acceptor(), receiver1(), client1(), client2(), controller()],
        until=BOUND,
    )

    # --- Byte-exact delivery through every fault at once ---------------
    assert data1 == payload1
    assert data2 == payload2

    # --- The faults really fired, and recovery paid for them -----------
    assert plan.total("dropped") > 0
    assert plan.counters()["gilbert-elliott"]["bursts"] > 0
    assert rexmt1 + rexmt2 > 0  # losses forced retransmission
    assert plan.frames_in == net.wire.frames_carried

    # --- Crash recovery actually happened -------------------------------
    server = pa.server
    assert server.generation == 1 and server.crashes == 1
    assert api_a.reregistrations == 1
    assert server.rpc.retried_calls > 0  # the parked accept came back
    assert server.sessions_restored >= 1
    assert not server.rpc.broken

    # --- Teardown: drain TIME_WAIT, then everything must be quiet -------
    net.sim.run(until=net.sim.now + 70_000_000)
    stacks = [
        ("a-server", pa.server.stack),
        ("b-server", pb.server.stack),
        ("a-lib", api_a.stack),
        ("b-lib", api_b.stack),
    ]
    for label, stack in stacks:
        assert not stack._tcp, "%s still has TCP sessions: %r" % (
            label, stack._tcp)
    for _label, stack in stacks:
        stack.shutdown(interrupt=True)
    net.sim.run(until=net.sim.now + 1)
    for label, stack in stacks:
        assert not stack._timer_proc.alive, "%s timers still running" % label
    assert not pa.server._background  # no orphaned graceful closes
