"""BSD mbuf chains, including property-based invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.mbuf import MCLBYTES, MINCLSIZE, MLEN, Mbuf, MbufStats

payloads = st.binary(min_size=0, max_size=5000)


def test_empty_payload_single_mbuf():
    m = Mbuf.from_bytes(b"")
    assert m.chain_len() == 0
    assert m.chain_count() == 1
    assert m.to_bytes() == b""


def test_small_payload_uses_small_mbufs():
    m = Mbuf.from_bytes(b"x" * 50)
    assert not m.is_cluster
    assert m.to_bytes() == b"x" * 50


def test_large_payload_uses_clusters():
    stats = MbufStats()
    m = Mbuf.from_bytes(b"y" * 3000, stats=stats)
    assert m.is_cluster
    assert stats.cluster_allocs >= 1
    assert m.to_bytes() == b"y" * 3000


@given(payloads)
def test_roundtrip(data):
    assert Mbuf.from_bytes(data).to_bytes() == data


@given(payloads)
def test_chain_len_matches(data):
    assert Mbuf.from_bytes(data).chain_len() == len(data)


def test_prepend_uses_leading_space():
    m = Mbuf.from_bytes(b"payload", header_space=16)
    before = m.chain_count()
    m2 = m.prepend(b"HDR")
    assert m2 is m  # in place
    assert m2.chain_count() == before
    assert m2.to_bytes() == b"HDRpayload"


def test_prepend_allocates_when_no_space():
    stats = MbufStats()
    m = Mbuf.from_bytes(b"data", header_space=2)
    m2 = m.prepend(b"LONGHEADER", stats=stats)
    assert m2 is not m
    assert m2.to_bytes() == b"LONGHEADERdata"
    assert stats.allocated == 1


@given(payloads, st.integers(min_value=0, max_value=5000))
def test_adj_front(data, count):
    m = Mbuf.from_bytes(data)
    if count > len(data):
        with pytest.raises(ValueError):
            m.adj(count)
    else:
        m.adj(count)
        assert m.to_bytes() == data[count:]


@given(payloads, st.integers(min_value=0, max_value=5000))
def test_adj_back(data, count):
    m = Mbuf.from_bytes(data)
    if count > len(data):
        with pytest.raises(ValueError):
            m.adj(-count)
    else:
        m.adj(-count)
        assert m.to_bytes() == data[: len(data) - count]


@given(payloads, st.integers(min_value=0, max_value=5000))
def test_split(data, point):
    m = Mbuf.from_bytes(data)
    if point > len(data):
        with pytest.raises(ValueError):
            m.split(point)
    else:
        tail = m.split(point)
        assert m.to_bytes() == data[:point]
        assert tail.to_bytes() == data[point:]


@given(payloads, st.integers(min_value=0, max_value=200))
def test_pullup(data, count):
    m = Mbuf.from_bytes(data)
    if count > len(data):
        with pytest.raises(ValueError):
            m.pullup(count)
    else:
        m.pullup(count)
        assert m.len >= count
        assert m.to_bytes() == data


@given(payloads, payloads)
def test_cat(left, right):
    a = Mbuf.from_bytes(left)
    b = Mbuf.from_bytes(right)
    a.cat(b)
    assert a.to_bytes() == left + right


@given(payloads, st.integers(min_value=0, max_value=100),
       st.integers(min_value=0, max_value=100))
def test_copy_window(data, off, length):
    m = Mbuf.from_bytes(data)
    if off + length > len(data):
        with pytest.raises(ValueError):
            m.copy(off, length)
    else:
        c = m.copy(off, length)
        assert c.to_bytes() == data[off : off + length]
        assert m.to_bytes() == data  # source untouched


def test_stats_track_alloc_and_free():
    stats = MbufStats()
    m = Mbuf.from_bytes(b"z" * (MCLBYTES + MLEN), stats=stats)
    assert stats.live == stats.allocated
    m.free_chain(stats)
    assert stats.live == 0


def test_mincl_size_boundary():
    small = Mbuf.from_bytes(b"a" * (MINCLSIZE - 1))
    big = Mbuf.from_bytes(b"a" * MINCLSIZE)
    assert not small.is_cluster
    assert big.is_cluster


def test_from_bytes_copies_memoryview_input_once():
    # Zero-copy ingest: a memoryview is accepted directly (no bytes()
    # materialisation), and the single copy happens into the mbuf
    # buffers — mutating the source afterwards must not alias the chain.
    source = bytearray(b"q" * 3000)
    m = Mbuf.from_bytes(memoryview(source))
    source[:] = b"X" * 3000
    assert m.to_bytes() == b"q" * 3000


def test_copy_window_spanning_clusters_does_not_flatten():
    # The double-copy regression: copy() used to flatten the whole chain
    # (one copy) and then slice it (a second copy).  The gather-as-views
    # version must still be exact across cluster boundaries.
    data = bytes(range(256)) * 20  # > 2 clusters
    m = Mbuf.from_bytes(data)
    assert m.chain_count() >= 3
    window = m.copy(MCLBYTES - 7, 100)
    assert window.to_bytes() == data[MCLBYTES - 7 : MCLBYTES - 7 + 100]
    assert m.to_bytes() == data  # source untouched


def test_pullup_keeps_tail_buffers_in_place():
    # pullup() gathers only the head bytes; mbufs past the pulled range
    # keep their buffers (their windows just move) instead of the chain
    # being flattened and rebuilt.
    data = b"h" * 60 + b"t" * 4000
    m = Mbuf.from_bytes(data)
    last = m
    while last.next is not None:
        last = last.next
    last_buf = last.buf
    m.pullup(70)
    tail = m
    while tail.next is not None:
        tail = tail.next
    assert tail.buf is last_buf
    assert m.to_bytes() == data
