"""The TCP connection machine, driven in lockstep over packed bytes.

Every exchanged segment is packed and re-parsed (checksums verified), so
these tests exercise the wire format together with the state machine.
"""

import random

import pytest

from repro.net.tcp import TCPConfig, TCPConnection, TCPState
from repro.net.tcp.header import ACK, FIN, RST, SYN, TCPSegment
from repro.net.tcp.tcb import (
    ConnectionRefused,
    ConnectionReset,
    ConnectionTimedOut,
    NotConnected,
    TCPError,
)
from repro.net.tcp.timers import TCPT_PERSIST, TCPT_REXMT

A_IP, B_IP = 0x0A000001, 0x0A000002


def make_pair(a_cfg=None, b_cfg=None, connect=True, pump_after=True):
    a = TCPConnection((A_IP, 1000), config=a_cfg or TCPConfig(nodelay=True,
                                                              delayed_ack=False))
    b = TCPConnection((B_IP, 2000), config=b_cfg or TCPConfig(nodelay=True,
                                                              delayed_ack=False))
    if connect:
        b.open_passive()
        a.open_active((B_IP, 2000))
        if pump_after:
            pump(a, b)
    return a, b


def pump(a, b, lose=None, rng=None, limit=500):
    """Shuttle packed segments until both outboxes are quiet."""
    moved_total = 0
    for _ in range(limit):
        moved = False
        for src, dst, sip, dip in ((a, b, A_IP, B_IP), (b, a, B_IP, A_IP)):
            for seg in src.take_output():
                moved = True
                moved_total += 1
                if lose and rng and rng.random() < lose:
                    continue
                packed = seg.pack(sip, dip)
                dst.segment_arrives(TCPSegment.unpack(sip, dip, packed))
        if not moved:
            return moved_total
    raise AssertionError("pump did not quiesce")


def tick(*conns):
    for conn in conns:
        conn.tick_slow()
        conn.tick_fast()


# ----------------------------------------------------------------------
# Establishment
# ----------------------------------------------------------------------

def test_three_way_handshake():
    a, b = make_pair(connect=False)
    b.open_passive()
    a.open_active((B_IP, 2000))
    segs = pump(a, b)
    assert a.state == TCPState.ESTABLISHED
    assert b.state == TCPState.ESTABLISHED
    assert segs == 3  # SYN, SYN|ACK, ACK


def test_mss_negotiation_takes_minimum():
    a, b = make_pair(
        a_cfg=TCPConfig(mss=1460, nodelay=True),
        b_cfg=TCPConfig(mss=536, nodelay=True),
    )
    assert a.effective_mss() == 536
    assert b.effective_mss() == 536


def test_syn_retransmission_on_loss():
    a, b = make_pair(connect=False)
    b.open_passive()
    a.open_active((B_IP, 2000))
    a.take_output()  # drop the SYN on the floor
    for _ in range(10):
        tick(a, b)
        pump(a, b)
        if a.state == TCPState.ESTABLISHED:
            break
    assert a.state == TCPState.ESTABLISHED
    assert a.stats.retransmits >= 1


def test_connection_refused_by_rst():
    a = TCPConnection((A_IP, 1000), config=TCPConfig(nodelay=True))
    a.open_active((B_IP, 7))
    (syn,) = a.take_output()
    # No listener: a closed endpoint answers with RST (rst_for semantics).
    closed = TCPConnection((B_IP, 7))
    closed.segment_arrives(syn)
    (rst,) = closed.take_output()
    assert rst.flags & RST
    a.segment_arrives(rst)
    assert a.state == TCPState.CLOSED
    with pytest.raises(ConnectionRefused):
        a.raise_if_dead()


def test_simultaneous_open():
    a = TCPConnection((A_IP, 1000), config=TCPConfig(nodelay=True))
    b = TCPConnection((B_IP, 2000), config=TCPConfig(nodelay=True))
    a.open_active((B_IP, 2000))
    b.open_active((A_IP, 1000))
    pump(a, b)
    assert a.state == TCPState.ESTABLISHED
    assert b.state == TCPState.ESTABLISHED


def test_send_before_established_raises():
    a = TCPConnection((A_IP, 1))
    a.open_active((B_IP, 2))
    with pytest.raises(NotConnected):
        a.send(b"too early")


def test_listener_ignores_rst_and_resets_ack():
    listener = TCPConnection((B_IP, 2000))
    listener.open_passive()
    listener.segment_arrives(TCPSegment(1000, 2000, flags=RST), src_ip=A_IP)
    assert listener.state == TCPState.LISTEN
    listener.segment_arrives(
        TCPSegment(1000, 2000, seq=5, ack=99, flags=ACK), src_ip=A_IP
    )
    (rst,) = listener.take_output()
    assert rst.flags & RST
    assert listener.state == TCPState.LISTEN


# ----------------------------------------------------------------------
# Data transfer
# ----------------------------------------------------------------------

def test_bulk_transfer_integrity():
    a, b = make_pair()
    payload = bytes(random.Random(7).randbytes(50000))
    sent = 0
    received = bytearray()
    while len(received) < len(payload):
        if sent < len(payload):
            sent += a.send(payload[sent:])
        pump(a, b)
        received += b.receive(1 << 20)
    assert bytes(received) == payload
    assert b.stats.bytes_received == len(payload)


def test_bidirectional_transfer():
    a, b = make_pair()
    a.send(b"ping from a")
    b.send(b"pong from b")
    pump(a, b)
    assert b.receive(100) == b"ping from a"
    assert a.receive(100) == b"pong from b"


def test_segments_respect_mss():
    a, b = make_pair(
        a_cfg=TCPConfig(mss=100, nodelay=True, delayed_ack=False),
        b_cfg=TCPConfig(mss=100, nodelay=True, delayed_ack=False),
    )
    a.send(b"z" * 1000)
    for _ in range(100):
        outs = a.take_output()
        if not outs:
            break
        for seg in outs:
            assert len(seg.payload) <= 100
            b.segment_arrives(
                TCPSegment.unpack(A_IP, B_IP, seg.pack(A_IP, B_IP))
            )
        for seg in b.take_output():
            a.segment_arrives(
                TCPSegment.unpack(B_IP, A_IP, seg.pack(B_IP, A_IP))
            )
    assert b.receive(2000) == b"z" * 1000


def test_receive_window_blocks_sender():
    small = TCPConfig(rcv_buf=2048, nodelay=True, delayed_ack=False)
    a, b = make_pair(b_cfg=small)
    a.send(b"w" * 10000)
    pump(a, b)
    # The receiver buffered at most its window; the rest waits unsent.
    assert len(b.rcv_buffer) <= 2048
    assert len(a.snd_buffer) > 0
    # Draining opens the window and lets the rest flow (window updates).
    received = bytearray(b.receive(1 << 20))
    for _ in range(50):
        pump(a, b)
        received += b.receive(1 << 20)
        if len(received) == 10000:
            break
    assert len(received) == 10000


def test_zero_window_persist_probe():
    small = TCPConfig(rcv_buf=1024, nodelay=True, delayed_ack=False)
    a, b = make_pair(b_cfg=small)
    a.send(b"p" * 5000)
    pump(a, b)
    assert a.snd_wnd == 0
    assert a.timer_armed(TCPT_PERSIST) or a.timer_armed(TCPT_REXMT)
    # Do NOT drain b; run the persist machinery for a while.
    for _ in range(30):
        tick(a, b)
        pump(a, b)
    # The probe kept the connection alive; now drain and finish.
    got = bytearray()
    for _ in range(200):
        got += b.receive(1 << 20)
        tick(a, b)
        pump(a, b)
        if len(got) == 5000:
            break
    assert len(got) == 5000


def test_nagle_holds_small_segment():
    cfg = TCPConfig(nodelay=False, delayed_ack=False)
    a, b = make_pair(a_cfg=cfg, b_cfg=cfg)
    a.send(b"first")
    (seg1,) = a.take_output()
    b.segment_arrives(TCPSegment.unpack(A_IP, B_IP, seg1.pack(A_IP, B_IP)))
    # Before the ACK returns, more small data queues but must NOT go out.
    a.send(b"second")
    assert a.take_output() == []
    for seg in b.take_output():
        a.segment_arrives(TCPSegment.unpack(B_IP, A_IP, seg.pack(B_IP, A_IP)))
    pump(a, b)
    assert b.receive(100) == b"firstsecond"


def test_nodelay_disables_nagle():
    a, b = make_pair()  # nodelay=True by default here
    a.send(b"one")
    a.take_output()
    a.send(b"two")
    assert len(a.take_output()) == 1  # sent despite outstanding data


def test_delayed_ack_accumulates():
    cfg = TCPConfig(nodelay=True, delayed_ack=True)
    a, b = make_pair(a_cfg=cfg, b_cfg=cfg)
    a.send(b"x")
    (seg,) = a.take_output()
    b.segment_arrives(TCPSegment.unpack(A_IP, B_IP, seg.pack(A_IP, B_IP)))
    assert b.take_output() == []  # ACK withheld
    assert b.delack_pending
    b.tick_fast()
    acks = b.take_output()
    assert len(acks) == 1 and acks[0].flags & ACK


def test_ack_every_second_segment():
    cfg = TCPConfig(nodelay=True, delayed_ack=True)
    a, b = make_pair(a_cfg=cfg, b_cfg=cfg)
    for payload in (b"one", b"two"):
        a.send(payload)
        for seg in a.take_output():
            b.segment_arrives(
                TCPSegment.unpack(A_IP, B_IP, seg.pack(A_IP, B_IP))
            )
    acks = b.take_output()
    assert len(acks) == 1  # the second segment forced the ACK out


def test_out_of_order_delivery_reassembles():
    a, b = make_pair(
        a_cfg=TCPConfig(mss=10, nodelay=True, delayed_ack=False),
        b_cfg=TCPConfig(mss=10, nodelay=True, delayed_ack=False),
    )
    a.cc.cwnd = 10000  # open the congestion window for a burst
    a.send(b"0123456789" * 3)
    segs = a.take_output()
    assert len(segs) >= 3
    reordered = [segs[1], segs[0]] + segs[2:]
    for seg in reordered:
        b.segment_arrives(TCPSegment.unpack(A_IP, B_IP, seg.pack(A_IP, B_IP)))
    assert b.receive(100) == b"0123456789" * 3
    assert b.stats.out_of_order >= 1


def test_duplicate_segment_ignored():
    a, b = make_pair()
    a.send(b"dupdata")
    (seg,) = a.take_output()
    packed = seg.pack(A_IP, B_IP)
    b.segment_arrives(TCPSegment.unpack(A_IP, B_IP, packed))
    b.segment_arrives(TCPSegment.unpack(A_IP, B_IP, packed))
    assert b.receive(100) == b"dupdata"
    assert b.stats.bad_segments >= 1  # the duplicate fell outside the window


def test_fast_retransmit_via_dup_acks():
    cfg = TCPConfig(mss=100, nodelay=True, delayed_ack=False)
    a, b = make_pair(a_cfg=cfg, b_cfg=TCPConfig(mss=100, nodelay=True,
                                                delayed_ack=False))
    # Open the congestion window first.
    for _ in range(6):
        a.send(b"c" * 100)
        pump(a, b)
        b.receive(1000)
    a.send(b"L" * 100)  # this one will be lost
    (lost,) = a.take_output()
    sent_more = []
    for _ in range(4):  # four following segments -> four dup ACKs
        a.send(b"F" * 100)
        sent_more += a.take_output()
    for seg in sent_more:
        b.segment_arrives(TCPSegment.unpack(A_IP, B_IP, seg.pack(A_IP, B_IP)))
    dups = b.take_output()
    assert len(dups) >= 3
    for seg in dups:
        a.segment_arrives(TCPSegment.unpack(B_IP, A_IP, seg.pack(B_IP, A_IP)))
    assert a.cc.fast_retransmits == 1
    assert a.has_output()
    retrans = a._outbox  # peek: the retransmission leads
    assert retrans[0].payload.startswith(b"L")
    pump(a, b)
    for _ in range(10):  # slow-start the tail back out
        tick(a, b)
        pump(a, b)
    # Stream completes correctly after recovery.
    expected = b"c" * 0 + b"L" * 100 + b"F" * 400
    got = b.receive(10000)
    assert got == expected


def test_retransmission_timeout_recovers_lost_data():
    rng = random.Random(11)
    a, b = make_pair()
    payload = bytes(rng.randbytes(30000))
    sent = 0
    received = bytearray()
    guard = 0
    while len(received) < len(payload):
        if sent < len(payload):
            sent += a.send(payload[sent:])
        pump(a, b, lose=0.2, rng=rng)
        chunk = b.receive(1 << 20)
        received += chunk
        if not chunk:
            tick(a, b)
            guard += 1
            assert guard < 3000, "transfer stuck"
    assert bytes(received) == payload
    assert a.stats.retransmits > 0


def test_retransmit_gives_up_after_max_shift():
    a, b = make_pair()
    a.send(b"into the void")
    a.take_output()  # lose it, and everything after
    for _ in range(3000):
        a.tick_slow()
        a.take_output()
        if a.state == TCPState.CLOSED:
            break
    assert a.state == TCPState.CLOSED
    with pytest.raises(ConnectionTimedOut):
        a.raise_if_dead()


def test_send_buffer_backpressure():
    cfg = TCPConfig(snd_buf=1000, nodelay=True, delayed_ack=False)
    a, b = make_pair(a_cfg=cfg)
    taken = a.send(b"B" * 5000)
    assert 0 < taken <= 1000 + 1460  # buffer plus what went straight out


# ----------------------------------------------------------------------
# Teardown
# ----------------------------------------------------------------------

def test_active_close_reaches_time_wait_then_closed():
    a, b = make_pair()
    a.close()
    pump(a, b)
    assert a.state == TCPState.FIN_WAIT_2
    assert b.state == TCPState.CLOSE_WAIT
    b.close()
    pump(a, b)
    assert a.state == TCPState.TIME_WAIT
    assert b.state == TCPState.CLOSED
    for _ in range(4 * a.config.msl_ticks):
        a.tick_slow()
    assert a.state == TCPState.CLOSED
    assert a.error is None  # clean close is not an error


def test_half_close_allows_reverse_data():
    a, b = make_pair()
    a.close()  # a -> b half closed
    pump(a, b)
    b.send(b"still flowing")
    pump(a, b)
    assert a.receive(100) == b"still flowing"
    assert a.at_eof() is False  # b has not closed yet
    b.close()
    pump(a, b)
    assert a.receive(100) == b""
    assert a.at_eof()


def test_fin_consumed_after_data():
    a, b = make_pair()
    a.send(b"last words")
    a.close()
    pump(a, b)
    assert b.receive(100) == b"last words"
    assert b.at_eof()


def test_simultaneous_close():
    a, b = make_pair()
    a.close()
    b.close()
    pump(a, b)
    assert a.state in (TCPState.CLOSING, TCPState.TIME_WAIT)
    for _ in range(4 * a.config.msl_ticks):
        tick(a, b)
        pump(a, b)
    assert a.state == TCPState.CLOSED
    assert b.state == TCPState.CLOSED


def test_close_is_idempotent():
    a, b = make_pair()
    a.close()
    a.close()
    pump(a, b)
    assert a.state == TCPState.FIN_WAIT_2


def test_fin_retransmitted_when_lost():
    a, b = make_pair()
    a.close()
    a.take_output()  # FIN lost
    for _ in range(20):
        tick(a, b)
        pump(a, b)
        if b.state == TCPState.CLOSE_WAIT:
            break
    assert b.state == TCPState.CLOSE_WAIT


def test_abort_sends_rst_peer_sees_reset():
    a, b = make_pair()
    a.send(b"doomed")
    pump(a, b)
    a.abort()
    pump(a, b)
    assert a.state == TCPState.CLOSED
    assert b.state == TCPState.CLOSED
    with pytest.raises(ConnectionReset):
        b.receive(10)


def test_send_after_close_raises():
    a, b = make_pair()
    a.close()
    pump(a, b)
    with pytest.raises(TCPError):
        a.send(b"too late")


def test_time_wait_acks_retransmitted_fin():
    a, b = make_pair()
    a.close()
    pump(a, b)
    b.close()
    # Capture b's FIN and deliver it twice.
    fins = [s for s in b.take_output() if s.flags & FIN]
    assert fins
    packed = fins[0].pack(B_IP, A_IP)
    a.segment_arrives(TCPSegment.unpack(B_IP, A_IP, packed))
    assert a.state == TCPState.TIME_WAIT
    a.take_output()
    a.segment_arrives(TCPSegment.unpack(B_IP, A_IP, packed))
    acks = a.take_output()
    assert acks and acks[0].flags & ACK  # duplicate FIN re-ACKed


# ----------------------------------------------------------------------
# Migration (Section 3.2)
# ----------------------------------------------------------------------

def test_migration_preserves_unacked_and_undelivered_data():
    a, b = make_pair()
    a.send(b"carried across")
    a.take_output()  # the segment is "lost" in flight during migration
    state = a.export_state()
    a2 = TCPConnection((0, 0))
    a2.import_state(state)
    # a's in-flight segment was never delivered; a2 must retransmit it.
    for _ in range(20):
        tick(a2, b)
        pump(a2, b)
        if b.receivable():
            break
    assert b.receive(100) == b"carried across"
    a2.send(b" and more")
    pump(a2, b)
    assert b.receive(100) == b" and more"


def test_migration_rejects_undrained_outbox():
    a, b = make_pair()
    a.send(b"pending")
    with pytest.raises(TCPError):
        a.export_state()  # outbox still holds the data segment


def test_migration_into_active_connection_rejected():
    a, b = make_pair()
    state = a.export_state()
    with pytest.raises(TCPError):
        b.import_state(state)


def test_migrated_receive_queue_travels():
    a, b = make_pair()
    a.send(b"buffered at receiver")
    pump(a, b)
    assert b.receivable() > 0
    state = b.export_state()
    b2 = TCPConnection((0, 0))
    b2.import_state(state)
    assert b2.receive(100) == b"buffered at receiver"
