"""shutdown(2) half-close semantics across placements."""

import pytest

from repro.core.sockets import SOCK_STREAM
from repro.net.addr import ip_aton
from repro.world.configs import build_network

IP1 = ip_aton("10.0.0.1")
BOUND = 300_000_000


@pytest.mark.parametrize("config", ["mach25", "ux", "library-shm-ipf"])
def test_half_close_request_response(config):
    """The classic use: client sends a request and shuts down its write
    side (EOF marks end-of-request); the response still flows back."""
    net, pa, pb = build_network(config)
    api_a = pa.new_app()
    api_b = pb.new_app()
    ready = net.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7970)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, _ = yield from api_a.accept(fd)
        request = bytearray()
        while True:
            chunk = yield from api_a.recv(cfd, 4096)
            if not chunk:
                break  # the client's shutdown delivered EOF
            request.extend(chunk)
        yield from api_a.send_all(cfd, bytes(request).upper())
        yield from api_a.close(cfd)
        return bytes(request)

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, 7970))
        yield from api_b.send_all(fd, b"get the thing")
        yield from api_b.shutdown(fd)
        response = bytearray()
        while True:
            chunk = yield from api_b.recv(fd, 4096)
            if not chunk:
                break
            response.extend(chunk)
        yield from api_b.close(fd)
        return bytes(response)

    request, response = net.run_all([server(), client()], until=BOUND)
    assert request == b"get the thing"
    assert response == b"GET THE THING"


def test_shutdown_keeps_library_session_in_the_app():
    """Unlike close, shutdown must not migrate the session away — the
    read half stays on the application fast path."""
    net, pa, pb = build_network("library-shm-ipf")
    api_a = pa.new_app()
    api_b = pb.new_app()
    ready = net.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7971)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, _ = yield from api_a.accept(fd)
        while True:
            chunk = yield from api_a.recv(cfd, 4096)
            if not chunk:
                break
        yield from api_a.send_all(cfd, b"reply")

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, 7971))
        yield from api_b.shutdown(fd)
        migrations_after_shutdown = pb.server.migrations_in
        data = yield from api_b.recv(fd, 100)
        return migrations_after_shutdown, data

    _s, (migrations, data) = net.run_all([server(), client()], until=BOUND)
    assert migrations == 0  # shutdown did not hand the session back
    assert data == b"reply"
    assert api_b.library.stack.tcp_session_count() == 1


def test_send_after_shutdown_raises():
    net, pa, pb = build_network("mach25")
    api_a = pa.new_app()
    api_b = pb.new_app()
    ready = net.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7972)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, _ = yield from api_a.accept(fd)
        yield from api_a.recv(cfd, 100)

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, 7972))
        yield from api_b.shutdown(fd)
        try:
            yield from api_b.send(fd, b"too late")
        except Exception as exc:
            return type(exc).__name__
        return "no error"

    _s, err = net.run_all([server(), client()], until=BOUND)
    assert err != "no error"
