"""Client-side control-plane resilience: the acceptance battery.

The contract under test (the PR's headline): a NetServer crash during
any proxied operation — connect, accept, send, select, close, migrate,
fork — either completes after restart via idempotent replay and
re-registration, or fails with a clean ``SocketError``-family error.
It never hangs.  On top of that: circuit breaking fails fast and
recovers, ``select`` degrades instead of wedging when the server is
gone, closes are deferred and drained, admission control sheds load as
``ServerBusy`` (which the retry layer absorbs), and ``proxy_health``
exposes it all.
"""

import pytest

from repro.core.resilience import (
    CircuitBreaker,
    ResiliencePolicy,
    ServerUnavailable,
)
from repro.core.sockets import SOCK_STREAM, SocketError
from repro.faults import ControlFaultPlan, ServerCrashOnOp, ServerSlowOp
from repro.kernel.ipc import ServerBusy, ServerCrashed
from repro.net.addr import ip_aton
from repro.net.tcp.tcb import TCPError
from repro.stack.engine import SocketTimeout
from repro.world.configs import build_network

#: The documented clean-failure surface of a proxied operation: socket
#: errors, a crash observed mid-call, engine-level TCP errors (reset,
#: timed out), and SO_RCVTIMEO expiry.  Anything else is a bug.
CLEAN_ERRORS = (SocketError, ServerCrashed, TCPError, SocketTimeout)

IP1 = ip_aton("10.0.0.1")
IP2 = ip_aton("10.0.0.2")
BOUND = 1_200_000_000
N1 = 6_000  # received app-managed, before the migration
N2 = 6_000  # received server-managed, after the migration
OUT = bytes((i * 11 + 5) % 256 for i in range(2_000))
IN_PAYLOAD = bytes((i * 17 + 9) % 256 for i in range(N1 + N2))


def _supervisor(net, backend, stop):
    """Restart the server a fixed delay after any crash, until ``stop``."""
    def proc():
        while not stop.triggered:
            if not backend.alive:
                yield net.sim.timeout(600_000)
                backend.restart()
            else:
                yield net.sim.timeout(25_000)
    return proc()


# ----------------------------------------------------------------------
# The crash-during-every-op acceptance matrix
# ----------------------------------------------------------------------

#: Ops where the post-restart retry must fully complete: "before" leaves
#: no side effects, and for accept/return/close the replay + snapshot
#: machinery (re-registration, ``_migrating``, unknown-sid close as a
#: no-op) makes "after" safe too.
MUST_COMPLETE = {
    ("proxy_connect", "before"),
    ("proxy_accept", "before"),
    ("proxy_accept", "after"),
    ("proxy_return", "before"),
    ("proxy_return", "after"),
    ("proxy_close", "before"),
    ("proxy_close", "after"),
}

#: Server-managed data ops re-executed against a post-crash server may
#: find their session state gone (it lived only in the dead task): a
#: clean error is a documented acceptable outcome alongside success.
CRASH_MATRIX = sorted(MUST_COMPLETE | {
    ("proxy_connect", "after"),
    ("send", "before"),
    ("send", "after"),
    ("proxy_select", "before"),
    ("proxy_select", "after"),
})


@pytest.mark.parametrize("op,when", CRASH_MATRIX)
def test_crash_during_op_completes_or_fails_cleanly(op, when):
    """One odyssey through every proxied op with the server crashing
    inside the op under test; a supervisor restarts it.  The workload
    must finish — ``run_all`` raising Deadlock is the failure mode this
    PR exists to prevent — and every non-ok step must be a SocketError.
    """
    net, pa, pb = build_network("library-shm-ipf")
    api_a = pa.new_app(name="srv-app")
    api_b = pb.new_app(name="cli-app")
    plan = ControlFaultPlan([ServerCrashOnOp(op, when=when)], seed=1)
    plan.attach(pa.server, libraries=[api_a.library])

    ready_a = net.sim.event()
    ready_b = net.sim.event()
    a_done = net.sim.event()
    acked_ev = net.sim.event()
    outcome = {}

    def odyssey():
        lfd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(lfd, 7460)
        yield from api_a.listen(lfd)
        ready_a.succeed()
        yield ready_b
        try:
            ofd = yield from api_a.socket(SOCK_STREAM)
            yield from api_a.connect(ofd, (IP2, 7461))
            yield from api_a.send_all(ofd, OUT)
            yield from api_a.close(ofd)
            outcome["connect"] = "ok"
        except CLEAN_ERRORS as exc:
            outcome["connect"] = "error: %s" % exc
        # Serve inbound attempts until the client confirms the ACK came
        # back.  A connection the TCP level completed inside a since-
        # crashed incarnation is half-open — the client abandons it after
        # a bounded wait and reconnects — so the server must loop rather
        # than pin its hopes on one accept.
        deadline = net.sim.now + 30_000_000
        while not acked_ev.triggered and net.sim.now < deadline:
            try:
                r, _w = yield from api_a.select([lfd], timeout=300_000)
                if acked_ev.triggered:
                    break
                if not r:
                    continue
                cfd, _peer = yield from api_a.accept(lfd)
            except CLEAN_ERRORS as exc:
                outcome["inbound"] = "error: %s" % exc
                continue
            try:
                d1 = yield from api_a.recv_exactly(cfd, N1)
                yield from api_a.migrate_to_server(cfd)
                empty = 0
                while True:
                    r, _w = yield from api_a.select([cfd], timeout=500_000)
                    if r:
                        break
                    empty += 1
                    if empty >= 8:
                        raise SocketError("no data after migrate")
                d2 = yield from api_a.recv_exactly(cfd, N2)
                yield from api_a.send_all(cfd, b"ACK!")
                outcome["inbound"] = "ok"
                outcome["data"] = d1 + d2
            except CLEAN_ERRORS as exc:
                outcome["inbound"] = "error: %s" % exc
            try:
                yield from api_a.close(cfd)
            except CLEAN_ERRORS:
                pass
            if outcome.get("inbound") == "ok":
                # Give the client a beat to confirm before re-checking.
                yield net.sim.timeout(200_000)
        try:
            yield from api_a.close(lfd)
            outcome["lclose"] = "ok"
        except CLEAN_ERRORS as exc:
            outcome["lclose"] = "error: %s" % exc
        a_done.succeed()

    def b_client():
        yield ready_a
        acked = False
        while not acked and not a_done.triggered:
            fd = yield from api_b.socket(SOCK_STREAM)
            try:
                yield from api_b.connect(fd, (IP1, 7460))
                yield from api_b.send_all(fd, IN_PAYLOAD)
                # Bounded ACK wait: if this connection was completed by a
                # dead server incarnation it is half-open — every byte was
                # ACKed pre-crash, so no retransmit or RST will ever flag
                # it.  Abandon after a few quiet seconds and reconnect.
                r = []
                for _ in range(12):
                    r, _w = yield from api_b.select([fd], timeout=300_000)
                    if r or a_done.triggered:
                        break
                if r:
                    ack = yield from api_b.recv_exactly(fd, 4)
                    acked = ack == b"ACK!"
            except CLEAN_ERRORS:
                pass
            try:
                yield from api_b.close(fd)
            except CLEAN_ERRORS:
                pass
        if acked:
            acked_ev.succeed()
        return acked

    def b_server():
        lfd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.bind(lfd, 7461)
        yield from api_b.listen(lfd)
        ready_b.succeed()
        got = b""
        while len(got) < len(OUT):
            if a_done.triggered:
                break  # the faulted side is finished; stop waiting
            r, _w = yield from api_b.select([lfd], timeout=400_000)
            if not r:
                continue
            cfd, _peer = yield from api_b.accept(lfd)
            # A crash on the sending side can strand the tail of OUT in
            # the dead server's unfinished graceful close: bound every
            # read so a lost tail can't wedge this process.
            yield from api_b.setsockopt(cfd, "rcvtimeo", 500_000)
            try:
                while len(got) < len(OUT):
                    chunk = yield from api_b.recv(cfd, len(OUT) - len(got))
                    if not chunk:
                        break
                    got += chunk
            except CLEAN_ERRORS:
                pass
            yield from api_b.close(cfd)
        yield from api_b.close(lfd)
        return got

    _none, acked, got_out, _sup = net.run_all(
        [odyssey(), b_client(), b_server(),
         _supervisor(net, pa.server, a_done)],
        until=BOUND,
    )

    # The crash under test really fired, and the server came back.
    assert plan.counters()["server-crash-on-op"]["crashes"] == 1
    assert pa.server.crashes == 1 and pa.server.generation == 1
    assert pa.server.alive and not pa.server.rpc.broken

    # Every step either completed or failed with a clean SocketError.
    for step in ("connect", "inbound", "lclose"):
        assert outcome[step] == "ok" or outcome[step].startswith("error: "), (
            step, outcome)

    if (op, when) in MUST_COMPLETE:
        assert outcome["inbound"] == "ok", outcome
        assert outcome["data"] == IN_PAYLOAD
        assert acked
        if (op, when) == ("proxy_connect", "before"):
            assert outcome["connect"] == "ok" and got_out == OUT
    if outcome.get("data") is not None:
        assert outcome["data"] == IN_PAYLOAD


# ----------------------------------------------------------------------
# S1: crash in the middle of fork's migration sweep
# ----------------------------------------------------------------------

@pytest.mark.parametrize("when", ["before", "after"])
def test_fork_survives_crash_mid_migration(when):
    """fork() migrates every open session to the server via proxy_return;
    the server dies inside that RPC.  The ``_migrating`` snapshot is
    re-reported at re-registration and the retried RPC replays the
    exported state — the fork completes and the connection keeps working
    from both the parent and the post-fork server-managed path."""
    net, pa, pb = build_network("library-shm-ipf")
    api_a = pa.new_app(name="srv-app")
    api_b = pb.new_app(name="cli-app")
    plan = ControlFaultPlan([ServerCrashOnOp("proxy_return", when=when)],
                            seed=2)
    plan.attach(pa.server, libraries=[api_a.library])
    ready = net.sim.event()
    done = net.sim.event()
    half = len(IN_PAYLOAD) // 2

    def server():
        lfd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(lfd, 7470)
        yield from api_a.listen(lfd)
        ready.succeed()
        cfd, _peer = yield from api_a.accept(lfd)
        d1 = yield from api_a.recv_exactly(cfd, half)
        child = yield from api_a.fork()  # crashes inside proxy_return
        d2 = yield from api_a.recv_exactly(cfd, len(IN_PAYLOAD) - half)
        yield from api_a.close(cfd)
        yield from child.close(cfd)
        yield from api_a.close(lfd)
        yield from child.close(lfd)
        done.succeed()
        return d1 + d2

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, 7470))
        yield from api_b.send_all(fd, IN_PAYLOAD)
        yield from api_b.close(fd)

    data, _c, _s = net.run_all(
        [server(), client(), _supervisor(net, pa.server, done)], until=BOUND)
    assert data == IN_PAYLOAD
    assert plan.counters()["server-crash-on-op"]["crashes"] == 1
    assert api_a.reregistrations == 1
    assert pa.server.rpc.retried_calls > 0


# ----------------------------------------------------------------------
# S2: watcher races and graceful degradation
# ----------------------------------------------------------------------

def test_tight_crash_restart_race_with_inflight_accept():
    """Crash with an accept parked and restart almost immediately —
    the retry/backoff and the watcher's re-registration race; the
    retried accept must land on the rebuilt listener.  Twice."""
    net, pa, pb = build_network("library-shm-ipf")
    api_a = pa.new_app(name="srv-app")
    api_b = pb.new_app(name="cli-app")
    ready = net.sim.event()
    kicked = net.sim.event()

    def server():
        lfd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(lfd, 7471)
        yield from api_a.listen(lfd)
        ready.succeed()
        cfd, _peer = yield from api_a.accept(lfd)  # parked through crashes
        data = yield from api_a.recv_exactly(cfd, 5)
        yield from api_a.close(cfd)
        yield from api_a.close(lfd)
        return data

    def controller():
        yield ready
        for _ in range(2):
            yield net.sim.timeout(30_000)
            pa.server.crash()
            yield net.sim.timeout(2_000)  # restart inside the backoff
            pa.server.restart()
        kicked.succeed()

    def client():
        yield kicked
        yield net.sim.timeout(50_000)
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, 7471))
        yield from api_b.send_all(fd, b"hello")
        yield from api_b.close(fd)

    data, _n, _c = net.run_all([server(), controller(), client()],
                               until=BOUND)
    assert data == b"hello"
    assert pa.server.crashes == 2
    assert api_a.reregistrations == 2
    assert not pa.server.rpc.broken


def test_breaker_fast_fails_select_degrades_close_defers():
    """With a circuit breaker configured and the server dead: a failed
    op trips the breaker; select then reports the server-managed fds as
    ready immediately (server-down degradation) instead of wedging;
    close defers its server half.  After restart, the watcher resets the
    breaker and the deferred close drains."""
    policy = ResiliencePolicy(retry_limit=2, backoff_base_us=5_000.0,
                              breaker_threshold=2,
                              breaker_cooldown_us=500_000.0)
    net, pa, pb = build_network("library-shm-ipf")
    api_a = pa.new_app(name="srv-app", policy=policy)
    api_b = pb.new_app(name="cli-app")
    ready = net.sim.event()
    results = {}

    def server():
        lfd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(lfd, 7472)
        yield from api_a.listen(lfd)
        ready.succeed()
        cfd, _peer = yield from api_a.accept(lfd)
        yield from api_a.migrate_to_server(cfd)  # server-managed now

        pa.server.crash()
        # 1. A mutation against the dead server exhausts its retries and
        #    raises ServerCrashed cleanly; its failures trip the breaker.
        try:
            yield from api_a.setsockopt(cfd, "rcvbuf", 32768)
        except ServerCrashed:
            results["setsockopt"] = "failed-clean"
        assert api_a.resilient.breaker.state == "open"

        # 2. select on a server-managed fd fast-fails through the open
        #    breaker and degrades: the fd is reported ready so the app
        #    goes and discovers the error itself — no wedge.
        before = net.sim.now
        r, _w = yield from api_a.select([cfd], timeout=10_000_000)
        results["select"] = (r, net.sim.now - before)

        # 3. close defers its server half instead of blocking the app.
        yield from api_a.close(cfd)
        results["deferred"] = api_a.closes_deferred

        yield net.sim.timeout(400_000)
        pa.server.restart()
        yield net.sim.timeout(3_000_000)  # rereg + deferred drain
        results["breaker_after"] = api_a.resilient.breaker.state
        results["closing_after"] = dict(api_a._closing)
        yield from api_a.close(lfd)

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, 7472))
        yield from api_b.send_all(fd, b"x" * 64)
        yield from api_b.close(fd)

    net.run_all([server(), client()], until=BOUND)
    assert results["setsockopt"] == "failed-clean"
    ready_fds, select_elapsed = results["select"]
    assert ready_fds  # degraded: reported ready, not blocked
    assert select_elapsed < 1_000_000  # fast, not the 10s timeout
    assert results["deferred"] == 1
    assert results["breaker_after"] == "closed"  # watcher reset it
    assert results["closing_after"] == {}  # the deferred close drained
    stats = api_a.control_stats()
    assert stats["breaker"]["trips"] >= 1
    assert stats["breaker"]["fast_fails"] >= 1


# ----------------------------------------------------------------------
# Admission control and health
# ----------------------------------------------------------------------

def test_admission_control_sheds_and_retry_absorbs():
    net, pa, _pb = build_network("library-shm-ipf")
    api = pa.new_app(name="app")
    plan = ControlFaultPlan(
        [ServerSlowOp(rate=1.0, stall_us=300_000.0, ops=("proxy_status",))],
        seed=4)
    plan.attach(pa.server, libraries=[api.library])
    pa.server.rpc.max_pending = 1

    def slow():
        yield from api.rpc.call(api.ctx, "proxy_status", args=(api.app_id,))
        return "done"

    def shed():
        yield net.sim.timeout(5_000)
        try:
            yield from api.rpc.call(api.ctx, "proxy_status",
                                    args=(api.app_id,))
        except ServerBusy:
            return "shed"
        return "served"

    def retried():
        # The resilient layer treats ServerBusy as retryable: backoff,
        # try again, succeed once the stall clears.
        yield net.sim.timeout(6_000)
        yield from api.resilient.call("proxy_status", args=(api.app_id,))
        return True  # completed without error once the stall cleared

    first, second, absorbed = net.run_all([slow(), shed(), retried()],
                                          until=BOUND)
    assert first == "done"
    assert second == "shed"
    assert absorbed
    assert pa.server.rpc.requests_shed >= 1
    assert api.resilient.retries >= 1
    assert pa.server.health_snapshot()["requests_shed"] >= 1


def test_proxy_health_op_reports_counters():
    net, pa, _pb = build_network("library-shm-ipf")
    api = pa.new_app(name="app")

    def worker():
        fd = yield from api.socket(SOCK_STREAM)
        yield from api.close(fd)
        report = yield from api.server_health()
        return report

    report = net.sim.run_process(worker())
    for key in ("pending", "inflight", "max_pending", "requests_shed",
                "deadline_expiries", "replies_dropped", "retried_calls",
                "replays_served", "duplicates_held", "ops_stalled",
                "ops_failed", "generation", "crashes", "records", "apps"):
        assert key in report, key
    assert report["generation"] == 0 and report["crashes"] == 0
    assert report["apps"] >= 1


def test_budget_exhaustion_raises_server_unavailable():
    policy = ResiliencePolicy(retry_limit=64, backoff_base_us=5_000.0,
                              op_budget_us=80_000.0)
    net, pa, _pb = build_network("library-shm-ipf")
    api = pa.new_app(name="app", policy=policy)
    pa.server.crash()

    def attempt():
        before = net.sim.now
        try:
            yield from api.socket(SOCK_STREAM)
        except ServerUnavailable:
            return net.sim.now - before
        return None

    elapsed = net.sim.run_process(attempt())
    assert elapsed is not None
    assert elapsed <= 200_000.0  # gave up near the budget, not 64 retries
    assert api.resilient.budget_exhaustions == 1


# ----------------------------------------------------------------------
# The breaker state machine, unit-level
# ----------------------------------------------------------------------

def test_circuit_breaker_lifecycle():
    b = CircuitBreaker(threshold=2, cooldown_us=1_000.0)
    assert b.admit(0.0)
    b.record_failure(0.0)
    assert b.state == "closed"
    b.record_failure(1.0)
    assert b.state == "open" and b.trips == 1

    assert not b.admit(2.0)  # still cooling down: fast-fail
    assert b.fast_fails == 1

    assert b.admit(1_001.0)  # cooldown over: the single probe
    assert b.state == "half-open" and b.probes == 1
    assert not b.admit(1_001.0)  # second caller is not admitted
    b.record_failure(1_001.0)  # probe failed: back to open
    assert b.state == "open"

    assert b.admit(2_002.0)  # next probe
    b.record_success()
    assert b.state == "closed"
    assert b.admit(2_003.0)
    snap = b.snapshot()
    assert snap["trips"] == 1 and snap["probes"] == 2
    assert snap["fast_fails"] >= 2
