"""Locks, conditions, semaphores, channels — including renege behavior."""

import pytest

from repro.sim import (
    Channel,
    Condition,
    Interrupt,
    Lock,
    PriorityLock,
    Semaphore,
    Timeout,
)
from repro.sim.errors import SimulationError


def test_lock_mutual_exclusion_fifo(sim):
    lock = Lock(sim)
    order = []

    def worker(name):
        yield from lock.acquire()
        order.append("%s-in" % name)
        yield Timeout(10)
        order.append("%s-out" % name)
        lock.release()

    sim.spawn(worker("a"))
    sim.spawn(worker("b"))
    sim.run()
    assert order == ["a-in", "a-out", "b-in", "b-out"]


def test_lock_release_unlocked_raises(sim):
    lock = Lock(sim)
    with pytest.raises(SimulationError):
        lock.release()


def test_lock_try_acquire(sim):
    lock = Lock(sim)
    assert lock.try_acquire()
    assert not lock.try_acquire()
    lock.release()
    assert lock.try_acquire()


def test_lock_renege_on_interrupt_does_not_leak(sim):
    """Interrupting a queued waiter must not leave the lock held forever.

    Regression test for the ghost-holder bug found during integration.
    """
    lock = Lock(sim)
    got = []

    def holder():
        yield from lock.acquire()
        yield Timeout(100)
        lock.release()

    def victim():
        try:
            yield from lock.acquire()
        except Interrupt:
            return "interrupted"
        lock.release()
        return "acquired"

    def survivor():
        yield Timeout(1)
        yield from lock.acquire()
        got.append(sim.now)
        lock.release()

    sim.spawn(holder())
    victim_proc = sim.spawn(victim())
    sim.spawn(survivor())
    sim.call_later(50, victim_proc.interrupt)
    sim.run()
    assert victim_proc.value == "interrupted"
    assert got == [100]  # the survivor got the lock when the holder freed it
    assert not lock.locked


def test_lock_renege_after_handoff_forwards(sim):
    """If the lock was handed to a dying waiter, it moves to the next."""
    lock = Lock(sim)
    events = []

    def holder():
        yield from lock.acquire()
        yield Timeout(10)
        lock.release()  # hands off to victim

    def victim():
        try:
            yield from lock.acquire()
            events.append("victim-acquired")
        except Interrupt:
            events.append("victim-interrupted")
            return

    def heir():
        yield Timeout(1)
        yield from lock.acquire()
        events.append("heir-acquired")
        lock.release()

    sim.spawn(holder())
    victim_proc = sim.spawn(victim())
    sim.spawn(heir())
    # Interrupt at exactly the hand-off time: queued behind the succeed.
    sim.call_later(10, victim_proc.interrupt)
    sim.run()
    assert "heir-acquired" in events
    assert not lock.locked


def test_priority_lock_orders_waiters(sim):
    plock = PriorityLock(sim)
    order = []

    def worker(name, priority, start):
        yield Timeout(start)
        yield from plock.acquire(priority)
        order.append(name)
        yield Timeout(50)
        plock.release()

    sim.spawn(worker("first", 5, 0))
    sim.spawn(worker("low", 9, 1))
    sim.spawn(worker("high", 0, 2))
    sim.run()
    assert order == ["first", "high", "low"]


def test_priority_lock_waiting_count(sim):
    plock = PriorityLock(sim)

    def holder():
        yield from plock.acquire(0)
        yield Timeout(100)
        plock.release()

    def waiter():
        yield from plock.acquire(1)
        plock.release()

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.run(until=50)
    assert plock.waiting() == 1
    sim.run()
    assert plock.waiting() == 0


def test_condition_wait_notify(sim):
    cond = Condition(sim)
    log = []

    def waiter():
        yield from cond.lock.acquire()
        yield from cond.wait()
        log.append(("woke", sim.now))
        cond.lock.release()

    def notifier():
        yield Timeout(30)
        yield from cond.lock.acquire()
        cond.notify()
        cond.lock.release()

    sim.spawn(waiter())
    sim.spawn(notifier())
    sim.run()
    assert log == [("woke", 30)]


def test_condition_wait_without_lock_raises(sim):
    cond = Condition(sim)

    def bad():
        yield from cond.wait()

    proc = sim.spawn(bad())
    sim.run()
    assert not proc.ok
    assert isinstance(proc.value, SimulationError)


def test_condition_notify_all(sim):
    cond = Condition(sim)
    woken = []

    def waiter(name):
        yield from cond.lock.acquire()
        yield from cond.wait()
        woken.append(name)
        cond.lock.release()

    for name in "abc":
        sim.spawn(waiter(name))

    def notifier():
        yield Timeout(5)
        yield from cond.lock.acquire()
        cond.notify_all()
        cond.lock.release()

    sim.spawn(notifier())
    sim.run()
    assert sorted(woken) == ["a", "b", "c"]


def test_semaphore_counts(sim):
    sem = Semaphore(sim, value=2)
    inside = []

    def worker(name):
        yield from sem.down()
        inside.append(name)
        yield Timeout(10)
        sem.up()

    for name in "abc":
        sim.spawn(worker(name))
    sim.run(until=5)
    assert len(inside) == 2  # only two units available
    sim.run()
    assert len(inside) == 3


def test_semaphore_negative_init(sim):
    with pytest.raises(ValueError):
        Semaphore(sim, value=-1)


def test_channel_fifo(sim):
    chan = Channel(sim)
    got = []

    def producer():
        for i in range(3):
            yield from chan.put(i)
            yield Timeout(1)

    def consumer():
        for _ in range(3):
            item = yield from chan.get()
            got.append(item)

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert got == [0, 1, 2]


def test_channel_bounded_blocks_producer(sim):
    chan = Channel(sim, capacity=1)
    timeline = []

    def producer():
        yield from chan.put("a")
        timeline.append(("put-a", sim.now))
        yield from chan.put("b")  # blocks until consumer takes "a"
        timeline.append(("put-b", sim.now))

    def consumer():
        yield Timeout(100)
        item = yield from chan.get()
        timeline.append(("got-%s" % item, sim.now))

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert timeline == [("put-a", 0), ("got-a", 100), ("put-b", 100)]


def test_channel_try_ops(sim):
    chan = Channel(sim, capacity=1)
    assert chan.try_put("x")
    assert not chan.try_put("y")
    ok, item = chan.try_get()
    assert ok and item == "x"
    ok, item = chan.try_get()
    assert not ok and item is None


def test_channel_capacity_validation(sim):
    with pytest.raises(ValueError):
        Channel(sim, capacity=0)


def test_channel_getter_renege_forwards_wakeup(sim):
    """An interrupted getter must hand its wakeup to the next getter."""
    chan = Channel(sim)
    got = []

    def getter(name):
        try:
            item = yield from chan.get()
        except Interrupt:
            return "%s-interrupted" % name
        got.append((name, item))
        return "%s-got" % name

    g1 = sim.spawn(getter("g1"))
    sim.spawn(getter("g2"))

    def producer():
        yield Timeout(10)
        g1.interrupt()  # scheduled first...
        yield from chan.put("item")  # ...then the item arrives

    sim.spawn(producer())
    sim.run()
    assert got == [("g2", "item")]
