"""The scale-out engine: calendar-queue store and locality dispatch.

Two contracts are pinned here.  First, the timer wheel: dense, sparse,
and far-future timers must fire in *exactly* the order the old linear
heap store produced — ``(when, seq)`` order, ties broken by insertion
sequence — under every push/pop interleaving.  Second, the
:class:`~repro.sim.scale.ScaleSimulator`: it must run real protocol
worlds to the same answers (every byte moved), inherit domains across
spawns, keep each same-instant batch stably grouped by host, and stay
bit-deterministic run to run.
"""

import heapq
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.ttcp import ttcp
from repro.core.sockets import SOCK_STREAM
from repro.sim.engine import Simulator
from repro.sim.process import Timeout
from repro.sim.scale import ScaleSimulator
from repro.sim.wheel import CalendarQueue
from repro.world.configs import build_network


# ----------------------------------------------------------------------
# CalendarQueue vs the linear heap store
# ----------------------------------------------------------------------

def _drain(queue):
    out = []
    while queue:
        out.append(queue.pop())
    return out


def _reference_order(items):
    heap = []
    for item in items:
        heapq.heappush(heap, item)
    out = []
    while heap:
        out.append(heapq.heappop(heap))
    return out


def _items(whens):
    return [(when, seq, None, ()) for seq, when in enumerate(whens)]


@pytest.mark.parametrize("pattern", ["dense", "sparse", "far_future", "mixed"])
def test_wheel_matches_heap_order(pattern):
    rng = random.Random(hash(pattern) & 0xFFFF)
    if pattern == "dense":
        # Hundreds of timers inside a couple of bucket widths, with
        # heavy time ties to exercise the sequence tie-break.
        whens = [rng.choice([0.5, 1.0, 1.5, 2.0]) * rng.randint(1, 60)
                 for _ in range(500)]
    elif pattern == "sparse":
        whens = [rng.uniform(0, 5_000_000.0) for _ in range(200)]
    elif pattern == "far_future":
        # Everything lands in the overflow heap and must decant cleanly.
        whens = [rng.uniform(1e9, 2e9) for _ in range(300)]
    else:
        whens = ([rng.uniform(0, 100.0) for _ in range(200)]
                 + [rng.uniform(1e6, 1e7) for _ in range(100)]
                 + [500_000.0] * 50)
    items = _items(whens)
    wheel = CalendarQueue()
    for item in items:
        CalendarQueue.heappush(wheel, item)
    assert _drain(wheel) == _reference_order(items)


def test_wheel_interleaved_push_pop_matches_heap():
    rng = random.Random(7)
    wheel = CalendarQueue(width=16.0, nbuckets=64)
    heap = []
    seq = 0
    popped_wheel, popped_heap = [], []
    for _ in range(3000):
        if heap and rng.random() < 0.45:
            popped_wheel.append(wheel.pop())
            popped_heap.append(heapq.heappop(heap))
        else:
            when = rng.choice([
                rng.uniform(0, 50.0),          # current bucket
                rng.uniform(0, 2_000.0),       # elsewhere in the ring
                rng.uniform(1e6, 1e8),         # overflow
            ])
            item = (when, seq, None, ())
            seq += 1
            wheel.push(item)
            heapq.heappush(heap, item)
        assert len(wheel) == len(heap)
    popped_wheel.extend(_drain(wheel))
    while heap:
        popped_heap.append(heapq.heappop(heap))
    assert popped_wheel == popped_heap


@given(st.lists(
    st.one_of(
        st.floats(min_value=0.0, max_value=1e9, allow_nan=False,
                  allow_infinity=False),
        st.none(),                       # a pop, if anything is queued
    ),
    max_size=200))
@settings(deadline=None, max_examples=60)
def test_wheel_property_any_interleaving_matches_heap(ops):
    wheel = CalendarQueue(width=8.0, nbuckets=32)
    heap = []
    seq = 0
    for op in ops:
        if op is None:
            if heap:
                assert wheel.pop() == heapq.heappop(heap)
        else:
            item = (op, seq, None, ())
            seq += 1
            wheel.push(item)
            heapq.heappush(heap, item)
        assert len(wheel) == len(heap)
        if heap:
            assert wheel.peek_when() == heap[0][0]
    drained = _drain(wheel)
    expected = []
    while heap:
        expected.append(heapq.heappop(heap))
    assert drained == expected


def test_wheel_push_behind_window_rebases():
    wheel = CalendarQueue(width=10.0, nbuckets=8)
    wheel.push((1e6, 0, None, ()))      # anchors the window far out
    wheel.push((5.0, 1, None, ()))      # behind the window: must rebase
    wheel.push((2e6, 2, None, ()))
    assert wheel.peek_when() == 5.0
    assert [item[0] for item in _drain(wheel)] == [5.0, 1e6, 2e6]


def test_wheel_peek_is_nondestructive():
    wheel = CalendarQueue()
    wheel.push((3.0, 0, None, ()))
    wheel.push((1.0, 1, None, ()))
    assert wheel.peek_when() == 1.0
    assert wheel[0][0] == 1.0
    assert len(wheel) == 2
    assert wheel.pop()[0] == 1.0


# ----------------------------------------------------------------------
# ScaleSimulator semantics
# ----------------------------------------------------------------------

def test_scale_sim_timer_order_matches_default_engine():
    def record(sim, log, tag, delays):
        def proc():
            for delay in delays:
                yield Timeout(delay)
                log.append((sim.now, tag))
        return proc()

    def run(sim_cls):
        sim = sim_cls()
        log = []
        # Distinct deadlines only: same-instant batches may legally
        # regroup on the scale engine, but distinct times never reorder.
        sim.spawn(record(sim, log, "a", [1.0, 2.5, 100.0, 1e6]))
        sim.spawn(record(sim, log, "b", [1.5, 2.5, 99.0, 2e6]))
        sim.run()
        return log

    assert run(Simulator) == run(ScaleSimulator)


def test_scale_sim_domain_inheritance():
    sim = ScaleSimulator()
    seen = {}

    def child():
        seen["child"] = sim.current.domain
        yield Timeout(1.0)

    def parent():
        seen["parent"] = sim.current.domain
        sim.spawn(child())
        yield Timeout(1.0)

    with sim.domain("host7"):
        sim.spawn(parent())
    sim.run()
    assert seen == {"parent": "host7", "child": "host7"}


def test_scale_sim_localizes_same_instant_batches():
    sim = ScaleSimulator()
    log = []

    def ticker(tag):
        yield Timeout(10.0)
        log.append(tag)

    # Spawn interleaved across two domains; all four timers fire at the
    # same instant, so the batch must regroup by domain (first-seen
    # order) instead of round-robin interleaving.
    for i, dom in enumerate(["a", "b", "a", "b"]):
        with sim.domain(dom):
            sim.spawn(ticker("%s%d" % (dom, i)))
    sim.run()
    assert log == ["a0", "a2", "b1", "b3"]


def test_scale_sim_runs_a_real_world_to_the_same_bytes():
    net, pa, pb = build_network("mach25", sim=ScaleSimulator())
    result = ttcp(net, pb, pa, total_bytes=64 * 1024, rcvbuf_kb=24)
    assert result.bytes_moved == 64 * 1024
    assert 100 < result.throughput_kbs < 1250


def test_scale_sim_is_deterministic_run_to_run():
    def run():
        net, pa, pb = build_network("library-shm", sim=ScaleSimulator())
        result = ttcp(net, pb, pa, total_bytes=32 * 1024, rcvbuf_kb=24)
        return (result.bytes_moved, result.elapsed_us, result.throughput_kbs)

    assert run() == run()


# ----------------------------------------------------------------------
# Indexed packet-filter demux (O(1) in the number of sessions)
# ----------------------------------------------------------------------

import struct

from repro.apps.protolat import protolat
from repro.filter.compile import (
    compile_arp_filter, compile_session_filter)
from repro.filter.insn import Insn, Op
from repro.filter.vm import validate
from repro.hw.platforms import DECSTATION_5000_200
from repro.kernel.kernel import QueueDelivery
from repro.net.addr import ip_aton
from repro.sim.sync import Channel
from repro.world.network import Network


def _udp_frame(src_ip, dst_ip, sport, dport):
    eth = b"\x02\x00" * 6 + b"\x08\x00"
    ip = struct.pack("!BBHHHBBHII", 0x45, 0, 28, 0, 0, 64, 17, 0,
                     ip_aton(src_ip), ip_aton(dst_ip))
    udp = struct.pack("!HHHH", sport, dport, 8, 0)
    return eth + ip + udp


def _scale_host():
    net = Network(sim=ScaleSimulator())
    host = net.add_host("10.0.0.1", DECSTATION_5000_200)
    assert host.kernel._demux_index is not None
    return net, host


def test_indexed_demux_selects_only_the_matching_session():
    _net, host = _scale_host()
    kernel = host.kernel
    handles = [
        kernel.install_filter(
            compile_session_filter(17, host.ip, 20000 + i),
            QueueDelivery(Channel(host.sim)))
        for i in range(100)
    ]
    frame = _udp_frame("10.0.0.2", "10.0.0.1", 555, 20050)
    session_cands = [h for h in kernel._demux_candidates(frame)
                     if getattr(h.program, "demux_key", (None,))[0] == "sess"]
    assert session_cands == [handles[50]]


def test_indexed_demux_exact_session_beats_wildcard():
    _net, host = _scale_host()
    kernel = host.kernel
    wildcard = kernel.install_filter(
        compile_session_filter(6, host.ip, 80),
        QueueDelivery(Channel(host.sim)))
    exact = kernel.install_filter(
        compile_session_filter(6, host.ip, 80,
                               remote_ip=ip_aton("10.0.0.2"),
                               remote_port=555),
        QueueDelivery(Channel(host.sim)), front=True)
    frame = _udp_frame("10.0.0.2", "10.0.0.1", 555, 80)
    # _udp_frame writes proto 17; patch to TCP for this check.
    frame = frame[:23] + b"\x06" + frame[24:]
    cands = kernel._demux_candidates(frame)
    assert cands.index(exact) < cands.index(wildcard)


def test_indexed_demux_routes_arp_to_the_arp_bucket():
    _net, host = _scale_host()
    arp_frame = b"\x02\x00" * 6 + b"\x08\x06" + b"\x00" * 28
    cands = host.kernel._demux_candidates(arp_frame)
    assert cands, "ARP filter installed by ArpService must be a candidate"
    assert all(h.program.demux_key == ("arp",) for h in cands
               if getattr(h.program, "demux_key", None) is not None)
    assert compile_arp_filter().demux_key == ("arp",)


def test_indexed_demux_falls_back_to_unindexed_programs():
    _net, host = _scale_host()
    kernel = host.kernel
    accept_all = validate([Insn(Op.RET, k=0xFFFF)])  # plain list, no key
    handle = kernel.install_filter(accept_all, QueueDelivery(Channel(host.sim)))
    frame = _udp_frame("10.0.0.2", "10.0.0.1", 1, 2)
    assert handle in kernel._demux_candidates(frame)
    assert kernel.remove_filter(handle)
    assert handle not in kernel._demux_candidates(frame)


def test_indexed_demux_remove_filter_cleans_the_index():
    _net, host = _scale_host()
    kernel = host.kernel
    handle = kernel.install_filter(
        compile_session_filter(17, host.ip, 9999),
        QueueDelivery(Channel(host.sim)))
    frame = _udp_frame("10.0.0.2", "10.0.0.1", 1, 9999)
    assert handle in kernel._demux_candidates(frame)
    assert kernel.remove_filter(handle)
    assert handle not in kernel._demux_candidates(frame)
    assert not kernel.remove_filter(handle)  # idempotent, as before


def test_indexed_demux_runs_constant_programs_under_filter_load():
    """With 150 extra sessions installed, an indexed kernel still runs
    only a couple of programs per arriving frame where the linear scan
    runs most of the install list."""

    def run(sim=None):
        net, pa, pb = build_network("mach25", sim=sim)
        for host in net.hosts:
            for i in range(150):
                # front=True puts the noise ahead of the stack's own
                # protocol filters, where a linear scan must wade
                # through it for every arriving frame.
                host.kernel.install_filter(
                    compile_session_filter(17, host.ip, 30000 + i),
                    QueueDelivery(Channel(net.sim)), front=True)
        before = sum(h.kernel._vm.insns_executed for h in net.hosts)
        result = protolat(net, pb, pa, proto="udp", message_size=64, rounds=5)
        after = sum(h.kernel._vm.insns_executed for h in net.hosts)
        assert result.rounds == 5
        return after - before

    linear = run()
    indexed = run(sim=ScaleSimulator())
    assert indexed * 10 < linear


# ----------------------------------------------------------------------
# Scale-mode tick registry (armed sessions only)
# ----------------------------------------------------------------------

def test_scale_tick_registry_parks_quiescent_sessions():
    net, pa, pb = build_network("mach25", sim=ScaleSimulator())
    result = protolat(net, pb, pa, proto="tcp", message_size=200, rounds=3)
    assert result.rounds == 3
    stacks = [pa._backend.stack, pb._backend.stack]
    assert all(s._armed is not None for s in stacks)
    # Give the slow timer a few seconds: every surviving session has
    # gone quiescent (or into TIME_WAIT, whose 2MSL timer keeps it
    # armed until expiry), so the armed registries must be far smaller
    # than "every session, forever".
    net.sim.run(until=net.sim.now + 5_000_000)
    for stack in stacks:
        for session in stack._armed:
            assert stack._needs_ticks(session.conn)


def test_scale_tick_registry_credits_idle_time_on_rearm():
    net, pa, pb = build_network("mach25", sim=ScaleSimulator())
    # Establish a connection, let it idle long enough to be parked,
    # then send again: the transfer must still complete (and the
    # re-arm credits the skipped slow ticks into t_idle first).
    api_a, api_b = pa.new_app(), pb.new_app()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7070)
        yield from api_a.listen(fd)
        child, _addr = yield from api_a.accept(fd)
        total = b""
        while len(total) < 6:
            data = yield from api_a.recv(child, 64)
            if not data:
                break
            total += data
        yield from api_a.close(child)
        yield from api_a.close(fd)
        return total

    def client():
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (net.hosts[0].ip, 7070))
        yield from api_b.send_all(fd, b"abc")
        # Idle well past several slow ticks: the session parks.
        yield Timeout(10_000_000.0)
        yield from api_b.send_all(fd, b"def")
        yield from api_b.close(fd)
        return b"ok"

    got, _ = net.run_all([server(), client()])
    assert got == b"abcdef"
