"""The measurement applications themselves."""

import pytest

from repro.apps.protolat import LatencyResult, protolat
from repro.apps.ttcp import TtcpResult, ttcp
from repro.world.configs import build_network


def test_ttcp_moves_every_byte():
    net, pa, pb = build_network("mach25")
    result = ttcp(net, pb, pa, total_bytes=256 * 1024, rcvbuf_kb=24)
    assert isinstance(result, TtcpResult)
    assert result.bytes_moved == 256 * 1024
    assert result.elapsed_us > 0
    # 10 Mb/s ceiling: nothing can beat ~1250 KB/s.
    assert 100 < result.throughput_kbs < 1250


def test_ttcp_respects_wire_ceiling_various_sizes():
    net, pa, pb = build_network("mach25")
    result = ttcp(net, pb, pa, total_bytes=128 * 1024, write_size=1024,
                  rcvbuf_kb=16)
    assert result.bytes_moved == 128 * 1024
    assert result.throughput_kbs < 1250


def test_protolat_udp_statistics():
    net, pa, pb = build_network("mach25")
    result = protolat(net, pb, pa, proto="udp", message_size=64, rounds=20)
    assert isinstance(result, LatencyResult)
    assert result.rounds == 20
    assert result.min_rtt_us <= result.mean_rtt_us <= result.max_rtt_us
    assert result.mean_rtt_ms > 0.1  # the wire alone costs ~0.1 ms


def test_protolat_tcp_echo_correctness():
    net, pa, pb = build_network("library-shm-ipf")
    result = protolat(net, pb, pa, proto="tcp", message_size=300, rounds=15)
    assert result.rounds == 15


def test_protolat_rejects_unknown_proto():
    net, pa, pb = build_network("mach25")
    with pytest.raises(ValueError):
        protolat(net, pb, pa, proto="sctp")


def test_latency_str_formats():
    result = LatencyResult("udp", 1, 10, 1234.5, 1000.0, 1500.0)
    assert "1.23 ms" in str(result)


def test_ttcp_str_formats():
    result = TtcpResult(1024 * 1024, 1_000_000.0, 1024.0, 900_000.0)
    assert "1024 KB" in str(result)
