"""Distributed-telemetry plumbing: the metric-snapshot merge algebra
(property tested), eviction-counter survival across island merges, the
always-on flight recorder and its deadlock dump, and the server's
per-op latency histograms."""

from functools import reduce

from hypothesis import given, settings, strategies as st

from repro.core.sockets import SOCK_STREAM
from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    TimeSeries,
    merge_snapshots,
)
from repro.net.addr import ip_aton
from repro.osserver.unix_server import SLOW_OP_US
from repro.sim.engine import Simulator
from repro.sim.errors import Deadlock
from repro.trace.flight import (
    FlightRecorder,
    dump_deadlock,
    merge_flight_states,
    timeline,
)
from repro.trace.recorder import TraceRecorder, merge_trace_states
from repro.world.configs import build_network


# ----------------------------------------------------------------------
# Merge algebra: order-insensitive, provenance-preserving
# ----------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 2 ** 20), min_size=1, max_size=5))
def test_counter_merge_sums_and_is_order_insensitive(values):
    snaps = []
    for island, value in enumerate(values):
        counter = Counter("frames")
        counter.inc(value)
        snaps.append(counter.snapshot(island=island))
    forward = reduce(merge_snapshots, snaps)
    backward = reduce(merge_snapshots, list(reversed(snaps)))
    assert forward == backward
    assert forward["value"] == sum(values)
    assert forward["islands"] == list(range(len(values)))


@settings(max_examples=50, deadline=None)
@given(st.lists(st.lists(st.integers(0, 2 ** 40), max_size=20),
                min_size=1, max_size=4))
def test_histogram_merge_equals_one_big_histogram(partitions):
    # Observing a dataset split across islands then merging must equal
    # observing the whole dataset in one histogram.
    whole = Histogram("latency")
    snaps = []
    for island, chunk in enumerate(partitions):
        part = Histogram("latency")
        for value in chunk:
            part.observe(value)
            whole.observe(value)
        snaps.append(part.snapshot(island=island))
    merged = reduce(merge_snapshots, snaps)
    backward = reduce(merge_snapshots, list(reversed(snaps)))
    expected = whole.snapshot()
    for key in ("count", "sum", "min", "max", "mean", "p50", "p99",
                "counts"):
        assert merged[key] == expected[key], key
        assert backward[key] == expected[key], key


samples_lists = st.lists(
    st.lists(st.tuples(st.integers(0, 1_000), st.integers(-50, 50)),
             max_size=10),
    min_size=1, max_size=3)


def _gauge_snapshot(island, rows):
    # Real recorders sample at non-decreasing simulated time.
    times = iter([t for t, _v in rows])
    gauge = Gauge("queue_depth", now=lambda: next(times))
    for _t, value in rows:
        gauge.record(value)
    return gauge.snapshot(island=island)


@settings(max_examples=50, deadline=None)
@given(samples_lists)
def test_gauge_merge_keeps_per_island_provenance(partitions):
    partitions = [sorted(rows, key=lambda row: row[0])
                  for rows in partitions]
    snaps = [_gauge_snapshot(island, rows)
             for island, rows in enumerate(partitions)]
    forward = reduce(merge_snapshots, snaps)
    backward = reduce(merge_snapshots, list(reversed(snaps)))
    assert forward == backward
    assert forward["recorded"] == sum(len(rows) for rows in partitions)
    # The merged history is sorted by the total (t, island, seq) key...
    keys = [(s[2], s[0], s[1]) for s in forward["samples"]]
    assert keys == sorted(keys)
    # ...and every island's samples survive, in their original order.
    for island, rows in enumerate(partitions):
        kept = [(s[2], s[3]) for s in forward["samples"]
                if s[0] == island]
        assert kept == list(rows)


@settings(max_examples=50, deadline=None)
@given(samples_lists)
def test_series_merge_keeps_per_island_provenance(partitions):
    partitions = [sorted(rows, key=lambda row: row[0])
                  for rows in partitions]
    snaps = []
    for island, rows in enumerate(partitions):
        series = TimeSeries("tcp_probe", fields=("cwnd",))
        for t, value in rows:
            series.append(t, value)
        snaps.append(series.snapshot(island=island))
    forward = reduce(merge_snapshots, snaps)
    backward = reduce(merge_snapshots, list(reversed(snaps)))
    assert forward == backward
    assert forward["recorded"] == sum(len(rows) for rows in partitions)
    keys = [(s[2], s[0], s[1]) for s in forward["samples"]]
    assert keys == sorted(keys)
    for island, rows in enumerate(partitions):
        kept = [(s[2], s[3]) for s in forward["samples"]
                if s[0] == island]
        assert kept == list(rows)


# ----------------------------------------------------------------------
# Eviction counters survive island merges
# ----------------------------------------------------------------------

class _FakeSim:
    def __init__(self):
        self.now = 0.0
        self.current = None


def test_trace_eviction_counters_survive_merge():
    # Two island recorders with tiny rings; one wraps.  The merged view
    # must still know exactly how many spans were overwritten and stay
    # marked LOSSY.
    states = []
    for island, nspans in enumerate((7, 2)):
        sim = _FakeSim()
        recorder = TraceRecorder(sim, capacity=3)
        recorder.enable()
        for i in range(nspans):
            sim.now = float(i)
            recorder.record("host%d" % island, "ip", 1.0)
        states.append(recorder.export_state(island=island))
    merged = merge_trace_states(states)
    assert merged.islands == [0, 1]
    assert merged.spans_recorded == 9
    assert len(merged.spans) == 5          # 3 retained + 2 retained
    assert merged.spans_evicted == 4       # all inside island 0
    assert merged.lossy


def test_flight_eviction_counters_survive_merge():
    sims = [_FakeSim(), _FakeSim()]
    recorders = [FlightRecorder(sim, capacity=4) for sim in sims]
    for i in range(10):                    # island 0 wraps: 6 evicted
        sims[0].now = float(i)
        recorders[0].note("spawn", "p%d" % i)
    for i in range(3):                     # island 1 does not wrap
        sims[1].now = float(100 + i)
        recorders[1].note("exit", "q%d" % i)
    assert recorders[0].evicted == 6
    merged = merge_flight_states([
        recorder.export_state(island=island)
        for island, recorder in enumerate(recorders)])
    assert merged.recorded == 13
    assert len(merged.events) == 7
    assert merged.evicted == 6
    # Interleaved chronologically with island provenance intact.
    assert [event[1] for event in merged.events] == [0] * 4 + [1] * 3
    # The text renderer accepts merged events too.
    assert "6 evicted" in timeline(merged)


# ----------------------------------------------------------------------
# The flight recorder names the blocked process on a deadlock
# ----------------------------------------------------------------------

def test_deadlock_dump_names_the_blocked_process(tmp_path):
    sim = Simulator()

    def stuck():
        yield sim.event("never-fires")

    sim.spawn(stuck(), name="stuck-proc")
    try:
        sim.run(detect_deadlock=True)
        raise AssertionError("expected a Deadlock")
    except Deadlock as exc:
        assert exc.flight  # the ring travelled with the exception
        path = str(tmp_path / "post-mortem.flight")
        text = dump_deadlock(sim.flight, exc, path)
    assert "stuck-proc" in text
    assert "spawn" in text
    with open(path) as fh:
        assert "stuck-proc" in fh.read()
    with open(path + ".json") as fh:
        assert '"spawn stuck-proc"' in fh.read()


def test_flight_recorder_is_always_on():
    sim = Simulator()
    sim.spawn(sim.sleep(5), name="napper")
    sim.run()
    kinds = [event[1] for event in sim.flight.events]
    assert kinds == ["spawn", "exit"]
    assert sim.flight.recorded == 2
    assert sim.flight.evicted == 0


# ----------------------------------------------------------------------
# Per-op latency histograms and the slow-op log on the server
# ----------------------------------------------------------------------

def test_server_per_op_latency_and_slow_op_log():
    network, pa, pb = build_network("library-shm-ipf")
    api_a = pa.new_app(name="srv")
    api_b = pb.new_app(name="cli")
    ready = network.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7000)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, _ = yield from api_a.accept(fd)
        yield from api_a.close(cfd)
        yield from api_a.close(fd)

    def client():
        yield ready
        # Park before connecting so the server's accept op blocks long
        # enough to land in the slow-op log.
        yield network.sim.timeout(4 * SLOW_OP_US)
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (ip_aton("10.0.0.1"), 7000))
        yield from api_b.close(fd)

    network.run_all([server(), client()], until=60_000_000)
    health = pa._backend.health_snapshot()
    ops = health["op_latency"]
    assert ops["proxy_socket"]["count"] == 1
    assert ops["proxy_accept"]["count"] == 1
    assert ops["proxy_accept"]["max_us"] >= 4 * SLOW_OP_US
    assert ops["proxy_accept"]["p99_us"] >= ops["proxy_accept"]["mean_us"]
    slow = health["slow_ops"]
    assert any(entry["op"] == "proxy_accept"
               and entry["us"] >= SLOW_OP_US for entry in slow)
    # Fast ops stay out of the slow-op log.
    assert all(entry["us"] >= SLOW_OP_US for entry in slow)
    # Ops that park by contract are latency-tracked but never logged
    # as slow: they would evict the genuinely anomalous entries.
    assert "proxy_select" in type(pa._backend).SLOW_OP_EXEMPT
    assert not any(entry["op"] in type(pa._backend).SLOW_OP_EXEMPT
                   for entry in slow)
