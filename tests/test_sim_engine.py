"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Deadlock, Simulator, Timeout
from repro.sim.errors import SimulationError


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_call_later_ordering(sim):
    order = []
    sim.call_later(10, order.append, "b")
    sim.call_later(5, order.append, "a")
    sim.call_later(10, order.append, "c")  # same time: FIFO
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 10


def test_call_at_past_raises(sim):
    sim.call_later(10, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.call_at(5, lambda: None)


def test_run_until_bounds_clock(sim):
    hits = []
    sim.call_later(100, hits.append, 1)
    sim.call_later(200, hits.append, 2)
    sim.run(until=150)
    assert hits == [1]
    assert sim.now == 150
    sim.run()
    assert hits == [1, 2]


def test_run_until_in_past_raises(sim):
    sim.call_later(100, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.run(until=50)


def test_timeout_event_fires_with_value(sim):
    ev = sim.timeout(25, value="tick")
    sim.run()
    assert ev.triggered and ev.ok
    assert ev.value == "tick"


def test_negative_timeout_raises(sim):
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_run_process_returns_value(sim):
    def proc():
        yield Timeout(5)
        return 42

    assert sim.run_process(proc()) == 42
    assert sim.now == 5


def test_run_process_propagates_exception(sim):
    def proc():
        yield Timeout(1)
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError, match="boom"):
        sim.run_process(proc())


def test_run_process_stops_despite_background_work(sim):
    """A perpetual background process must not hang run_process."""

    def background():
        while True:
            yield Timeout(10)

    def worker():
        yield Timeout(35)
        return "done"

    sim.spawn(background())
    assert sim.run_process(worker()) == "done"
    assert sim.now == 35


def test_run_process_deadlock(sim):
    def stuck():
        yield sim.event()  # never triggered

    with pytest.raises(Deadlock):
        sim.run_process(stuck())


def test_run_all_collects_in_order(sim):
    def make(delay, value):
        def proc():
            yield Timeout(delay)
            return value

        return proc()

    values = sim.run_all([make(30, "late"), make(10, "early")])
    assert values == ["late", "early"]


def test_deadlock_detection_flag(sim):
    sim.spawn(iter([]).__iter__ and (x for x in []))  # trivial finished gen

    def stuck():
        yield sim.event()

    sim.spawn(stuck())
    with pytest.raises(Deadlock):
        sim.run(detect_deadlock=True)


def test_step_returns_false_when_empty(sim):
    assert sim.step() is False


def test_sleep_helper(sim):
    def proc():
        yield from sim.sleep(12.5)
        return sim.now

    assert sim.run_process(proc()) == 12.5


def test_determinism_two_identical_runs():
    def trace_run():
        s = Simulator()
        log = []

        def worker(name, period):
            for _ in range(5):
                yield Timeout(period)
                log.append((s.now, name))

        s.spawn(worker("a", 3.0))
        s.spawn(worker("b", 3.0))
        s.run()
        return log

    assert trace_run() == trace_run()


def test_event_double_trigger_raises(sim):
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
