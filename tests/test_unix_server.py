"""UX single-server internals: dispatch, concurrency, error transport."""

import pytest

from repro.core.sockets import SOCK_DGRAM, SOCK_STREAM, SocketError
from repro.net.addr import ip_aton
from repro.world.configs import build_network

IP1 = ip_aton("10.0.0.1")
BOUND = 200_000_000


@pytest.fixture
def ux_world():
    return build_network("ux")


def test_unknown_op_returns_error(ux_world):
    net, pa, _pb = ux_world
    api = pa.new_app()

    def prog():
        with pytest.raises(SocketError, match="unknown server op"):
            yield from api._call("frobnicate", 1, 2)
        return True

    assert net.run_all([prog()], until=BOUND)[0]


def test_server_errors_cross_the_rpc_boundary(ux_world):
    net, pa, _pb = ux_world
    api = pa.new_app()

    def prog():
        fd1 = yield from api.socket(SOCK_DGRAM)
        yield from api.bind(fd1, 9600)
        fd2 = yield from api.socket(SOCK_DGRAM)
        try:
            yield from api.bind(fd2, 9600)
        except Exception as exc:
            return type(exc).__name__
        return "no error"

    assert net.run_all([prog()], until=BOUND)[0] == "PortInUse"


def test_blocking_calls_do_not_stall_the_dispatcher(ux_world):
    """One app blocked in accept() must not prevent another app's calls
    from being served (per-request handler processes)."""
    net, pa, _pb = ux_world
    blocked_api = pa.new_app()
    live_api = pa.new_app()
    progress = []

    def blocker():
        fd = yield from blocked_api.socket(SOCK_STREAM)
        yield from blocked_api.bind(fd, 7400)
        yield from blocked_api.listen(fd)
        try:
            yield from blocked_api.accept(fd)  # blocks forever
        except Exception:
            pass

    def worker():
        yield net.sim.timeout(1_000_000)  # let the blocker block
        for i in range(3):
            fd = yield from live_api.socket(SOCK_DGRAM)
            yield from live_api.bind(fd, 9650 + i)
            progress.append(i)
        return len(progress)

    proc_b = net.sim.spawn(blocker())
    count = net.sim.run_process(worker(), until=BOUND)
    assert count == 3
    assert proc_b.alive  # still blocked, as expected


def test_two_apps_share_the_server_port_space(ux_world):
    net, pa, _pb = ux_world
    api1 = pa.new_app()
    api2 = pa.new_app()

    def prog():
        fd1 = yield from api1.socket(SOCK_DGRAM)
        yield from api1.bind(fd1, 9660)
        fd2 = yield from api2.socket(SOCK_DGRAM)
        with pytest.raises(Exception):
            yield from api2.bind(fd2, 9660)
        return True

    assert net.run_all([prog()], until=BOUND)[0]


def test_server_rpc_counts_accumulate(ux_world):
    net, pa, _pb = ux_world
    api = pa.new_app()
    rpc = pa.server.rpc

    def prog():
        before = rpc.calls
        fd = yield from api.socket(SOCK_DGRAM)
        yield from api.bind(fd, 9670)
        yield from api.close(fd)
        return rpc.calls - before

    assert net.run_all([prog()], until=BOUND)[0] == 3


def test_udp_data_path_goes_through_server(ux_world):
    net, pa, pb = ux_world
    api_a = pa.new_app()
    api_b = pb.new_app()
    ready = net.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_DGRAM)
        yield from api_a.bind(fd, 9680)
        ready.succeed()
        data, src = yield from api_a.recvfrom(fd)
        yield from api_a.sendto(fd, data, src)

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_DGRAM)
        rpcs_before = pb.server.rpc.calls
        yield from api_b.sendto(fd, b"via server", (IP1, 9680))
        data, _src = yield from api_b.recvfrom(fd)
        return data, pb.server.rpc.calls - rpcs_before

    _s, (data, rpc_delta) = net.run_all([server(), client()], until=BOUND)
    assert data == b"via server"
    assert rpc_delta >= 2  # sendto and recvfrom each crossed by RPC


def test_lightweight_sync_variant_builds():
    """The footnote-4 variant: the same server with light locks."""
    import dataclasses

    from repro.world.configs import CONFIGS, Placement
    from repro.world.network import Network
    from repro.hw.platforms import DECSTATION_5000_200

    spec = dataclasses.replace(CONFIGS["ux"], heavyweight_sync=False)
    network = Network()
    host = network.add_host("10.0.0.1", DECSTATION_5000_200)
    placement = Placement(spec, host)
    assert placement._backend.ctx.locks.name == "light"
    heavy = Placement(CONFIGS["ux"], network.add_host("10.0.0.2",
                                                      DECSTATION_5000_200))
    assert heavy._backend.ctx.locks.name == "spl"
    assert (heavy._backend.ctx.locks.wakeup_cost
            > placement._backend.ctx.locks.wakeup_cost)
