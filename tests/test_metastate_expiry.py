"""Cached metastate ages out (Section 3.3).

The application-resident ARP cache is a *cache*, not a copy: entries
carry the server's TTL, and an expired entry must force a fresh
``meta_arp`` RPC on the next send — silently, without disturbing the
data path.  Likewise the server-driven invalidation callback can fire
mid-transfer and the stream must not notice beyond one extra RPC.
"""

import pytest

from repro.core.sockets import SOCK_DGRAM, SOCK_STREAM
from repro.net.addr import ip_aton
from repro.net.arp import DEFAULT_TTL_US
from repro.world.configs import build_network

IP1 = ip_aton("10.0.0.1")
BOUND = 200_000_000


@pytest.fixture
def world():
    return build_network("library-shm-ipf")


def _udp_echo_once(net, api_a, api_b, port):
    """One UDP round trip; returns the client metastate stats."""
    ready = net.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_DGRAM)
        yield from api_a.bind(fd, port)
        ready.succeed()
        data, src = yield from api_a.recvfrom(fd)
        yield from api_a.sendto(fd, data, src)

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_DGRAM)
        yield from api_b.connect(fd, (IP1, port))
        yield from api_b.send(fd, b"ping")
        yield from api_b.recv(fd, 10)
        return dict(api_b.library.metastate.stats())

    _s, stats = net.run_all(
        [server(), client()], until=net.sim.now + BOUND
    )
    return stats


def test_expired_arp_entry_forces_fresh_meta_rpc(world):
    net, pa, pb = world
    api_a = pa.new_app()
    api_b = pb.new_app()

    stats = _udp_echo_once(net, api_a, api_b, 9600)
    assert stats["arp_rpcs"] == 1  # first use: one miss, one RPC

    # Sit idle past the entry's TTL.  Nothing invalidates anything: the
    # entry rots in place.
    net.sim.run(until=net.sim.now + DEFAULT_TTL_US + 1_000_000)
    meta = api_b.library.metastate
    assert meta.arp_cache.lookup(IP1) is None  # expired, counted a miss

    # The next send path resolves again — through MetastateCache.resolve,
    # since the library stack's NetEnv.resolve IS the metastate cache —
    # and pays exactly one more RPC.
    stats = _udp_echo_once(net, api_a, api_b, 9601)
    assert stats["arp_rpcs"] == 2
    assert stats["arp_misses"] >= 2


def test_fresh_entry_still_hits_within_ttl(world):
    net, pa, pb = world
    api_a = pa.new_app()
    api_b = pb.new_app()

    _udp_echo_once(net, api_a, api_b, 9602)
    # Well within the TTL: the cached entry answers, no second RPC.
    net.sim.run(until=net.sim.now + DEFAULT_TTL_US / 2)
    stats = _udp_echo_once(net, api_a, api_b, 9603)
    assert stats["arp_rpcs"] == 1
    assert stats["arp_hits"] >= 1


def test_invalidate_arp_mid_transfer_keeps_stream_intact(world):
    """The server yanks the client's cached ARP entry in the middle of a
    TCP stream: the send path re-resolves by RPC and the bytes land
    exactly once, in order."""
    net, pa, pb = world
    api_a = pa.new_app()
    api_b = pb.new_app()
    nbytes = 50_000
    payload = bytes((i * 11 + 5) % 256 for i in range(nbytes))
    ready = net.sim.event()
    started = net.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 9604)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, _ = yield from api_a.accept(fd)
        started.succeed()
        data = yield from api_a.recv_exactly(cfd, nbytes)
        yield from api_a.close(cfd)
        yield from api_a.close(fd)
        return data

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, 9604))
        yield from api_b.send_all(fd, payload)
        yield from api_b.close(fd)
        return dict(api_b.library.metastate.stats())

    def saboteur():
        yield started
        yield net.sim.timeout(3_000)  # mid-stream
        # The authoritative host-level invalidation: every registered
        # library cache (including api_b's on the other host) drops the
        # entry through its callback.
        pb.host.arp.invalidate(IP1)

    data, stats, _none = net.run_all(
        [server(), client(), saboteur()], until=BOUND
    )
    assert data == payload
    meta = api_b.library.metastate
    assert meta.invalidations >= 1
