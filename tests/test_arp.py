"""ARP packets and the cache."""

import pytest

from repro.net import arp
from repro.net.addr import ip_aton, make_mac

MAC1 = make_mac(1)
MAC2 = make_mac(2)
IP1 = ip_aton("10.0.0.1")
IP2 = ip_aton("10.0.0.2")


def test_request_reply_roundtrip():
    request = arp.ArpPacket.request(MAC1, IP1, IP2)
    parsed = arp.ArpPacket.unpack(request.pack())
    assert parsed.op == arp.OP_REQUEST
    assert parsed.sender_mac == MAC1
    assert parsed.target_ip == IP2

    reply = parsed.reply_from(MAC2)
    assert reply.op == arp.OP_REPLY
    assert reply.sender_mac == MAC2
    assert reply.sender_ip == IP2
    assert reply.target_mac == MAC1
    assert reply.target_ip == IP1


def test_unpack_rejects_short_and_foreign():
    with pytest.raises(ValueError):
        arp.ArpPacket.unpack(b"\x00" * 10)
    packet = bytearray(arp.ArpPacket.request(MAC1, IP1, IP2).pack())
    packet[0] = 9  # bogus hardware type
    with pytest.raises(ValueError):
        arp.ArpPacket.unpack(bytes(packet))


def test_bad_op_rejected():
    with pytest.raises(ValueError):
        arp.ArpPacket(3, MAC1, IP1, MAC2, IP2)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_cache_hit_and_expiry():
    clock = FakeClock()
    cache = arp.ArpCache(clock, ttl_us=100.0)
    cache.insert(IP1, MAC1)
    assert cache.lookup(IP1) == MAC1
    clock.now = 99.0
    assert cache.lookup(IP1) == MAC1
    clock.now = 100.0
    assert cache.lookup(IP1) is None
    assert cache.hits == 2
    assert cache.misses == 1


def test_cache_invalidate():
    cache = arp.ArpCache(FakeClock())
    cache.insert(IP1, MAC1)
    cache.invalidate(IP1)
    assert cache.lookup(IP1) is None
    cache.invalidate(IP2)  # invalidating absent entries is fine


def test_cache_entries_snapshot():
    clock = FakeClock()
    cache = arp.ArpCache(clock, ttl_us=50.0)
    cache.insert(IP1, MAC1)
    cache.insert(IP2, MAC2)
    assert cache.entries() == {IP1: MAC1, IP2: MAC2}
    clock.now = 60.0
    assert cache.entries() == {}


def test_cache_flush():
    cache = arp.ArpCache(FakeClock())
    cache.insert(IP1, MAC1)
    cache.flush()
    assert len(cache) == 0
