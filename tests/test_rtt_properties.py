"""Property-based RTT estimator testing.

The Jacobson/Karels estimator must be unconditionally safe: whatever
interleaving of measurements and retransmission backoffs a connection
lives through, the retransmission timeout it produces stays inside
[TCPTV_MIN, TCPTV_REXMTMAX] and the internal fixed-point state never
goes to zero or negative once a sample has been folded in.  (A wedged
estimator is exactly the kind of bug fault injection surfaces hours
into a soak; this pins it down in milliseconds.)
"""

from hypothesis import given, settings, strategies as st

from repro.net.tcp.timers import (
    BACKOFF,
    TCP_MAXRXTSHIFT,
    TCPTV_MIN,
    TCPTV_REXMTMAX,
    RTTEstimator,
)

# An estimator's life: RTT measurements (in slow ticks — 0 models a
# same-tick ACK, the seed-to-zero trap) interleaved with backoffs.
ops = st.lists(
    st.one_of(
        st.tuples(st.just("update"), st.integers(0, 400)),
        st.tuples(st.just("backoff"), st.none()),
    ),
    min_size=1,
    max_size=200,
)


@settings(max_examples=300, deadline=None)
@given(ops)
def test_rto_always_bounded_and_state_positive(sequence):
    est = RTTEstimator()
    measured = False
    for op, arg in sequence:
        if op == "update":
            est.update(arg)
            measured = True
        else:
            dropped = est.backoff()
            assert dropped == (est.rxtshift > TCP_MAXRXTSHIFT)
        rto = est.rto_ticks()
        assert TCPTV_MIN <= rto <= TCPTV_REXMTMAX
        if measured:
            # Once seeded, the fixed-point state must stay positive:
            # srtt/rttvar at zero would collapse every future RTO to
            # the floor and never grow with real variance again.
            assert est.srtt > 0
            assert est.rttvar > 0


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 3), st.integers(0, 3))
def test_zero_tick_measurements_do_not_wedge(first, second):
    """The regression the max(1, rtt) clamp fixes: sub-tick ACKs on a
    fast LAN must still leave a usable estimator."""
    est = RTTEstimator()
    est.update(first)
    est.update(second)
    assert est.srtt > 0 and est.rttvar > 0
    assert TCPTV_MIN <= est.rto_ticks() <= TCPTV_REXMTMAX


def test_backoff_walks_the_bsd_table():
    est = RTTEstimator()
    est.update(4)
    base_rto = est.rto_ticks()
    previous = 0
    for shift in range(len(BACKOFF)):
        rto = est.rto_ticks()
        assert rto == min(max(TCPTV_MIN, base_rto * BACKOFF[shift]),
                          TCPTV_REXMTMAX)
        assert rto >= previous  # backoff is monotone up to the cap
        previous = rto
        est.backoff()
