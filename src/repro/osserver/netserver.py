"""The operating system server of the paper's decomposed architecture.

The server manages everything that is *not* the send/receive fast path
(Figure 1): session creation and naming (the port namespace), connection
establishment and teardown, the shared routing/ARP metastate, fork and
select cooperation, and cleanup after dying applications.  Data transfer
never touches it while a session is application-managed.

It extends the UX machinery (it is, as in the paper, a derivative of
CMU's UNIX server): sessions migrated *back* from applications — by fork,
or while closing — are served through the ordinary RPC data path of
:class:`~repro.osserver.unix_server.UnixServer`.

Migration follows Section 3.2 exactly: a migrating session carries its
local endpoint, remote endpoint, connection state variables (with any
queued data), and a packet-filter port; the server installs/removes the
kernel packet filters on every transition.
"""

from repro.filter.compile import compile_session_filter
from repro.kernel.kernel import IPCDelivery
from repro.net import ip
from repro.net.ports import PortInUse
from repro.net.tcp.header import TCPSegment, RST, ACK
from repro.net.tcp.state import TCPState
from repro.sim.events import any_of
from repro.stack.engine import Notifier
from repro.stack.instrument import Layer
from repro.trace import adopt_trace, begin_send_trace
from repro.core.sockets import SOCK_DGRAM, SOCK_STREAM, SocketError
from repro.osserver.unix_server import REMAP_PER_BYTE, UnixServer

#: How long a dead application's ports stay quarantined (microseconds);
#: the paper delays the reopening of aborted connections.
PORT_QUARANTINE_US = 60 * 1_000_000.0


class SessionRecord:
    """The server's record of one decomposed network session."""

    __slots__ = ("sid", "kind", "app_id", "mode", "lport", "remote",
                 "app_filter", "server_filter", "server_handle", "owns_port",
                 "server_session", "last_snd_nxt", "last_rcv_nxt")

    def __init__(self, sid, kind, app_id):
        self.sid = sid
        self.kind = kind
        self.app_id = app_id
        self.mode = "embryonic"  # embryonic -> app / server -> closed
        self.lport = None
        self.remote = None
        self.app_filter = None  # kernel FilterHandle while app-managed
        self.server_filter = None  # kernel FilterHandle while server-managed
        self.server_handle = None  # UX-style fd while server-managed
        self.owns_port = True  # accepted children share the listener's port
        self.server_session = None  # engine session while server-managed
        # Sequence state at migration-out time: enough for the server to
        # abort the connection credibly if the application dies (§3.2).
        self.last_snd_nxt = 0
        self.last_rcv_nxt = 0


def config_from_opts(stack, opts):
    """Build a TCPConfig from a proxy-supplied socket-option dict."""
    opts = opts or {}
    overrides = {}
    if "rcvbuf" in opts:
        overrides["rcv_buf"] = opts["rcvbuf"]
    if "sndbuf" in opts:
        overrides["snd_buf"] = opts["sndbuf"]
    if "nodelay" in opts:
        overrides["nodelay"] = bool(opts["nodelay"])
    if "window_scale" in opts:
        overrides["window_scale"] = opts["window_scale"]
    return stack.tcp_config(**overrides)


class NetServer(UnixServer):
    """The paper's OS server: UX plus the proxy/migration interface."""

    #: proxy_select parks on app-supplied timeouts just like UX select,
    #: so it is latency-tracked but exempt from the slow-op log.
    SLOW_OP_EXEMPT = UnixServer.SLOW_OP_EXEMPT | {"proxy_select"}

    def __init__(self, host, accounting=None, tcp_defaults=None,
                 heavyweight_sync=True, name=None):
        super().__init__(
            host,
            accounting=accounting,
            tcp_defaults=tcp_defaults,
            heavyweight_sync=heavyweight_sync,
            # The catch-alls take stray traffic (RSTs for dead TCP ports,
            # ICMP unreachables for dead UDP ports); per-session filters
            # are installed at the front of the filter list and win.
            catch_all_filter=True,
            name=name or ("%s.netserver" % host.name),
        )
        self._apps = {}  # app_id -> ProtocolLibrary
        self._app_status = {}  # app_id -> Notifier (select cooperation)
        # ICMP is "exceptional" traffic (Section 3.1): it arrives via the
        # catch-all filters at the OS server, which answers echoes and
        # upcalls errors into the application session they belong to.
        self.stack.icmp_error_hook = self._icmp_error_upcall
        self.icmp_upcalls = 0
        self._records = {}
        self._next_sid = 1
        self.quarantined_ports = {}  # port -> release deadline
        self.migrations_out = 0
        self.migrations_in = 0
        self.aborted_for_death = 0
        # Crash/restart state (the failure-isolation half of the paper's
        # argument: the server can die and restart while library-resident
        # sessions keep moving data).
        self.alive = True
        self.generation = 0
        self.crashes = 0
        self.sessions_restored = 0
        self._background = {}  # sid -> graceful-close Process

    def _alloc_sid(self):
        sid = self._next_sid
        self._next_sid += 1
        return sid

    # ==================================================================
    # Crash and restart (failure isolation, the decomposition payoff)
    # ==================================================================

    def crash(self):
        """Kill this server incarnation, abruptly.

        Everything task-local dies: the RPC dispatcher and packet-input
        loops, in-flight request handlers, background closes, the stack
        (with its timers), the descriptor table, every session record, and
        the kernel filters the *server* owns.  What survives is exactly
        what lives elsewhere: per-session kernel filters pointing into
        application libraries, the libraries' own stacks and cached
        metastate, and the host-level ARP service.  Clients with calls in
        flight see :class:`~repro.kernel.ipc.ServerCrashed`.
        """
        if not self.alive:
            raise SocketError("crash() on a dead server")
        self.alive = False
        self.crashes += 1
        self.rpc.down("netserver crashed")
        for proc in (self._dispatch_proc, self._input_proc):
            if proc.alive:
                proc.interrupt("server crashed")
        for proc in list(self._inflight.values()):
            if proc.alive:
                proc.interrupt("server crashed")
        self._inflight.clear()
        for proc in list(self._background.values()):
            if proc.alive:
                proc.interrupt("server crashed")
        self._background.clear()
        for handle in self._catch_all_handles:
            self.host.kernel.remove_filter(handle)
        self._catch_all_handles = []
        for record in self._records.values():
            if record.server_filter is not None:
                self.host.kernel.remove_filter(record.server_filter)
                record.server_filter = None
        self._records = {}
        self._apps = {}
        self._app_status = {}
        self.quarantined_ports = {}
        # The dead incarnation's stack: stop its timers now.  The object
        # stays referenced (netstat of a dead server is legal) until
        # restart() replaces it.
        self.stack.shutdown(interrupt=True)

    def restart(self):
        """Boot a fresh incarnation and reopen the RPC port.

        The port namespace and session records start empty; surviving
        libraries repopulate them through ``proxy_reregister`` RPCs (their
        re-registration watchers fire as soon as the port reopens).
        """
        if self.alive:
            raise SocketError("restart() on a live server")
        self.generation += 1
        self.alive = True
        self._boot()
        self.stack.icmp_error_hook = self._icmp_error_upcall
        self.rpc.up()

    def op_proxy_reregister(self, message):
        """A surviving library reports itself and its live sessions after
        a restart; the server rebuilds records, port bindings, kernel
        filter bookkeeping, and listeners from the report.

        Idempotent per session id (retried RPCs may replay it); listeners
        are rebuilt in full (fresh engine session + server filter), while
        app-managed sessions only need their record and port binding back
        — their data path never left the application.
        """
        library, sessions = message.args
        self.register_app(library)
        restored = 0
        handles = {}  # sid -> fresh server handle, for rebuilt listeners
        # Listeners first, so an accepted child's shared port resolves to
        # owns_port=False via the bind conflict below.
        for snap in sorted(sessions, key=lambda s: not s.get("listener")):
            sid = snap["sid"]
            if sid in self._records:
                # A retry already rebuilt this one; still report its
                # handle so the replayed reply carries the full map.
                existing = self._records[sid].server_handle
                if existing is not None:
                    handles[sid] = existing
                continue
            self._next_sid = max(self._next_sid, sid + 1)
            record = SessionRecord(sid, snap["kind"], library.app_id)
            record.lport = snap["lport"]
            record.remote = tuple(snap["remote"]) if snap.get("remote") else None
            if record.lport is not None:
                proto = "tcp" if snap["kind"] == SOCK_STREAM else "udp"
                try:
                    self.stack.ports[proto].bind(self.host.ip, record.lport)
                except PortInUse:
                    record.owns_port = False
            self._records[sid] = record
            if snap.get("embryonic"):
                # A crash caught this session between proxy_socket and its
                # bind/connect: the bare record (sid, kind, maybe a
                # reserved port) is all the retried RPC needs to proceed.
                restored += 1
                continue
            if snap.get("listener"):
                listener = self.stack.tcp_create(
                    local_port=None,
                    config=config_from_opts(self.stack, snap.get("opts")),
                )
                self.stack.ports["tcp"].release(
                    self.host.ip, listener.conn.local[1]
                )
                listener.conn.local = (self.host.ip, record.lport)
                listener.owns_port = False
                self.stack.tcp_listen(listener, snap.get("backlog", 5))
                record.server_session = listener
                record.mode = "server"
                # The rebuilt listener's filter is a port wildcard; it
                # must sit BEHIND the surviving sessions' exact filters
                # (demux is first-match), exactly where the original
                # install order left it before the crash.  front=True
                # here would steal live connections' inbound segments
                # into the listener's stack.
                record.server_filter = self._install_server_filter(
                    ip.PROTO_TCP, record.lport, None, front=False
                )
                record.server_handle = self.fds.alloc(
                    SOCK_STREAM, listener
                ).fd
                handles[sid] = record.server_handle
            else:
                record.mode = "app"
                record.last_snd_nxt = snap.get("snd_nxt", 0)
                record.last_rcv_nxt = snap.get("rcv_nxt", 0)
                record.app_filter = snap.get("app_filter")
            restored += 1
        self.sessions_restored += restored
        yield self.ctx.charge(
            Layer.ENTRY_COPYIN, self.ctx.params.socket_layer
        )
        return (restored, handles), 0

    # ------------------------------------------------------------------
    # Application registration
    # ------------------------------------------------------------------

    def register_app(self, library):
        """Register an application's protocol library with the server.

        Wires the metastate invalidation callback of Section 3.3: changes
        to the authoritative ARP cache invalidate the app's cached copy.
        """
        self._apps[library.app_id] = library
        self._app_status[library.app_id] = Notifier(
            self.host.sim, "appstatus%d" % library.app_id
        )
        self.host.arp.register_invalidation(library.metastate.invalidate_arp)
        return library.app_id

    def _library(self, app_id):
        try:
            return self._apps[app_id]
        except KeyError:
            raise SocketError("unregistered application %r" % app_id) from None

    def _record(self, sid):
        try:
            return self._records[sid]
        except KeyError:
            raise SocketError("unknown session id %r" % sid) from None

    # ------------------------------------------------------------------
    # Filter plumbing
    # ------------------------------------------------------------------

    def _install_server_filter(self, proto, lport, remote, front=True):
        """Point a session's packets at the server's own input port."""
        rip, rport = remote if remote else (None, None)
        program = compile_session_filter(
            proto, self.host.ip, lport, remote_ip=rip, remote_port=rport
        )
        return self.host.kernel.install_filter(
            program,
            IPCDelivery(self._input_port, remap_per_byte=REMAP_PER_BYTE),
            accounting=self.accounting,
            name="%s.srvfilter:%d" % (self.name, lport),
            front=front,
        )

    def _install_app_filter(self, record, proto, remote):
        """Create the app-side packet-filter port and point the session's
        packets at it.  Returns the receiver the library will drain."""
        library = self._library(record.app_id)
        delivery, receiver = library.make_delivery()
        rip, rport = remote if remote else (None, None)
        program = compile_session_filter(
            proto, self.host.ip, record.lport, remote_ip=rip, remote_port=rport
        )
        record.app_filter = self.host.kernel.install_filter(
            program,
            delivery,
            accounting=library.accounting,
            name="%s.appfilter:%d" % (self.name, record.lport),
            front=True,
        )
        library.note_app_filter(record.sid, record.app_filter)
        return receiver

    def _remove_app_filter(self, record):
        if record.app_filter is not None:
            self.host.kernel.remove_filter(record.app_filter)
            record.app_filter = None
            library = self._apps.get(record.app_id)
            if library is not None:
                library.forget_app_filter(record.sid)

    def _alloc_port(self, proto_name, port):
        self._expire_quarantine()
        if port and port in self.quarantined_ports:
            raise SocketError("port %d is quarantined" % port)
        manager = self.stack.ports[proto_name]
        if port:
            return manager.bind(self.host.ip, port)
        while True:
            candidate = manager.bind_ephemeral(self.host.ip)
            if candidate not in self.quarantined_ports:
                return candidate
            manager.release(self.host.ip, candidate)

    def _expire_quarantine(self):
        now = self.host.sim.now
        expired = [p for p, t in self.quarantined_ports.items() if t <= now]
        for port in expired:
            del self.quarantined_ports[port]

    # ==================================================================
    # Proxy interface (the server-side half of Table 1)
    # ==================================================================

    def op_proxy_socket(self, message):
        app_id, kind = message.args
        self._library(app_id)  # validate registration
        if kind not in (SOCK_STREAM, SOCK_DGRAM):
            raise SocketError("unsupported socket type %r" % kind)
        sid = self._alloc_sid()
        self._records[sid] = SessionRecord(sid, kind, app_id)
        yield self.ctx.charge(Layer.ENTRY_COPYIN, self.ctx.params.socket_layer)
        return sid, 0

    def op_proxy_bind(self, message):
        """Set the local endpoint.  UDP sessions migrate to the app here;
        TCP sessions only get their port reserved (Section 3.2)."""
        sid, port = message.args
        record = self._record(sid)
        if record.kind == SOCK_DGRAM:
            record.lport = self._alloc_port("udp", port)
            receiver = self._install_app_filter(record, ip.PROTO_UDP, None)
            record.mode = "app"
            self.migrations_out += 1
            yield self.ctx.charge(
                Layer.ENTRY_COPYIN, self.ctx.params.socket_layer
            )
            return (record.lport, receiver), 0
        record.lport = self._alloc_port("tcp", port)
        yield self.ctx.charge(Layer.ENTRY_COPYIN, self.ctx.params.socket_layer)
        return (record.lport, None), 0

    def op_proxy_connect(self, message):
        """Set the remote endpoint; both protocols migrate to the app.

        For TCP the server performs the entire multi-phase handshake (the
        extra RPC is negligible next to it, Section 3.2) and hands over
        the established session's state variables.
        """
        sid, addr, opts = message.args
        record = self._record(sid)
        addr = tuple(addr)
        if record.kind == SOCK_DGRAM:
            if record.lport is None:
                record.lport = self._alloc_port("udp", 0)
            elif record.mode == "app":
                # Re-connecting a bound session narrows its filter.
                self._remove_app_filter(record)
            record.remote = addr
            receiver = self._install_app_filter(record, ip.PROTO_UDP, addr)
            record.mode = "app"
            self.migrations_out += 1
            return (record.lport, receiver), 0

        if record.lport is None:
            record.lport = self._alloc_port("tcp", 0)
        server_filter = self._install_server_filter(
            ip.PROTO_TCP, record.lport, None
        )
        session = self.stack.tcp_create(
            local_port=None, config=config_from_opts(self.stack, opts)
        )
        # tcp_create bound an ephemeral port; rebind to the record's port.
        self.stack.ports["tcp"].release(self.host.ip, session.conn.local[1])
        session.conn.local = (self.host.ip, record.lport)
        session.owns_port = False  # the record owns the binding
        try:
            yield from self.stack.tcp_connect(session, addr)
        except Exception:
            self.host.kernel.remove_filter(server_filter)
            raise
        record.remote = addr
        state = self.stack.export_tcp_session(session)
        record.last_snd_nxt = state["snd_nxt"]
        record.last_rcv_nxt = state["rcv_nxt"]
        self.host.kernel.remove_filter(server_filter)
        receiver = self._install_app_filter(record, ip.PROTO_TCP, addr)
        record.mode = "app"
        self.migrations_out += 1
        return (record.lport, state, receiver), 0

    def op_proxy_listen(self, message):
        """Open passively: the server awaits and completes connections."""
        sid, backlog, opts = message.args
        record = self._record(sid)
        if record.kind != SOCK_STREAM:
            raise SocketError("listen on a datagram session")
        if record.lport is None:
            record.lport = self._alloc_port("tcp", 0)
        listener = self.stack.tcp_create(
            local_port=None, config=config_from_opts(self.stack, opts)
        )
        self.stack.ports["tcp"].release(self.host.ip, listener.conn.local[1])
        listener.conn.local = (self.host.ip, record.lport)
        listener.owns_port = False
        self.stack.tcp_listen(listener, backlog)
        record.server_session = listener
        record.mode = "server"  # the listener itself stays with the server
        record.server_filter = self._install_server_filter(
            ip.PROTO_TCP, record.lport, None
        )
        # The listener gets a server-side descriptor so the app can put
        # it in a select set alongside migrated data sessions.
        record.server_handle = self.fds.alloc(SOCK_STREAM, listener).fd
        yield self.ctx.charge(Layer.ENTRY_COPYIN, self.ctx.params.socket_layer)
        return (record.lport, record.server_handle), 0

    def op_proxy_accept(self, message):
        """Migrate a passively-opened, established session to the app."""
        sid, app_id = message.args
        record = self._record(sid)
        listener = record.server_session
        if listener is None:
            raise SocketError("accept before listen")
        child = yield from self.stack.tcp_accept(listener)
        child_sid = self._alloc_sid()
        child_record = SessionRecord(child_sid, SOCK_STREAM, app_id)
        child_record.lport = record.lport
        child_record.owns_port = False
        child_record.remote = child.remote
        remote = child.remote
        state = self.stack.export_tcp_session(child)
        child_record.last_snd_nxt = state["snd_nxt"]
        child_record.last_rcv_nxt = state["rcv_nxt"]
        receiver = self._install_app_filter(child_record, ip.PROTO_TCP, remote)
        child_record.mode = "app"
        self._records[child_sid] = child_record
        self.migrations_out += 1
        return (child_sid, remote, state, receiver), 0

    def op_proxy_return(self, message):
        """A session migrates back to the server (fork, Section 3.2).

        The state travels as RPC payload (it contains the queued data);
        afterwards the session is server-managed and the app's descriptor
        maps to an ordinary server handle.
        """
        sid, state = message.args
        record = self._record(sid)
        if record.mode != "app":
            raise SocketError("proxy_return of a session not app-managed")
        self._remove_app_filter(record)
        if record.kind == SOCK_STREAM:
            session = self.stack.adopt_tcp_state(state)
            record.server_filter = self._install_server_filter(
                ip.PROTO_TCP, record.lport, record.remote
            )
        else:
            session = self.stack.adopt_udp_session(
                (self.host.ip, record.lport), remote=record.remote
            )
            record.server_filter = self._install_server_filter(
                ip.PROTO_UDP, record.lport, record.remote
            )
        record.server_session = session
        desc = self.fds.alloc(record.kind, session)
        record.server_handle = desc.fd
        record.mode = "server"
        self.migrations_in += 1
        yield self.ctx.charge(Layer.ENTRY_COPYIN, self.ctx.params.socket_layer)
        return record.server_handle, 0

    def op_proxy_close(self, message):
        """Clean shutdown: the session migrates back and the server runs
        the teardown handshake (FIN exchange, TIME_WAIT) on its own time."""
        sid, state = message.args
        record = self._records.get(sid)
        if record is None:
            # The record died with a crashed incarnation and was never
            # re-registered (an embryonic or post-fork server-managed
            # session): the retried close has nothing left to tear down.
            yield self.ctx.charge(
                Layer.ENTRY_COPYIN, self.ctx.params.socket_layer
            )
            return None, 0
        if record.kind == SOCK_DGRAM:
            self._remove_app_filter(record)
            self._release_record_port(record, "udp")
            record.mode = "closed"
            yield self.ctx.charge(
                Layer.ENTRY_COPYIN, self.ctx.params.socket_layer
            )
            return None, 0
        if record.mode == "app":
            self._remove_app_filter(record)
            if state is not None:
                session = self.stack.adopt_tcp_state(state)
                self.migrations_in += 1
                server_filter = self._install_server_filter(
                    ip.PROTO_TCP, record.lport, record.remote
                )
                self._spawn_close(record, session, server_filter)
            else:
                self._release_record_port(record, "tcp")
        elif record.mode == "server":
            if record.server_handle is not None:
                self.fds.free(record.server_handle)
                record.server_handle = None
            if record.server_session is not None:
                if record.server_session.conn.state == TCPState.LISTEN:
                    record.server_session.conn.close()
                    self.stack._deregister(record.server_session)
                    self._remove_server_filter(record)
                    self._release_record_port(record, "tcp")
                else:
                    session = record.server_session
                    server_filter, record.server_filter = (
                        record.server_filter, None
                    )
                    self._spawn_close(record, session, server_filter)
        elif record.mode == "embryonic":
            # Closing a bound-but-never-connected stream session must
            # still give its reserved port back.
            self._release_record_port(record, "tcp")
        record.mode = "closed"
        return None, 0

    def _remove_server_filter(self, record):
        if record.server_filter is not None:
            self.host.kernel.remove_filter(record.server_filter)
            record.server_filter = None

    def _spawn_close(self, record, session, server_filter):
        """Run a graceful close in the background, tracked so crash() can
        interrupt it."""
        self._background[record.sid] = self.host.sim.spawn(
            self._graceful_close(record, session, server_filter),
            name="%s.close%d" % (self.name, record.sid),
        )

    def _graceful_close(self, record, session, server_filter):
        """Drive a returned session through FIN/TIME_WAIT, then clean up."""
        try:
            yield from self.stack.tcp_close(session)
            while session.conn.state != TCPState.CLOSED:
                yield session.notify.wait()
            if server_filter is not None:
                self.host.kernel.remove_filter(server_filter)
            self._release_record_port(record, "tcp")
        finally:
            self._background.pop(record.sid, None)

    def _release_record_port(self, record, proto_name):
        if record.owns_port and record.lport is not None:
            try:
                self.stack.ports[proto_name].release(self.host.ip, record.lport)
            except KeyError:
                pass
            record.lport = None

    # ==================================================================
    # Cooperative select (Section 3.2's "information gap" bridge)
    # ==================================================================

    def op_proxy_status(self, message):
        """An application signals that an app-managed session changed
        status, releasing any select blocked on its behalf."""
        (app_id,) = message.args
        self._app_status[app_id].fire()
        yield self.ctx.charge(Layer.ENTRY_COPYIN, self.ctx.params.proc_call)
        return None, 0

    def op_proxy_select(self, message):
        """select() over the server-managed descriptors of one app, also
        waking when the app reports local status via proxy_status."""
        app_id, read_handles, write_handles, timeout = message.args
        deadline = None if timeout is None else self.ctx.sim.now + timeout
        yield self.ctx.charge(
            Layer.ENTRY_COPYIN, self.ctx.params.select_overhead
        )
        status = self._app_status[app_id]
        while True:
            ready_r, ready_w = self._poll_handles(read_handles, write_handles)
            if ready_r or ready_w:
                return (ready_r, ready_w, False), 0
            waits = [status.wait(), self.stack.select_notify.wait()]
            if deadline is not None:
                if self.ctx.sim.now >= deadline:
                    return ([], [], False), 0
                waits.append(self.ctx.sim.timeout(deadline - self.ctx.sim.now))
            for handle in list(read_handles) + list(write_handles):
                session = self.fds.get(handle).payload
                if session is not None:
                    session.selected = True
            winner, _value = yield any_of(self.ctx.sim, waits)
            if winner is waits[0]:
                # The app saw local status change: return so it rechecks.
                return ([], [], True), 0

    def health_snapshot(self):
        report = super().health_snapshot()
        report["records"] = sum(
            1 for r in self._records.values() if r.mode != "closed"
        )
        report["apps"] = len(self._apps)
        report["quarantined_ports"] = len(self.quarantined_ports)
        return report

    def _poll_handles(self, read_handles, write_handles):
        from repro.osserver.inkernel import _poll_desc

        ready_r = []
        ready_w = []
        for handle in read_handles:
            state = _poll_desc(self.stack, self.fds.get(handle))
            if state["readable"] or state["error"]:
                ready_r.append(handle)
        for handle in write_handles:
            state = _poll_desc(self.stack, self.fds.get(handle))
            if state["writable"] or state["error"]:
                ready_w.append(handle)
        return ready_r, ready_w

    def _icmp_error_upcall(self, proto, local_port, remote_addr, error):
        """Deliver an ICMP error to the application session it belongs
        to — the error arrived at the server (ICMP filters point here)
        but the session lives in an application's library."""
        for record in self._records.values():
            if (record.mode == "app" and record.kind == SOCK_DGRAM
                    and record.lport == local_port):
                library = self._apps.get(record.app_id)
                if library is None:
                    continue
                key = (local_port, remote_addr[0], remote_addr[1])
                session = library.stack._udp.get(key)
                if session is None:
                    session = library.stack._udp.get((local_port, None, None))
                if session is not None:
                    session.error = error
                    session.notify.fire()
                    self.icmp_upcalls += 1
                    return

    # ==================================================================
    # Metastate service (Section 3.3)
    # ==================================================================

    def op_meta_arp(self, message):
        app_id, next_hop_ip = message.args
        self._library(app_id)
        mac = yield from self.host.arp.resolve(self.ctx, next_hop_ip)
        return mac, 0

    def op_meta_route(self, message):
        _app_id, dst_ip = message.args
        next_hop = self.host.route(dst_ip)
        yield self.ctx.charge(Layer.ENTRY_COPYIN, self.ctx.params.proc_call)
        return next_hop, 0

    # ==================================================================
    # Process-death cleanup (Section 3.2, "Terminating session state")
    # ==================================================================

    def app_terminated(self, app_id):
        """The kernel reported an application's death: abort its live
        sessions by resetting remote peers, and quarantine the ports.

        Returns a generator to be driven in a simulation process.
        """
        records = [
            r
            for r in self._records.values()
            if r.app_id == app_id and r.mode == "app"
        ]
        for record in records:
            self._remove_app_filter(record)
            if record.kind == SOCK_STREAM and record.remote is not None:
                yield from self._send_abort_rst(record)
                self.quarantined_ports[record.lport] = (
                    self.host.sim.now + PORT_QUARANTINE_US
                )
                self.aborted_for_death += 1
            self._release_record_port(
                record, "tcp" if record.kind == SOCK_STREAM else "udp"
            )
            record.mode = "closed"
        self._apps.pop(app_id, None)

    def _send_abort_rst(self, record):
        """Reset the remote peer of a dead application's connection.

        The server does not know the dead app's *current* sequence state,
        but it remembers what it was at migration time; a RST sequenced
        there lands inside the peer's window unless the dead app moved a
        full window of data afterwards (in which case the peer's own
        retransmissions will eventually meet the quarantined port).
        """
        rst = TCPSegment(
            src_port=record.lport,
            dst_port=record.remote[1],
            seq=record.last_snd_nxt,
            ack=record.last_rcv_nxt,
            flags=RST | ACK,
        )
        packed = rst.pack(self.host.ip, record.remote[0])
        # The RST is a server-originated packet: shed whatever trace
        # context this cleanup process inherited and give it a timeline
        # of its own.
        adopt_trace(self.host.sim, None)
        begin_send_trace(self.ctx, self.host.name, len(packed))
        yield from self.stack.ip_output(ip.PROTO_TCP, record.remote[0], packed)
