"""The single-server placement: CMU UX / BNR2SS style.

The entire socket layer and protocol stack live in one user-level server
task.  Every application socket call is a Mach RPC; packet input arrives
from the kernel's packet filter as IPC.  Control and data therefore cross
"twice as many protection boundaries" as in-kernel protocols, and the
server's internal synchronization is the heavyweight simulated-spl
package — the two effects Table 4 charges the server placement for.
"""

import random
from collections import deque
from itertools import count

from repro.filter.compile import compile_ip_protocol_filter
from repro.metrics.registry import Histogram
from repro.hw.cpu import Priority
from repro.kernel.ipc import MessagePort, RPCPort
from repro.kernel.kernel import IPCDelivery
from repro.net import ip
from repro.sim.errors import Interrupt
from repro.sim.events import any_of
from repro.stack import dispatch
from repro.stack.context import ExecutionContext, light_locks, spl_locks
from repro.stack.engine import NetEnv, NetworkStack
from repro.stack.instrument import Layer, LayerAccounting
from repro.trace import adopt_trace, begin_send_trace
from repro.core.sockets import (
    SOCK_DGRAM,
    SOCK_STREAM,
    FDTable,
    SocketAPI,
    SocketError,
)
from repro.osserver.inkernel import _apply_sockopt, _poll_desc

#: Kernel->server packet delivery is by page remapping in UX, nearly free
#: per byte (Table 4's kernel copyout row for the server barely grows
#: with message size).
REMAP_PER_BYTE = 0.024

#: Completed request-id results remembered per incarnation, so retried or
#: fault-duplicated RPCs replay their reply instead of re-running side
#: effects.  FIFO-evicted; a crash wipes it (retries then re-execute
#: against re-registered state, which is the documented semantics).
REPLAY_CACHE_LIMIT = 512

#: An op taking longer than this (simulated microseconds, dispatch to
#: reply-ready) earns an entry in the bounded slow-op log.
SLOW_OP_US = 5_000.0

#: Slow-op log capacity: newest entries win, flight-recorder style.
SLOW_OP_LOG = 32


class UnixServer:
    """A user-level UNIX server owning the host's protocol stack."""

    #: Ops that park by design (app-supplied timeouts), so a long stay
    #: is expected, not anomalous: they still feed the per-op latency
    #: histograms but never the slow-op log, which would otherwise fill
    #: with by-contract waits and evict the genuinely slow entries.
    SLOW_OP_EXEMPT = frozenset({"select"})

    def __init__(self, host, accounting=None, tcp_defaults=None,
                 heavyweight_sync=True, catch_all_filter=True, name=None):
        self.host = host
        sim = host.sim
        self.name = name or ("%s.ux" % host.name)
        self.accounting = accounting or LayerAccounting()
        self._tcp_defaults = tcp_defaults
        self._catch_all_filter = catch_all_filter
        locks = spl_locks(host.platform) if heavyweight_sync else light_locks(
            host.platform
        )
        self.ctx = ExecutionContext(
            sim,
            host.cpu,
            priority=Priority.SERVER,
            locks=locks,
            accounting=self.accounting,
            name=self.name,
        )
        # The RPC port outlives server incarnations: clients keep a send
        # right across a crash; the port just reports broken until restart.
        self.rpc = RPCPort(sim, name="%s.rpc" % self.name)
        self._handler_seq = count()
        #: message -> handler Process, for crash() to interrupt cleanly.
        self._inflight = {}
        self._catch_all_handles = []
        # Cumulative control-plane counters (survive restarts; the replay
        # caches themselves are per-incarnation and reset in _boot).
        self.replays_served = 0
        self.duplicates_held = 0
        self.ops_stalled = 0
        self.ops_failed = 0
        #: Per-op service latency (dispatch to reply-ready): one
        #: log-bucket histogram per RPC op, plus a bounded ring of the
        #: slowest recent ops.  Cumulative across restarts, like the
        #: counters above; replayed duplicates are not re-counted.
        self.op_latency = {}
        self.slow_ops = deque(maxlen=SLOW_OP_LOG)
        self._boot()
        metrics = getattr(host, "metrics", None)
        if metrics is not None:
            metrics.observe_server(self)

    def _boot(self):
        """Build one server incarnation: stack, descriptor space, packet
        input, and the two service loops.  Called at construction and
        again on restart after a crash."""
        host = self.host
        sim = host.sim
        env = NetEnv(
            local_ip=host.ip,
            local_mac=host.mac,
            send_frame=self._send_frame,
            resolve=host.arp.resolve,
            route=host.route,
            arp_lookup=host.arp.lookup,
            resolve_miss=host.arp.resolve_miss,
        )
        self.stack = NetworkStack(
            self.ctx,
            env,
            name=self.name,
            udp_send_copies=True,
            tcp_defaults=self._tcp_defaults,
            metrics=getattr(host, "metrics", None),
        )
        self.fds = FDTable(first_fd=1000)  # server-side descriptor space
        old_port = getattr(self, "_input_port", None)
        self._input_port = MessagePort(sim, name="%s.pktin" % self.name)
        if old_port is not None:
            # An attached control-fault plan survives the incarnation.
            self._input_port.faults = old_port.faults
        #: req_id -> (result, reply_len) for completed requests, plus the
        #: FIFO eviction order; see REPLAY_CACHE_LIMIT.
        self._replay_cache = {}
        self._replay_order = []
        #: req_id -> [held duplicate Messages] while the original handler
        #: is still running; they are answered when it completes.
        self._replay_inflight = {}
        self._catch_all_handles = []
        if self._catch_all_filter:
            for proto in (ip.PROTO_TCP, ip.PROTO_UDP, ip.PROTO_ICMP):
                handle = host.kernel.install_filter(
                    compile_ip_protocol_filter(proto),
                    IPCDelivery(self._input_port, remap_per_byte=REMAP_PER_BYTE),
                    accounting=self.accounting,
                    name="%s.ipfilter" % self.name,
                )
                self._catch_all_handles.append(handle)
        self._input_proc = sim.spawn(
            self._input_loop(), name="%s.netin" % self.name
        )
        self._dispatch_proc = sim.spawn(
            self._dispatcher(), name="%s.rpcd" % self.name
        )

    # ------------------------------------------------------------------
    # Network plumbing
    # ------------------------------------------------------------------

    def _send_frame(self, ctx, frame):
        # The server is a user task: sending traps and copies.
        yield from self.host.kernel.netif_send(ctx, frame, wired=False)

    def _input_loop(self):
        if dispatch.TRAIN_DISPATCH:
            # Single-frame trains: same schedule, shallower resume chain
            # per packet.  port.receive handles trace adoption.
            while True:
                message = yield from self._input_port.receive(
                    self.ctx, Layer.KERNEL_COPYOUT
                )
                yield from self.stack.input_train((message.data,))
        while True:
            message = yield from self._input_port.receive(
                self.ctx, Layer.KERNEL_COPYOUT
            )
            yield from self.stack.input_frame(message.data)

    # ------------------------------------------------------------------
    # RPC dispatch: one handler process per request, so blocking calls
    # (accept, recv, a full send buffer) do not stall the server.
    # ------------------------------------------------------------------

    def _dispatcher(self):
        while True:
            message = yield from self.rpc.serve(self.ctx, layer=Layer.ENTRY_COPYIN)
            proc = self.host.sim.spawn(
                self._handle(message),
                name="%s.h%d" % (self.name, next(self._handler_seq)),
            )
            if proc.alive:
                self._inflight[message] = proc

    def _handle(self, message):
        # The handler runs in its own process; pick up the request's
        # packet trace so server-side charges join the right timeline.
        adopt_trace(self.host.sim, message.trace)
        rid = message.req_id
        try:
            if rid is not None:
                cached = self._replay_cache.get(rid)
                if cached is not None:
                    # Duplicate of a completed request: replay the reply,
                    # never the side effects (at-most-once execution per
                    # id per incarnation).
                    result, reply_len = cached
                    self.replays_served += 1
                    try:
                        yield self.ctx.charge(
                            Layer.ENTRY_COPYIN, self.ctx.params.proc_call
                        )
                        yield from self.rpc.reply(
                            self.ctx, message, result, reply_len=reply_len,
                            layer=Layer.COPYOUT_EXIT,
                        )
                    except Interrupt:
                        pass
                    return
                waiters = self._replay_inflight.get(rid)
                if waiters is not None:
                    # Duplicate while the original is still executing:
                    # park it; the original's completion answers it.
                    self.duplicates_held += 1
                    waiters.append(message)
                    return
                self._replay_inflight[rid] = []
            crash_after = None
            t0 = self.host.sim.now
            try:
                faults = self.rpc.faults
                if faults is not None:
                    stall_us, fail, crash = faults.on_serve(message.op)
                    if stall_us:
                        # A blocking stall (paging, lock wait), not a CPU
                        # burn: the handler sleeps so concurrent requests
                        # still reach the admission check and get shed.
                        self.ops_stalled += 1
                        yield self.host.sim.timeout(stall_us)
                    if crash == "before":
                        # Request consumed, no side effects yet: the
                        # cleanest crash a client can hope for.
                        self._crash_now()
                        return
                    crash_after = crash
                    if fail is not None:
                        self.ops_failed += 1
                        raise fail
                handler = getattr(self, "op_" + message.op, None)
                if handler is None:
                    raise SocketError("unknown server op %r" % message.op)
                result, reply_len = yield from handler(message)
            except Interrupt:
                return  # server crashed mid-op; the client's wait already failed
            except Exception as exc:  # noqa: BLE001 - errno travels back by RPC
                result, reply_len = exc, 0
            elapsed = self.host.sim.now - t0
            hist = self.op_latency.get(message.op)
            if hist is None:
                hist = self.op_latency[message.op] = Histogram(message.op)
            hist.observe(elapsed)
            if elapsed >= SLOW_OP_US and message.op not in self.SLOW_OP_EXEMPT:
                self.slow_ops.append((t0, message.op, elapsed))
            if crash_after == "after":
                # Side effects done, reply lost: the at-least-once window
                # that the replay/re-registration machinery must cover.
                self._crash_now()
                return
            if rid is not None and not isinstance(result, BaseException):
                self._remember_reply(rid, result, reply_len)
            replies = [message]
            if rid is not None:
                replies.extend(self._replay_inflight.pop(rid, ()))
            try:
                for msg in replies:
                    yield from self.rpc.reply(
                        self.ctx, msg, result, reply_len=reply_len,
                        layer=Layer.COPYOUT_EXIT,
                    )
            except Interrupt:
                return
        finally:
            self._inflight.pop(message, None)

    def _remember_reply(self, rid, result, reply_len):
        if rid in self._replay_cache:
            return
        if len(self._replay_order) >= REPLAY_CACHE_LIMIT:
            self._replay_cache.pop(self._replay_order.pop(0), None)
        self._replay_cache[rid] = (result, reply_len)
        self._replay_order.append(rid)

    def _crash_now(self):
        """Serve-fault crash hook: only the restartable NetServer knows
        how to crash; on a plain UnixServer the stage is inert.  The
        crash interrupts this very handler — a stale-token no-op as long
        as the caller returns immediately afterwards."""
        crash = getattr(self, "crash", None)
        if crash is not None and getattr(self, "alive", False):
            crash()

    # ------------------------------------------------------------------
    # Socket operations (server side)
    # ------------------------------------------------------------------

    def op_socket(self, message):
        (kind,) = message.args
        if kind == SOCK_STREAM:
            session = self.stack.tcp_create()
        elif kind == SOCK_DGRAM:
            session = None
        else:
            raise SocketError("unsupported socket type %r" % kind)
        desc = self.fds.alloc(kind, session)
        yield self.ctx.charge(Layer.ENTRY_COPYIN, self.ctx.params.socket_layer)
        return desc.fd, 0

    def _udp_session(self, desc, port=None):
        if desc.payload is None:
            desc.payload = self.stack.udp_create(local_port=port)
        return desc.payload

    def op_bind(self, message):
        handle, port = message.args
        desc = self.fds.get(handle)
        yield self.ctx.charge(Layer.ENTRY_COPYIN, self.ctx.params.socket_layer)
        if desc.kind == SOCK_DGRAM:
            self._udp_session(desc, port=port)
        else:
            old_port = desc.payload.conn.local[1]
            if old_port != port:
                self.stack.ports["tcp"].release(self.host.ip, old_port)
                self.stack.ports["tcp"].bind(self.host.ip, port)
                desc.payload.conn.local = (self.host.ip, port)
        return None, 0

    def op_listen(self, message):
        handle, backlog = message.args
        desc = self.fds.get(handle)
        self.stack.tcp_listen(desc.payload, backlog)
        yield self.ctx.charge(Layer.ENTRY_COPYIN, self.ctx.params.socket_layer)
        return None, 0

    def op_accept(self, message):
        (handle,) = message.args
        desc = self.fds.get(handle)
        child = yield from self.stack.tcp_accept(desc.payload)
        child_desc = self.fds.alloc(SOCK_STREAM, child)
        return (child_desc.fd, child.remote), 0

    def op_connect(self, message):
        handle, addr = message.args
        desc = self.fds.get(handle)
        if desc.kind == SOCK_DGRAM:
            self.stack.udp_connect(self._udp_session(desc), addr)
            yield self.ctx.charge(
                Layer.ENTRY_COPYIN, self.ctx.params.socket_layer
            )
        else:
            yield from self.stack.tcp_connect(desc.payload, addr)
        return None, 0

    def op_send(self, message):
        (handle,) = message.args
        desc = self.fds.get(handle)
        if desc.kind == SOCK_DGRAM:
            yield from self.stack.udp_send(desc.payload, message.data)
            n = len(message.data)
        else:
            n = yield from self.stack.tcp_send(desc.payload, message.data)
        return n, 0

    def op_recv(self, message):
        handle, max_bytes = message.args
        desc = self.fds.get(handle)
        if desc.kind == SOCK_DGRAM:
            _src, data = yield from self.stack.udp_recv(
                desc.payload, timeout_us=desc.payload.recv_timeout_us
            )
        else:
            data = yield from self.stack.tcp_recv(
                desc.payload, max_bytes,
                timeout_us=desc.payload.recv_timeout_us,
            )
        return data, len(data)

    def op_sendto(self, message):
        handle, addr = message.args
        desc = self.fds.get(handle)
        yield from self.stack.udp_send(
            self._udp_session(desc), message.data, dst=addr
        )
        return len(message.data), 0

    def op_recvfrom(self, message):
        (handle,) = message.args
        desc = self.fds.get(handle)
        session = self._udp_session(desc)
        src, data = yield from self.stack.udp_recv(
            session, timeout_us=session.recv_timeout_us
        )
        return (src, data), len(data)

    def op_shutdown(self, message):
        (handle,) = message.args
        desc = self.fds.get(handle)
        yield from self.stack.tcp_shutdown(desc.payload)
        return None, 0

    def op_close(self, message):
        (handle,) = message.args
        desc = self.fds.free(handle)
        if desc is not None and desc.payload is not None:
            if desc.kind == SOCK_DGRAM:
                self.stack.udp_close(desc.payload)
            else:
                yield from self.stack.tcp_close(desc.payload)
        return None, 0

    def op_setsockopt(self, message):
        handle, option, value = message.args
        desc = self.fds.get(handle)
        _apply_sockopt(desc, option, value)
        yield self.ctx.charge(Layer.ENTRY_COPYIN, self.ctx.params.proc_call)
        return None, 0

    def op_ping(self, message):
        """ICMP echo on behalf of an application (ping is an OS service;
        applications have no raw-socket access in this architecture)."""
        (dst_ip,) = message.args
        rtt = yield from self.stack.ping(dst_ip)
        return rtt, 0

    def op_traceroute(self, message):
        dst_ip, max_hops = message.args
        hops = yield from self.stack.traceroute(dst_ip, max_hops=max_hops)
        return hops, 0

    def op_select(self, message):
        read_handles, write_handles, timeout = message.args
        deadline = None if timeout is None else self.ctx.sim.now + timeout
        yield self.ctx.charge(
            Layer.ENTRY_COPYIN, self.ctx.params.select_overhead
        )
        while True:
            ready_r = [
                h
                for h in read_handles
                if _ready(_poll_desc(self.stack, self.fds.get(h)), "readable")
            ]
            ready_w = [
                h
                for h in write_handles
                if _ready(_poll_desc(self.stack, self.fds.get(h)), "writable")
            ]
            if ready_r or ready_w:
                return (ready_r, ready_w), 0
            if deadline is not None and self.ctx.sim.now >= deadline:
                return ([], []), 0
            for h in list(read_handles) + list(write_handles):
                session = self.fds.get(h).payload
                if session is not None:
                    session.selected = True
            waits = [self.stack.select_notify.wait()]
            if deadline is not None:
                waits.append(self.ctx.sim.timeout(deadline - self.ctx.sim.now))
            yield any_of(self.ctx.sim, waits)

    def op_proxy_health(self, message):
        """Admission/health snapshot for clients and the chaos harness."""
        yield self.ctx.charge(Layer.ENTRY_COPYIN, self.ctx.params.proc_call)
        return self.health_snapshot(), 0

    def health_snapshot(self):
        rpc = self.rpc
        return {
            "pending": rpc.pending(),
            "inflight": len(self._inflight),
            "max_pending": rpc.max_pending,
            "requests_shed": rpc.requests_shed,
            "deadline_expiries": rpc.deadline_expiries,
            "replies_dropped": rpc.replies_dropped,
            "retried_calls": rpc.retried_calls,
            "replays_served": self.replays_served,
            "duplicates_held": self.duplicates_held,
            "ops_stalled": self.ops_stalled,
            "ops_failed": self.ops_failed,
            "generation": getattr(self, "generation", 0),
            "crashes": getattr(self, "crashes", 0),
            "op_latency": {
                op: {"count": hist.count,
                     "mean_us": round(hist.mean(), 3),
                     "p99_us": hist.percentile(0.99),
                     "max_us": hist.max}
                for op, hist in sorted(self.op_latency.items())
            },
            "slow_ops": [{"t_us": t, "op": op, "us": elapsed}
                         for t, op, elapsed in self.slow_ops],
        }

    # ------------------------------------------------------------------

    def sockets(self, policy=None):
        """A socket API instance for one application process."""
        return ServerSocketAPI(self, policy=policy)


def _ready(state, field):
    return state[field] or state["error"]


class ServerSocketAPI(SocketAPI):
    """BSD sockets where every call is an RPC to the UNIX server.

    Calls now go through a :class:`ResilientCaller` with sequence-stamped
    request ids.  On the default policy the happy path is charge-for-
    charge identical to the historical raw ``rpc.call`` (no retry loop
    overhead in simulated time), but deadlines/breaker/budget knobs can
    be enabled per client via ``policy``.
    """

    _next_client_id = count(1)

    def __init__(self, server, policy=None):
        super().__init__()
        from repro.core.resilience import ResilientCaller

        self.server = server
        host = server.host
        self.ctx = ExecutionContext(
            host.sim,
            host.cpu,
            priority=Priority.APPLICATION,
            accounting=server.accounting,
            crossings=server.ctx.crossings,
            name="%s.app" % host.name,
        )
        self.client_id = next(ServerSocketAPI._next_client_id)
        self.resilient = ResilientCaller(
            server.rpc, self.ctx,
            rng=random.Random(3000 + self.client_id),
            policy=policy, name="%s.app%d" % (host.name, self.client_id),
        )
        self._req_seq = 0

    def _call(self, op, *args, data=b"", layer=Layer.ENTRY_COPYIN):
        self._req_seq += 1
        req_id = ("ux", self.client_id, self._req_seq)
        result = yield from self.resilient.call(
            op, args=args, data=data, layer=layer, req_id=req_id
        )
        return result

    # ------------------------------------------------------------------

    def socket(self, kind):
        handle = yield from self._call("socket", kind)
        desc = self.fds.alloc(kind, handle)
        return desc.fd

    def bind(self, fd, port):
        desc = self.fds.get(fd)
        yield from self._call("bind", desc.payload, port)

    def listen(self, fd, backlog=5):
        desc = self.fds.get(fd)
        yield from self._call("listen", desc.payload, backlog)

    def accept(self, fd):
        desc = self.fds.get(fd)
        child_handle, remote = yield from self._call("accept", desc.payload)
        child = self.fds.alloc(SOCK_STREAM, child_handle)
        return child.fd, remote

    def connect(self, fd, addr):
        desc = self.fds.get(fd)
        yield from self._call("connect", desc.payload, addr)

    def send(self, fd, data):
        desc = self.fds.get(fd)
        begin_send_trace(self.ctx, self.server.host.name, len(data))
        n = yield from self._call("send", desc.payload, data=bytes(data))
        return n

    def recv(self, fd, max_bytes):
        desc = self.fds.get(fd)
        data = yield from self._call(
            "recv", desc.payload, max_bytes, layer=Layer.COPYOUT_EXIT
        )
        return data

    def sendto(self, fd, data, addr):
        desc = self.fds.get(fd)
        begin_send_trace(self.ctx, self.server.host.name, len(data))
        n = yield from self._call("sendto", desc.payload, addr, data=bytes(data))
        return n

    def recvfrom(self, fd):
        desc = self.fds.get(fd)
        src, data = yield from self._call(
            "recvfrom", desc.payload, layer=Layer.COPYOUT_EXIT
        )
        return data, src

    def shutdown(self, fd):
        desc = self.fds.get(fd)
        yield from self._call("shutdown", desc.payload)

    def close(self, fd):
        desc = self.fds.free(fd)
        if desc is not None:
            yield from self._call("close", desc.payload)

    def setsockopt(self, fd, option, value):
        desc = self.fds.get(fd)
        yield from self._call("setsockopt", desc.payload, option, value)

    def select(self, read_fds, write_fds=(), timeout=None):
        read_handles = [self.fds.get(fd).payload for fd in read_fds]
        write_handles = [self.fds.get(fd).payload for fd in write_fds]
        ready_r, ready_w = yield from self._call(
            "select", read_handles, write_handles, timeout
        )
        handle_to_fd = {self.fds.get(fd).payload: fd for fd in
                        list(read_fds) + list(write_fds)}
        return (
            [handle_to_fd[h] for h in ready_r],
            [handle_to_fd[h] for h in ready_w],
        )

    def ping(self, dst_ip, **_kwargs):
        rtt = yield from self._call("ping", dst_ip)
        return rtt

    def traceroute(self, dst_ip, max_hops=16):
        hops = yield from self._call("traceroute", dst_ip, max_hops)
        return hops

    def fork(self):
        """Server-based sockets fork trivially: the sessions live in the
        server, so the child shares the server-side descriptors.  (A
        generator, like every socket call.)"""
        yield self.ctx.charge(
            Layer.ENTRY_COPYIN, self.ctx.params.proc_call
        )
        child = ServerSocketAPI(self.server)
        for desc in self.fds.descriptors():
            child.fds.adopt(desc)
        return child
