"""Operating system personalities.

* :mod:`repro.osserver.inkernel` — Mach 2.5 / Ultrix-style in-kernel
  protocols (the fast baseline in Tables 2-4),
* :mod:`repro.osserver.unix_server` — the CMU UX-style single server
  (every socket call is an RPC; the slow baseline),
* :mod:`repro.osserver.netserver` — the paper's operating system server:
  session creation, migration, teardown, port namespace, metastate.
"""

from repro.osserver.inkernel import InKernelNetwork, KernelSocketAPI
from repro.osserver.unix_server import UnixServer, ServerSocketAPI
from repro.osserver.netserver import NetServer

__all__ = [
    "InKernelNetwork",
    "KernelSocketAPI",
    "UnixServer",
    "ServerSocketAPI",
    "NetServer",
]
