"""The in-kernel protocol placement (Mach 2.5 / Ultrix / 386BSD style).

Protocols run inside the kernel at kernel priority with lightweight
synchronization.  Applications reach them with a trap per socket call;
packet input goes interrupt -> netisr -> protocol with no protection
boundary crossing and no kernel->user copy until the final copyout into
the receiver's buffer (the zeros in Table 4's ``kernel copyout`` row).
"""

from repro.filter.compile import compile_ip_protocol_filter
from repro.hw.cpu import Priority
from repro.kernel.kernel import QueueDelivery
from repro.net import ip
from repro.sim.sync import Channel
from repro.stack import dispatch
from repro.stack.context import ExecutionContext, light_locks
from repro.stack.engine import NetEnv, NetworkStack
from repro.stack.instrument import Layer, LayerAccounting
from repro.trace import adopt_trace, begin_send_trace, frame_trace
from repro.core.sockets import (
    SOCK_DGRAM,
    SOCK_STREAM,
    SocketAPI,
    SocketError,
)


class InKernelNetwork:
    """The kernel-resident protocol stack for one host."""

    def __init__(self, host, accounting=None, tcp_defaults=None):
        self.host = host
        sim = host.sim
        self.accounting = accounting or LayerAccounting()
        self.ctx = ExecutionContext(
            sim,
            host.cpu,
            priority=Priority.KERNEL,
            locks=light_locks(host.platform),
            accounting=self.accounting,
            name="%s.inkernel" % host.name,
        )
        env = NetEnv(
            local_ip=host.ip,
            local_mac=host.mac,
            send_frame=self._send_frame,
            resolve=host.arp.resolve,
            route=host.route,
            arp_lookup=host.arp.lookup,
            resolve_miss=host.arp.resolve_miss,
        )
        self.stack = NetworkStack(
            self.ctx,
            env,
            name="%s.kstack" % host.name,
            udp_send_copies=True,
            tcp_defaults=tcp_defaults,
            metrics=getattr(host, "metrics", None),
        )
        self._input = Channel(sim, name="%s.netisr" % host.name)
        # One filter per protocol catches all traffic for the host;
        # in-kernel demultiplexing happens in the protocol, not the filter.
        for proto in (ip.PROTO_TCP, ip.PROTO_UDP, ip.PROTO_ICMP):
            host.kernel.install_filter(
                compile_ip_protocol_filter(proto),
                QueueDelivery(self._input),
                accounting=self.accounting,
                name="%s.ipfilter" % host.name,
            )
        loop = (self._input_loop_train if dispatch.TRAIN_DISPATCH
                else self._input_loop)
        sim.spawn(loop(), name="%s.netin" % host.name)

    def _send_frame(self, ctx, frame):
        # Kernel mbufs are wired: straight to the device, no trap, no copy.
        yield from self.host.kernel.netif_send(ctx, frame, wired=True)

    def _input_loop(self):
        sim = self.host.sim
        while True:
            frame = yield from self._input.get()
            adopt_trace(sim, frame_trace(frame))
            yield from self.stack.input_frame(frame)

    def _input_loop_train(self):
        """:meth:`_input_loop` draining queued frames as one train.

        A ``get()`` on a non-empty netisr channel pops synchronously
        (no yield), so collecting the backlog with ``try_get`` and
        handing it to :meth:`NetworkStack.input_train` is the same
        engine schedule as the legacy one-frame-per-iteration loop;
        frames deposited while the train is processed are picked up by
        the next drain in the same FIFO order.
        """
        channel = self._input
        try_get = channel.try_get
        stack = self.stack
        while True:
            frame = yield from channel.get()
            train = [frame]
            while True:
                ok, nxt = try_get()
                if not ok:
                    break
                train.append(nxt)
            yield from stack.input_train(train, adopt=True)

    def sockets(self):
        """A socket API instance for one application process."""
        return KernelSocketAPI(self)


class KernelSocketAPI(SocketAPI):
    """BSD sockets entered by trap into the in-kernel stack."""

    def __init__(self, network):
        super().__init__()
        self.network = network
        self.stack = network.stack
        host = network.host
        # Application-side context: user priority, same accounting ledger.
        self.ctx = ExecutionContext(
            host.sim,
            host.cpu,
            priority=Priority.APPLICATION,
            accounting=network.accounting,
            crossings=network.ctx.crossings,
            name="%s.app" % host.name,
        )

    # ------------------------------------------------------------------

    def _enter(self, layer):
        if dispatch.TRAIN_DISPATCH:
            # Trap + socket-layer entry fused into one batch (nothing
            # runs between the two charges on the legacy path).
            self.ctx.crossings.user_kernel += 1
            p = self.ctx.params
            yield self.ctx.charge_batch(
                ((layer, p.trap), (layer, p.socket_layer)))
        else:
            yield self.ctx.charge_boundary_crossing(layer)
            yield self.ctx.charge(layer, self.ctx.params.socket_layer)

    def _exit(self, layer):
        yield self.ctx.charge(layer, self.ctx.params.trap_return)

    # ------------------------------------------------------------------

    def socket(self, kind):
        yield from self._enter(Layer.ENTRY_COPYIN)
        if kind == SOCK_STREAM:
            session = self.stack.tcp_create()
        elif kind == SOCK_DGRAM:
            session = None  # deferred to bind/sendto (needs a port)
        else:
            raise SocketError("unsupported socket type %r" % kind)
        desc = self.fds.alloc(kind, session)
        yield from self._exit(Layer.ENTRY_COPYIN)
        return desc.fd

    def _udp_session(self, desc, port=None):
        if desc.payload is None:
            desc.payload = self.stack.udp_create(local_port=port)
        return desc.payload

    def bind(self, fd, port):
        desc = self.fds.get(fd)
        yield from self._enter(Layer.ENTRY_COPYIN)
        if desc.kind == SOCK_DGRAM:
            if desc.payload is not None:
                raise SocketError("socket already bound")
            self._udp_session(desc, port=port)
        else:
            if desc.payload.conn.local[1] != port:
                # Rebind the TCP session to the requested port.
                old = desc.payload
                self.stack.ports["tcp"].release(
                    self.network.host.ip, old.conn.local[1]
                )
                self.stack.ports["tcp"].bind(self.network.host.ip, port)
                old.conn.local = (self.network.host.ip, port)
        yield from self._exit(Layer.ENTRY_COPYIN)

    def listen(self, fd, backlog=5):
        desc = self.fds.get(fd)
        yield from self._enter(Layer.ENTRY_COPYIN)
        self.stack.tcp_listen(desc.payload, backlog)
        yield from self._exit(Layer.ENTRY_COPYIN)

    def accept(self, fd):
        desc = self.fds.get(fd)
        yield from self._enter(Layer.ENTRY_COPYIN)
        child = yield from self.stack.tcp_accept(desc.payload)
        new_desc = self.fds.alloc(SOCK_STREAM, child)
        yield from self._exit(Layer.ENTRY_COPYIN)
        return new_desc.fd, child.remote

    def connect(self, fd, addr):
        desc = self.fds.get(fd)
        yield from self._enter(Layer.ENTRY_COPYIN)
        if desc.kind == SOCK_DGRAM:
            self.stack.udp_connect(self._udp_session(desc), addr)
        else:
            yield from self.stack.tcp_connect(desc.payload, addr)
        yield from self._exit(Layer.ENTRY_COPYIN)

    def send(self, fd, data):
        desc = self.fds.get(fd)
        begin_send_trace(self.ctx, self.network.host.name, len(data))
        yield from self._enter(Layer.ENTRY_COPYIN)
        if desc.kind == SOCK_DGRAM:
            yield from self.stack.udp_send(desc.payload, data)
            n = len(data)
        else:
            n = yield from self.stack.tcp_send(desc.payload, data)
        yield from self._exit(Layer.ENTRY_COPYIN)
        return n

    def recv(self, fd, max_bytes):
        desc = self.fds.get(fd)
        yield from self._enter(Layer.COPYOUT_EXIT)
        if desc.kind == SOCK_DGRAM:
            _src, data = yield from self.stack.udp_recv(
                desc.payload, timeout_us=desc.payload.recv_timeout_us
            )
        else:
            data = yield from self.stack.tcp_recv(
                desc.payload, max_bytes,
                timeout_us=desc.payload.recv_timeout_us,
            )
        yield from self._exit(Layer.COPYOUT_EXIT)
        return data

    def sendto(self, fd, data, addr):
        desc = self.fds.get(fd)
        begin_send_trace(self.ctx, self.network.host.name, len(data))
        yield from self._enter(Layer.ENTRY_COPYIN)
        yield from self.stack.udp_send(self._udp_session(desc), data, dst=addr)
        yield from self._exit(Layer.ENTRY_COPYIN)
        return len(data)

    def recvfrom(self, fd):
        desc = self.fds.get(fd)
        yield from self._enter(Layer.COPYOUT_EXIT)
        session = self._udp_session(desc)
        src, data = yield from self.stack.udp_recv(
            session, timeout_us=session.recv_timeout_us
        )
        yield from self._exit(Layer.COPYOUT_EXIT)
        return data, src

    def shutdown(self, fd):
        desc = self.fds.get(fd)
        yield from self._enter(Layer.ENTRY_COPYIN)
        yield from self.stack.tcp_shutdown(desc.payload)
        yield from self._exit(Layer.ENTRY_COPYIN)

    def close(self, fd):
        desc = self.fds.free(fd)
        yield from self._enter(Layer.ENTRY_COPYIN)
        if desc is not None and desc.payload is not None:
            if desc.kind == SOCK_DGRAM:
                self.stack.udp_close(desc.payload)
            else:
                yield from self.stack.tcp_close(desc.payload)
        yield from self._exit(Layer.ENTRY_COPYIN)

    def setsockopt(self, fd, option, value):
        desc = self.fds.get(fd)
        yield from self._enter(Layer.ENTRY_COPYIN)
        _apply_sockopt(desc, option, value)
        yield from self._exit(Layer.ENTRY_COPYIN)

    def select(self, read_fds, write_fds=(), timeout=None):
        yield from self._enter(Layer.ENTRY_COPYIN)
        result = yield from _select_on_stack(
            self.ctx, self.stack, self.fds, read_fds, write_fds, timeout
        )
        yield from self._exit(Layer.ENTRY_COPYIN)
        return result

    def ping(self, dst_ip, **kwargs):
        yield from self._enter(Layer.ENTRY_COPYIN)
        rtt = yield from self.stack.ping(dst_ip, **kwargs)
        yield from self._exit(Layer.ENTRY_COPYIN)
        return rtt

    def traceroute(self, dst_ip, max_hops=16):
        yield from self._enter(Layer.ENTRY_COPYIN)
        hops = yield from self.stack.traceroute(dst_ip, max_hops=max_hops)
        yield from self._exit(Layer.ENTRY_COPYIN)
        return hops

    def fork(self):
        """In-kernel sockets fork trivially: sessions live in the kernel,
        so the child API shares the same descriptors.  (A generator, like
        every socket call — the fork itself charges one trap.)"""
        yield from self._enter(Layer.ENTRY_COPYIN)
        child = KernelSocketAPI(self.network)
        for desc in self.fds.descriptors():
            child.fds.adopt(desc)
        yield from self._exit(Layer.ENTRY_COPYIN)
        return child


# ----------------------------------------------------------------------
# Helpers shared with the UX server placement
# ----------------------------------------------------------------------

def _apply_sockopt(desc, option, value):
    session = desc.payload
    if option == "rcvbuf":
        if desc.kind == SOCK_STREAM:
            session.conn.rcv_buffer.set_hiwat(value)
        else:
            session.hiwat = value
    elif option == "sndbuf":
        if desc.kind == SOCK_STREAM:
            session.conn.snd_buffer.set_hiwat(value)
    elif option == "nodelay":
        if desc.kind == SOCK_STREAM:
            session.conn.config.nodelay = bool(value)
    elif option == "rcvtimeo":
        session.recv_timeout_us = value
    elif option == "keepalive":
        if desc.kind == SOCK_STREAM:
            session.conn.config.keepalive = bool(value)
            # An already-idle session may have been parked by the
            # scale-mode tick registry; keepalive duty restarts it.
            session.stack.touch(session)
    else:
        raise SocketError("unknown socket option %r" % option)


def _select_on_stack(ctx, stack, fds, read_fds, write_fds, timeout):
    """select() over descriptors that all live on one stack."""
    from repro.sim.events import any_of

    deadline = None if timeout is None else ctx.sim.now + timeout
    yield ctx.charge(Layer.ENTRY_COPYIN, ctx.params.select_overhead)
    while True:
        ready_r = []
        ready_w = []
        for fd in read_fds:
            desc = fds.get(fd)
            state = _poll_desc(stack, desc)
            if state["readable"] or state["error"]:
                ready_r.append(fd)
        for fd in write_fds:
            desc = fds.get(fd)
            state = _poll_desc(stack, desc)
            if state["writable"] or state["error"]:
                ready_w.append(fd)
        if ready_r or ready_w:
            return ready_r, ready_w
        if deadline is not None and ctx.sim.now >= deadline:
            return [], []
        for fd in list(read_fds) + list(write_fds):
            session = fds.get(fd).payload
            if session is not None:
                session.selected = True
        waits = [stack.select_notify.wait()]
        if deadline is not None:
            waits.append(ctx.sim.timeout(deadline - ctx.sim.now))
        yield any_of(ctx.sim, waits)


def _poll_desc(stack, desc):
    if desc.payload is None:
        return {"readable": False, "writable": True, "error": False}
    if desc.kind == SOCK_DGRAM:
        return stack.udp_poll(desc.payload)
    return stack.tcp_poll(desc.payload)
