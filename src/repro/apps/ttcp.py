"""ttcp: the memory-to-memory TCP throughput benchmark.

The paper's ttcp "transfers 16 MB of data from one host to another" and
reports steady-state throughput in KB/second.  This is the same workload:
a source writes a fixed number of bytes through the socket interface in
``write_size`` chunks; the sink reads until it has them all.  Elapsed time
is measured on the sink from connection acceptance to the last byte, as
ttcp -r does.
"""

from dataclasses import dataclass

from repro.core.sockets import SOCK_STREAM

DEFAULT_TOTAL = 16 * 1024 * 1024
DEFAULT_WRITE = 8 * 1024
DEFAULT_PORT = 5001


@dataclass
class TtcpResult:
    """Outcome of one ttcp run."""

    bytes_moved: int
    elapsed_us: float
    throughput_kbs: float  # KB/second, the paper's unit
    sender_elapsed_us: float

    def __str__(self):
        return "%d KB in %.0f ms -> %.0f KB/s" % (
            self.bytes_moved // 1024,
            self.elapsed_us / 1000.0,
            self.throughput_kbs,
        )


def ttcp(network, src_placement, dst_placement, total_bytes=DEFAULT_TOTAL,
         write_size=DEFAULT_WRITE, rcvbuf_kb=24, sndbuf_kb=24,
         port=DEFAULT_PORT, until=None):
    """Run one ttcp transfer; returns a :class:`TtcpResult`.

    ``rcvbuf_kb`` is the receive-socket-buffer size — the paper tuned this
    per configuration ("the best possible receive buffer size").
    """
    sim = network.sim
    src_api = src_placement.new_app(name="ttcp-t")
    dst_api = dst_placement.new_app(name="ttcp-r")
    dst_ip = dst_placement.host.ip
    listening = sim.event("ttcp.listening")

    def sink():
        fd = yield from dst_api.socket(SOCK_STREAM)
        yield from dst_api.setsockopt(fd, "rcvbuf", rcvbuf_kb * 1024)
        yield from dst_api.bind(fd, port)
        yield from dst_api.listen(fd, 1)
        listening.succeed()
        cfd, _addr = yield from dst_api.accept(fd)
        started = sim.now
        received = 0
        while received < total_bytes:
            chunk = yield from dst_api.recv(cfd, 64 * 1024)
            if not chunk:
                break
            received += len(chunk)
        elapsed = sim.now - started
        yield from dst_api.close(cfd)
        yield from dst_api.close(fd)
        return received, elapsed

    def source():
        yield listening
        fd = yield from src_api.socket(SOCK_STREAM)
        yield from src_api.setsockopt(fd, "sndbuf", sndbuf_kb * 1024)
        yield from src_api.connect(fd, (dst_ip, port))
        started = sim.now
        # ttcp's canned pattern buffer; content is irrelevant but real
        # bytes flow (and get checksummed) end to end.
        pattern = bytes(range(256)) * (write_size // 256 + 1)
        remaining = total_bytes
        while remaining > 0:
            chunk = pattern[: min(write_size, remaining)]
            yield from src_api.send_all(fd, chunk)
            remaining -= len(chunk)
        yield from src_api.close(fd)
        return sim.now - started

    if until is None:
        # Generous bound: even 100 KB/s would finish in this budget.
        until = sim.now + total_bytes * 12.0 + 60_000_000
    (received, elapsed), sender_elapsed = network.run_all(
        [sink(), source()], until=until
    )
    if received < total_bytes:
        raise RuntimeError(
            "ttcp incomplete: %d of %d bytes" % (received, total_bytes)
        )
    throughput = (received / 1024.0) / (elapsed / 1_000_000.0)
    return TtcpResult(
        bytes_moved=received,
        elapsed_us=elapsed,
        throughput_kbs=throughput,
        sender_elapsed_us=sender_elapsed,
    )
