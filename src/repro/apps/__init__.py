"""Measurement applications: the paper's ttcp and protolat benchmarks."""

from repro.apps.ttcp import TtcpResult, ttcp
from repro.apps.protolat import LatencyResult, protolat

__all__ = ["ttcp", "TtcpResult", "protolat", "LatencyResult"]
