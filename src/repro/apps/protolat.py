"""protolat: protocol round-trip latency for TCP and UDP.

A client sends an N-byte message; the echo server returns N bytes; one
round trip is the time between the client's send and the completion of
its receive.  The paper ran 50000 round trips on an otherwise idle
network and reports the average in milliseconds for message sizes from 1
byte up to the largest unfragmented payload (1460 TCP / 1472 UDP).
"""

from dataclasses import dataclass

from repro.core.sockets import SOCK_DGRAM, SOCK_STREAM

DEFAULT_PORT = 5002
WARMUP_ROUNDS = 4


def percentile(samples, p):
    """Nearest-rank percentile of a sequence (p in [0, 100])."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * p // 100))  # ceil without floats
    return ordered[int(rank) - 1]


@dataclass
class LatencyResult:
    """Outcome of one protolat run."""

    proto: str
    message_size: int
    rounds: int
    mean_rtt_us: float
    min_rtt_us: float
    max_rtt_us: float
    #: Per-round RTT samples (microseconds), warmup excluded.
    samples: tuple = ()

    @property
    def mean_rtt_ms(self):
        return self.mean_rtt_us / 1000.0

    def percentile_us(self, p):
        return percentile(self.samples, p)

    @property
    def p50_rtt_us(self):
        return self.percentile_us(50)

    @property
    def p95_rtt_us(self):
        return self.percentile_us(95)

    @property
    def p99_rtt_us(self):
        return self.percentile_us(99)

    def __str__(self):
        return "%s %dB: %.2f ms RTT (%d rounds)" % (
            self.proto,
            self.message_size,
            self.mean_rtt_ms,
            self.rounds,
        )


def protolat(network, client_placement, server_placement, proto="udp",
             message_size=1, rounds=100, port=DEFAULT_PORT, until=None,
             on_warm=None):
    """Measure round-trip latency; returns a :class:`LatencyResult`.

    The first :data:`WARMUP_ROUNDS` trips (ARP exchange, cache warming,
    slow start) are excluded, as a 50000-round average effectively does.
    ``on_warm``, if given, is called once when warmup completes — the
    breakdown harness uses it to reset the layer-accounting ledgers so
    Table 4 shows steady-state means.
    """
    if proto not in ("udp", "tcp"):
        raise ValueError("proto must be 'udp' or 'tcp'")
    sim = network.sim
    client_api = client_placement.new_app(name="protolat-c")
    server_api = server_placement.new_app(name="protolat-s")
    server_ip = server_placement.host.ip
    ready = sim.event("protolat.ready")
    total_rounds = rounds + WARMUP_ROUNDS
    message = bytes(i & 0xFF for i in range(message_size))

    def udp_server():
        fd = yield from server_api.socket(SOCK_DGRAM)
        yield from server_api.bind(fd, port)
        ready.succeed()
        for _ in range(total_rounds):
            data, src = yield from server_api.recvfrom(fd)
            yield from server_api.sendto(fd, data, src)
        yield from server_api.close(fd)

    def udp_client():
        yield ready
        fd = yield from client_api.socket(SOCK_DGRAM)
        yield from client_api.connect(fd, (server_ip, port))
        samples = []
        for i in range(total_rounds):
            if i == WARMUP_ROUNDS and on_warm is not None:
                on_warm()
            start = sim.now
            yield from client_api.send(fd, message)
            reply = yield from client_api.recv(fd, 65535)
            assert len(reply) == message_size
            if i >= WARMUP_ROUNDS:
                samples.append(sim.now - start)
        yield from client_api.close(fd)
        return samples

    def tcp_server():
        fd = yield from server_api.socket(SOCK_STREAM)
        yield from server_api.bind(fd, port)
        yield from server_api.listen(fd, 1)
        ready.succeed()
        cfd, _addr = yield from server_api.accept(fd)
        for _i in range(total_rounds):
            data = yield from server_api.recv_exactly(cfd, message_size)
            yield from server_api.send_all(cfd, data)
        yield from server_api.close(cfd)
        yield from server_api.close(fd)

    def tcp_client():
        yield ready
        fd = yield from client_api.socket(SOCK_STREAM)
        yield from client_api.connect(fd, (server_ip, port))
        samples = []
        for i in range(total_rounds):
            if i == WARMUP_ROUNDS and on_warm is not None:
                on_warm()
            start = sim.now
            yield from client_api.send_all(fd, message)
            yield from client_api.recv_exactly(fd, message_size)
            if i >= WARMUP_ROUNDS:
                samples.append(sim.now - start)
        yield from client_api.close(fd)
        return samples

    if proto == "udp":
        server_gen, client_gen = udp_server(), udp_client()
    else:
        server_gen, client_gen = tcp_server(), tcp_client()
    if until is None:
        until = sim.now + total_rounds * 1_000_000.0 + 60_000_000
    _server_result, samples = network.run_all(
        [server_gen, client_gen], until=until
    )
    return LatencyResult(
        proto=proto,
        message_size=message_size,
        rounds=len(samples),
        mean_rtt_us=sum(samples) / len(samples),
        min_rtt_us=min(samples),
        max_rtt_us=max(samples),
        samples=tuple(samples),
    )
