"""repro — Protocol Service Decomposition for High-Performance Networking.

A reproduction of Maeda & Bershad (SOSP 1993): TCP/IP and UDP/IP
decomposed into a user-level protocol library on the fast path plus an
operating system server for session management, compared against
in-kernel and single-server placements — all running on a simulated
Mach 3.0 / DECstation / 10 Mb/s Ethernet substrate with a calibrated
cost model.

Typical use::

    from repro import build_network, SOCK_STREAM

    network, host_a, host_b = build_network("library-shm-ipf")
    api = host_a.new_app()          # BSD sockets for one application

    def app():
        fd = yield from api.socket(SOCK_STREAM)
        ...

    network.run_all([app()])

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results.
"""

from repro.world.configs import (
    CONFIG_NAMES,
    CONFIGS,
    DECSTATION_ROWS,
    GATEWAY_ROWS,
    build_network,
    make_placement,
)
from repro.core.sockets import SOCK_DGRAM, SOCK_STREAM, SocketAPI, SocketError
from repro.apps.protolat import protolat
from repro.apps.ttcp import ttcp
from repro.net.addr import ip_aton, ip_ntoa

__version__ = "1.0.0"

__all__ = [
    "build_network",
    "make_placement",
    "CONFIGS",
    "CONFIG_NAMES",
    "DECSTATION_ROWS",
    "GATEWAY_ROWS",
    "SocketAPI",
    "SocketError",
    "SOCK_STREAM",
    "SOCK_DGRAM",
    "ttcp",
    "protolat",
    "ip_aton",
    "ip_ntoa",
    "__version__",
]
