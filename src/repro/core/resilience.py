"""Client-side control-plane resilience: deadlines, retries, breakers.

The proxy library and the server's own socket API both reach the OS
server through :class:`~repro.kernel.ipc.RPCPort`.  This module wraps
those calls with the recovery policy the paper's decomposition needs to
be credible under stress:

* **per-op deadline budgets** — short control ops are abandoned (and
  later retried under the same request id) rather than waiting forever
  on a lost reply;
* **bounded exponential-backoff retries** — byte-compatible with the
  legacy ``RPCPort.call_retrying`` loop on the default policy, so the
  happy path and the long-standing crash-recovery tests are unchanged;
* **a circuit breaker** — after ``breaker_threshold`` consecutive
  failures the caller fails fast with :class:`ServerUnavailable` instead
  of queueing more doomed work; a single probe per cooldown window tests
  recovery (lazily, in simulated time), and the proxy's server watcher
  resets the breaker outright once re-registration succeeds;
* **operation budgets** — an optional wall-clock bound on the *whole*
  retry loop, including time parked on the re-registration gate or the
  port-reopen wait, so degraded callers surface a clean error instead of
  wedging.

Everything here is off by default: ``ResiliencePolicy()`` reproduces the
legacy retry loop draw-for-draw (same RNG consumption, same backoff
schedule, no deadline timers armed), which is what keeps ``BENCH.json``
byte-identical with faults disabled.
"""

from repro.faults.control import LONG_OPS
from repro.kernel.ipc import ServerCrashed
from repro.sim.events import any_of
from repro.core.sockets import SocketError


class ServerUnavailable(SocketError):
    """The OS server is unreachable and the caller declined to wait.

    Raised on the fast-fail path: the circuit breaker is open, or an
    operation budget expired while the server was down.  Unlike
    :class:`~repro.kernel.ipc.ServerCrashed` this is *not* retried by
    the resilience layer — it is the clean, documented error the app
    sees when graceful degradation gives up.
    """

    def __init__(self, reason="server unavailable"):
        super().__init__(reason)
        self.reason = reason


class ResiliencePolicy:
    """Knobs for one client's control-plane behavior.

    The defaults reproduce the legacy proxy exactly: 64 retries, 10ms
    base backoff doubling to a 2s cap, no deadlines, no budget, breaker
    disabled.  See EXPERIMENTS.md ("Control-plane chaos") for the knob
    reference.
    """

    def __init__(self, retry_limit=64, backoff_base_us=10_000.0,
                 backoff_max_us=2_000_000.0, deadline_us=None,
                 op_deadlines=None, op_budget_us=None,
                 breaker_threshold=None, breaker_cooldown_us=1_000_000.0):
        self.retry_limit = retry_limit
        self.backoff_base_us = backoff_base_us
        self.backoff_max_us = backoff_max_us
        #: Per-attempt reply deadline for short ops (None: no timer armed).
        self.deadline_us = deadline_us
        #: Per-op deadline overrides, e.g. ``{"proxy_connect": 250_000.0}``.
        self.op_deadlines = dict(op_deadlines) if op_deadlines else None
        #: Bound on one logical op end to end, retries and waits included.
        self.op_budget_us = op_budget_us
        #: Consecutive failures before the breaker opens (None: disabled).
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_us = breaker_cooldown_us

    def deadline_for(self, op):
        if self.op_deadlines is not None and op in self.op_deadlines:
            return self.op_deadlines[op]
        if self.deadline_us is not None and op not in LONG_OPS:
            return self.deadline_us
        return None

    def make_breaker(self):
        if self.breaker_threshold is None:
            return None
        return CircuitBreaker(self.breaker_threshold,
                              self.breaker_cooldown_us)


class CircuitBreaker:
    """Closed → open after N consecutive failures → half-open probe.

    The half-open transition is computed lazily from the simulated clock
    inside :meth:`admit` — no timer process, so an idle breaker costs the
    schedule nothing.  In half-open, exactly one caller is admitted as
    the probe; everyone else fast-fails until it reports back.
    """

    def __init__(self, threshold, cooldown_us):
        self.threshold = threshold
        self.cooldown_us = cooldown_us
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at = None
        self.trips = 0
        self.fast_fails = 0
        self.probes = 0
        self._probe_inflight = False

    def admit(self, now):
        """May a call proceed at simulated time ``now``?"""
        if self.state == "closed":
            return True
        if self.state == "open" and now - self.opened_at >= self.cooldown_us:
            self.state = "half-open"
            self._probe_inflight = False
        if self.state == "half-open" and not self._probe_inflight:
            self._probe_inflight = True
            self.probes += 1
            return True
        self.fast_fails += 1
        return False

    def record_success(self):
        self.state = "closed"
        self.consecutive_failures = 0
        self._probe_inflight = False

    def record_failure(self, now):
        self.consecutive_failures += 1
        if self.state == "half-open":
            # Failed probe: back to open, restart the cooldown clock.
            self.state = "open"
            self.opened_at = now
            self._probe_inflight = False
        elif (self.state == "closed"
              and self.consecutive_failures >= self.threshold):
            self.state = "open"
            self.opened_at = now
            self.trips += 1

    def reset(self):
        """External recovery signal (re-registration succeeded)."""
        self.record_success()

    def snapshot(self):
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "trips": self.trips,
            "fast_fails": self.fast_fails,
            "probes": self.probes,
        }


class ResilientCaller:
    """The retry loop, policy-parameterized, for one client of one port.

    On ``ResiliencePolicy()`` this is exactly the legacy
    ``RPCPort.call_retrying``: the same attempts, the same RNG draws in
    the same order, the same backoff arithmetic, and no extra timers —
    the zero-overhead parity test pins this equivalence.
    """

    def __init__(self, rpc, ctx, rng=None, gate=None, policy=None,
                 name="caller"):
        self.rpc = rpc
        self.ctx = ctx
        self.rng = rng
        self.gate = gate
        self.policy = policy if policy is not None else ResiliencePolicy()
        self.name = name
        self.breaker = self.policy.make_breaker()
        self._sim = rpc._sim
        self.retries = 0
        self.deadline_expiries = 0
        self.budget_exhaustions = 0

    def call(self, op, args=(), data=b"", layer="rpc", req_id=None):
        """Run one logical op to completion, failure, or fast-fail.

        When the caller is working a traced packet, the round trip's
        whole duration — queueing on a broken port, backoff sleeps,
        the RPC itself — is recorded as one ``control-plane`` wait span
        (pure observation; the retry loop is unchanged).
        """
        tracer = getattr(self.ctx.accounting, "tracer", None)
        if tracer is not None and tracer.enabled:
            started = self._sim.now
            tid = tracer.current()
            try:
                result = yield from self._call(op, args, data, layer, req_id)
            finally:
                waited = self._sim.now - started
                if tid is not None and waited > 0:
                    tracer.record_wait(tid, self.ctx.accounting.owner,
                                       "control/%s" % op, "control-plane",
                                       started, waited)
            return result
        result = yield from self._call(op, args, data, layer, req_id)
        return result

    def _call(self, op, args, data, layer, req_id):
        from repro.sim.process import Timeout

        policy = self.policy
        rpc = self.rpc
        deadline_us = policy.deadline_for(op)
        budget_deadline = None
        if policy.op_budget_us is not None:
            budget_deadline = self._sim.now + policy.op_budget_us
        delay = policy.backoff_base_us
        for attempt in range(policy.retry_limit):
            if (self.breaker is not None
                    and not self.breaker.admit(self._sim.now)):
                raise ServerUnavailable(
                    "circuit open: %s via %s" % (op, rpc.name))
            if rpc.broken:
                if self.breaker is None:
                    yield from self._bounded_wait(rpc.wait_reopen(),
                                                  budget_deadline, op)
                else:
                    # Fail-fast flavor: a breaker-configured caller waits
                    # one backoff slice for the port, then counts a dead
                    # port as a failed attempt instead of parking on the
                    # reopen event indefinitely.
                    bound = delay
                    if budget_deadline is not None:
                        bound = min(bound,
                                    budget_deadline - self._sim.now)
                        if bound <= 0:
                            self.budget_exhaustions += 1
                            raise ServerUnavailable(
                                "budget exhausted waiting to send %s"
                                % op)
                    timer = self._sim.timeout(bound)
                    yield any_of(self._sim, [rpc.wait_reopen(), timer])
                    if rpc.broken:
                        self.breaker.record_failure(self._sim.now)
                        if attempt == policy.retry_limit - 1:
                            raise ServerCrashed(
                                rpc._broken or "server port down")
                        self.retries += 1
                        delay = min(delay * 2, policy.backoff_max_us)
                        continue
            if self.gate is not None:
                event = self.gate()
                if event is not None:
                    yield from self._bounded_wait(event, budget_deadline, op)
            try:
                result = yield from rpc.call(
                    self.ctx, op, args=args, data=data, layer=layer,
                    req_id=req_id, deadline_us=deadline_us)
            except ServerCrashed as exc:
                if self.breaker is not None:
                    self.breaker.record_failure(self._sim.now)
                if attempt == policy.retry_limit - 1:
                    raise
                rpc.retried_calls += 1
                self.retries += 1
                jitter = self.rng.random() if self.rng is not None else 0.5
                if (budget_deadline is not None
                        and self._sim.now >= budget_deadline):
                    self.budget_exhaustions += 1
                    raise ServerUnavailable(
                        "budget exhausted retrying %s: %s" % (op, exc))
                yield Timeout(delay * (0.5 + jitter))
                delay = min(delay * 2, policy.backoff_max_us)
            else:
                if self.breaker is not None:
                    self.breaker.record_success()
                return result
        raise ServerCrashed(rpc._broken or "retry limit exceeded")

    def _bounded_wait(self, event, budget_deadline, op):
        """Wait on an event, bounded by the op budget when one is set.

        The unbudgeted path is a bare ``yield`` — no timer, no extra
        schedule perturbation — which is what the bit-passivity contract
        requires of the default policy.
        """
        if budget_deadline is None:
            yield event
            return
        remaining = budget_deadline - self._sim.now
        if remaining <= 0:
            self.budget_exhaustions += 1
            raise ServerUnavailable(
                "budget exhausted waiting to send %s" % op)
        timer = self._sim.timeout(remaining)
        winner, _value = yield any_of(self._sim, [event, timer])
        if winner is timer:
            self.budget_exhaustions += 1
            raise ServerUnavailable(
                "budget exhausted waiting to send %s" % op)

    def stats(self):
        report = {
            "retries": self.retries,
            "budget_exhaustions": self.budget_exhaustions,
        }
        if self.breaker is not None:
            report["breaker"] = self.breaker.snapshot()
        return report
