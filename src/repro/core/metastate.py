"""Cached protocol metastate (Section 3.3).

Route table entries and ARP mappings are long-lived shared state owned by
the operating system server.  Applications cache entries so the packet
send path never talks to the server in the common case; the server holds
callbacks into each application and invalidates cached entries as they
expire or change.

This module is the application side: a cache of ARP/route entries filled
by RPC on miss, emptied by the server's invalidation callbacks.
"""

import random

from repro.net import arp
from repro.stack.instrument import Layer


class MetastateCache:
    """Per-application cache of routing and ARP metastate."""

    def __init__(self, sim, rpc, app_id, name="meta"):
        self._sim = sim
        self._rpc = rpc  # RPC port to the OS server
        self.app_id = app_id
        self.name = name
        self.arp_cache = arp.ArpCache(lambda: sim.now)
        self._route_cache = {}
        self.arp_rpcs = 0
        self.route_rpcs = 0
        self.invalidations = 0
        # Metastate RPCs retry across server crashes; per-app seeded
        # backoff jitter keeps whole runs deterministic.  ``gate`` (set by
        # the proxy layer) holds retries until the app has re-registered
        # with a restarted server, which must happen before any meta RPC
        # can succeed.
        self._retry_rng = random.Random(2000 + app_id)
        self.gate = None

    # ------------------------------------------------------------------
    # ARP
    # ------------------------------------------------------------------

    def resolve(self, ctx, next_hop_ip):
        """Resolve a next-hop MAC: cache first, the server on a miss.

        This is the application's whole interaction with ARP; the actual
        protocol exchange happens in the server.
        """
        yield ctx.charge(Layer.ETHER_OUTPUT, ctx.params.proc_call)
        mac = self.arp_cache.lookup(next_hop_ip)
        if mac is not None:
            return mac
        return (yield from self.resolve_miss(ctx, next_hop_ip))

    def lookup(self, next_hop_ip):
        """The cache probe :meth:`resolve` performs after its entry
        charge; plain call used by the train-dispatch fast path."""
        return self.arp_cache.lookup(next_hop_ip)

    def resolve_miss(self, ctx, next_hop_ip):
        """The miss tail of :meth:`resolve`: one metastate RPC."""
        self.arp_rpcs += 1
        mac = yield from self._rpc.call_retrying(
            ctx, "meta_arp", args=(self.app_id, next_hop_ip),
            layer=Layer.ETHER_OUTPUT, rng=self._retry_rng, gate=self.gate,
        )
        self.arp_cache.insert(next_hop_ip, mac)
        return mac

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def route(self, dst_ip):
        """Next-hop for ``dst_ip`` from the cached route entries.

        Routes are plain (non-charging) lookups on the fast path; misses
        must be primed with :meth:`prime_route` because the send path
        itself is not allowed to block on the server mid-transmission.
        """
        next_hop = self._route_cache.get(dst_ip)
        if next_hop is None:
            raise KeyError(
                "route for %r not primed in %s" % (dst_ip, self.name)
            )
        return next_hop

    def has_route(self, dst_ip):
        return dst_ip in self._route_cache

    def prime_route(self, ctx, dst_ip):
        """Fetch and cache the route for ``dst_ip`` from the server."""
        if dst_ip in self._route_cache:
            return self._route_cache[dst_ip]
        self.route_rpcs += 1
        next_hop = yield from self._rpc.call_retrying(
            ctx, "meta_route", args=(self.app_id, dst_ip),
            layer=Layer.ENTRY_COPYIN, rng=self._retry_rng, gate=self.gate,
        )
        self._route_cache[dst_ip] = next_hop
        return next_hop

    # ------------------------------------------------------------------
    # Server-driven invalidation (the callbacks of Section 3.3)
    # ------------------------------------------------------------------

    def invalidate_arp(self, ip_addr):
        self.invalidations += 1
        self.arp_cache.invalidate(ip_addr)

    def invalidate_routes(self):
        self.invalidations += 1
        self._route_cache.clear()

    def stats(self):
        return {
            "arp_hits": self.arp_cache.hits,
            "arp_misses": self.arp_cache.misses,
            "arp_rpcs": self.arp_rpcs,
            "route_rpcs": self.route_rpcs,
            "invalidations": self.invalidations,
        }
