"""The paper's contribution: the decomposed protocol service.

* :mod:`repro.core.proxy` — the proxy socket layer in the application
  (Table 1's call mapping),
* :mod:`repro.core.library` — the user-level protocol library,
* :mod:`repro.core.metastate` — cached routing/ARP metastate with
  server-driven invalidation (Section 3.3),
* :mod:`repro.core.sockets` — the BSD socket interface shared by every
  placement.
"""

from repro.core.sockets import SocketAPI, SocketError, SOCK_STREAM, SOCK_DGRAM
from repro.core.proxy import ProxySocketAPI
from repro.core.library import ProtocolLibrary
from repro.core.metastate import MetastateCache

__all__ = [
    "SocketAPI",
    "SocketError",
    "SOCK_STREAM",
    "SOCK_DGRAM",
    "ProxySocketAPI",
    "ProtocolLibrary",
    "MetastateCache",
]
