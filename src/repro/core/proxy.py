"""The proxy socket layer (Table 1 of the paper).

The proxy is "a small body of code that resides in the application's
address space" exporting a procedure-call interface *identical* to the
socket system-call interface.  Each call is handled locally, forwarded
untouched to the operating system server, or translated into an alternate
sequence of server calls:

=============  ==================  =========================================
Proxy export   Server export        Action
=============  ==================  =========================================
socket         proxy_socket        create a server-managed session
bind           proxy_bind          set local address; UDP migrates to app
connect        proxy_connect       set remote address; UDP+TCP migrate
listen         proxy_listen        open passively; server awaits connections
accept         proxy_accept        migrate an established session to the app
send*/recv*    (none)              data transfer — the server is not involved
fork           proxy_return        sessions return to the server before fork
select         proxy_status        cooperative status exchange
close          proxy_close         session returns; server runs the teardown
=============  ==================  =========================================
"""

import random

from repro.hw.cpu import Priority
from repro.stack.context import ExecutionContext
from repro.stack.instrument import Layer
from repro.core.resilience import (
    ResiliencePolicy,
    ResilientCaller,
    ServerUnavailable,
)
from repro.core.sockets import (
    SOCK_DGRAM,
    SOCK_STREAM,
    SocketAPI,
    SocketError,
)
from repro.osserver.netserver import config_from_opts
from repro.trace import begin_send_trace

#: The Table 1 mapping, introspectable (bench_table1 regenerates the
#: table from this and from live call traces).
PROXY_CALL_MAP = {
    "socket": "proxy_socket",
    "bind": "proxy_bind",
    "connect": "proxy_connect",
    "listen": "proxy_listen",
    "accept": "proxy_accept",
    "send/recv (all variants)": None,
    "fork": "proxy_return",
    "select": "proxy_status",
    "close": "proxy_close",
}


class ProxySocket:
    """Per-descriptor proxy state."""

    __slots__ = ("sid", "kind", "mode", "session", "server_handle",
                 "lport", "remote", "opts", "input_key", "backlog")

    def __init__(self, sid, kind):
        self.sid = sid
        self.kind = kind
        self.mode = "embryonic"  # embryonic -> app -> server -> closed
        self.session = None  # engine session while app-managed
        self.server_handle = None  # server fd while server-managed
        self.lport = None
        self.remote = None
        self.opts = {}
        self.input_key = None
        self.backlog = None  # listeners remember it for re-registration


class ProxySocketAPI(SocketAPI):
    """The BSD socket interface over the decomposed protocol service."""

    def __init__(self, library, server, fork_factory=None, policy=None):
        super().__init__()
        self.library = library
        self.server = server
        self.rpc = server.rpc
        self.stack = library.stack
        self.app_id = library.app_id
        self._fork_factory = fork_factory
        self._select_outstanding = False
        self._status_watcher = None
        host = library.host
        self.ctx = ExecutionContext(
            host.sim,
            host.cpu,
            priority=Priority.APPLICATION,
            accounting=library.accounting,
            crossings=library.ctx.crossings,
            name="%s.proxy" % library.name,
        )
        # Crash resilience: every proxy RPC retries with seeded backoff
        # jitter, and a watcher re-registers this app's surviving sessions
        # whenever the server's port reopens after a crash.
        self._retry_rng = random.Random(1000 + library.app_id)
        self.reregistrations = 0
        #: While not None: the server restarted but our sessions are not
        #: re-registered yet; retrying RPCs wait on this event so they
        #: never hit a server that does not know their ids.
        self._rereg_ready = None
        #: sid -> snapshot for sessions whose close RPC is in flight: the
        #: descriptor is already freed, but the server must still learn
        #: about them if it restarts before the close lands.
        self._closing = {}
        #: sid -> snapshot for sessions whose migrate-to-server RPC is in
        #: flight: the TCP state has been exported out of the local stack,
        #: so a crash in this window must rebuild the server record before
        #: the retried ``proxy_return`` replays the state.
        self._migrating = {}
        #: Resilience policy (None: legacy behavior — patient retries, no
        #: deadlines, breaker off).  All proxy RPCs go through one
        #: :class:`ResilientCaller`; request ids are (app_id, sid, seq).
        self.policy = policy if policy is not None else ResiliencePolicy()
        self.resilient = ResilientCaller(
            self.rpc, self.ctx, rng=self._retry_rng, gate=self._gate,
            policy=self.policy, name="%s.proxy" % library.name,
        )
        #: Patient fallback caller for background drains (deferred closes):
        #: default policy, so it waits out an outage the breaker gave up on.
        self._patient = ResilientCaller(
            self.rpc, self.ctx, rng=self._retry_rng, gate=self._gate,
            name="%s.drain" % library.name,
        )
        self._req_seq = 0
        self.closes_deferred = 0
        library.metastate.gate = self._gate
        library.proxy_api = self
        self._reregister_watcher = host.sim.spawn(
            self._server_watcher(), name="%s.rereg" % library.name
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _proxy_entry(self, layer=Layer.ENTRY_COPYIN):
        """Entering the proxy is a procedure call, not a trap."""
        yield self.ctx.charge(layer, self.ctx.params.proc_call)

    def _rpc(self, op, *args, sid=0, data=b"", layer=Layer.ENTRY_COPYIN):
        """One logical proxy op: stamped with a fresh (app, sid, seq)
        request id so retries and fault-duplicates replay server-side
        instead of re-running side effects."""
        self._req_seq += 1
        req_id = (self.app_id, sid, self._req_seq)
        result = yield from self.resilient.call(
            op, args=args, data=data, layer=layer, req_id=req_id,
        )
        return result

    def _gate(self):
        return self._rereg_ready

    def _server_watcher(self):
        """Wait for the server to die, close the re-registration gate,
        then — once the server is back — re-register this application's
        surviving sessions and reopen the gate.  Loops forever (the server
        may crash any number of times)."""
        while True:
            yield self.rpc.wait_down()
            self._rereg_ready = self.ctx.sim.event(
                "%s.rereg-gate" % self.library.name
            )
            yield self.rpc.wait_reopen()
            yield from self._reregister()
            gate, self._rereg_ready = self._rereg_ready, None
            gate.succeed()
            # Re-registration doubles as the breaker's recovery probe:
            # the server answered a real RPC, so fast-failing is over.
            if self.resilient.breaker is not None:
                self.resilient.breaker.reset()

    def _reregister(self):
        """Report this app and its live sessions to a freshly restarted
        server (see ``NetServer.op_proxy_reregister``).

        App-managed sessions are reported with their sequence snapshot and
        surviving kernel-filter handle; listeners with enough to rebuild
        them server-side.  Post-fork *server-managed* data sessions died
        with the server and cannot be reported back.
        """
        sessions = []
        seen = set()
        for snaps in (self._closing, self._migrating):
            for snap in snaps.values():
                if snap["sid"] in seen:
                    continue
                seen.add(snap["sid"])
                sessions.append(dict(snap))
        for desc in self.fds.descriptors():
            psock = desc.payload
            if psock is None or psock.sid in seen:
                continue
            seen.add(psock.sid)
            if psock.mode == "embryonic":
                # A crash while proxy_socket/bind/connect is in flight:
                # the retried RPC needs the bare record to exist in the
                # restarted server or it dies on "unknown session id".
                sessions.append({
                    "sid": psock.sid,
                    "kind": psock.kind,
                    "lport": psock.lport,
                    "remote": None,
                    "embryonic": True,
                    "opts": dict(psock.opts),
                })
            elif psock.mode == "app" and psock.session is not None:
                snap = {
                    "sid": psock.sid,
                    "kind": psock.kind,
                    "lport": psock.lport,
                    "remote": psock.remote,
                    "app_filter": self.library.session_filters.get(psock.sid),
                }
                if psock.kind == SOCK_STREAM:
                    snap.update(
                        self.stack.tcp_migration_snapshot(psock.session)
                    )
                sessions.append(snap)
            elif (psock.mode == "server" and psock.kind == SOCK_STREAM
                    and psock.backlog is not None):
                sessions.append({
                    "sid": psock.sid,
                    "kind": psock.kind,
                    "lport": psock.lport,
                    "remote": None,
                    "listener": True,
                    "backlog": psock.backlog or 5,
                    "opts": dict(psock.opts),
                })
        # Deliberately ungated (this RPC is what opens the gate).
        _restored, handles = yield from self.rpc.call_retrying(
            self.ctx, "proxy_reregister", args=(self.library, sessions),
            layer=Layer.ENTRY_COPYIN, rng=self._retry_rng,
        )
        # Server-side descriptors from the dead incarnation are gone.
        # Rebuilt listeners get their fresh handle from the reply; other
        # server-managed sessions (post-fork data sessions) died with the
        # crash, and a None handle makes select report them ready so the
        # caller's next operation surfaces a clean error instead of
        # touching a recycled descriptor in the new incarnation.
        for desc in self.fds.descriptors():
            psock = desc.payload
            if psock is not None and psock.mode == "server":
                psock.server_handle = handles.get(psock.sid)
        self.reregistrations += 1

    def _adopt_tcp(self, psock, state, receiver):
        yield from self._prime_metastate(psock.remote[0])
        session = self.stack.adopt_tcp_state(
            state, config=config_from_opts(self.stack, psock.opts)
        )
        psock.session = session
        psock.mode = "app"
        psock.input_key = ("tcp", psock.lport, psock.remote)
        self.library.attach_input(receiver, key=psock.input_key)

    def _prime_metastate(self, dst_ip):
        """Warm the route and ARP caches when a session migrates in, so
        the send fast path never talks to the server (Section 3.3)."""
        meta = self.library.metastate
        next_hop = yield from meta.prime_route(self.ctx, dst_ip)
        yield from meta.resolve(self.ctx, next_hop)

    def _adopt_udp(self, psock, receiver):
        session = self.stack.adopt_udp_session(
            (self.library.host.ip, psock.lport), remote=psock.remote
        )
        psock.session = session
        psock.mode = "app"
        psock.input_key = ("udp", psock.lport, psock.remote)
        self.library.attach_input(receiver, key=psock.input_key)

    # ------------------------------------------------------------------
    # Creation and naming
    # ------------------------------------------------------------------

    def socket(self, kind):
        yield from self._proxy_entry()
        sid = yield from self._rpc("proxy_socket", self.app_id, kind)
        desc = self.fds.alloc(kind, ProxySocket(sid, kind))
        return desc.fd

    def bind(self, fd, port):
        psock = self.fds.get(fd).payload
        yield from self._proxy_entry()
        lport, receiver = yield from self._rpc("proxy_bind", psock.sid, port,
                                               sid=psock.sid)
        psock.lport = lport
        if psock.kind == SOCK_DGRAM:
            # A bound UDP session migrates to the application immediately.
            self._adopt_udp(psock, receiver)

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    def connect(self, fd, addr):
        psock = self.fds.get(fd).payload
        yield from self._proxy_entry()
        if psock.mode == "app" and psock.kind == SOCK_DGRAM:
            # Re-connect of a bound UDP socket: the filter narrows, so the
            # session bounces through the server.
            self.library.detach_input(psock.input_key)
            self.stack.udp_close(psock.session)
        result = yield from self._rpc("proxy_connect", psock.sid, addr,
                                      psock.opts, sid=psock.sid)
        if psock.kind == SOCK_DGRAM:
            psock.lport, receiver = result
            psock.remote = tuple(addr)
            self._adopt_udp(psock, receiver)
            yield from self._prime_metastate(psock.remote[0])
        else:
            psock.lport, state, receiver = result
            psock.remote = tuple(addr)
            yield from self._adopt_tcp(psock, state, receiver)

    def listen(self, fd, backlog=5):
        psock = self.fds.get(fd).payload
        yield from self._proxy_entry()
        psock.lport, psock.server_handle = yield from self._rpc(
            "proxy_listen", psock.sid, backlog, psock.opts, sid=psock.sid
        )
        psock.mode = "server"  # listeners stay with the OS server
        psock.backlog = backlog

    def accept(self, fd):
        listener = self.fds.get(fd).payload
        yield from self._proxy_entry()
        child_sid, remote, state, receiver = yield from self._rpc(
            "proxy_accept", listener.sid, self.app_id, sid=listener.sid
        )
        psock = ProxySocket(child_sid, SOCK_STREAM)
        psock.lport = listener.lport
        psock.remote = tuple(remote)
        psock.opts = dict(listener.opts)
        yield from self._adopt_tcp(psock, state, receiver)
        desc = self.fds.alloc(SOCK_STREAM, psock)
        return desc.fd, psock.remote

    # ------------------------------------------------------------------
    # Data transfer: entirely within the application for app-managed
    # sessions; routed through the server otherwise (post-fork)
    # ------------------------------------------------------------------

    def send(self, fd, data):
        psock = self.fds.get(fd).payload
        # Socket entry: each outbound packet starts its own trace.
        begin_send_trace(self.ctx, self.library.host.name, len(data))
        yield from self._proxy_entry()
        if psock.mode == "app":
            if psock.kind == SOCK_DGRAM:
                yield from self._udp_send_app(psock, data, psock.remote)
                return len(data)
            n = yield from self.stack.tcp_send(psock.session, data)
            return n
        if psock.mode == "server":
            n = yield from self._rpc("send", psock.server_handle,
                                     data=bytes(data), sid=psock.sid)
            return n
        raise SocketError("send on unconnected socket")

    def recv(self, fd, max_bytes):
        psock = self.fds.get(fd).payload
        yield from self._proxy_entry(Layer.COPYOUT_EXIT)
        if psock.mode == "app":
            if psock.kind == SOCK_DGRAM:
                _src, data = yield from self.stack.udp_recv(
                    psock.session, timeout_us=psock.session.recv_timeout_us
                )
                return data
            data = yield from self.stack.tcp_recv(
                psock.session, max_bytes,
                timeout_us=psock.session.recv_timeout_us,
            )
            return data
        if psock.mode == "server":
            data = yield from self._rpc(
                "recv", psock.server_handle, max_bytes, sid=psock.sid,
                layer=Layer.COPYOUT_EXIT,
            )
            return data
        raise SocketError("recv on unconnected socket")

    def _udp_send_app(self, psock, data, dst):
        if dst is None:
            raise SocketError("no destination for datagram")
        if not self.library.metastate.has_route(dst[0]):
            yield from self._prime_metastate(dst[0])
        yield from self.stack.udp_send(psock.session, data, dst=dst)

    def sendto(self, fd, data, addr):
        psock = self.fds.get(fd).payload
        begin_send_trace(self.ctx, self.library.host.name, len(data))
        yield from self._proxy_entry()
        if psock.mode == "embryonic":
            # BSD auto-binds: the session gets an ephemeral port and
            # migrates into the application on first use.
            lport, receiver = yield from self._rpc("proxy_bind", psock.sid, 0,
                                                   sid=psock.sid)
            psock.lport = lport
            self._adopt_udp(psock, receiver)
        if psock.mode == "app":
            yield from self._udp_send_app(psock, data, tuple(addr))
            return len(data)
        n = yield from self._rpc("sendto", psock.server_handle, tuple(addr),
                                 data=bytes(data), sid=psock.sid)
        return n

    def recvfrom(self, fd):
        psock = self.fds.get(fd).payload
        yield from self._proxy_entry(Layer.COPYOUT_EXIT)
        if psock.mode == "app":
            src, data = yield from self.stack.udp_recv(
                psock.session, timeout_us=psock.session.recv_timeout_us
            )
            return data, src
        if psock.mode == "server":
            src, data = yield from self._rpc(
                "recvfrom", psock.server_handle, sid=psock.sid,
                layer=Layer.COPYOUT_EXIT,
            )
            return data, src
        raise SocketError("recvfrom on unbound socket")

    # ------------------------------------------------------------------
    # Teardown and fork: sessions migrate back to the server
    # ------------------------------------------------------------------

    def shutdown(self, fd):
        """Half-close: the write side finishes, but unlike close the
        session does NOT migrate — reads continue in the application."""
        psock = self.fds.get(fd).payload
        yield from self._proxy_entry()
        if psock.mode == "app" and psock.kind == SOCK_STREAM:
            yield from self.stack.tcp_shutdown(psock.session)
        elif psock.mode == "server":
            yield from self._rpc("shutdown", psock.server_handle,
                                 sid=psock.sid)
        else:
            raise SocketError("shutdown on a non-stream or unconnected fd")

    def close(self, fd):
        desc = self.fds.free(fd)
        if desc is None:
            return  # another process still holds the descriptor
        psock = desc.payload
        yield from self._proxy_entry()
        if psock.mode == "app":
            if psock.kind == SOCK_STREAM:
                yield from self.stack._tcp_drain(psock.session)
                state = self.stack.export_tcp_session(psock.session)
            else:
                self.stack.udp_close(psock.session)
                state = None
            self._closing[psock.sid] = {
                "sid": psock.sid,
                "kind": psock.kind,
                "lport": psock.lport,
                "remote": psock.remote,
                "app_filter": self.library.session_filters.get(psock.sid),
            }
            try:
                yield from self._rpc("proxy_close", psock.sid, state,
                                     sid=psock.sid)
            except ServerUnavailable:
                # Graceful degradation: the local teardown (drain, export,
                # filter detach) is already done; the server-side half
                # replays in the background once the server is reachable.
                # The _closing snapshot stays until the drain lands so a
                # restarted server learns about the session first.
                self._defer_close(psock.sid, state)
            else:
                self._closing.pop(psock.sid, None)
            self.library.detach_input(psock.input_key)
        elif psock.mode in ("server", "embryonic"):
            try:
                yield from self._rpc("proxy_close", psock.sid, None,
                                     sid=psock.sid)
            except ServerUnavailable:
                # Server-managed state either survives in the live server
                # (slow, breaker open) or died with it (crash) — in both
                # cases the deferred close is sufficient: proxy_close of
                # an unknown sid is a clean no-op after a restart.
                self._defer_close(psock.sid, None)
        psock.mode = "closed"

    def _defer_close(self, sid, state):
        """Finish a shed close in the background with the patient caller
        (no breaker, no budget): it parks politely through the outage and
        lands the server-side teardown on recovery."""
        self.closes_deferred += 1

        def drain():
            self._req_seq += 1
            req_id = (self.app_id, sid, self._req_seq)
            try:
                yield from self._patient.call(
                    "proxy_close", args=(sid, state),
                    layer=Layer.ENTRY_COPYIN, req_id=req_id,
                )
            finally:
                self._closing.pop(sid, None)

        self.ctx.sim.spawn(
            drain(), name="%s.close-drain.%d" % (self.library.name, sid)
        )

    def migrate_to_server(self, fd):
        """Return one session to the server (the fork preparation step).

        Crash-hardened: once the TCP state is exported it exists only in
        this call's frame, so the sid is snapshotted into ``_migrating``
        before the RPC — a server crash mid-``proxy_return`` then rebuilds
        the record during re-registration and the retried RPC (same
        request id) replays the state instead of stranding the psock on
        "unknown session id"."""
        psock = self.fds.get(fd).payload
        if psock.mode != "app":
            return
        if psock.kind == SOCK_STREAM:
            yield from self.stack._tcp_drain(psock.session)
            state = self.stack.export_tcp_session(psock.session)
        else:
            self.stack.udp_close(psock.session)
            state = None
        self._migrating[psock.sid] = {
            "sid": psock.sid,
            "kind": psock.kind,
            "lport": psock.lport,
            "remote": psock.remote,
            "app_filter": self.library.session_filters.get(psock.sid),
        }
        try:
            handle = yield from self._rpc("proxy_return", psock.sid, state,
                                          sid=psock.sid)
        finally:
            self._migrating.pop(psock.sid, None)
        self.library.detach_input(psock.input_key)
        psock.session = None
        psock.server_handle = handle
        psock.mode = "server"

    def fork(self):
        """BSD fork: both processes' descriptors must name the same I/O
        streams, so every app-managed session returns to the server first
        (Table 1's fork row).  Returns a generator yielding the child API.
        """
        if self._fork_factory is None:
            raise SocketError("this proxy was created without fork support")
        for fd in list(self.fds.open_fds()):
            yield from self.migrate_to_server(fd)
        child = self._fork_factory()
        for desc in self.fds.descriptors():
            child.fds.adopt(desc)
        return child

    def ping(self, dst_ip, **_kwargs):
        """Ping is an OS-server service (it needs raw IP access, which
        applications do not get)."""
        yield from self._proxy_entry()
        rtt = yield from self._rpc("ping", dst_ip)
        return rtt

    def traceroute(self, dst_ip, max_hops=16):
        yield from self._proxy_entry()
        hops = yield from self._rpc("traceroute", dst_ip, max_hops)
        return hops

    # ------------------------------------------------------------------
    # The cooperative select (Section 3.2)
    # ------------------------------------------------------------------

    def setsockopt(self, fd, option, value):
        psock = self.fds.get(fd).payload
        yield from self._proxy_entry()
        psock.opts[option] = value
        if psock.mode == "app" and psock.session is not None:
            from repro.osserver.inkernel import _apply_sockopt

            class _D:  # adapt to _apply_sockopt's descriptor shape
                kind = psock.kind
                payload = psock.session

            _apply_sockopt(_D, option, value)
        elif psock.mode == "server":
            yield from self._rpc("setsockopt", psock.server_handle, option,
                                 value, sid=psock.sid)

    def select(self, read_fds, write_fds=(), timeout=None):
        yield from self._proxy_entry()
        deadline = None if timeout is None else self.ctx.sim.now + timeout
        self._ensure_status_watcher()
        while True:
            local_r, local_w, srv_r, srv_w = self._partition(read_fds, write_fds)
            ready_r = [fd for fd, ready in local_r if ready]
            ready_w = [fd for fd, ready in local_w if ready]
            if ready_r or ready_w:
                return ready_r, ready_w
            remaining = None
            if deadline is not None:
                remaining = deadline - self.ctx.sim.now
                if remaining <= 0:
                    return [], []
            for fd, _ready in local_r + local_w:
                session = self.fds.get(fd).payload.session
                if session is not None:
                    session.selected = True
            if srv_r or srv_w:
                # Block in the server; our status watcher will poke it via
                # proxy_status if a local session becomes ready meanwhile.
                self._select_outstanding = True
                try:
                    res_r, res_w, _hint = yield from self._rpc(
                        "proxy_select", self.app_id,
                        [h for _fd, h in srv_r], [h for _fd, h in srv_w],
                        remaining,
                    )
                except ServerUnavailable:
                    # Graceful degradation: instead of wedging in a select
                    # on an unreachable server, report its fds as ready —
                    # the caller's next operation on them surfaces the
                    # real error.
                    return ([fd for fd, _h in srv_r],
                            [fd for fd, _h in srv_w])
                finally:
                    self._select_outstanding = False
                handle_map = {h: fd for fd, h in srv_r + srv_w}
                if res_r or res_w:
                    return (
                        [handle_map[h] for h in res_r],
                        [handle_map[h] for h in res_w],
                    )
                # Either a local status change or a timeout: loop and
                # re-check (the deadline check above ends the loop).
            else:
                from repro.sim.events import any_of

                waits = [self.stack.select_notify.wait()]
                if remaining is not None:
                    waits.append(self.ctx.sim.timeout(remaining))
                yield any_of(self.ctx.sim, waits)

    def _partition(self, read_fds, write_fds):
        local_r, local_w, srv_r, srv_w = [], [], [], []
        for fd in read_fds:
            psock = self.fds.get(fd).payload
            if psock.mode == "server":
                if psock.server_handle is None:
                    # The session died with a crashed server incarnation:
                    # report it ready so the caller's next operation on it
                    # fails cleanly rather than wedging this select.
                    local_r.append((fd, True))
                else:
                    srv_r.append((fd, psock.server_handle))
            else:
                local_r.append((fd, self._local_ready(psock, "readable")))
        for fd in write_fds:
            psock = self.fds.get(fd).payload
            if psock.mode == "server":
                if psock.server_handle is None:
                    local_w.append((fd, True))
                else:
                    srv_w.append((fd, psock.server_handle))
            else:
                local_w.append((fd, self._local_ready(psock, "writable")))
        return local_r, local_w, srv_r, srv_w

    def _local_ready(self, psock, field):
        if psock.session is None:
            return field == "writable"
        if psock.kind == SOCK_DGRAM:
            state = self.stack.udp_poll(psock.session)
        else:
            state = self.stack.tcp_poll(psock.session)
        return state[field] or state["error"]

    def _ensure_status_watcher(self):
        """The library-side half of the cooperative interface: when a
        selected local session changes status while a server select is
        outstanding, notify the server (proxy_status) to unblock it."""
        if self._status_watcher is not None and self._status_watcher.alive:
            return
        self._status_watcher = self.ctx.sim.spawn(
            self._watch_status(), name="%s.selwatch" % self.library.name
        )

    def _watch_status(self):
        while True:
            yield self.stack.select_notify.wait()
            if self._select_outstanding:
                yield from self._rpc("proxy_status", self.app_id)

    # ------------------------------------------------------------------
    # Control-plane health and stats
    # ------------------------------------------------------------------

    def server_health(self):
        """Query the server's admission/health snapshot (``proxy_health``)."""
        yield from self._proxy_entry()
        report = yield from self._rpc("proxy_health")
        return report

    def control_stats(self):
        """Client-side control-plane counters for netstat/chaos reports."""
        stats = {
            "app": self.library.name,
            "retries": self.resilient.retries,
            "reregistrations": self.reregistrations,
            "closes_deferred": self.closes_deferred,
            "budget_exhaustions": (self.resilient.budget_exhaustions
                                   + self._patient.budget_exhaustions),
        }
        if self.resilient.breaker is not None:
            stats["breaker"] = self.resilient.breaker.snapshot()
        return stats
