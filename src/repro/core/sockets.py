"""The BSD socket programming interface, as seen by applications.

The paper's compatibility goal is *source-level*: applications written
against BSD sockets recompile and relink unmodified.  Accordingly every
placement — in-kernel, server-based, and library-based — implements this
same :class:`SocketAPI`, and the applications and benchmarks in
:mod:`repro.apps` are written once against it.

All operations are generators (they run inside the simulation); aside
from that the signatures mirror the classic calls, including the ten
send/receive variants collapsing onto send/recv/sendto/recvfrom.
"""

SOCK_STREAM = 1
SOCK_DGRAM = 2


class SocketError(Exception):
    """A socket-level error (the moral equivalent of an errno)."""


class BadFileDescriptor(SocketError):
    """Operation on a closed or never-opened descriptor."""


class Descriptor:
    """One open socket descriptor."""

    __slots__ = ("fd", "kind", "payload", "refcount")

    def __init__(self, fd, kind, payload):
        self.fd = fd
        self.kind = kind  # SOCK_STREAM or SOCK_DGRAM
        self.payload = payload  # placement-specific session handle
        self.refcount = 1  # >1 after fork shares the descriptor

    def __repr__(self):
        return "<Descriptor fd=%d kind=%d>" % (self.fd, self.kind)


class FDTable:
    """Per-process file-descriptor table."""

    def __init__(self, first_fd=3):
        self._first = first_fd
        self._table = {}
        self._next = first_fd

    def alloc(self, kind, payload):
        fd = self._next
        self._next += 1
        desc = Descriptor(fd, kind, payload)
        self._table[fd] = desc
        return desc

    def adopt(self, descriptor):
        """Install a shared descriptor (fork inheritance) under its fd."""
        descriptor.refcount += 1
        self._table[descriptor.fd] = descriptor

    def get(self, fd):
        try:
            return self._table[fd]
        except (KeyError, TypeError):
            # TypeError covers unhashable fds; %r covers None and other
            # non-ints, so a bogus handle always surfaces as a clean
            # BadFileDescriptor rather than a formatting crash.
            raise BadFileDescriptor("fd %r is not open" % (fd,)) from None

    def free(self, fd):
        """Drop the fd; returns the descriptor if this was the last ref."""
        desc = self.get(fd)
        del self._table[fd]
        desc.refcount -= 1
        return desc if desc.refcount == 0 else None

    def open_fds(self):
        return sorted(self._table)

    def descriptors(self):
        return list(self._table.values())

    def __len__(self):
        return len(self._table)


class SocketAPI:
    """Abstract BSD socket interface.

    Subclasses implement the verbs for one placement.  Every method other
    than constructors is a generator to be driven in a simulation process.
    """

    def __init__(self):
        self.fds = FDTable()

    # -- creation and naming -------------------------------------------
    def socket(self, kind):
        raise NotImplementedError

    def bind(self, fd, port):
        raise NotImplementedError

    # -- connection management -----------------------------------------
    def listen(self, fd, backlog=5):
        raise NotImplementedError

    def accept(self, fd):
        raise NotImplementedError

    def connect(self, fd, addr):
        raise NotImplementedError

    # -- data transfer ---------------------------------------------------
    def send(self, fd, data):
        raise NotImplementedError

    def recv(self, fd, max_bytes):
        raise NotImplementedError

    def sendto(self, fd, data, addr):
        raise NotImplementedError

    def recvfrom(self, fd):
        raise NotImplementedError

    # -- everything else -------------------------------------------------
    def shutdown(self, fd):
        """shutdown(fd, SHUT_WR): half-close the write side; the read
        side keeps working until the peer closes."""
        raise NotImplementedError

    def close(self, fd):
        raise NotImplementedError

    def select(self, read_fds, write_fds=(), timeout=None):
        raise NotImplementedError

    def setsockopt(self, fd, option, value):
        raise NotImplementedError

    def fork(self):
        """Duplicate this process's descriptor table (BSD fork semantics:
        parent and child descriptors refer to the same sessions)."""
        raise NotImplementedError

    def ping(self, dst_ip, **kwargs):
        """ICMP echo to ``dst_ip``; returns the RTT in microseconds or
        None on timeout.  Not a socket call proper — ping needs raw IP,
        which in every placement is an operating-system service."""
        raise NotImplementedError

    # -- convenience composites (shared by all placements) ---------------

    def send_all(self, fd, data):
        """Loop send until every byte is accepted."""
        sent = 0
        while sent < len(data):
            n = yield from self.send(fd, data[sent:])
            if n <= 0:
                raise SocketError("send returned %d" % n)
            sent += n
        return sent

    def recv_exactly(self, fd, nbytes):
        """Loop recv until ``nbytes`` arrive (or EOF, raising)."""
        chunks = []
        remaining = nbytes
        while remaining > 0:
            chunk = yield from self.recv(fd, remaining)
            if not chunk:
                raise SocketError(
                    "EOF with %d of %d bytes outstanding" % (remaining, nbytes)
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)
