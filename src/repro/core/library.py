"""The user-level protocol library (the heart of the paper).

A :class:`ProtocolLibrary` lives in one application's address space.  It
runs the same protocol engine as the kernel and server placements, but at
user level: data moves between the application and the network with one
kernel crossing per direction and no operating-system-server involvement.

Input arrives per session through whichever kernel packet-filter
interface the configuration selects (Section 4.1):

* ``"ipc"`` — a Mach message per packet,
* ``"shm"`` — a shared-memory ring with condition-variable signalling,
* ``"shm_ipf"`` — the same ring fed by the integrated packet filter
  (the kernel must be built with ``integrated_filter=True``).

The library is multithreaded, as in the paper: a dedicated input thread
per session's packet-filter port plus the engine's timer thread.
"""

from repro.hw.cpu import Priority
from repro.kernel.ipc import MessagePort
from repro.kernel.kernel import IPCDelivery, SHMDelivery
from repro.mem.shm import SharedPacketRing
from repro.stack import dispatch
from repro.stack.context import ExecutionContext, light_locks
from repro.stack.engine import NetEnv, NetworkStack
from repro.stack.instrument import Layer, LayerAccounting
from repro.trace import adopt_trace, frame_trace
from repro.core.metastate import MetastateCache

PF_IPC = "ipc"
PF_SHM = "shm"
PF_SHM_IPF = "shm_ipf"

PF_VARIANTS = (PF_IPC, PF_SHM, PF_SHM_IPF)


class ProtocolLibrary:
    """One application's protocol library."""

    _next_app_id = 1

    def __init__(self, host, server_rpc, pf_variant=PF_SHM_IPF,
                 shared_buffers=False, accounting=None, tcp_defaults=None,
                 name=None):
        if pf_variant not in PF_VARIANTS:
            raise ValueError("unknown packet filter variant %r" % pf_variant)
        if pf_variant == PF_SHM_IPF and not host.kernel.integrated_filter:
            raise ValueError(
                "shm_ipf needs a kernel built with integrated_filter=True"
            )
        self.host = host
        self.pf_variant = pf_variant
        self.app_id = ProtocolLibrary._next_app_id
        ProtocolLibrary._next_app_id += 1
        self.name = name or ("%s.lib%d" % (host.name, self.app_id))
        sim = host.sim
        self.accounting = accounting or LayerAccounting()
        self.ctx = ExecutionContext(
            sim,
            host.cpu,
            priority=Priority.PROTOCOL,
            locks=light_locks(host.platform),
            accounting=self.accounting,
            name=self.name,
        )
        self.metastate = MetastateCache(
            sim, server_rpc, self.app_id, name="%s.meta" % self.name
        )
        env = NetEnv(
            local_ip=host.ip,
            local_mac=host.mac,
            send_frame=self._send_frame,
            resolve=self.metastate.resolve,
            route=self.metastate.route,
            arp_lookup=self.metastate.lookup,
            resolve_miss=self.metastate.resolve_miss,
        )
        self.stack = NetworkStack(
            self.ctx,
            env,
            name=self.name,
            udp_send_copies=False,  # the library references user data
            shared_buffers=shared_buffers,
            tcp_defaults=tcp_defaults,
            metrics=getattr(host, "metrics", None),
        )
        self._input_threads = {}
        #: sid -> kernel FilterHandle for this app's app-managed sessions.
        #: The kernel filters survive a server crash; the library reports
        #: them back during re-registration so the rebuilt server records
        #: can keep managing them.
        self.session_filters = {}
        #: Control-plane fault plan for per-packet IPC delivery ports
        #: (Library-IPC only); attached by ControlFaultPlan.attach().
        self.control_faults = None
        #: Back-pointer to the ProxySocketAPI built over this library,
        #: set by the proxy itself; netstat's control-plane block uses it.
        self.proxy_api = None

    # ------------------------------------------------------------------
    # Output: the kernel's low-latency send trap, from user space
    # ------------------------------------------------------------------

    def _send_frame(self, ctx, frame):
        yield from self.host.kernel.netif_send(ctx, frame, wired=False)

    # ------------------------------------------------------------------
    # Packet-filter endpoints: created on behalf of the OS server when it
    # installs a session filter targeting this application
    # ------------------------------------------------------------------

    def make_delivery(self):
        """A fresh (delivery, receiver) pair for one session's filter.

        The *delivery* side is installed in the kernel; the *receiver*
        side is what this library's input thread drains.  This models the
        per-session "packet filter port" the OS returns on session
        creation.
        """
        sim = self.host.sim
        if self.pf_variant == PF_IPC:
            port = MessagePort(sim, name="%s.pfport" % self.name)
            port.faults = self.control_faults
            return IPCDelivery(port), (PF_IPC, port)
        ring = SharedPacketRing(sim, name="%s.pfring" % self.name)
        return SHMDelivery(ring), (PF_SHM, ring)

    def attach_input(self, receiver, key=None):
        """Start the input thread draining one session's filter port."""
        kind, endpoint = receiver
        if kind == PF_IPC:
            proc = self.host.sim.spawn(
                self._ipc_input(endpoint), name="%s.in" % self.name
            )
        else:
            proc = self.host.sim.spawn(
                self._shm_input(endpoint), name="%s.in" % self.name
            )
        self._input_threads[key or id(receiver)] = proc
        return proc

    def detach_input(self, key):
        """Stop a session's input thread (after its filter is removed)."""
        proc = self._input_threads.pop(key, None)
        if proc is not None and proc.alive:
            proc.interrupt("session migrated away")

    def _ipc_input(self, port):
        """Library-IPC: one wakeup and one message per packet."""
        from repro.sim.errors import Interrupt

        try:
            if dispatch.TRAIN_DISPATCH:
                # Single-frame trains: same schedule, shallower resume
                # chain per packet (input_train inlines the TCP/UDP
                # input paths).  port.receive handles trace adoption.
                while True:
                    message = yield from port.receive(
                        self.ctx, Layer.KERNEL_COPYOUT)
                    yield from self.stack.input_train((message.data,))
            while True:
                message = yield from port.receive(self.ctx, Layer.KERNEL_COPYOUT)
                yield from self.stack.input_frame(message.data)
        except Interrupt:
            return

    def _shm_input(self, ring):
        """Library-SHM: drain every available packet per wakeup."""
        from repro.sim.errors import Interrupt

        sim = self.host.sim
        try:
            while True:
                batch = yield from ring.receive()
                # One scheduling wakeup amortized over the whole train;
                # attribute it to the train's first packet.
                adopt_trace(sim, frame_trace(batch[0]) if batch else None)
                yield self.ctx.charge(
                    Layer.KERNEL_COPYOUT, self.ctx.params.sched_dispatch
                )
                if dispatch.TRAIN_DISPATCH:
                    yield from self.stack.input_train(batch, adopt=True)
                else:
                    for frame in batch:
                        adopt_trace(sim, frame_trace(frame))
                        yield from self.stack.input_frame(frame)
        except Interrupt:
            return

    def note_app_filter(self, sid, handle):
        """The server installed a kernel filter for session ``sid``."""
        self.session_filters[sid] = handle

    def forget_app_filter(self, sid):
        self.session_filters.pop(sid, None)

    # ------------------------------------------------------------------

    def input_thread_count(self):
        return sum(1 for p in self._input_threads.values() if p.alive)

    def __repr__(self):
        return "<ProtocolLibrary %s pf=%s>" % (self.name, self.pf_variant)
