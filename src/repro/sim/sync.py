"""Synchronization primitives in simulated time.

All blocking operations are generators meant to be driven with
``yield from`` inside a process.  None of them charge CPU time by
themselves; cost accounting is the caller's job (see
:mod:`repro.stack.context`).

Every blocking operation *reneges* cleanly: if an exception (an
:class:`~repro.sim.errors.Interrupt` from another process, or
``GeneratorExit`` at teardown) reaches a process while it waits, the
waiter withdraws from the queue — and if the resource had already been
handed to it, the hand-off is forwarded to the next waiter instead of
leaking.  Without this, interrupting a thread that is queued on a lock
would leave the lock held by a ghost forever.
"""

import heapq
from collections import deque
from itertools import count

from repro.sim.errors import SimulationError
from repro.sim.events import Event


class _Waiter:
    """A queue entry that can be withdrawn (lazy removal).

    ``queued_at`` is stamped by the :class:`PriorityLock` enqueues only
    — the CPU scheduler's queue is where contention waits are
    attributed to packet traces (see
    :meth:`Process._charge_granted`); the other primitives leave it
    None.  A waiter queued via :meth:`PriorityLock.enqueue_charge`
    carries its ``proc`` instead of an event and is woken by scheduling
    the process's grant method directly; ``granted`` then plays the
    role ``event.triggered`` plays for event waiters.
    """

    __slots__ = ("event", "alive", "queued_at", "proc", "granted")

    def __init__(self, event):
        self.event = event
        self.alive = True
        self.queued_at = None
        self.proc = None
        self.granted = False

    def __repr__(self):
        kind = "charge" if self.proc is not None else "event"
        return "<lock waiter (%s)%s>" % (
            kind, "" if self.alive else " done")


class Lock:
    """A FIFO mutual-exclusion lock."""

    def __init__(self, sim, name=""):
        self._sim = sim
        self._locked = False
        self._waiters = deque()
        self.name = name
        self._waiter_name = "lock:%s" % name

    @property
    def locked(self):
        return self._locked

    def acquire(self):
        """``yield from lock.acquire()``"""
        if not self._locked:
            self._locked = True
            return
        waiter = _Waiter(Event(self._sim, name=self._waiter_name))
        self._waiters.append(waiter)
        try:
            yield waiter.event
        except BaseException:
            waiter.alive = False
            if waiter.event.triggered:
                # The lock was handed to us as we died: pass it on.
                self.release()
            raise

    def try_acquire(self):
        """Non-blocking acquire; returns True on success."""
        if self._locked:
            return False
        self._locked = True
        return True

    def release(self):
        if not self._locked:
            raise SimulationError("release of unlocked %r" % self)
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.alive:
                # Hand the lock directly to the next waiter: stays locked.
                waiter.event.succeed()
                return
        self._locked = False

    def __repr__(self):
        return "<Lock %s %s>" % (self.name, "held" if self._locked else "free")


class PriorityLock:
    """A lock that grants access to the highest-priority waiter first.

    Lower numeric priority wins (priority 0 preempts priority 10 at the
    next release point).  Equal priorities are FIFO.  This is the
    scheduling substrate for the simulated CPU.
    """

    def __init__(self, sim, name=""):
        self._sim = sim
        self._locked = False
        self._heap = []
        self._live = 0
        self._seq = count()
        self.name = name
        self._waiter_name = "plock:%s" % name
        #: Cumulative count of acquirers that had to wait.
        self.contended = 0
        #: Telemetry hook (bound by a MetricsRegistry while enabled;
        #: None costs one test per contended enqueue/release).
        self.depth_gauge = None

    @property
    def locked(self):
        return self._locked

    def acquire(self, priority=0):
        if not self._locked:
            self._locked = True
            return
        waiter = self.enqueue(priority)
        try:
            yield waiter.event
        except BaseException:
            self.withdraw(waiter)
            if waiter.event.triggered:
                self.release()
            raise

    def try_acquire(self):
        """Non-blocking acquire; returns True on success.

        Lets uncontended callers skip creating an :meth:`acquire`
        generator — the hand-off semantics are unchanged because an
        uncontended ``acquire`` never yields anyway.
        """
        if self._locked:
            return False
        self._locked = True
        return True

    def enqueue(self, priority):
        """Register a blocked acquirer; returns its :class:`_Waiter`.

        The contended half of :meth:`acquire`, split out so hot callers
        can wait on ``waiter.event`` in their own generator frame
        instead of delegating into a fresh one.  Such a caller owns the
        renege duty: on an exception during the wait it must mark the
        waiter dead (``withdraw``) and, if the event already triggered,
        forward the hand-off with :meth:`release`.
        """
        waiter = _Waiter(Event(self._sim, name=self._waiter_name))
        waiter.queued_at = self._sim._now
        heapq.heappush(self._heap, (priority, next(self._seq), waiter))
        self._live += 1
        self.contended += 1
        gauge = self.depth_gauge
        if gauge is not None:
            gauge.record(self._live)
        return waiter

    def enqueue_charge(self, proc, priority):
        """Queue ``proc``'s in-flight charge for the CPU.

        The charge-path twin of :meth:`enqueue`: instead of allocating
        a one-shot :class:`Event` per contention, the waiter carries
        the process and :meth:`release` schedules its
        ``_charge_granted`` method directly.  The ready-deque append
        happens at the exact moment ``event.succeed()`` would have
        appended the event dispatch, so wake order — and therefore the
        whole simulated schedule — is unchanged.  The waiter object is
        cached on the process and reused contention after contention;
        the cache is dropped whenever a renege leaves a stale reference
        in the heap (see :meth:`Process._resume`).
        """
        waiter = proc._cw
        if waiter is None:
            waiter = proc._cw = _Waiter(None)
            waiter.proc = proc
        waiter.alive = True
        waiter.granted = False
        waiter.queued_at = self._sim._now
        heapq.heappush(self._heap, (priority, next(self._seq), waiter))
        self._live += 1
        self.contended += 1
        gauge = self.depth_gauge
        if gauge is not None:
            gauge.record(self._live)
        return waiter

    def withdraw(self, waiter):
        """Renege a queued ``waiter`` (lazy removal; see :meth:`enqueue`)."""
        if waiter.alive:
            waiter.alive = False
            self._live -= 1

    def release(self):
        if not self._locked:
            raise SimulationError("release of unlocked %r" % self)
        while self._heap:
            _prio, _seq, waiter = heapq.heappop(self._heap)
            if waiter.alive:
                waiter.alive = False
                self._live -= 1
                proc = waiter.proc
                if proc is not None:  # charge fast waiter: direct grant
                    waiter.granted = True
                    self._sim._ready.append((proc._charge_granted, (waiter,)))
                else:
                    waiter.event.succeed()
                gauge = self.depth_gauge
                if gauge is not None:
                    gauge.record(self._live)
                return
        self._locked = False

    def waiting(self):
        """Number of blocked acquirers."""
        return self._live


class Condition:
    """A condition variable tied to a :class:`Lock`.

    ``wait()`` atomically releases the lock and suspends; waking reacquires
    the lock before returning, exactly like POSIX condition variables.
    """

    def __init__(self, sim, lock=None, name=""):
        self._sim = sim
        self.lock = lock if lock is not None else Lock(sim, name + ".lock")
        self._waiters = deque()
        self.name = name
        self._waiter_name = "cond:%s" % name

    def wait(self):
        """``yield from cond.wait()`` — caller must hold the lock."""
        if not self.lock.locked:
            raise SimulationError("wait() on %r without holding its lock" % self)
        waiter = _Waiter(Event(self._sim, name=self._waiter_name))
        self._waiters.append(waiter)
        self.lock.release()
        try:
            yield waiter.event
        except BaseException:
            if waiter.alive:
                waiter.alive = False
            elif waiter.event.triggered:
                # We consumed a notify we will never act on: re-notify.
                self.notify(1)
            raise
        yield from self.lock.acquire()

    def notify(self, n=1):
        """Wake up to ``n`` waiters (they still must reacquire the lock)."""
        woken = 0
        while self._waiters and woken < n:
            waiter = self._waiters.popleft()
            if waiter.alive:
                waiter.alive = False
                waiter.event.succeed()
                woken += 1
        return woken

    def notify_all(self):
        return self.notify(len(self._waiters))

    def waiting(self):
        return sum(1 for w in self._waiters if w.alive)


class Semaphore:
    """A counting semaphore with FIFO wakeup."""

    def __init__(self, sim, value=0, name=""):
        if value < 0:
            raise ValueError("negative initial value: %r" % value)
        self._sim = sim
        self._value = value
        self._waiters = deque()
        self.name = name
        self._waiter_name = "sem:%s" % name

    @property
    def value(self):
        return self._value

    def down(self):
        """``yield from sem.down()`` — block until a unit is available."""
        if self._value > 0:
            self._value -= 1
            return
        waiter = _Waiter(Event(self._sim, name=self._waiter_name))
        self._waiters.append(waiter)
        try:
            yield waiter.event
        except BaseException:
            waiter.alive = False
            if waiter.event.triggered:
                self.up()  # the unit handed to us is forwarded
            raise

    def try_down(self):
        if self._value > 0:
            self._value -= 1
            return True
        return False

    def up(self, n=1):
        """Release ``n`` units, waking blocked processes first."""
        for _ in range(n):
            woken = False
            while self._waiters:
                waiter = self._waiters.popleft()
                if waiter.alive:
                    waiter.alive = False
                    waiter.event.succeed()
                    woken = True
                    break
            if not woken:
                self._value += 1


class Channel:
    """A FIFO message queue between processes.

    ``capacity=None`` makes it unbounded (``put`` never blocks).  A bounded
    channel blocks producers when full, which models back-pressure such as
    a full device transmit queue.
    """

    def __init__(self, sim, capacity=None, name=""):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self._sim = sim
        self._capacity = capacity
        self._items = deque()
        self._getters = deque()
        self._putters = deque()
        self.name = name
        self._put_name = "chan.put:%s" % name
        self._get_name = "chan.get:%s" % name

    def __len__(self):
        return len(self._items)

    @property
    def capacity(self):
        return self._capacity

    def _wake(self, waiters):
        while waiters:
            waiter = waiters.popleft()
            if waiter.alive:
                waiter.alive = False
                waiter.event.succeed()
                return True
        return False

    def put(self, item):
        """``yield from chan.put(item)``"""
        while self._capacity is not None and len(self._items) >= self._capacity:
            waiter = _Waiter(Event(self._sim, name=self._put_name))
            self._putters.append(waiter)
            try:
                yield waiter.event
            except BaseException:
                waiter.alive = False
                if waiter.event.triggered:
                    self._wake(self._putters)  # forward the free slot
                raise
        self._items.append(item)
        if self._getters:
            self._wake(self._getters)

    def try_put(self, item):
        """Non-blocking put; returns False if the channel is full."""
        if self._capacity is not None and len(self._items) >= self._capacity:
            return False
        self._items.append(item)
        if self._getters:
            self._wake(self._getters)
        return True

    def get(self):
        """``item = yield from chan.get()``"""
        while not self._items:
            waiter = _Waiter(Event(self._sim, name=self._get_name))
            self._getters.append(waiter)
            try:
                yield waiter.event
            except BaseException:
                waiter.alive = False
                if waiter.event.triggered:
                    self._wake(self._getters)  # forward the wakeup
                raise
        item = self._items.popleft()
        if self._putters:
            self._wake(self._putters)
        return item

    def try_get(self):
        """Non-blocking get; returns (True, item) or (False, None)."""
        if not self._items:
            return False, None
        item = self._items.popleft()
        if self._putters:
            self._wake(self._putters)
        return True, item

    def peek_all(self):
        """A snapshot list of queued items (for tests and introspection)."""
        return list(self._items)
