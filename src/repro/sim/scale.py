"""A scale-out simulator: calendar-queue timers + per-host event locality.

The default :class:`~repro.sim.engine.Simulator` reproduces the paper's
1993 measurements under a bit-identical contract — its schedule must
never change, so it stays exactly as it is.  Scale-out worlds (hundreds
to a thousand hosts; see :mod:`repro.world.topology`) run instead on
:class:`ScaleSimulator`, which changes two things:

* **Future store** — the binary heap is replaced with the calendar
  queue of :mod:`repro.sim.wheel`, so the tens of thousands of live
  timers a big world keeps (TCP ticks, ARP retries, arrivals, wire
  deliveries) push and pop in amortized constant time.

* **Event locality in ready dispatch** — when the clock advances, every
  item due at the new instant is drained into the ready deque at once
  (as on the default engine), but the batch is first stably partitioned
  by *domain*: the host the work belongs to.  Work for one host then
  runs back to back instead of interleaving round-robin across hundreds
  of hosts, which keeps that host's Python objects (TCB dicts, mbuf
  chains, CPU scheduler) hot in cache.  The partition is stable and
  derived only from simulation state, so runs stay fully deterministic:
  same seed, same schedule, every time.

Domains propagate on their own: a spawned process inherits the domain
of the process that spawned it, and world builders wrap per-host
construction in ``with sim.domain(name):`` so every background loop a
host starts (interrupt handlers, timer loops, ARP responders, apps) is
tagged without any per-call plumbing.  Objects whose bound methods are
scheduled directly via ``call_at`` (wires, for example) are tagged by
giving them a ``domain`` attribute.

A scale world defines its *own* determinism contract — two runs with
the same seed are identical — rather than equivalence with the default
engine's schedule; the small 1993 worlds never run on this class, so
``BENCH.json`` is untouched by construction.

Components detect scale mode with ``isinstance(sim, ScaleSimulator)``
and switch to their O(1) structures (indexed packet-filter demux in the
kernel, the armed-session tick registry in the TCP/UDP stack) — the
default engine keeps the exact 1993 code paths.
"""

from contextlib import contextmanager

from repro.sim.engine import Simulator
from repro.sim.errors import Deadlock
from repro.sim.events import PENDING
from repro.sim.wheel import CalendarQueue


class ScaleSimulator(Simulator):
    """Simulator variant for 500–1000-host worlds."""

    def __init__(self, wheel_width=64.0, wheel_buckets=8192):
        super().__init__()
        self._queue = CalendarQueue(width=wheel_width, nbuckets=wheel_buckets)
        self._heappush = CalendarQueue.heappush
        #: Ambient domain applied to spawns made outside any process
        #: (world construction time); see :meth:`domain`.
        self._ambient_domain = None

    # ------------------------------------------------------------------
    # Domains
    # ------------------------------------------------------------------

    @contextmanager
    def domain(self, key):
        """Tag every process spawned inside the block with ``key``.

        Used by world builders around per-host construction so the
        host's background loops land in its locality group.
        """
        previous = self._ambient_domain
        self._ambient_domain = key
        try:
            yield
        finally:
            self._ambient_domain = previous

    def spawn(self, generator, name=""):
        proc = super().spawn(generator, name=name)
        parent = self.current
        if parent is not None:
            proc.domain = parent.domain
        else:
            proc.domain = self._ambient_domain
        return proc

    def _entry_domain(self, fn, args):
        """The domain of one scheduled ``(fn, args)`` item.

        The timer fast path schedules ``ready.append((method, args))``
        — unwrap it to reach the process method inside; anything else is
        a bound method of its owner (event, wire, stack), whose optional
        ``domain`` attribute decides the group.
        """
        if (args and type(args[0]) is tuple
                and getattr(fn, "__self__", None) is self._ready):
            fn = args[0][0]
        owner = getattr(fn, "__self__", None)
        return getattr(owner, "domain", None)

    def _localize(self, batch):
        """Stable-partition a same-instant batch by domain.

        Items keep their relative (sequence) order inside each domain,
        and domains appear in order of their first item, so the result
        is a pure function of the schedule — deterministic."""
        entry_domain = self._entry_domain
        groups = {}
        order = []
        for entry in batch:
            key = entry_domain(entry[0], entry[1])
            group = groups.get(key)
            if group is None:
                groups[key] = [entry]
                order.append(key)
            else:
                group.append(entry)
        if len(order) == 1:
            return batch
        out = []
        for key in order:
            out.extend(groups[key])
        return out

    # ------------------------------------------------------------------
    # Run loops (calendar-queue pops + localized drains)
    # ------------------------------------------------------------------

    def step(self):
        """Mirror of the base step, against the calendar queue: drain
        everything due at the new instant, localized, then dispatch."""
        ready = self._ready
        if ready:
            fn, payload = ready.popleft()
            if fn is not None:
                fn(*payload)
            else:  # dispatch: run a triggered event's callbacks
                callbacks, payload.callbacks = payload.callbacks, None
                for callback in callbacks:
                    callback(payload)
            return True
        queue = self._queue
        if not queue:
            return False
        when, _seq, fn, args = queue.pop()
        self._now = when
        if queue and queue.peek_when() == when:
            batch = [(fn, args)]
            append = batch.append
            while queue and queue.peek_when() == when:
                item = queue.pop()
                append((item[2], item[3]))
            ready.extend(self._localize(batch))
            fn, payload = ready.popleft()
            fn(*payload)
        else:
            fn(*args)
        return True

    def run_all(self, generators, until=None):
        """Spawn several processes; run until all finish; return values.

        Same contract as the base implementation, driven through the
        overridden :meth:`step` so batches localize."""
        procs = [self.spawn(gen) for gen in generators]
        pending = list(procs)
        ready = self._ready
        queue = self._queue
        pending_state = PENDING
        step = self.step
        last = pending[-1] if pending else None
        while last is not None:
            if last._state is not pending_state:
                pending.pop()
                last = pending[-1] if pending else None
                continue
            if not ready:
                if not queue:
                    break
                if until is not None and queue.peek_when() > until:
                    break
            step()
        results = []
        for proc in procs:
            if not proc.triggered:
                raise Deadlock("process %r did not finish" % proc,
                               blocked=self._blocked_report(),
                               flight=self.flight.snapshot())
            if not proc.ok:
                raise proc.value
            results.append(proc.value)
        return results
