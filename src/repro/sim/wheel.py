"""A calendar-queue future-event store for scale-out worlds.

The default :class:`~repro.sim.engine.Simulator` keeps future work in a
binary heap — perfect for the paper's two-host 1993 testbeds, where the
queue holds a few dozen entries.  A 500–1000-host world keeps tens of
thousands of timers live at once (TCP slow/fast ticks, ARP retries,
wire deliveries, workload arrivals), and the heap's ``O(log n)`` per
operation plus cold comparisons start to show.  The classic fix is
Brown's calendar queue (CACM 1988): hash events into time buckets so
push and pop run in amortized constant time.

This variant is a *ring of day buckets plus an overflow heap*:

* the ring covers a sliding window ``[base, base + width * nbuckets)``;
  an item lands in bucket ``(when - base) // width``, kept sorted by
  ``(when, seq)`` via binary insort (buckets stay short, so the insort
  memmove is cheap);
* items beyond the window go to an overflow heap; when the ring drains,
  the window re-anchors at the overflow's earliest item and one
  window's worth of items is decanted into the ring (already in heap
  order, so decanting is a plain append per item);
* a cursor remembers the first possibly-nonempty bucket, so pop/peek
  never rescan the whole ring.

Ordering is *exactly* the heap's: items pop in ``(when, seq)`` order,
ties in time broken by the global insertion sequence number, so a
simulator backed by this store replays the same deterministic schedule
for the same seed.  The interface mirrors what the engine actually does
with its heap — ``heappush(queue, item)``, ``queue[0][0]`` to peek the
next deadline, ``len``/truthiness — so the engine's run loops need no
store-specific branches.
"""

from bisect import insort
from heapq import heappop, heappush
from math import floor


class CalendarQueue:
    """Future ``(when, seq, fn, args)`` items in exact ``(when, seq)`` order."""

    __slots__ = ("_buckets", "_nbuckets", "_width", "_base", "_cursor",
                 "_ring_count", "_overflow", "_len")

    def __init__(self, width=64.0, nbuckets=8192):
        if width <= 0:
            raise ValueError("bucket width must be positive: %r" % width)
        if nbuckets <= 0:
            raise ValueError("need at least one bucket: %r" % nbuckets)
        self._buckets = [[] for _ in range(nbuckets)]
        self._nbuckets = nbuckets
        self._width = width
        self._base = 0.0
        self._cursor = 0
        self._ring_count = 0
        self._overflow = []
        self._len = 0

    # ------------------------------------------------------------------
    # Heap-compatible surface
    # ------------------------------------------------------------------

    def __len__(self):
        return self._len

    def __getitem__(self, index):
        """``queue[0][0]`` peeks the earliest deadline, as with a heap."""
        if index != 0 or self._len == 0:
            raise IndexError(index)
        return (self.peek_when(),)

    @staticmethod
    def heappush(queue, item):
        """Signature-compatible stand-in for :func:`heapq.heappush`."""
        queue.push(item)

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def push(self, item):
        when = item[0]
        if self._len == 0:
            # Empty: re-anchor the window at this item.
            self._base = floor(when / self._width) * self._width
            self._cursor = 0
        elif when < self._base:
            # An item before the window start (only happens when a
            # bounded run() left the clock behind a re-anchored window,
            # or under arbitrary standalone use).  Rebuild — rare.
            self._rebase(when)
        idx = int((when - self._base) / self._width)
        if idx >= self._nbuckets:
            heappush(self._overflow, item)
        else:
            insort(self._buckets[idx], item)
            self._ring_count += 1
            if idx < self._cursor:
                self._cursor = idx
        self._len += 1

    def pop(self):
        """Remove and return the earliest item (ties by sequence)."""
        if self._len == 0:
            raise IndexError("pop from an empty CalendarQueue")
        if self._ring_count == 0:
            self._refill()
        buckets = self._buckets
        cur = self._cursor
        while not buckets[cur]:
            cur += 1
        self._cursor = cur
        item = buckets[cur].pop(0)
        self._ring_count -= 1
        self._len -= 1
        return item

    def peek_when(self):
        """The earliest deadline, or None when empty.  Does not remove."""
        if self._len == 0:
            return None
        if self._ring_count == 0:
            self._refill()
        buckets = self._buckets
        cur = self._cursor
        while not buckets[cur]:
            cur += 1
        self._cursor = cur
        return buckets[cur][0][0]

    # ------------------------------------------------------------------
    # Window maintenance
    # ------------------------------------------------------------------

    def _refill(self):
        """Ring drained: slide the window to the overflow's earliest item
        and decant one window's worth of overflow into the ring."""
        overflow = self._overflow
        width = self._width
        nbuckets = self._nbuckets
        base = floor(overflow[0][0] / width) * width
        self._base = base
        self._cursor = 0
        end = base + width * nbuckets
        buckets = self._buckets
        last = nbuckets - 1
        count = 0
        while overflow and overflow[0][0] < end:
            item = heappop(overflow)
            idx = int((item[0] - base) / width)
            if idx > last:  # guard against float round-up at the edge
                idx = last
            # Heap pops arrive in (when, seq) order, so appending keeps
            # every bucket sorted without an insort.
            buckets[idx].append(item)
            count += 1
        self._ring_count = count

    def _rebase(self, new_min):
        """Rebuild the whole structure with the window anchored at or
        below ``new_min``.  O(n); reached only on backwards pushes."""
        items = []
        for bucket in self._buckets:
            if bucket:
                items.extend(bucket)
                del bucket[:]
        items.extend(self._overflow)
        del self._overflow[:]
        self._base = floor(new_min / self._width) * self._width
        self._cursor = 0
        self._ring_count = 0
        base = self._base
        width = self._width
        nbuckets = self._nbuckets
        overflow = self._overflow
        buckets = self._buckets
        count = 0
        for item in items:
            idx = int((item[0] - base) / width)
            if idx >= nbuckets:
                heappush(overflow, item)
            else:
                insort(buckets[idx], item)
                count += 1
        self._ring_count = count

    def __repr__(self):
        return "<CalendarQueue len=%d ring=%d overflow=%d base=%r>" % (
            self._len, self._ring_count, len(self._overflow), self._base)
