"""Opt-in multi-process island backend for scale-out worlds.

A scale-out :class:`~repro.world.topology.World` often decomposes at its
router boundaries: a WAN world is sites joined by multi-millisecond
long-haul links, a fat tree is edges joined by uplinks.  Frames that
cross such a link are invisible to the far side for at least the link's
propagation delay — which is exactly the *lookahead* a conservative
parallel discrete-event simulation needs.

This module cuts a world into **islands** at point-to-point
router-to-router wires with nonzero propagation delay, runs each group
of islands in its own worker process, and advances all workers in
synchronous windows of the minimum cut-wire propagation ``L``:

1. every worker runs its local event loop up to the window boundary;
2. frames serialized onto a cut wire during the window are *captured*
   (with their exact arrival timestamp ``t_serialized + propagation``)
   instead of delivered;
3. the parent merges all captures, sorts them by
   ``(arrival, origin group, capture sequence)``, and re-broadcasts;
4. each worker injects foreign frames at exactly their arrival times
   (all strictly beyond the window boundary, because every cut wire's
   propagation is at least ``L``) and the next window begins.

**Determinism contract.**  Results are identical to the single-process
run of the same spec, because

* every worker builds the *full* world from the same spec (so seeded
  link parameters, addresses, and MACs match across workers), then
  drives only its own islands' hosts — foreign hosts idle with nothing
  to deliver to them;
* cut wires run **full duplex** (per-sender serialization locks) in
  *both* modes, so half-duplex medium contention — which cannot be
  simulated across processes — never exists in either run (see
  :func:`harden_cut_wires`; applied by the tail study unconditionally);
* captured arrival timestamps are computed by the same float
  arithmetic the single-process delivery uses, and injected frames
  cannot tie with unrelated local events (arrival times carry the cut
  wire's full-precision seeded propagation);
* per-worker partial results merge commutatively: counts sum,
  latency percentiles sort their samples, and the mean uses
  ``math.fsum`` (correctly rounded regardless of summation order).

**Telemetry.**  The same boundary carries the observability plane:
captured frames travel with their packet trace ids (re-tagged on
injection, so request-scoped tracing spans the cut), and at the end of
the run every worker settles its clock to one canonical instant and
ships picklable per-island snapshots of its metrics registry slice and
trace rings home, where the parent folds them with the commutative
merge operators in :mod:`repro.metrics.registry` and :mod:`repro.trace`.
Merged metrics and forensics attribution are bit-identical to the
single-process run of the same spec.

**Scope.**  The backend runs UDP open-loop workloads (the tail study's
default).  TCP workloads synchronize client start-up on in-process
listen events, so they fall back to single-process, as does any world
from which no islands can be extracted — a star (every leaf wire has a
host on it, so nothing qualifies as a cut) or any topology whose only
routers share segments with hosts.  Wires carrying a fault plan are
never cut: fault state is process-local.
"""

import sys
from dataclasses import dataclass

#: Windows per run safety valve: a worker that has not converged after
#: this many synchronization rounds aborts instead of spinning forever.
MAX_WINDOWS = 1_000_000


# ----------------------------------------------------------------------
# Island extraction
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Island:
    """One connected component after removing the cut wires."""

    index: int
    hosts: tuple    # host indices into world.hosts
    routers: tuple  # router indices into world.routers


@dataclass(frozen=True)
class IslandPlan:
    """The partition of a world into islands, and what was cut."""

    islands: tuple     # of Island
    cut_wires: tuple   # names of wires crossing islands
    lookahead_us: float  # min propagation over the cut wires (0 if none)

    @property
    def parallelizable(self):
        return len(self.islands) >= 2 and bool(self.cut_wires)


def _wire_stations(world):
    """wire -> ([host indices], [router indices]) attachment map."""
    stations = {wire: ([], []) for wire in world.wires}
    for h, host in enumerate(world.hosts):
        stations[host.nic._wire][0].append(h)
    for r, router in enumerate(world.routers):
        for iface in router.interfaces:
            stations[iface.nic._wire][1].append(r)
    return stations


def partition_world(world):
    """Cut ``world`` into islands at router-to-router wires.

    A wire qualifies as a *cut candidate* when it is a point-to-point
    infrastructure link: exactly two attached stations, both router
    interfaces, nonzero propagation delay, and no fault plan.  Islands
    are the connected components over the remaining wires; candidates
    whose endpoints land in the same component (redundant paths) revert
    to ordinary wires.  Returns an :class:`IslandPlan`.
    """
    stations = _wire_stations(world)
    candidates = []
    for wire, (hosts, routers) in stations.items():
        if (wire.propagation_us > 0.0 and not hosts
                and len(routers) == 2 and routers[0] != routers[1]
                and wire.fault_plan is None):
            candidates.append(wire)
    # Union-find over ("h", i) / ("r", j) nodes via non-candidate wires.
    parent = {}

    def find(node):
        root = node
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    def union(a, b):
        parent[find(a)] = find(b)

    for h in range(len(world.hosts)):
        find(("h", h))
    for r in range(len(world.routers)):
        find(("r", r))
    candidate_set = set(id(w) for w in candidates)
    for wire, (hosts, routers) in stations.items():
        if id(wire) in candidate_set:
            continue
        members = [("h", h) for h in hosts] + [("r", r) for r in set(routers)]
        for node in members[1:]:
            union(members[0], node)

    components = {}
    for h in range(len(world.hosts)):
        components.setdefault(find(("h", h)), ([], []))[0].append(h)
    for r in range(len(world.routers)):
        components.setdefault(find(("r", r)), ([], []))[1].append(r)

    # Deterministic island order: by smallest host index, hostless
    # components (pure forwarding islands) after all hosted ones.
    def island_key(item):
        hosts, routers = item[1]
        return (0, hosts[0]) if hosts else (1, routers[0])

    ordered = sorted(components.items(), key=island_key)
    islands = tuple(
        Island(index=i, hosts=tuple(sorted(hosts)),
               routers=tuple(sorted(routers)))
        for i, (_root, (hosts, routers)) in enumerate(ordered))

    island_of_router = {}
    for island in islands:
        for r in island.routers:
            island_of_router[r] = island.index
    cut = []
    for wire in candidates:
        r0, r1 = stations[wire][1]
        if island_of_router[r0] != island_of_router[r1]:
            cut.append(wire)
    if len(islands) < 2 or not cut:
        whole = Island(index=0,
                       hosts=tuple(range(len(world.hosts))),
                       routers=tuple(range(len(world.routers))))
        return IslandPlan(islands=(whole,), cut_wires=(), lookahead_us=0.0)
    cut.sort(key=lambda w: w.name)
    return IslandPlan(
        islands=islands,
        cut_wires=tuple(w.name for w in cut),
        lookahead_us=min(w.propagation_us for w in cut),
    )


def harden_cut_wires(world, plan):
    """Switch the plan's cut wires to full-duplex serialization.

    Called in *every* run mode (the tail study applies it whether or
    not ``--parallel`` is in effect) so the single-process and
    parallel schedules stay identical: a half-duplex medium lock cannot
    be shared across worker processes, so the contention it models must
    not exist in either mode.  Full duplex is the physically accurate
    model for these links anyway — they are point-to-point router
    interconnects, not shared segments.  The flag never enters the
    world description, so fingerprints are unchanged.
    """
    by_name = {wire.name: wire for wire in world.wires}
    for name in plan.cut_wires:
        by_name[name].full_duplex = True


def pack_groups(plan, nprocs):
    """Assign islands to at most ``nprocs`` worker groups.

    Deterministic greedy balance by host count (largest island first,
    into the currently lightest group).  Returns a list of sorted
    island-index lists; fewer groups than ``nprocs`` when there are
    fewer islands.
    """
    nprocs = max(1, min(nprocs, len(plan.islands)))
    groups = [[] for _ in range(nprocs)]
    weights = [0] * nprocs
    for island in sorted(plan.islands,
                         key=lambda i: (-len(i.hosts), i.index)):
        g = min(range(nprocs), key=lambda j: (weights[j], j))
        groups[g].append(island.index)
        weights[g] += len(island.hosts)
    for group in groups:
        group.sort()
    return [group for group in groups if group]


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------

def _build_world_and_plan(topology_args, placement):
    from repro.world.topology import TopologySpec, build_world, warm_arp

    tspec = TopologySpec(placement=placement, **topology_args)
    world = build_world(tspec)
    plan = partition_world(world)
    harden_cut_wires(world, plan)
    warm_arp(world)
    return world, plan


def _island_worker(conn, group_index, groups, topology_args, placement,
                   wspec_args, telemetry=None):
    """One worker: build the full world, drive one group of islands.

    ``telemetry`` (None: legacy frame-only exchange) is a dict with
    optional keys ``"forensics"`` (``{"sample_every", "capacity",
    "seed"}`` — enable the trace recorder in selective mode) and
    ``"metrics"`` (truthy — export this group's slice of the world's
    metrics registry).  With telemetry on, captured frames carry their
    trace ids across the boundary, the worker settles its clock to the
    canonical snapshot instant, and the final result message carries
    picklable ``trace_state`` / ``request_state`` / ``metrics_state``
    blocks (plus the engine's ``flight_state`` ring) for the parent to
    merge.
    """
    try:
        from repro.trace.recorder import TaggedFrame, frame_trace
        from repro.world.workload import (
            SETTLE_GRACE_US,
            WorkloadSpec,
            WorkloadResult,
            build_schedules,
            settle_telemetry,
            spawn_udp_partition,
        )

        world, plan = _build_world_and_plan(topology_args, placement)
        sim = world.sim
        wspec = WorkloadSpec(**wspec_args)

        rt = None
        fconf = telemetry.get("forensics") if telemetry else None
        if fconf is not None:
            from repro.trace.request import RequestTracer

            world.tracer.enable(capacity=fconf["capacity"])
            rt = RequestTracer(world.tracer,
                               sample_every=fconf["sample_every"],
                               seed=fconf["seed"])

        island_group = {}
        for g, island_indices in enumerate(groups):
            for i in island_indices:
                island_group[i] = g
        local_hosts = set()
        local_routers = set()
        for i in groups[group_index]:
            local_hosts.update(plan.islands[i].hosts)
            local_routers.update(plan.islands[i].routers)

        # Install capture hooks on cut wires that cross *group*
        # boundaries and touch this group (cut wires internal to one
        # group keep normal local delivery).
        stations = _wire_stations(world)
        by_name = {wire.name: wire for wire in world.wires}
        island_of_router = {}
        for island in plan.islands:
            for r in island.routers:
                island_of_router[r] = island.index
        captures = []
        boundary = {}  # wire name -> frozenset of foreign NICs on it
        for name in plan.cut_wires:
            wire = by_name[name]
            r0, r1 = stations[wire][1]
            g0 = island_group[island_of_router[r0]]
            g1 = island_group[island_of_router[r1]]
            if g0 == g1:
                continue
            if group_index not in (g0, g1):
                continue
            foreign_router = world.routers[
                r0 if g0 != group_index else r1]
            foreign_nics = frozenset(
                iface.nic for iface in foreign_router.interfaces
                if iface.nic._wire is wire)

            def capture(frame, sender, arrival, _name=name):
                # bytes() strips the TaggedFrame subclass for pickling;
                # the trace id rides alongside and is re-tagged by the
                # receiving worker at injection.
                captures.append((_name, arrival, bytes(frame),
                                 frame_trace(frame), len(captures)))

            wire.capture = capture
            boundary[name] = foreign_nics

        result = WorkloadResult(window_us=wspec.window_us)
        schedules = build_schedules(wspec, len(world.hosts))
        clients, start, end = spawn_udp_partition(
            world, wspec, schedules, result, local_hosts,
            request_tracer=rt)

        window = plan.lookahead_us
        window_end = 0.0
        rounds = 0
        while True:
            rounds += 1
            if rounds > MAX_WINDOWS:
                raise RuntimeError(
                    "island worker %d: no convergence after %d windows"
                    % (group_index, MAX_WINDOWS))
            window_end += window
            sim.run(until=window_end)
            done = all(proc.triggered for proc in clients)
            outbound, captures[:] = list(captures), []
            conn.send(("window", outbound, done))
            command = conn.recv()
            if command[0] == "stop":
                break
            for name, arrival, frame, tid, _origin, _seq in command[1]:
                foreign_nics = boundary.get(name)
                if foreign_nics is None:
                    continue
                if tid is not None and rt is not None:
                    frame = TaggedFrame.tag(frame, tid)
                    rt.register_foreign(tid)
                sim.call_at(arrival, by_name[name]._deliver, frame, None,
                            foreign_nics)
            if not done and window_end > end + SETTLE_GRACE_US:
                raise RuntimeError(
                    "island worker %d: clients still pending %.0f us "
                    "past the drain deadline" % (group_index, window_end))
        for proc in clients:
            if not proc.ok:
                raise proc.value
        payload = {
            "issued": result.issued,
            "completed": result.completed,
            "censored": result.censored,
            "latencies_us": result.latencies_us,
            "fingerprint": world.fingerprint(),
        }
        if telemetry:
            # Settle to the canonical instant (identical in the
            # single-process run) so time-derived gauges agree exactly.
            settle_telemetry(sim, end)
            if rt is not None:
                payload["trace_state"] = world.tracer.export_state(
                    island=group_index)
                payload["request_state"] = rt.export_state(
                    island=group_index)
            if telemetry.get("metrics"):
                # Export only metrics this group owns (its hosts,
                # routers, and every wire touching them) plus
                # unprefixed globals; cut wires export from both sides
                # and sum correctly because only the transmitting side
                # bumps counters.
                local_names = {world.hosts[h].name for h in local_hosts}
                local_names.update(
                    world.routers[r].name for r in local_routers)
                known = {host.name for host in world.hosts}
                known.update(router.name for router in world.routers)
                for wire, (whosts, wrouters) in stations.items():
                    known.add(wire.name)
                    if (any(h in local_hosts for h in whosts)
                            or any(r in local_routers for r in wrouters)):
                        local_names.add(wire.name)

                def owns(metric):
                    prefix = metric.split(".", 1)[0]
                    return prefix in local_names or prefix not in known

                payload["metrics_state"] = world.metrics.export_state(
                    island=group_index, owns=owns)
            payload["flight_state"] = sim.flight.export_state(
                island=group_index)
        conn.send(("result", payload))
    except BaseException as exc:  # report, then die loudly
        import traceback

        try:
            conn.send(("error", "%s: %s" % (type(exc).__name__, exc),
                       traceback.format_exc()))
        finally:
            raise
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Parent driver
# ----------------------------------------------------------------------

class ParallelRunError(RuntimeError):
    """A worker failed; carries its traceback text."""


def run_parallel_workload(topology_args, placement, wspec, plan,
                          nprocs, log=None, telemetry=None):
    """Run a UDP workload across island worker processes.

    Returns ``(result, fingerprint, nworkers, telemetry_out)`` where
    ``result`` is a merged :class:`~repro.world.workload.WorkloadResult`,
    or ``None`` when the plan cannot use at least two workers (caller
    falls back to the single-process path).

    ``telemetry`` (see :func:`_island_worker`) asks the workers to ship
    their per-island metrics/trace snapshots home; ``telemetry_out`` is
    then a dict with ``"metrics"`` (a merged registry state, see
    :func:`repro.metrics.registry.merge_states`), ``"trace"`` (a
    :class:`~repro.trace.recorder.MergedTraceState`) and ``"requests"``
    (a :class:`~repro.trace.request.MergedRequestState`) as requested,
    plus ``"flight"`` (a :class:`~repro.trace.flight.MergedFlightState`
    interleaving every worker's flight-recorder ring, eviction counters
    intact) — otherwise None.
    """
    import multiprocessing as mp

    from repro.world.workload import WorkloadResult

    if wspec.proto != "udp" or not plan.parallelizable:
        return None
    groups = pack_groups(plan, nprocs)
    if len(groups) < 2:
        return None
    if log is not None:
        log("parallel: %d islands in %d workers, lookahead %.1f us"
            % (len(plan.islands), len(groups), plan.lookahead_us))

    ctx = mp.get_context("fork")
    wspec_args = {
        field: getattr(wspec, field)
        for field in wspec.__dataclass_fields__
    }
    workers, conns = [], []
    for g in range(len(groups)):
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_island_worker,
            args=(child_conn, g, groups, topology_args, placement,
                  wspec_args, telemetry),
            name="island-%d" % g,
        )
        proc.daemon = True
        proc.start()
        child_conn.close()
        workers.append(proc)
        conns.append(parent_conn)

    def fail(detail):
        for proc in workers:
            proc.terminate()
        raise ParallelRunError(detail)

    try:
        while True:
            messages = []
            for g, conn in enumerate(conns):
                try:
                    messages.append(conn.recv())
                except EOFError:
                    fail("island worker %d died mid-window" % g)
            for message in messages:
                if message[0] == "error":
                    fail("island worker failed: %s\n%s"
                         % (message[1], message[2]))
            # Terminate only at quiescence: every client done AND no
            # frames captured this window.  Frames from the final
            # window must still be relayed (a straggler crossing a cut
            # can hop onward across the next one), so the loop drains
            # round by round until nothing is in flight.
            if (all(done for _kind, _frames, done in messages)
                    and not any(frames
                                for _kind, frames, _done in messages)):
                for conn in conns:
                    conn.send(("stop",))
                break
            merged = []
            for g, (_kind, frames, _done) in enumerate(messages):
                for name, arrival, frame, tid, seq in frames:
                    merged.append((name, arrival, frame, tid, g, seq))
            merged.sort(key=lambda entry: (entry[1], entry[4], entry[5]))
            for g, conn in enumerate(conns):
                conn.send(("frames",
                           [entry for entry in merged if entry[4] != g]))
        partials = []
        for g, conn in enumerate(conns):
            try:
                message = conn.recv()
            except EOFError:
                fail("island worker %d died before reporting" % g)
            if message[0] == "error":
                fail("island worker failed: %s\n%s"
                     % (message[1], message[2]))
            partials.append(message[1])
    finally:
        for conn in conns:
            conn.close()
        for proc in workers:
            proc.join(timeout=60)
            if proc.is_alive():
                proc.terminate()

    fingerprints = {partial["fingerprint"] for partial in partials}
    if len(fingerprints) != 1:
        raise ParallelRunError(
            "island workers disagree on the world fingerprint: %s"
            % sorted(fingerprints))
    result = WorkloadResult(window_us=wspec.window_us)
    for partial in partials:
        result.issued += partial["issued"]
        result.completed += partial["completed"]
        result.censored += partial["censored"]
        result.latencies_us.extend(partial["latencies_us"])
    telemetry_out = None
    if telemetry:
        telemetry_out = {}
        if telemetry.get("forensics") is not None:
            from repro.trace.recorder import merge_trace_states
            from repro.trace.request import merge_request_states

            telemetry_out["trace"] = merge_trace_states(
                [partial["trace_state"] for partial in partials])
            telemetry_out["requests"] = merge_request_states(
                [partial["request_state"] for partial in partials])
        if telemetry.get("metrics"):
            from repro.metrics.registry import merge_states

            telemetry_out["metrics"] = merge_states(
                [partial["metrics_state"] for partial in partials])
        from repro.trace.flight import merge_flight_states

        telemetry_out["flight"] = merge_flight_states(
            [partial["flight_state"] for partial in partials])
    return result, fingerprints.pop(), len(groups), telemetry_out


def parallel_note(reason):
    """One-line fallback note, kept in one place for consistency."""
    print("parallel: falling back to single-process (%s)" % reason,
          file=sys.stderr)
