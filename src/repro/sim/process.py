"""Coroutine processes.

A :class:`Process` drives a generator.  The generator suspends by yielding:

* ``Timeout(dt)`` — resume ``dt`` microseconds later,
* an :class:`~repro.sim.events.Event` — resume when it fires (the yield
  expression evaluates to the event's value; failed events re-raise their
  exception inside the generator),
* another :class:`Process` — processes are events, so this joins it.

A process is itself an event that fires with the generator's return value,
so processes can be joined or waited on like any other event.

Timeouts take an allocation-free fast path: instead of building an
``Event`` plus a callback closure per timeout, the process schedules its
own resume directly.  The resume still takes the same two queue hops the
event path took (fire at the deadline, dispatch one ready item later),
so the simulated order of every run is bit-identical to the event-based
implementation — only the wall-clock cost changes.  The first hop is the
ready deque's own C ``append``: the timer entry's callable appends the
fire entry, and a fire made stale by an interrupt no-ops on its token
check, exactly as a skipped hop would have.
"""

from heapq import heappop, heappush

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import Event, PENDING, SUCCEEDED
from repro.sim.sync import _Waiter


class Timeout:
    """Yielded by a process to advance simulated time by ``delay``."""

    __slots__ = ("delay", "value")

    def __init__(self, delay, value=None):
        if delay < 0:
            raise ValueError("negative delay: %r" % delay)
        self.delay = delay
        self.value = value

    def __repr__(self):
        return "Timeout(%r)" % self.delay


class Charge:
    """Yielded by a process to charge CPU time, pair by pair.

    A charge request carries ``(layer, cost)`` pairs plus where to bill
    them (a :class:`~repro.hw.cpu.CPU`, a scheduling priority, and a
    :class:`~repro.stack.instrument.LayerAccounting`).  The process
    machinery executes it directly — acquire the CPU at ``priority``,
    sleep ``cost``, release, account, repeat — without resuming the
    generator between pairs, which removes one generator frame plus one
    full coroutine-chain resume per CPU hand-off compared with driving
    an equivalent charging subgenerator.  The engine-visible schedule
    (every acquire, sleep, and release point, in sequence order) is
    identical to that subgenerator's.
    """

    __slots__ = ("cpu", "priority", "accounting", "pairs", "n")

    def __init__(self, cpu, priority, accounting, pairs):
        self.cpu = cpu
        self.priority = priority
        self.accounting = accounting
        self.pairs = pairs
        self.n = len(pairs)

    def __iter__(self):
        # Back-compat: ``yield from ctx.charge(...)`` still works — the
        # charge passes itself up to the process and the ``yield from``
        # completes when the process resumes the chain.
        yield self

    def __repr__(self):
        return "Charge(%s)" % ", ".join(
            "%s=%r" % (layer, cost) for layer, cost in self.pairs
        )


class Process(Event):
    """A running coroutine.  Create via :meth:`Simulator.spawn`."""

    __slots__ = ("_generator", "_wait_token", "_alive", "_event_cb",
                 "_charge", "_charge_i", "_charge_waiter", "_cw",
                 "waiting_on", "trace_ctx", "request_ctx", "domain")

    def __init__(self, sim, generator, name=""):
        if not hasattr(generator, "send"):
            raise TypeError(
                "spawn() needs a generator, got %r -- did you call the "
                "function instead of passing its generator?" % (generator,)
            )
        super().__init__(sim, name=name or getattr(generator, "__name__", "proc"))
        self._generator = generator
        self._wait_token = object()
        self._alive = True
        #: Prebound event callback, created once so waiting on an event
        #: allocates nothing per wait.
        self._event_cb = self._on_event
        #: The in-flight :class:`Charge`, the index of the pair being
        #: billed, and the lock waiter if that pair is queued for the CPU.
        self._charge = None
        self._charge_i = 0
        self._charge_waiter = None
        #: Reusable CPU-lock waiter (see PriorityLock.enqueue_charge):
        #: one contention needs no allocation at all once this exists.
        self._cw = None
        #: The Event or Timeout this process is currently blocked on
        #: (deadlock diagnostics); None while runnable or finished.
        self.waiting_on = None
        #: Trace id of the packet this process is currently working on
        #: (see :mod:`repro.trace`); None when no trace is active.
        self.trace_ctx = None
        #: Workload request id this process is issuing (stamped by a
        #: :class:`~repro.trace.request.RequestTracer` around a client's
        #: send burst); None otherwise.
        self.request_ctx = None
        #: Locality key (usually a host name) for scale-out worlds; see
        #: :class:`~repro.sim.scale.ScaleSimulator`.  None on the default
        #: engine, where dispatch order is purely sequence order.
        self.domain = None

    @property
    def alive(self):
        """True until the generator finishes or fails."""
        return self._alive

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at the current time.

        Whatever the process was waiting on is abandoned (its eventual
        trigger is ignored).  Interrupting a finished process is an error.
        """
        if not self._alive:
            raise SimulationError("cannot interrupt finished process %r" % self)
        token = self._wait_token = object()  # invalidate the pending wait
        self.waiting_on = None  # the abandoned wait must not resume us
        self._sim.call_soon(self._resume, _Failure(Interrupt(cause)), token)

    # ------------------------------------------------------------------

    def _resume(self, trigger, token):
        """Advance the generator.  ``trigger`` is None (first resume), an
        Event that fired, or a _Failure carrying an exception to throw."""
        if token is not self._wait_token or not self._alive:
            return  # stale wakeup (the process was interrupted meanwhile)
        if self._charge is not None:
            # Only an interrupt can land here mid-charge.  Abandon the
            # charge exactly as the old charging subgenerator's
            # except/finally blocks did: withdraw a queued CPU waiter
            # (forwarding the lock if it was handed to us as we died),
            # or release the CPU we hold mid-sleep.
            sched = self._charge.cpu._sched
            waiter = self._charge_waiter
            if waiter is not None:
                sched.withdraw(waiter)
                if waiter.granted:
                    sched.release()
                self._charge_waiter = None
                # A dead heap entry (or a stale grant in the ready
                # deque) may still reference the cached waiter: never
                # reuse it.
                self._cw = None
            elif sched._heap:
                sched.release()
            else:
                sched._locked = False
            self._charge = None
        self.waiting_on = None
        self._sim.current = self
        try:
            if trigger is None:
                target = self._generator.send(None)
            elif type(trigger) is _Failure:
                target = self._generator.throw(trigger.exception)
            elif trigger._state is SUCCEEDED:
                target = self._generator.send(trigger._value)
            else:
                target = self._generator.throw(trigger._value)
        except StopIteration as stop:
            self._finish_ok(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into waiters
            self._finish_fail(exc)
            return
        finally:
            self._sim.current = None
        self._wait_for(target)

    def _on_event(self, event):
        """Event-fired callback.  Guarded by identity with the current
        wait target, so a wait abandoned by an interrupt stays dead."""
        if event is self.waiting_on:
            self._resume(event, self._wait_token)

    def _timeout_fire(self, value, token):
        """Second hop: resume the generator with the timeout's value."""
        if token is not self._wait_token or not self._alive:
            return
        self.waiting_on = None
        sim = self._sim
        sim.current = self
        try:
            target = self._generator.send(value)
        except StopIteration as stop:
            sim.current = None
            self._finish_ok(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into waiters
            sim.current = None
            self._finish_fail(exc)
            return
        sim.current = None
        self._wait_for(target)

    def _wait_for(self, target):
        """Suspend on whatever the generator yielded.

        Loops because an all-zero-cost :class:`Charge` completes without
        suspending: the generator is resumed synchronously (exactly as
        driving an empty charging subgenerator used to behave) and may
        yield a new target.
        """
        gen = self._generator
        sim = self._sim
        while True:
            token = self._wait_token = object()
            cls = type(target)
            if cls is Timeout:
                # Allocation-free fast path: no Event, no callback
                # closure, and the call_at dispatch inlined.  The first
                # hop is ready.append itself (see module docstring).
                # Branch on the computed time, exactly as call_at does:
                # a positive delay small enough to round away must still
                # ride the ready deque, never leave a stale now-entry on
                # the heap.
                self.waiting_on = target
                ready_append = sim._ready.append
                fire = (self._timeout_fire, (target.value, token))
                when = sim._now + target.delay
                if when > sim._now:
                    sim._heappush(sim._queue,
                                  (when, next(sim._seq), ready_append, (fire,)))
                else:
                    ready_append((ready_append, (fire,)))
                return
            if cls is Charge:
                # Inline of _start_charge_pair's first iteration for the
                # overwhelmingly common shape — a single positive-cost
                # pair — to skip a call per charge.  Must stay an exact
                # mirror of that method.
                cost = target.pairs[0][1]
                if cost > 0:
                    self._charge = target
                    self._charge_i = 0
                    sched = target.cpu._sched
                    if sched._locked:
                        # Inline of sched.enqueue_charge (one call per
                        # CPU contention; must stay an exact mirror).
                        waiter = self._cw
                        if waiter is None:
                            waiter = self._cw = _Waiter(None)
                            waiter.proc = self
                        waiter.alive = True
                        waiter.granted = False
                        waiter.queued_at = sim._now
                        heappush(sched._heap,
                                 (target.priority, next(sched._seq), waiter))
                        sched._live += 1
                        sched.contended += 1
                        gauge = sched.depth_gauge
                        if gauge is not None:
                            gauge.record(sched._live)
                        self._charge_waiter = waiter
                        self.waiting_on = waiter
                    else:
                        sched._locked = True
                        self._charge_waiter = None
                        self.waiting_on = target
                        ready_append = sim._ready.append
                        fire = (self._charge_fire, (token,))
                        when = sim._now + cost
                        if when > sim._now:
                            sim._heappush(sim._queue,
                                          (when, next(sim._seq),
                                           ready_append, (fire,)))
                        else:
                            ready_append((ready_append, (fire,)))
                    return
                status = self._start_charge_pair(target, 0, token)
                if status is None:
                    return  # queued for the CPU or sleeping on a pair
            elif cls is Event or cls is Process or isinstance(target, Event):
                # Exact-class tests first: they are plain bytecode, and
                # nearly every event wait is a bare Event or a join.
                self.waiting_on = target
                target.add_callback(self._event_cb)
                return
            else:
                self._finish_fail(
                    SimulationError(
                        "process %r yielded %r; expected Timeout, Charge, "
                        "Event, or Process" % (self, target)
                    )
                )
                return
            # The charge finished (or failed) without suspending:
            # continue the generator within this same engine item.
            sim.current = self
            try:
                if status is True:
                    target = gen.send(None)
                else:  # a validation error to raise at the yield site
                    target = gen.throw(status)
            except StopIteration as stop:
                sim.current = None
                self._finish_ok(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001
                sim.current = None
                self._finish_fail(exc)
                return
            sim.current = None

    # ------------------------------------------------------------------
    # Charge execution.  One CPU charge = acquire the scheduler lock at
    # the charge's priority, sleep its cost, release, account — repeated
    # per (layer, cost) pair without resuming the generator in between.
    # Every engine interaction (lock waiter enqueue, hand-off dispatch,
    # timer hop and fire, release hand-off) consumes sequence numbers at
    # exactly the moments the equivalent charging subgenerator did, so
    # the simulated schedule is bit-identical.
    # ------------------------------------------------------------------

    def _start_charge_pair(self, charge, i, token):
        """Begin billing ``charge.pairs[i:]``.

        Returns None if the process suspended (queued for the CPU or
        sleeping the pair's cost), True if every remaining pair cost
        zero (the charge is complete), or an exception to raise in the
        generator (negative cost).
        """
        pairs = charge.pairs
        n = charge.n
        while i < n:
            cost = pairs[i][1]
            if cost == 0:
                i += 1
                continue
            if cost < 0:
                self._charge = None
                return ValueError("negative CPU cost: %r" % cost)
            self._charge = charge
            self._charge_i = i
            sched = charge.cpu._sched
            if sched._locked:
                # Inline of sched.enqueue_charge (see _wait_for).
                waiter = self._cw
                if waiter is None:
                    waiter = self._cw = _Waiter(None)
                    waiter.proc = self
                waiter.alive = True
                waiter.granted = False
                waiter.queued_at = self._sim._now
                heappush(sched._heap,
                         (charge.priority, next(sched._seq), waiter))
                sched._live += 1
                sched.contended += 1
                gauge = sched.depth_gauge
                if gauge is not None:
                    gauge.record(sched._live)
                self._charge_waiter = waiter
                self.waiting_on = waiter
            else:
                sched._locked = True
                self._charge_waiter = None
                self.waiting_on = charge
                sim = self._sim
                ready_append = sim._ready.append
                fire = (self._charge_fire, (token,))
                when = sim._now + cost
                if when > sim._now:
                    sim._heappush(sim._queue,
                                  (when, next(sim._seq), ready_append, (fire,)))
                else:
                    ready_append((ready_append, (fire,)))
            return None
        self._charge = None
        return True

    def _charge_granted(self, waiter):
        """The CPU lock was handed to this process's queued waiter.

        Scheduled directly onto the ready deque by
        :meth:`~repro.sim.sync.PriorityLock.release` (no per-contention
        Event).  The identity guard keeps a stale grant dead after an
        interrupt, exactly as the old event callback's ``waiting_on``
        check did: a renege clears ``_charge_waiter`` and forwards the
        hand-off before this entry can run.
        """
        if waiter is not self._charge_waiter or not self._alive:
            return  # reneged (interrupt); release() forwarding handles it
        charge = self._charge
        cost = charge.pairs[self._charge_i][1]
        if self.trace_ctx is not None:
            # The queued interval is CPU contention on the packet's
            # critical path.  Pure observation (a ring append) — the
            # schedule is byte-identical with tracing on or off.
            accounting = charge.accounting
            tracer = accounting.tracer
            if (tracer is not None and tracer.enabled
                    and waiter.queued_at is not None):
                waited = self._sim._now - waiter.queued_at
                if waited > 0:
                    tracer.record_wait(
                        self.trace_ctx, accounting.owner,
                        charge.pairs[self._charge_i][0], "contention",
                        waiter.queued_at, waited)
        self._charge_waiter = None
        self.waiting_on = charge
        sim = self._sim
        token = self._wait_token
        ready_append = sim._ready.append
        fire = (self._charge_fire, (token,))
        when = sim._now + cost
        if when > sim._now:
            sim._heappush(sim._queue,
                          (when, next(sim._seq), ready_append, (fire,)))
        else:
            ready_append((ready_append, (fire,)))

    def _charge_fire(self, token):
        """A charge pair's sleep elapsed: release, account, next pair."""
        if token is not self._wait_token or not self._alive:
            return
        sim = self._sim
        # The whole fire runs as this process, exactly as it did when the
        # release/accounting code lived inside a resumed subgenerator —
        # the tracer reads sim.current to attribute spans.
        sim.current = self
        charge = self._charge
        cpu = charge.cpu
        sched = cpu._sched
        heap = sched._heap
        if heap:
            # Inline of sched.release() — we hold the lock, so hand it
            # to the highest-priority live waiter (one call per charge
            # completion under contention; must stay an exact mirror).
            while heap:
                _prio, _seq, waiter = heappop(heap)
                if waiter.alive:
                    waiter.alive = False
                    sched._live -= 1
                    proc = waiter.proc
                    if proc is not None:  # charge fast waiter
                        waiter.granted = True
                        sim._ready.append((proc._charge_granted, (waiter,)))
                    else:
                        waiter.event.succeed()
                    gauge = sched.depth_gauge
                    if gauge is not None:
                        gauge.record(sched._live)
                    break
            else:
                sched._locked = False
        else:
            sched._locked = False
        i = self._charge_i
        layer, cost = charge.pairs[i]
        cpu.busy_time += cost
        cpu.charge_count += 1
        accounting = charge.accounting
        if accounting.enabled:
            accounting.totals[layer] += cost
            accounting.counts[layer] += 1
            tracer = accounting.tracer
            if tracer is not None and tracer.enabled:
                tracer.record(accounting.owner, layer, cost)
        i += 1
        if i < charge.n:
            status = self._start_charge_pair(charge, i, token)
            if status is None:
                sim.current = None
                return  # next pair queued or sleeping
        else:  # last pair done — the single-pair common case
            self._charge = None
            status = True
        self.waiting_on = None
        try:
            if status is True:
                target = self._generator.send(None)
            else:
                target = self._generator.throw(status)
        except StopIteration as stop:
            sim.current = None
            self._finish_ok(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into waiters
            sim.current = None
            self._finish_fail(exc)
            return
        sim.current = None
        self._wait_for(target)

    def _finish_ok(self, value):
        self._alive = False
        self.waiting_on = None
        if self._state == PENDING:
            self.succeed(value)

    def _finish_fail(self, exc):
        self._alive = False
        self.waiting_on = None
        if self._state == PENDING:
            self.fail(exc)
        else:  # pragma: no cover - defensive
            raise exc

    def __repr__(self):
        return "<Process %s %s>" % (self.name, "alive" if self._alive else "done")


class _Failure:
    """Internal marker: resume the generator by throwing an exception."""

    __slots__ = ("exception",)

    def __init__(self, exception):
        self.exception = exception
