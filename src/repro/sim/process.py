"""Coroutine processes.

A :class:`Process` drives a generator.  The generator suspends by yielding:

* ``Timeout(dt)`` — resume ``dt`` microseconds later,
* an :class:`~repro.sim.events.Event` — resume when it fires (the yield
  expression evaluates to the event's value; failed events re-raise their
  exception inside the generator),
* another :class:`Process` — processes are events, so this joins it.

A process is itself an event that fires with the generator's return value,
so processes can be joined or waited on like any other event.
"""

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import Event, PENDING


class Timeout:
    """Yielded by a process to advance simulated time by ``delay``."""

    __slots__ = ("delay", "value")

    def __init__(self, delay, value=None):
        if delay < 0:
            raise ValueError("negative delay: %r" % delay)
        self.delay = delay
        self.value = value

    def __repr__(self):
        return "Timeout(%r)" % self.delay


class Process(Event):
    """A running coroutine.  Create via :meth:`Simulator.spawn`."""

    __slots__ = ("_generator", "_wait_token", "_alive", "waiting_on", "trace_ctx")

    def __init__(self, sim, generator, name=""):
        if not hasattr(generator, "send"):
            raise TypeError(
                "spawn() needs a generator, got %r -- did you call the "
                "function instead of passing its generator?" % (generator,)
            )
        super().__init__(sim, name=name or getattr(generator, "__name__", "proc"))
        self._generator = generator
        self._wait_token = object()
        self._alive = True
        #: The Event this process is currently blocked on (deadlock
        #: diagnostics); None while runnable or finished.
        self.waiting_on = None
        #: Trace id of the packet this process is currently working on
        #: (see :mod:`repro.trace`); None when no trace is active.
        self.trace_ctx = None

    @property
    def alive(self):
        """True until the generator finishes or fails."""
        return self._alive

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at the current time.

        Whatever the process was waiting on is abandoned (its eventual
        trigger is ignored).  Interrupting a finished process is an error.
        """
        if not self._alive:
            raise SimulationError("cannot interrupt finished process %r" % self)
        token = self._wait_token = object()  # invalidate the pending wait
        self._sim.call_soon(self._resume, _Failure(Interrupt(cause)), token)

    # ------------------------------------------------------------------

    def _resume(self, trigger, token):
        """Advance the generator.  ``trigger`` is None (first resume), an
        Event that fired, or a _Failure carrying an exception to throw."""
        if token is not self._wait_token or not self._alive:
            return  # stale wakeup (the process was interrupted meanwhile)
        self.waiting_on = None
        self._sim.current = self
        try:
            if trigger is None:
                target = self._generator.send(None)
            elif isinstance(trigger, _Failure):
                target = self._generator.throw(trigger.exception)
            elif trigger.ok:
                target = self._generator.send(trigger.value)
            else:
                target = self._generator.throw(trigger.value)
        except StopIteration as stop:
            self._finish_ok(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into waiters
            self._finish_fail(exc)
            return
        finally:
            self._sim.current = None
        self._wait_for(target)

    def _wait_for(self, target):
        token = self._wait_token = object()
        if isinstance(target, Timeout):
            ev = self._sim.timeout(target.delay, target.value)
            self.waiting_on = ev
            ev.add_callback(lambda e, t=token: self._resume(e, t))
        elif isinstance(target, Event):
            self.waiting_on = target
            target.add_callback(lambda e, t=token: self._resume(e, t))
        else:
            self._finish_fail(
                SimulationError(
                    "process %r yielded %r; expected Timeout, Event, or "
                    "Process" % (self, target)
                )
            )

    def _finish_ok(self, value):
        self._alive = False
        self.waiting_on = None
        if self._state == PENDING:
            self.succeed(value)

    def _finish_fail(self, exc):
        self._alive = False
        self.waiting_on = None
        if self._state == PENDING:
            self.fail(exc)
        else:  # pragma: no cover - defensive
            raise exc

    def __repr__(self):
        return "<Process %s %s>" % (self.name, "alive" if self._alive else "done")


class _Failure:
    """Internal marker: resume the generator by throwing an exception."""

    __slots__ = ("exception",)

    def __init__(self, exception):
        self.exception = exception
