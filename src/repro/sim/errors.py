"""Error types raised by the simulation engine."""


class SimulationError(Exception):
    """Base class for all errors raised by the simulation machinery."""


class Interrupt(SimulationError):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries whatever object the interrupter
    supplied, typically a short string describing why.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class Deadlock(SimulationError):
    """Raised by :meth:`Simulator.run` when processes remain but no events
    are scheduled, i.e. every live process waits on an event that can never
    fire."""
