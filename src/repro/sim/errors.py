"""Error types raised by the simulation engine."""


class SimulationError(Exception):
    """Base class for all errors raised by the simulation machinery."""


class Interrupt(SimulationError):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries whatever object the interrupter
    supplied, typically a short string describing why.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class Deadlock(SimulationError):
    """Raised by :meth:`Simulator.run` when processes remain but no events
    are scheduled, i.e. every live process waits on an event that can never
    fire.

    ``blocked`` is a sequence of ``(process_name, waiting_on)`` pairs — one
    per live process, naming the primitive it is blocked on — rendered into
    the message so a hang is debuggable from the exception alone.

    ``flight`` carries the engine's flight-recorder ring (a tuple of
    ``(t_us, kind, detail)`` events, oldest first) captured at raise
    time, so the moments *leading up to* the hang survive with the
    exception; see :mod:`repro.trace.flight` for rendering helpers.
    """

    def __init__(self, message, blocked=(), flight=()):
        self.blocked = tuple(blocked)
        self.flight = tuple(flight)
        if self.blocked:
            message += "".join(
                "\n  %s <- waiting on %s" % (name, waiting_on)
                for name, waiting_on in self.blocked
            )
        super().__init__(message)
