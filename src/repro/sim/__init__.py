"""Discrete-event simulation engine.

This package provides the substrate on which the simulated Mach hosts,
network hardware, and protocol code run.  It is deliberately minimal and
dependency-free: a simulator with a virtual clock (microseconds, as a
float), generator-based coroutine processes, one-shot events, and the
synchronization primitives (locks, condition variables, channels) that the
protocol implementations need.

The programming model follows the classic process-interaction style:

    def worker(sim):
        yield Timeout(10.0)          # advance simulated time
        yield some_event             # block until the event fires
        result = yield other_proc    # join another process

    sim = Simulator()
    sim.spawn(worker(sim))
    sim.run()
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.process import Process, Timeout
from repro.sim.sync import Channel, Condition, Lock, PriorityLock, Semaphore
from repro.sim.errors import Deadlock, Interrupt, SimulationError

__all__ = [
    "Simulator",
    "Event",
    "Process",
    "Timeout",
    "Lock",
    "PriorityLock",
    "Condition",
    "Semaphore",
    "Channel",
    "SimulationError",
    "Interrupt",
    "Deadlock",
]
