"""One-shot events.

An :class:`Event` is the fundamental blocking primitive: processes yield an
event to suspend until it is triggered.  Events fire exactly once, either
successfully (carrying a value) or with a failure (carrying an exception
that is re-raised inside every waiter).
"""

from repro.sim.errors import SimulationError

PENDING = "pending"
SUCCEEDED = "succeeded"
FAILED = "failed"


class Event:
    """A one-shot event that processes can wait on.

    Events are created against a simulator.  Triggering an event schedules
    its callbacks to run at the current simulated time (not synchronously),
    which keeps the engine's semantics simple and deterministic.
    """

    __slots__ = ("_sim", "_state", "_value", "callbacks", "name")

    def __init__(self, sim, name=""):
        self._sim = sim
        self._state = PENDING
        self._value = None
        self.callbacks = []
        self.name = name

    @property
    def triggered(self):
        """True once the event has fired (successfully or not)."""
        return self._state != PENDING

    @property
    def ok(self):
        """True if the event fired successfully."""
        return self._state == SUCCEEDED

    @property
    def value(self):
        """The value the event fired with.

        For failed events this is the exception object.  Accessing the
        value of a pending event is an error.
        """
        if self._state == PENDING:
            raise SimulationError("value of %r is not yet available" % self)
        return self._value

    def succeed(self, value=None):
        """Fire the event successfully, waking all waiters with ``value``."""
        if self._state != PENDING:
            raise SimulationError("%r has already been triggered" % self)
        self._state = SUCCEEDED
        self._value = value
        # Inlined sim._schedule_event(self) — this is the hottest way an
        # event reaches the engine.
        self._sim._ready.append((None, self))
        return self

    def fail(self, exception):
        """Fire the event with an exception, re-raised in every waiter."""
        if self._state != PENDING:
            raise SimulationError("%r has already been triggered" % self)
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._state = FAILED
        self._value = exception
        self._sim._ready.append((None, self))
        return self

    def add_callback(self, callback):
        """Register ``callback(event)``; runs immediately if already fired."""
        if self._state != PENDING and self.callbacks is None:
            # Already dispatched: run the callback right away via the queue
            # so ordering stays deterministic.
            self._sim.call_soon(callback, self)
        else:
            self.callbacks.append(callback)

    def __repr__(self):
        label = self.name or hex(id(self))
        return "<Event %s %s>" % (label, self._state)


def any_of(sim, events):
    """An event that fires when the first of ``events`` fires.

    The combined event's value is the (event, value) pair of the winner.
    Later firings of the other events are ignored.
    """
    if not events:
        raise ValueError("any_of needs at least one event")
    combined = Event(sim, name="any_of")

    def relay(event):
        if not combined.triggered:
            if event.ok:
                combined.succeed((event, event.value))
            else:
                combined.fail(event.value)

    for event in events:
        event.add_callback(relay)
    return combined
