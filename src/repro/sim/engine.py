"""The simulation event loop.

The :class:`Simulator` owns a virtual clock (a float, in microseconds by
convention throughout this project) and two scheduling structures:

* a priority queue (heap) of items scheduled for a *future* time, as
  ``(when, seq, fn, args)`` tuples — plain tuples beat any class here,
  both to allocate and to compare;
* a FIFO ready deque of ``(fn, payload)`` items at the *current* time
  (``call_soon`` work and triggered-event dispatches), which skips the
  heap entirely on the zero-delay fast path.

Ties in time on the heap are broken by a global insertion sequence
number, which makes every run fully deterministic.  Ready items need no
sequence number at all: the deque is only ever refilled from the heap
while empty (at a time advance, in heap — i.e. sequence — order), and
everything appended afterwards lands behind in insertion order, so FIFO
position alone reproduces exactly the order a single shared-counter
heap would have produced.  The fast paths change wall-clock time only,
never the simulated order.
"""

import heapq
from collections import deque
from itertools import count

from repro.sim.errors import Deadlock
from repro.sim.events import PENDING, Event
from repro.sim.process import Process, Timeout
from repro.trace.flight import FlightRecorder


class Simulator:
    """A discrete-event simulator with a microsecond virtual clock."""

    def __init__(self):
        self._now = 0.0
        #: Future work: a heap of (when, seq, fn, args).
        self._queue = []
        #: How to push onto ``_queue``.  Subclasses with a different
        #: future store (see :mod:`repro.sim.wheel`) swap this out; the
        #: timer fast paths in :mod:`repro.sim.process` call it too, so
        #: every future item funnels through one replaceable entry point.
        self._heappush = heapq.heappush
        #: Same-timestamp work: a FIFO of (fn, args) callables and
        #: (None, event) dispatches, all at the current time.
        self._ready = deque()
        self._seq = count()
        self._live_processes = 0
        self._live = set()
        #: The :class:`Process` whose generator frame is currently being
        #: advanced, or None between resumes.  Synchronous callbacks (CPU
        #: accounting, tracing) read this to attribute work to a process.
        self.current = None
        #: Always-on flight recorder (see :mod:`repro.trace.flight`):
        #: spawn/exit events are appended inline below; layers note
        #: their own rare events via ``sim.flight.note(...)``.
        self.flight = FlightRecorder(self)

    @property
    def now(self):
        """Current simulated time in microseconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------

    def event(self, name=""):
        """Create a fresh, untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay, value=None):
        """Create an event that fires ``delay`` microseconds from now."""
        if delay < 0:
            raise ValueError("negative delay: %r" % delay)
        ev = Event(self, name="timeout")
        self.call_at(self._now + delay, ev.succeed, value)
        return ev

    def call_soon(self, fn, *args):
        """Run ``fn(*args)`` at the current simulated time, after the
        currently-executing item finishes."""
        self._ready.append((fn, args))

    def call_at(self, when, fn, *args):
        """Run ``fn(*args)`` at absolute simulated time ``when``."""
        if when > self._now:
            self._heappush(self._queue, (when, next(self._seq), fn, args))
        elif when == self._now:
            self._ready.append((fn, args))
        else:
            raise ValueError("cannot schedule in the past: %r < %r" % (when, self._now))

    def call_later(self, delay, fn, *args):
        """Run ``fn(*args)`` after ``delay`` microseconds."""
        self.call_at(self._now + delay, fn, *args)

    def _schedule_event(self, event):
        """Queue a triggered event's callbacks for dispatch (engine use).

        Dispatch always happens at the current time, so it rides the
        ready deque and never touches the heap."""
        self._ready.append((None, event))

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------

    def spawn(self, generator, name=""):
        """Start a new coroutine process running ``generator``.

        Returns the :class:`Process`, which is itself an event that fires
        with the generator's return value when it finishes.
        """
        proc = Process(self, generator, name=name)
        self._live_processes += 1
        self._live.add(proc)
        proc.add_callback(self._process_done)
        self.call_soon(proc._resume, None, proc._wait_token)
        # Inline flight-recorder append (bounded deque; no method call
        # on this path — see repro.trace.flight for the rationale).
        flight = self.flight
        flight.recorded += 1
        flight.events.append((self._now, "spawn", name))
        return proc

    def _process_done(self, event):
        self._live_processes -= 1
        self._live.discard(event)
        flight = self.flight
        flight.recorded += 1
        flight.events.append((self._now, "exit", event.name))

    def _blocked_report(self):
        """(name, waiting-on) pairs for every live process, for Deadlock
        diagnostics.  Deterministic order: by process name then id."""
        report = []
        for proc in sorted(self._live, key=lambda p: (p.name, id(p))):
            target = proc.waiting_on
            report.append((proc.name or repr(proc),
                           repr(target) if target is not None else "nothing"))
        return report

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def step(self):
        """Execute the next scheduled item.  Returns False if none remain.

        The ready deque holds items at the current time, in sequence
        order; the heap holds strictly-future items.  The invariant is
        maintained at time-advance: every heap entry for the new instant
        is drained into the deque at once (heap pops come out in
        sequence order, and nothing can be scheduled at the current time
        via the heap afterwards), so the hot path never peeks the heap.
        """
        ready = self._ready
        if ready:
            fn, payload = ready.popleft()
            if fn is not None:
                fn(*payload)
            else:  # dispatch: run a triggered event's callbacks
                callbacks, payload.callbacks = payload.callbacks, None
                for callback in callbacks:
                    callback(payload)
            return True
        queue = self._queue
        if not queue:
            return False
        when, _seq, fn, args = heapq.heappop(queue)
        self._now = when
        heappop = heapq.heappop
        while queue and queue[0][0] == when:
            item = heappop(queue)
            ready.append((item[2], item[3]))
        fn(*args)
        return True

    def run(self, until=None, detect_deadlock=False):
        """Run the simulation.

        With ``until=None`` runs until no scheduled items remain.  With a
        time bound, stops once the clock would pass ``until`` and sets the
        clock to exactly ``until``.  With ``detect_deadlock=True``, raises
        :class:`Deadlock` if live processes remain when the queue drains.
        """
        if until is not None and until < self._now:
            raise ValueError("until %r is in the past (now=%r)" % (until, self._now))
        step = self.step
        if until is None:
            while step():
                pass
        else:
            while True:
                if self._ready:
                    step()
                    continue
                queue = self._queue
                if not queue or queue[0][0] > until:
                    break
                step()
            self._now = until
        if detect_deadlock and self._live_processes > 0:
            raise Deadlock(
                "%d process(es) blocked with no scheduled events"
                % self._live_processes,
                blocked=self._blocked_report(),
                flight=self.flight.snapshot(),
            )

    def run_process(self, generator, until=None, name=""):
        """Spawn ``generator`` and run until it finishes; return its value.

        Unlike :meth:`run`, this stops as soon as the process completes,
        so perpetual background processes (timers, input threads) do not
        keep the call from returning.  Raises :class:`Deadlock` if the
        event queue drains (or ``until`` passes) before it finishes.
        """
        proc = self.spawn(generator, name=name)
        step = self.step
        while proc._state is PENDING and (self._ready or self._queue):
            if until is not None and not self._ready and self._queue[0][0] > until:
                break
            step()
        if not proc.triggered:
            raise Deadlock("process %r did not finish" % (name or proc),
                           blocked=self._blocked_report(),
                           flight=self.flight.snapshot())
        if not proc.ok:
            raise proc.value
        return proc.value

    def run_all(self, generators, until=None):
        """Spawn several processes; run until all finish; return values."""
        procs = [self.spawn(gen) for gen in generators]
        # Track completion without rescanning every process per step:
        # pop finished processes off the tail; the list empties on the
        # exact step the last pending process triggers, matching the old
        # all(p.triggered ...) scan tick for tick.
        #
        # This is the driver loop under every benchmark, so the body of
        # :meth:`step` is inlined here (dispatch a ready item, else
        # advance the clock and drain the heap) — it must stay an exact
        # mirror of step().
        pending = list(procs)
        ready = self._ready
        queue = self._queue
        heappop = heapq.heappop
        pending_state = PENDING
        # ``last`` caches pending[-1]; refreshed only when the tail pops.
        last = pending[-1] if pending else None
        if until is None:
            while last is not None:
                if last._state is not pending_state:
                    pending.pop()
                    last = pending[-1] if pending else None
                    continue
                if ready:
                    fn, payload = ready.popleft()
                    if fn is not None:
                        fn(*payload)
                    else:  # dispatch a triggered event's callbacks
                        callbacks, payload.callbacks = payload.callbacks, None
                        for callback in callbacks:
                            callback(payload)
                    continue
                if not queue:
                    break
                when, _seq, fn, args = heappop(queue)
                self._now = when
                while queue and queue[0][0] == when:
                    item = heappop(queue)
                    ready.append((item[2], item[3]))
                fn(*args)
        else:
            while last is not None:
                if last._state is not pending_state:
                    pending.pop()
                    last = pending[-1] if pending else None
                    continue
                if ready:
                    fn, payload = ready.popleft()
                    if fn is not None:
                        fn(*payload)
                    else:  # dispatch a triggered event's callbacks
                        callbacks, payload.callbacks = payload.callbacks, None
                        for callback in callbacks:
                            callback(payload)
                    continue
                if not queue or queue[0][0] > until:
                    break
                when, _seq, fn, args = heappop(queue)
                self._now = when
                while queue and queue[0][0] == when:
                    item = heappop(queue)
                    ready.append((item[2], item[3]))
                fn(*args)
        results = []
        for proc in procs:
            if not proc.triggered:
                raise Deadlock("process %r did not finish" % proc,
                               blocked=self._blocked_report(),
                               flight=self.flight.snapshot())
            if not proc.ok:
                raise proc.value
            results.append(proc.value)
        return results

    def sleep(self, delay):
        """Convenience generator: ``yield from sim.sleep(dt)``."""
        yield Timeout(delay)
