"""The simulation event loop.

The :class:`Simulator` owns a virtual clock (a float, in microseconds by
convention throughout this project) and a priority queue of scheduled
items.  Two kinds of items are scheduled: events to dispatch (waking their
waiters) and bare callables.  Ties in time are broken by insertion order,
which makes every run fully deterministic.
"""

import heapq
from itertools import count

from repro.sim.errors import Deadlock
from repro.sim.events import Event
from repro.sim.process import Process, Timeout


class Simulator:
    """A discrete-event simulator with a microsecond virtual clock."""

    def __init__(self):
        self._now = 0.0
        self._queue = []
        self._seq = count()
        self._live_processes = 0
        self._live = set()
        #: The :class:`Process` whose generator frame is currently being
        #: advanced, or None between resumes.  Synchronous callbacks (CPU
        #: accounting, tracing) read this to attribute work to a process.
        self.current = None

    @property
    def now(self):
        """Current simulated time in microseconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------

    def event(self, name=""):
        """Create a fresh, untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay, value=None):
        """Create an event that fires ``delay`` microseconds from now."""
        if delay < 0:
            raise ValueError("negative delay: %r" % delay)
        ev = Event(self, name="timeout")
        self.call_at(self._now + delay, ev.succeed, value)
        return ev

    def call_soon(self, fn, *args):
        """Run ``fn(*args)`` at the current simulated time, after the
        currently-executing item finishes."""
        heapq.heappush(self._queue, (self._now, next(self._seq), "call", fn, args))

    def call_at(self, when, fn, *args):
        """Run ``fn(*args)`` at absolute simulated time ``when``."""
        if when < self._now:
            raise ValueError("cannot schedule in the past: %r < %r" % (when, self._now))
        heapq.heappush(self._queue, (when, next(self._seq), "call", fn, args))

    def call_later(self, delay, fn, *args):
        """Run ``fn(*args)`` after ``delay`` microseconds."""
        self.call_at(self._now + delay, fn, *args)

    def _schedule_event(self, event):
        """Queue a triggered event's callbacks for dispatch (engine use)."""
        heapq.heappush(
            self._queue, (self._now, next(self._seq), "dispatch", event, None)
        )

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------

    def spawn(self, generator, name=""):
        """Start a new coroutine process running ``generator``.

        Returns the :class:`Process`, which is itself an event that fires
        with the generator's return value when it finishes.
        """
        proc = Process(self, generator, name=name)
        self._live_processes += 1
        self._live.add(proc)
        proc.add_callback(self._process_done)
        self.call_soon(proc._resume, None, proc._wait_token)
        return proc

    def _process_done(self, event):
        self._live_processes -= 1
        self._live.discard(event)

    def _blocked_report(self):
        """(name, waiting-on) pairs for every live process, for Deadlock
        diagnostics.  Deterministic order: by process name then id."""
        report = []
        for proc in sorted(self._live, key=lambda p: (p.name, id(p))):
            target = proc.waiting_on
            report.append((proc.name or repr(proc),
                           repr(target) if target is not None else "nothing"))
        return report

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def step(self):
        """Execute the next scheduled item.  Returns False if none remain."""
        if not self._queue:
            return False
        when, _seq, kind, payload, extra = heapq.heappop(self._queue)
        self._now = when
        if kind == "call":
            payload(*extra)
        else:  # "dispatch": run a triggered event's callbacks
            callbacks, payload.callbacks = payload.callbacks, None
            for callback in callbacks:
                callback(payload)
        return True

    def run(self, until=None, detect_deadlock=False):
        """Run the simulation.

        With ``until=None`` runs until no scheduled items remain.  With a
        time bound, stops once the clock would pass ``until`` and sets the
        clock to exactly ``until``.  With ``detect_deadlock=True``, raises
        :class:`Deadlock` if live processes remain when the queue drains.
        """
        if until is not None and until < self._now:
            raise ValueError("until %r is in the past (now=%r)" % (until, self._now))
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until
        if detect_deadlock and self._live_processes > 0:
            raise Deadlock(
                "%d process(es) blocked with no scheduled events"
                % self._live_processes,
                blocked=self._blocked_report(),
            )

    def run_process(self, generator, until=None, name=""):
        """Spawn ``generator`` and run until it finishes; return its value.

        Unlike :meth:`run`, this stops as soon as the process completes,
        so perpetual background processes (timers, input threads) do not
        keep the call from returning.  Raises :class:`Deadlock` if the
        event queue drains (or ``until`` passes) before it finishes.
        """
        proc = self.spawn(generator, name=name)
        while not proc.triggered and self._queue:
            if until is not None and self._queue[0][0] > until:
                break
            self.step()
        if not proc.triggered:
            raise Deadlock("process %r did not finish" % (name or proc),
                           blocked=self._blocked_report())
        if not proc.ok:
            raise proc.value
        return proc.value

    def run_all(self, generators, until=None):
        """Spawn several processes; run until all finish; return values."""
        procs = [self.spawn(gen) for gen in generators]
        while not all(p.triggered for p in procs) and self._queue:
            if until is not None and self._queue[0][0] > until:
                break
            self.step()
        results = []
        for proc in procs:
            if not proc.triggered:
                raise Deadlock("process %r did not finish" % proc,
                               blocked=self._blocked_report())
            if not proc.ok:
                raise proc.value
            results.append(proc.value)
        return results

    def sleep(self, delay):
        """Convenience generator: ``yield from sim.sleep(dt)``."""
        yield Timeout(delay)
