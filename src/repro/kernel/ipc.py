"""Mach-style IPC: message ports and RPC.

Costs follow the paper's analysis of the server-based placement: a data-
carrying RPC copies its payload twice on each side of each crossing (four
copies end-to-end: user buffer -> message -> kernel -> server message ->
mbuf chain), plus fixed per-message and stub costs, plus the trap.  Those
charges are what make the UX server's ``entry/copyin`` and
``copyout/exit`` rows in Table 4 so expensive.
"""

from repro.sim.events import any_of
from repro.sim.sync import Channel
from repro.trace import adopt_trace, current_trace


class ServerCrashed(Exception):
    """An RPC failed because the receiving server died.

    Raised in the client when the server's RPC port goes down while the
    call is queued or in flight, or when a call is attempted against a
    port that is already down.  Clients that can retry (the proxy library,
    the metastate cache) catch this and back off until the port reopens.

    This is also the root of the *retryable* control-plane failure
    family: :class:`DeadlineExpired` and :class:`ServerBusy` subclass it
    so every existing ``except ServerCrashed`` retry path transparently
    covers dropped requests, abandoned replies, and shed load.
    """

    def __init__(self, reason="server crashed"):
        super().__init__(reason)
        self.reason = reason


class DeadlineExpired(ServerCrashed):
    """An RPC was abandoned at its per-attempt deadline.

    The reply (if one ever comes) is dropped; the caller may retry with
    the same request id, which the server's replay cache deduplicates.
    """


class ServerBusy(ServerCrashed):
    """The server shed this request (admission control) or failed it
    transiently; the operation did not run and is safe to retry."""


#: Reply-event payload for a call the client abandoned at its deadline;
#: lets a late :meth:`RPCPort.reply` detect the abandonment and count a
#: dropped reply instead of raising into a dead wait.
_ABANDONED = ("abandoned", 0, None)


class Message:
    """One IPC message (an RPC request when it carries a reply event)."""

    __slots__ = ("op", "args", "data", "data_len", "reply_event", "trace",
                 "req_id")

    def __init__(self, op, args=(), data=b"", data_len=None, reply_event=None,
                 trace=None, req_id=None):
        self.op = op
        self.args = args
        self.data = data
        self.data_len = data_len if data_len is not None else len(data)
        self.reply_event = reply_event
        #: Packet-trace id this message is part of (see :mod:`repro.trace`);
        #: stamped at send time, adopted by the receiving process.
        self.trace = trace
        #: Idempotency key for at-least-once delivery: retried or
        #: fault-duplicated requests carry the same id, and the server's
        #: replay cache guarantees the handler's side effects run once
        #: per id per incarnation.  None (the default) opts out.
        self.req_id = req_id

    def __repr__(self):
        return "<Message %s len=%d>" % (self.op, self.data_len)


class MessagePort:
    """A one-way Mach port: senders enqueue, one receiver dequeues.

    Used for packet delivery in the Library-IPC configuration ("the packet
    filter uses Mach IPC to deliver each incoming packet to the protocol
    in a separate message").
    """

    def __init__(self, sim, name="port"):
        self._sim = sim
        self._queue = Channel(sim, name=name)
        self.name = name
        self.messages = 0
        #: Control-plane fault plan hook (None while disabled: the hot
        #: path pays one None test and nothing else — the bit-passivity
        #: contract of the metrics/trace subsystems).
        self.faults = None

    def send(self, ctx, layer, message):
        """Kernel/sender side: fixed message cost; payload copy is charged
        separately by the caller (it depends on source memory type)."""
        if message.trace is None:
            message.trace = current_trace(self._sim)
        yield ctx.charge(layer, ctx.params.mach_msg)
        if self.faults is not None:
            drop, dup, delay_us = self.faults.on_ipc()
            if drop:
                return  # the kernel lost the message; sender already paid
            if delay_us:
                self._sim.call_later(delay_us, self._late_put, message)
                if dup:
                    self._sim.call_later(delay_us, self._late_put, message)
                self.messages += 1
                return
            if dup:
                self._queue.try_put(message)
                self.messages += 1
        self._queue.try_put(message)
        self.messages += 1

    def _late_put(self, message):
        """Deliver a fault-delayed message (it may now arrive reordered
        behind messages sent after it)."""
        self._queue.try_put(message)

    def receive(self, ctx, layer):
        """Receiver side: one boundary crossing plus the message cost."""
        message = yield from self._queue.get()
        # The receiving process picks up the packet's trace, so its
        # copyout/processing charges land on the right timeline.
        adopt_trace(self._sim, message.trace)
        yield ctx.charge(layer, ctx.params.mach_msg + ctx.params.trap_return)
        return message

    def pending(self):
        return len(self._queue)


class RPCPort:
    """A request/reply Mach port pair, as used for every proxy/server call."""

    def __init__(self, sim, name="rpc"):
        self._sim = sim
        self._requests = Channel(sim, name=name)
        self.name = name
        self.calls = 0
        #: Crash-failure reason while the port is down, else None.
        self._broken = None
        #: Reply events for requests the server has dequeued but not yet
        #: answered; failed en masse when the port goes down.
        self._outstanding = set()
        self._reopen_waiters = []
        self._down_waiters = []
        self.retried_calls = 0
        self.replies_dropped = 0
        #: Control-plane fault plan (None while disabled — bit-passive).
        self.faults = None
        #: Admission control: maximum queued+in-flight requests before
        #: the server sheds new arrivals with :class:`ServerBusy`.
        #: None (the default) means unbounded, the historical behavior.
        self.max_pending = None
        self.requests_shed = 0
        self.deadline_expiries = 0

    @property
    def broken(self):
        return self._broken is not None

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------

    def down(self, reason="server crashed"):
        """The receiver died: fail every queued and in-flight request.

        Clients waiting on replies see :class:`ServerCrashed`; subsequent
        :meth:`call` attempts fail immediately until :meth:`up`.
        """
        self._broken = reason
        waiters, self._down_waiters = self._down_waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()
        while True:
            got, message = self._requests.try_get()
            if not got:
                break
            if message.reply_event is not None and not message.reply_event.triggered:
                message.reply_event.fail(ServerCrashed(reason))
        for reply_event in list(self._outstanding):
            if not reply_event.triggered:
                reply_event.fail(ServerCrashed(reason))
        self._outstanding.clear()

    def up(self):
        """The receiver is back: accept calls again, wake reopen waiters."""
        self._broken = None
        waiters, self._reopen_waiters = self._reopen_waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()

    def wait_reopen(self):
        """An event that fires the next time the port comes (back) up."""
        event = self._sim.event("%s.reopen" % self.name)
        if not self.broken:
            event.succeed()
        else:
            self._reopen_waiters.append(event)
        return event

    def wait_down(self):
        """An event that fires the next time the port goes down (fires
        immediately if it is already down)."""
        event = self._sim.event("%s.down" % self.name)
        if self.broken:
            event.succeed()
        else:
            self._down_waiters.append(event)
        return event

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def call(self, ctx, op, args=(), data=b"", layer="rpc", req_id=None,
             deadline_us=None):
        """Synchronous RPC: send a request, block for the reply.

        Charges the client side's costs: trap in, stub, message, and two
        copies of any payload; then symmetric costs for the reply.  If the
        server replies with an exception instance, it is re-raised here —
        errors cross the RPC boundary like any BSD errno would.

        ``req_id`` travels with the request for the server's replay cache
        (idempotent at-least-once delivery).  ``deadline_us`` bounds the
        reply wait: past it the call is abandoned with
        :class:`DeadlineExpired` and a late reply is counted in
        ``replies_dropped``.  When a control-fault plan is attached and no
        explicit deadline was given, the plan's per-op default applies —
        otherwise no timer is armed (the bit-passive happy path).
        """
        if self.broken:
            raise ServerCrashed(self._broken)
        p = ctx.params
        ctx.crossings.server_rpcs += 1
        yield ctx.charge_boundary_crossing(layer)
        yield ctx.charge(layer, p.rpc_stub + p.mach_msg)
        if data:
            yield ctx.charge_copy(layer, len(data))
        dropped = False
        duplicate = False
        if self.faults is not None:
            drop, dup, delay_us = self.faults.on_request(op)
            dropped, duplicate = drop, dup
            if delay_us:
                yield self._sim.timeout(delay_us)
            if deadline_us is None:
                deadline_us = self.faults.deadline_for(op)
            if dropped and deadline_us is None:
                # Never let a fault-dropped request hang its caller.
                deadline_us = self.faults.default_deadline_us
        if (self.max_pending is not None
                and len(self._requests) + len(self._outstanding)
                >= self.max_pending):
            self.requests_shed += 1
            raise ServerBusy("%s shed %s: queue full" % (self.name, op))
        reply_event = self._sim.event("%s.reply" % self.name)
        message = Message(op, args=args, data=bytes(data),
                          reply_event=reply_event,
                          trace=current_trace(self._sim), req_id=req_id)
        if not dropped:
            self._requests.try_put(message)
            self.calls += 1
            if duplicate:
                # The duplicate is a distinct message sharing the reply
                # event: whichever handler answers first wins, the other
                # reply is dropped (or deduplicated by req_id server-side).
                self._requests.try_put(
                    Message(op, args=args, data=message.data,
                            reply_event=reply_event, trace=message.trace,
                            req_id=req_id))
        if deadline_us is not None:
            timer = self._sim.timeout(deadline_us)
            winner, value = yield any_of(self._sim, [reply_event, timer])
            if winner is timer:
                self.deadline_expiries += 1
                if not reply_event.triggered:
                    reply_event.succeed(_ABANDONED)
                raise DeadlineExpired(
                    "no reply to %s within %.0fus" % (op, deadline_us))
            result, reply_len, reply_trace = value
        else:
            result, reply_len, reply_trace = yield reply_event
        if reply_trace is not None:
            # e.g. a recv RPC: the reply carries the received packet's
            # trace, so the client's copyout charges join that timeline.
            adopt_trace(self._sim, reply_trace)
        yield ctx.charge(layer, p.mach_msg + p.trap_return)
        if reply_len:
            yield ctx.charge_copy(layer, reply_len)
        if isinstance(result, BaseException):
            raise result
        return result

    def call_retrying(self, ctx, op, args=(), data=b"", layer="rpc",
                      rng=None, base_us=10_000.0, max_us=2_000_000.0,
                      limit=64, gate=None):
        """RPC that survives server crashes: retry with backoff + jitter.

        On :class:`ServerCrashed` the caller sleeps — exponential backoff
        with full-ish jitter (``delay * (0.5 + rng())``), capped at
        ``max_us`` — and, once the port reports open, tries again.  Any
        other exception (a real errno from the server) propagates
        immediately.  Note the at-least-once caveat: a crash can land
        after the handler's side effects but before its reply, so retried
        operations must be idempotent against rebuilt server state.

        ``gate`` is a zero-argument callable returning an event to wait on
        (or None) before each attempt.  The proxy layer uses it to hold
        retries back until its re-registration RPC has rebuilt the
        restarted server's records — otherwise a quick retry would hit a
        server that does not know the session/app ids yet and turn a
        recoverable crash into a hard error.
        """
        from repro.sim.process import Timeout

        delay = base_us
        for attempt in range(limit):
            if self.broken:
                yield self.wait_reopen()
            if gate is not None:
                event = gate()
                if event is not None:
                    yield event
            try:
                result = yield from self.call(ctx, op, args=args, data=data,
                                              layer=layer)
                return result
            except ServerCrashed:
                if attempt == limit - 1:
                    raise
                self.retried_calls += 1
                jitter = rng.random() if rng is not None else 0.5
                yield Timeout(delay * (0.5 + jitter))
                delay = min(delay * 2, max_us)
        raise ServerCrashed(self._broken or "retry limit exceeded")

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------

    def serve(self, ctx, layer="rpc"):
        """Dequeue the next request, charging the server's receive costs."""
        message = yield from self._requests.get()
        if message.reply_event is not None:
            self._outstanding.add(message.reply_event)
        adopt_trace(self._sim, message.trace)
        p = ctx.params
        yield ctx.charge(layer, p.mach_msg + p.rpc_stub)
        if message.data_len:
            yield ctx.charge_copy(layer, message.data_len)
        return message

    def reply(self, ctx, message, result=None, reply_len=0, layer="rpc"):
        """Send the reply, charging the server's send costs.

        If the reply event was already failed (the server crashed while
        this handler ran and the client gave up on the call), the reply is
        silently dropped — mirroring a send-once right that died with the
        client's wait.
        """
        self._outstanding.discard(message.reply_event)
        if message.reply_event.triggered:
            self.replies_dropped += 1
            return
        p = ctx.params
        yield ctx.charge(layer, p.mach_msg + p.rpc_stub)
        if reply_len:
            yield ctx.charge_copy(layer, reply_len)
        payload = (result, reply_len, current_trace(self._sim))
        if self.faults is not None:
            delay_us = self.faults.on_reply(message.op)
            if delay_us:
                # The reply message lingers in transit: it may arrive
                # reordered behind replies sent after it, or find its
                # caller already gone (deadline expiry, crash).
                self._sim.call_later(
                    delay_us, self._deliver_late_reply, message, payload)
                return
        message.reply_event.succeed(payload)

    def _deliver_late_reply(self, message, payload):
        if message.reply_event.triggered:
            self.replies_dropped += 1
            return
        message.reply_event.succeed(payload)

    def pending(self):
        return len(self._requests)
