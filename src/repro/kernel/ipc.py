"""Mach-style IPC: message ports and RPC.

Costs follow the paper's analysis of the server-based placement: a data-
carrying RPC copies its payload twice on each side of each crossing (four
copies end-to-end: user buffer -> message -> kernel -> server message ->
mbuf chain), plus fixed per-message and stub costs, plus the trap.  Those
charges are what make the UX server's ``entry/copyin`` and
``copyout/exit`` rows in Table 4 so expensive.
"""

from repro.sim.sync import Channel


class Message:
    """One IPC message (an RPC request when it carries a reply event)."""

    __slots__ = ("op", "args", "data", "data_len", "reply_event")

    def __init__(self, op, args=(), data=b"", data_len=None, reply_event=None):
        self.op = op
        self.args = args
        self.data = data
        self.data_len = data_len if data_len is not None else len(data)
        self.reply_event = reply_event

    def __repr__(self):
        return "<Message %s len=%d>" % (self.op, self.data_len)


class MessagePort:
    """A one-way Mach port: senders enqueue, one receiver dequeues.

    Used for packet delivery in the Library-IPC configuration ("the packet
    filter uses Mach IPC to deliver each incoming packet to the protocol
    in a separate message").
    """

    def __init__(self, sim, name="port"):
        self._sim = sim
        self._queue = Channel(sim, name=name)
        self.name = name
        self.messages = 0

    def send(self, ctx, layer, message):
        """Kernel/sender side: fixed message cost; payload copy is charged
        separately by the caller (it depends on source memory type)."""
        yield from ctx.charge(layer, ctx.params.mach_msg)
        self._queue.try_put(message)
        self.messages += 1

    def receive(self, ctx, layer):
        """Receiver side: one boundary crossing plus the message cost."""
        message = yield from self._queue.get()
        yield from ctx.charge(layer, ctx.params.mach_msg + ctx.params.trap_return)
        return message

    def pending(self):
        return len(self._queue)


class RPCPort:
    """A request/reply Mach port pair, as used for every proxy/server call."""

    def __init__(self, sim, name="rpc"):
        self._sim = sim
        self._requests = Channel(sim, name=name)
        self.name = name
        self.calls = 0

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def call(self, ctx, op, args=(), data=b"", layer="rpc"):
        """Synchronous RPC: send a request, block for the reply.

        Charges the client side's costs: trap in, stub, message, and two
        copies of any payload; then symmetric costs for the reply.  If the
        server replies with an exception instance, it is re-raised here —
        errors cross the RPC boundary like any BSD errno would.
        """
        p = ctx.params
        ctx.crossings.server_rpcs += 1
        yield from ctx.charge_boundary_crossing(layer)
        yield from ctx.charge(layer, p.rpc_stub + p.mach_msg)
        if data:
            yield from ctx.charge_copy(layer, len(data))
        reply_event = self._sim.event("%s.reply" % self.name)
        message = Message(op, args=args, data=bytes(data), reply_event=reply_event)
        self._requests.try_put(message)
        self.calls += 1
        result, reply_len = yield reply_event
        yield from ctx.charge(layer, p.mach_msg + p.trap_return)
        if reply_len:
            yield from ctx.charge_copy(layer, reply_len)
        if isinstance(result, BaseException):
            raise result
        return result

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------

    def serve(self, ctx, layer="rpc"):
        """Dequeue the next request, charging the server's receive costs."""
        message = yield from self._requests.get()
        p = ctx.params
        yield from ctx.charge(layer, p.mach_msg + p.rpc_stub)
        if message.data_len:
            yield from ctx.charge_copy(layer, message.data_len)
        return message

    def reply(self, ctx, message, result=None, reply_len=0, layer="rpc"):
        """Send the reply, charging the server's send costs."""
        p = ctx.params
        yield from ctx.charge(layer, p.mach_msg + p.rpc_stub)
        if reply_len:
            yield from ctx.charge_copy(layer, reply_len)
        message.reply_event.succeed((result, reply_len))

    def pending(self):
        return len(self._requests)
