"""The kernel: NIC driver, packet send trap, and filter-based RX demux.

The kernel "exports a packet send and receive interface" (Figure 1).
Sending is a low-latency trap; receiving goes through the packet filter,
with the three delivery interfaces of Section 4.1:

* **IPC** — each matched packet is sent to the owner in a separate Mach
  message (the baseline).
* **SHM** — matched packets are copied into a ring shared with the owner
  and a lightweight condition variable signals arrival; a busy receiver
  drains several packets per wakeup.
* **SHM-IPF** (``integrated=True`` on the kernel) — the filter runs while
  the packet still sits in device memory, deferring the copy until the
  destination is known, so the packet moves device -> destination ring in
  a single copy.
"""

from repro.filter.vm import FilterMachine
from repro.hw.cpu import Priority
from repro.kernel.ipc import Message
from repro.net.ethernet import ETHERTYPE_ARP, ETHERTYPE_IP
from repro.sim.scale import ScaleSimulator
from repro.stack import dispatch
from repro.stack.context import ExecutionContext
from repro.stack.instrument import Layer
from repro.trace import frame_trace

_ARP_KEY = ("arp",)


class QueueDelivery:
    """Deliver to an in-kernel protocol input queue (no extra copy)."""

    boundary = False

    def __init__(self, channel):
        self.channel = channel

    def deliver(self, ctx, frame, from_device):
        if from_device:
            # Integrated mode still must move the frame off the device.
            yield ctx.charge(
                Layer.DEVICE_READ,
                ctx.params.devmem_read_per_byte * len(frame),
            )
        self.channel.try_put(frame)
        yield ctx.charge(Layer.NETISR_FILTER, ctx.params.sched_dispatch)


class IPCDelivery:
    """Deliver each packet in its own Mach message (Library-IPC)."""

    boundary = True

    def __init__(self, port, remap_per_byte=None):
        self.port = port
        #: UX-style servers get page-remapped delivery (cheap per byte);
        #: None means a real copy at main-memory rates.
        self.remap_per_byte = remap_per_byte

    def deliver(self, ctx, frame, from_device):
        p = ctx.params
        if from_device:
            per_byte = p.devmem_read_per_byte
        elif self.remap_per_byte is not None:
            per_byte = self.remap_per_byte
        else:
            per_byte = p.copy_per_byte
        yield ctx.charge(
            Layer.KERNEL_COPYOUT, p.copy_fixed + per_byte * len(frame)
        )
        ctx.crossings.data_copies += 1
        ctx.crossings.user_kernel += 1
        yield from self.port.send(ctx, Layer.KERNEL_COPYOUT, Message("packet", data=frame))
        yield ctx.charge(Layer.NETISR_FILTER, p.sched_dispatch)


class SHMDelivery:
    """Deliver into a shared-memory ring (Library-SHM / SHM-IPF).

    The ring pages are pre-mapped in both the kernel and the application
    and stay cache-warm, so the non-integrated copy into the ring runs at
    the cheap ``shm_ring_per_byte`` rate rather than a cold memcpy — this
    is what lets the paper's Library-SHM match in-kernel throughput even
    though "the use of shared memory in this case does not reduce the
    number of packet copies".  In integrated (IPF) mode the copy comes
    straight out of device memory instead.
    """

    boundary = False

    def __init__(self, ring):
        self.ring = ring

    def deliver(self, ctx, frame, from_device):
        p = ctx.params
        per_byte = p.devmem_read_per_byte if from_device else p.shm_ring_per_byte
        yield ctx.charge(
            Layer.KERNEL_COPYOUT, p.copy_fixed + per_byte * len(frame)
        )
        ctx.crossings.data_copies += 1
        needs_wakeup = self.ring.needs_wakeup()
        if not self.ring.deposit(frame):
            return  # ring overrun: dropped, accounted by the ring
        if needs_wakeup:
            yield ctx.charge(
                Layer.NETISR_FILTER, p.condvar_signal + p.sched_dispatch
            )


class FilterHandle:
    """One installed packet filter: program + delivery + attribution."""

    def __init__(self, program, delivery, accounting=None, name=""):
        self.program = program
        self.delivery = delivery
        self.accounting = accounting
        self.name = name
        self.matched = 0


class Kernel:
    """The per-host kernel."""

    def __init__(self, sim, cpu, nic, integrated_filter=False, name="kernel",
                 tracer=None, indexed_demux=None):
        self.sim = sim
        self.cpu = cpu
        self.params = cpu.params
        self.nic = nic
        self.integrated_filter = integrated_filter
        self.name = name
        #: Optional :class:`~repro.trace.TraceRecorder`; when enabled,
        #: the interrupt loop adopts each frame's trace id (or starts a
        #: fresh "recv" trace for untagged arrivals).
        self.tracer = tracer
        self._filters = []
        #: Indexed demux (scale-out worlds): compiled filters hash by
        #: their ``demux_key`` so an arriving frame runs only the one or
        #: two programs that could accept it — O(1) in the number of
        #: sessions — instead of the whole install list.  The default
        #: (``indexed_demux=None``) follows the simulator: scale worlds
        #: index, the paper's small worlds keep the exact linear scan.
        if indexed_demux is None:
            indexed_demux = isinstance(sim, ScaleSimulator)
        self._demux_index = {} if indexed_demux else None
        self._unindexed = []
        self._vm = FilterMachine()
        self.ctx = ExecutionContext(
            sim, cpu, priority=Priority.INTERRUPT, name=name
        )
        #: Per-ledger attributed contexts, built once and reused — the
        #: demux path used to allocate a fresh context per matched frame.
        self._attr_ctxs = {}
        self.frames_dropped_no_match = 0
        self.frames_demuxed = 0
        loop = (self._interrupt_loop_train if dispatch.TRAIN_DISPATCH
                else self._interrupt_loop)
        sim.spawn(loop(), name="%s.intr" % name)

    # ------------------------------------------------------------------
    # Packet filter management (a kernel call; the OS server uses it when
    # creating sessions)
    # ------------------------------------------------------------------

    def install_filter(self, program, delivery, accounting=None, name="",
                       front=False):
        handle = FilterHandle(program, delivery, accounting, name)
        if front:
            self._filters.insert(0, handle)
        else:
            self._filters.append(handle)
        if self._demux_index is not None:
            key = getattr(program, "demux_key", None)
            if key is None:
                bucket = self._unindexed
            else:
                bucket = self._demux_index.setdefault(key, [])
            if front:
                bucket.insert(0, handle)
            else:
                bucket.append(handle)
        return handle

    def remove_filter(self, handle):
        """Uninstall a filter; idempotent.

        Filter ownership crosses crash boundaries: a replayed RPC may
        legitimately remove a filter the dead server incarnation already
        removed, so a second removal is a no-op, not an error.  Returns
        whether the handle was still installed.
        """
        try:
            self._filters.remove(handle)
        except ValueError:
            return False
        if self._demux_index is not None:
            key = getattr(handle.program, "demux_key", None)
            if key is None:
                self._unindexed.remove(handle)
            else:
                bucket = self._demux_index[key]
                bucket.remove(handle)
                if not bucket:
                    del self._demux_index[key]
        return True

    def filter_count(self):
        return len(self._filters)

    # ------------------------------------------------------------------
    # Send path: the low-latency packet send trap
    # ------------------------------------------------------------------

    def netif_send(self, ctx, frame, wired=False):
        """Transmit ``frame``; charges land on the *caller's* context.

        From user space (``wired=False``) this is the trap + copy into a
        wired kernel buffer the paper describes for library/server sends;
        the in-kernel stack passes ``wired=True`` because its mbufs are
        already wired and go straight to the device.
        """
        p = ctx.params
        if not dispatch.TRAIN_DISPATCH:
            if not wired:
                yield ctx.charge_boundary_crossing(Layer.ETHER_OUTPUT)
                yield ctx.charge_copy(Layer.ETHER_OUTPUT, len(frame))
            yield ctx.charge(
                Layer.ETHER_OUTPUT,
                p.ether_overhead + p.devmem_write_per_byte * len(frame),
            )
            yield from self.nic.start_transmit(frame)
            return
        # Train dispatch: fuse the trap/copy/device charges into one batch
        # (same pairs, same order — see ExecutionContext.charge_batch) and
        # enqueue on the tx ring with a plain call when there is room,
        # blocking through the legacy generator only when the ring is full.
        nbytes = len(frame)
        if not wired:
            ctx.crossings.user_kernel += 1
            ctx.crossings.data_copies += 1
            yield ctx.charge_batch((
                (Layer.ETHER_OUTPUT, p.trap),
                (Layer.ETHER_OUTPUT, p.copy_fixed + p.copy_per_byte * nbytes),
                (Layer.ETHER_OUTPUT,
                 p.ether_overhead + p.devmem_write_per_byte * nbytes),
            ))
        else:
            yield ctx.charge(
                Layer.ETHER_OUTPUT,
                p.ether_overhead + p.devmem_write_per_byte * nbytes,
            )
        if not self.nic.transmit_fast(frame):
            yield from self.nic.start_transmit(frame)

    # ------------------------------------------------------------------
    # Receive path: interrupt -> filter -> delivery
    # ------------------------------------------------------------------

    def _interrupt_loop(self):
        p = self.params
        while True:
            frame = yield from self.nic.rx_ring.get()
            enq_at = self.nic.rx_pop_time()
            if self.tracer is not None:
                trace_id = frame_trace(frame)
                if trace_id is None and self.tracer.enabled:
                    self.tracer.begin("recv", host=self.name, size=len(frame))
                else:
                    self.tracer.adopt(trace_id)
                if self.tracer.enabled:
                    tid = self.tracer.current()
                    if tid is not None:
                        waited = self.ctx.sim.now - enq_at
                        if waited > 0:
                            self.tracer.record_wait(
                                tid, self.name, "nic_rx_ring", "queue",
                                enq_at, waited)
            pre_cost = p.interrupt_entry
            yield self.ctx.charge(Layer.DEVICE_READ, p.interrupt_entry)
            if not self.integrated_filter:
                # Copy the whole frame out of device memory first.
                read_cost = p.devmem_read_per_byte * len(frame)
                pre_cost += read_cost
                yield self.ctx.charge(Layer.DEVICE_READ, read_cost)
                self.nic.rx_release()
                from_device = False
            else:
                from_device = True
            yield self.ctx.charge(Layer.NETISR_FILTER, p.netisr_dispatch)
            matched = yield from self._demux(frame, from_device, pre_cost)
            if from_device:
                self.nic.rx_release()
            if not matched:
                self.frames_dropped_no_match += 1

    def _interrupt_loop_train(self):
        """:meth:`_interrupt_loop` with queued frames drained as a train.

        Bit-identical to the legacy loop: a ``get()`` on a non-empty
        channel pops synchronously without touching the engine (and the
        rx ring is unbounded, so it never has blocked putters to wake),
        making the non-blocking ``try_get`` drain the same schedule.  Per
        frame, charges that had no engine interaction between them fuse
        into one batch — interrupt entry + device read (the rx-slot
        release stays between the read and the netisr dispatch, where the
        legacy path put it), or entry + dispatch in integrated mode — and
        the demux/attribution subgenerators are inlined.
        """
        p = self.params
        ctx = self.ctx
        nic = self.nic
        rx_try = nic.rx_ring.try_get
        vm_run = self._vm.run
        integrated = self.integrated_filter
        filter_insn = p.filter_insn
        while True:
            frame = yield from nic.rx_ring.get()
            while True:
                enq_at = nic.rx_pop_time()
                if self.tracer is not None:
                    trace_id = frame_trace(frame)
                    if trace_id is None and self.tracer.enabled:
                        self.tracer.begin("recv", host=self.name,
                                          size=len(frame))
                    else:
                        self.tracer.adopt(trace_id)
                    if self.tracer.enabled:
                        tid = self.tracer.current()
                        if tid is not None:
                            waited = ctx.sim.now - enq_at
                            if waited > 0:
                                self.tracer.record_wait(
                                    tid, self.name, "nic_rx_ring", "queue",
                                    enq_at, waited)
                pre_cost = p.interrupt_entry
                if not integrated:
                    read_cost = p.devmem_read_per_byte * len(frame)
                    pre_cost += read_cost
                    yield ctx.charge_batch((
                        (Layer.DEVICE_READ, p.interrupt_entry),
                        (Layer.DEVICE_READ, read_cost),
                    ))
                    nic.rx_release()
                    yield ctx.charge(Layer.NETISR_FILTER, p.netisr_dispatch)
                    from_device = False
                else:
                    yield ctx.charge_batch((
                        (Layer.DEVICE_READ, p.interrupt_entry),
                        (Layer.NETISR_FILTER, p.netisr_dispatch),
                    ))
                    from_device = True
                if self._demux_index is None:
                    handles = self._filters
                else:
                    handles = self._demux_candidates(frame)
                matched = False
                for handle in handles:
                    accepted, insns = vm_run(handle.program, frame)
                    accounting = handle.accounting
                    actx = (ctx if accounting is None
                            else self._attributed_ctx(accounting))
                    yield actx.charge(Layer.NETISR_FILTER,
                                      filter_insn * insns)
                    if accepted:
                        handle.matched += 1
                        self.frames_demuxed += 1
                        if accounting is not None:
                            accounting.add(Layer.DEVICE_READ, pre_cost)
                            accounting.add(Layer.NETISR_FILTER,
                                           p.netisr_dispatch)
                        yield from handle.delivery.deliver(
                            actx, frame, from_device)
                        matched = True
                        break
                if from_device:
                    nic.rx_release()
                if not matched:
                    self.frames_dropped_no_match += 1
                ok, frame = rx_try()
                if not ok:
                    break

    def _demux_candidates(self, frame):
        """The installed filters worth running against ``frame``.

        Classify the frame once (ethertype, IP protocol, addresses,
        first-fragment ports) and look up the matching key buckets:
        exact session before wildcard session — preserving the
        exact-beats-listener precedence the linear scan gets from
        ``front=True`` installs — then protocol-level filters, then any
        hand-built programs without a key.  Each candidate's program
        still runs (and is charged) to confirm the match; the index only
        decides which programs are worth running, making receive demux
        O(1) in the number of live sessions.
        """
        index = self._demux_index
        candidates = []
        if len(frame) >= 14:
            ethertype = (frame[12] << 8) | frame[13]
            if ethertype == ETHERTYPE_ARP:
                bucket = index.get(_ARP_KEY)
                if bucket:
                    candidates.extend(bucket)
            elif ethertype == ETHERTYPE_IP and len(frame) >= 34:
                proto = frame[23]
                if ((frame[20] << 8) | frame[21]) & 0x1FFF == 0:
                    # First fragment: the transport header is readable,
                    # so session filters are in play.
                    ihl = 4 * (frame[14] & 0x0F)
                    off = 14 + ihl
                    if len(frame) >= off + 4:
                        src = ((frame[26] << 24) | (frame[27] << 16)
                               | (frame[28] << 8) | frame[29])
                        dst = ((frame[30] << 24) | (frame[31] << 16)
                               | (frame[32] << 8) | frame[33])
                        sport = (frame[off] << 8) | frame[off + 1]
                        dport = (frame[off + 2] << 8) | frame[off + 3]
                        bucket = index.get(
                            ("sess", proto, dst, dport, src, sport))
                        if bucket:
                            candidates.extend(bucket)
                        bucket = index.get(
                            ("sess", proto, dst, dport, None, None))
                        if bucket:
                            candidates.extend(bucket)
                bucket = index.get(("ipproto", proto))
                if bucket:
                    candidates.extend(bucket)
        if self._unindexed:
            candidates.extend(self._unindexed)
        return candidates

    def _demux(self, frame, from_device, pre_cost):
        p = self.params
        if self._demux_index is None:
            handles = self._filters
        else:
            handles = self._demux_candidates(frame)
        for handle in handles:
            accepted, insns = self._vm.run(handle.program, frame)
            yield from self._charge_attributed(
                handle.accounting, Layer.NETISR_FILTER, p.filter_insn * insns
            )
            if accepted:
                handle.matched += 1
                self.frames_demuxed += 1
                if handle.accounting is not None:
                    # Attribute the pre-demux interrupt/read work (already
                    # charged to the CPU) to the matched session's ledger
                    # so per-placement breakdowns include it.
                    handle.accounting.add(Layer.DEVICE_READ, pre_cost)
                    handle.accounting.add(
                        Layer.NETISR_FILTER, p.netisr_dispatch
                    )
                ctx = self._attributed_ctx(handle.accounting)
                yield from handle.delivery.deliver(ctx, frame, from_device)
                return True
        return False

    def _attributed_ctx(self, accounting):
        """An interrupt-priority context whose charges are attributed to
        the matched session's owner (so Table 4 rows show per-placement
        receive costs)."""
        if accounting is None:
            return self.ctx
        ctx = self._attr_ctxs.get(accounting)
        if ctx is None:
            ctx = ExecutionContext(
                self.sim,
                self.cpu,
                priority=Priority.INTERRUPT,
                accounting=accounting,
                crossings=self.ctx.crossings,
                name=self.name,
            )
            self._attr_ctxs[accounting] = ctx
        return ctx

    def _charge_attributed(self, accounting, layer, cost):
        ctx = self._attributed_ctx(accounting)
        yield ctx.charge(layer, cost)
