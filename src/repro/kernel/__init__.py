"""The simulated Mach 3.0 microkernel.

Provides the three services the paper's architecture needs from the
kernel: Mach-style IPC (:mod:`repro.kernel.ipc`), a low-latency packet
send trap, and packet-filter-based receive demultiplexing with three
delivery interfaces — per-packet IPC, shared-memory rings, and the
integrated (deferred-copy) packet filter (:mod:`repro.kernel.kernel`).

The heavyweight spl-style and lightweight synchronization packages the
paper contrasts are modelled as
:class:`~repro.stack.context.LockPackage` cost models.
"""

from repro.kernel.ipc import Message, RPCPort, MessagePort
from repro.kernel.kernel import (
    FilterHandle,
    IPCDelivery,
    Kernel,
    QueueDelivery,
    SHMDelivery,
)

__all__ = [
    "Kernel",
    "FilterHandle",
    "QueueDelivery",
    "IPCDelivery",
    "SHMDelivery",
    "RPCPort",
    "MessagePort",
    "Message",
]
