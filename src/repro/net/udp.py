"""UDP: header encoding/decoding with pseudo-header checksums (RFC 768)."""

import struct

from repro.net.checksum import internet_checksum
from repro.net.ip import PROTO_UDP

HEADER_LEN = 8

_UDP_STRUCT = struct.Struct("!HHHH")

#: Largest UDP payload that fits an unfragmented Ethernet IP packet
#: (1500 - 20 IP - 8 UDP), the paper's 1472-byte message size.
MAX_UNFRAGMENTED_PAYLOAD = 1472


class UDPHeader:
    """A parsed UDP header."""

    __slots__ = ("src_port", "dst_port", "length")

    def __init__(self, src_port, dst_port, length):
        self.src_port = src_port
        self.dst_port = dst_port
        self.length = length

    def __repr__(self):
        return "<UDP %d -> %d len=%d>" % (self.src_port, self.dst_port, self.length)


def encapsulate(src_ip, dst_ip, src_port, dst_port, payload):
    """Build a UDP datagram (header + payload) with a valid checksum."""
    length = HEADER_LEN + len(payload)
    if length > 65535:
        raise ValueError("UDP datagram too large: %d" % length)
    datagram = bytearray(length)
    _UDP_STRUCT.pack_into(datagram, 0, src_port, dst_port, length, 0)
    datagram[HEADER_LEN:] = payload
    # pseudo_header_sum written out inline (once per datagram built);
    # internet_checksum folds the carries.
    pseudo = (
        (src_ip >> 16) + (src_ip & 0xFFFF)
        + (dst_ip >> 16) + (dst_ip & 0xFFFF)
        + PROTO_UDP + length
    )
    checksum = internet_checksum(datagram, initial=pseudo)
    if checksum == 0:
        checksum = 0xFFFF  # RFC 768: zero means "no checksum"
    datagram[6] = checksum >> 8
    datagram[7] = checksum & 0xFF
    return bytes(datagram)


def decapsulate(src_ip, dst_ip, datagram, verify=True):
    """Split a UDP datagram into (header, payload), verifying the checksum.

    Raises ValueError for short, truncated, or corrupt datagrams.
    """
    if len(datagram) < HEADER_LEN:
        raise ValueError("UDP datagram too short: %d" % len(datagram))
    src_port, dst_port, length, checksum = _UDP_STRUCT.unpack_from(datagram, 0)
    if length < HEADER_LEN or length > len(datagram):
        raise ValueError("bad UDP length field: %d" % length)
    datagram = bytes(datagram[:length])
    if verify and checksum != 0:
        # pseudo_header_sum/verify_checksum written out inline (once
        # per datagram received).
        total = int.from_bytes(datagram, "big")
        if length & 1:
            total <<= 8
        if total:
            total %= 0xFFFF
            if not total:
                total = 0xFFFF
        total += (
            (src_ip >> 16) + (src_ip & 0xFFFF)
            + (dst_ip >> 16) + (dst_ip & 0xFFFF)
            + PROTO_UDP + length
        )
        while total >> 16:
            total = (total & 0xFFFF) + (total >> 16)
        if total != 0xFFFF:
            raise ValueError("bad UDP checksum")
    return UDPHeader(src_port, dst_port, length), datagram[HEADER_LEN:]
