"""ICMP (RFC 792): echo, destination unreachable, time exceeded.

The subset a 1993 BSD-derived stack actually exercised: ping, the
port-unreachable errors that give connected UDP sockets ECONNREFUSED
semantics, and TTL expiry.  In the paper's architecture ICMP is one of
the "exceptional network packets" the operating system server handles;
errors relevant to an application-managed session are upcalled into it.
"""

import struct

from repro.net.checksum import internet_checksum, verify_checksum

TYPE_ECHO_REPLY = 0
TYPE_DEST_UNREACHABLE = 3
TYPE_ECHO_REQUEST = 8
TYPE_TIME_EXCEEDED = 11

CODE_NET_UNREACHABLE = 0
CODE_HOST_UNREACHABLE = 1
CODE_PROTOCOL_UNREACHABLE = 2
CODE_PORT_UNREACHABLE = 3

HEADER_LEN = 8


class ICMPMessage:
    """A parsed ICMP message.

    For echo messages, ``ident``/``seq`` are the identifier pair and
    ``payload`` the echoed data.  For error messages, ``payload`` carries
    the offending IP header plus the first 8 bytes of its payload, per
    RFC 792.
    """

    __slots__ = ("type", "code", "ident", "seq", "payload")

    def __init__(self, type, code=0, ident=0, seq=0, payload=b""):  # noqa: A002
        self.type = type
        self.code = code
        self.ident = ident
        self.seq = seq
        self.payload = bytes(payload)

    @property
    def is_echo(self):
        return self.type in (TYPE_ECHO_REQUEST, TYPE_ECHO_REPLY)

    @property
    def is_error(self):
        return self.type in (TYPE_DEST_UNREACHABLE, TYPE_TIME_EXCEEDED)

    def pack(self):
        if self.is_echo:
            rest = struct.pack("!HH", self.ident, self.seq)
        else:
            rest = struct.pack("!I", 0)  # unused field of error messages
        body = struct.pack("!BBH", self.type, self.code, 0) + rest + self.payload
        checksum = internet_checksum(body)
        return body[:2] + struct.pack("!H", checksum) + body[4:]

    @classmethod
    def unpack(cls, data, verify=True):
        if len(data) < HEADER_LEN:
            raise ValueError("ICMP message too short: %d" % len(data))
        if verify and not verify_checksum(data):
            raise ValueError("bad ICMP checksum")
        type_, code, _cksum = struct.unpack_from("!BBH", data, 0)
        if type_ in (TYPE_ECHO_REQUEST, TYPE_ECHO_REPLY):
            ident, seq = struct.unpack_from("!HH", data, 4)
            return cls(type_, code, ident=ident, seq=seq, payload=data[8:])
        return cls(type_, code, payload=bytes(data[8:]))

    @classmethod
    def echo_request(cls, ident, seq, payload=b""):
        return cls(TYPE_ECHO_REQUEST, ident=ident, seq=seq, payload=payload)

    def echo_reply(self):
        if self.type != TYPE_ECHO_REQUEST:
            raise ValueError("echo_reply() of a non-request")
        return ICMPMessage(TYPE_ECHO_REPLY, ident=self.ident, seq=self.seq,
                           payload=self.payload)

    @classmethod
    def port_unreachable(cls, original_packet):
        """The error a host sends when a UDP datagram hits no socket."""
        return cls(
            TYPE_DEST_UNREACHABLE,
            code=CODE_PORT_UNREACHABLE,
            payload=bytes(original_packet[: 20 + 8]),
        )

    def quoted_packet(self):
        """The offending packet excerpt carried by an error message."""
        if not self.is_error:
            raise ValueError("no quoted packet in a non-error message")
        return self.payload

    def __repr__(self):
        return "<ICMP type=%d code=%d len=%d>" % (
            self.type, self.code, len(self.payload))
