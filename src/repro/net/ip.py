"""IPv4: header encoding, fragmentation, and reassembly (RFC 791)."""

import struct

from repro.net.addr import ip_ntoa
from repro.net.checksum import internet_checksum

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

HEADER_LEN = 20  # we do not generate options
DEFAULT_TTL = 64

FLAG_DF = 0x2  # don't fragment
FLAG_MF = 0x1  # more fragments

_IP_STRUCT = struct.Struct("!BBHHHBBHII")


class IPHeader:
    """A parsed IPv4 header (options-free on the send side)."""

    __slots__ = (
        "tos",
        "total_len",
        "ident",
        "flags",
        "frag_off",
        "ttl",
        "proto",
        "src",
        "dst",
        "header_len",
    )

    def __init__(
        self,
        src,
        dst,
        proto,
        total_len,
        ident=0,
        flags=0,
        frag_off=0,
        ttl=DEFAULT_TTL,
        tos=0,
        header_len=HEADER_LEN,
    ):
        self.src = src
        self.dst = dst
        self.proto = proto
        self.total_len = total_len
        self.ident = ident
        self.flags = flags
        self.frag_off = frag_off  # in bytes (must be a multiple of 8)
        self.ttl = ttl
        self.tos = tos
        self.header_len = header_len

    def pack(self):
        if self.frag_off % 8:
            raise ValueError("fragment offset must be a multiple of 8")
        vhl = (4 << 4) | (HEADER_LEN // 4)
        flags_frag = (self.flags << 13) | (self.frag_off // 8)
        header = bytearray(HEADER_LEN)
        _IP_STRUCT.pack_into(
            header,
            0,
            vhl,
            self.tos,
            self.total_len,
            self.ident,
            flags_frag,
            self.ttl,
            self.proto,
            0,
            self.src,
            self.dst,
        )
        checksum = internet_checksum(header)
        header[10] = checksum >> 8
        header[11] = checksum & 0xFF
        return bytes(header)

    @classmethod
    def unpack(cls, data, verify=True):
        # Runs once per received packet: the header is built with
        # ``__new__`` + direct slot stores (skipping ``__init__``) and
        # the checksum verification is written out inline.
        size = len(data)
        if size < HEADER_LEN:
            raise ValueError("IP packet too short: %d" % size)
        vhl, tos, total_len, ident, flags_frag, ttl, proto, _cksum, src, dst = (
            _IP_STRUCT.unpack_from(data, 0)
        )
        version = vhl >> 4
        header_len = (vhl & 0xF) * 4
        if version != 4:
            raise ValueError("not an IPv4 packet (version=%d)" % version)
        if header_len < HEADER_LEN or header_len > size:
            raise ValueError("bad IPv4 header length %d" % header_len)
        if verify:
            total = int.from_bytes(data[:header_len], "big")
            if header_len & 1:
                total <<= 8
            if total:
                total %= 0xFFFF
                if not total:
                    total = 0xFFFF
            while total >> 16:
                total = (total & 0xFFFF) + (total >> 16)
            if total != 0xFFFF:
                raise ValueError("bad IPv4 header checksum")
        header = cls.__new__(cls)
        header.src = src
        header.dst = dst
        header.proto = proto
        header.total_len = total_len
        header.ident = ident
        header.flags = flags_frag >> 13
        header.frag_off = (flags_frag & 0x1FFF) * 8
        header.ttl = ttl
        header.tos = tos
        header.header_len = header_len
        return header

    @property
    def more_fragments(self):
        return bool(self.flags & FLAG_MF)

    @property
    def dont_fragment(self):
        return bool(self.flags & FLAG_DF)

    def __repr__(self):
        return "<IP %s -> %s proto=%d len=%d id=%d off=%d%s>" % (
            ip_ntoa(self.src),
            ip_ntoa(self.dst),
            self.proto,
            self.total_len,
            self.ident,
            self.frag_off,
            "+MF" if self.more_fragments else "",
        )


def encapsulate(src, dst, proto, payload, ident=0, ttl=DEFAULT_TTL, flags=0,
                frag_off=0):
    """Build a complete IP packet around ``payload``."""
    header = IPHeader(
        src=src,
        dst=dst,
        proto=proto,
        total_len=HEADER_LEN + len(payload),
        ident=ident,
        ttl=ttl,
        flags=flags,
        frag_off=frag_off,
    )
    return header.pack() + bytes(payload)


def decapsulate(packet, verify=True):
    """Split an IP packet into (header, payload), honouring total_len."""
    header = IPHeader.unpack(packet, verify=verify)
    end = len(packet)
    total_len = header.total_len
    if total_len < end:
        end = total_len
    return header, bytes(packet[header.header_len : end])


def fragment(packet, mtu):
    """Split an IP packet into fragments that fit ``mtu``.

    Returns ``[packet]`` unchanged when it already fits.  Raises if the
    packet has DF set and does not fit (the caller turns that into an
    ICMP-style error).
    """
    if len(packet) <= mtu:
        return [bytes(packet)]
    header, payload = decapsulate(packet, verify=False)
    if header.dont_fragment:
        raise ValueError("packet needs fragmenting but DF is set")
    chunk = ((mtu - HEADER_LEN) // 8) * 8
    if chunk <= 0:
        raise ValueError("MTU %d too small to fragment into" % mtu)
    fragments = []
    offset = 0
    while offset < len(payload):
        piece = payload[offset : offset + chunk]
        last = offset + len(piece) >= len(payload)
        flags = header.flags
        if not last:
            flags |= FLAG_MF
        elif header.more_fragments:
            flags |= FLAG_MF  # a middle fragment being re-fragmented
        fragments.append(
            encapsulate(
                header.src,
                header.dst,
                header.proto,
                piece,
                ident=header.ident,
                ttl=header.ttl,
                flags=flags,
                frag_off=header.frag_off + offset,
            )
        )
        offset += len(piece)
    return fragments


#: Reassembly timeout: BSD used 30 seconds.
REASSEMBLY_TIMEOUT_US = 30 * 1_000_000.0


class Reassembler:
    """Per-host IP fragment reassembly with timeout-based garbage collection."""

    def __init__(self, clock, timeout_us=REASSEMBLY_TIMEOUT_US):
        self._clock = clock
        self._timeout = timeout_us
        self._partial = {}
        self.reassembled = 0
        self.timed_out = 0

    def _key(self, header):
        return (header.src, header.dst, header.proto, header.ident)

    def input(self, packet):
        """Feed one IP packet; returns a complete packet or None.

        Unfragmented packets pass straight through.
        """
        header, payload = decapsulate(packet, verify=False)
        if header.frag_off == 0 and not header.more_fragments:
            return bytes(packet)
        self._expire()
        key = self._key(header)
        state = self._partial.setdefault(
            key, {"pieces": {}, "total": None, "deadline": self._clock() + self._timeout}
        )
        state["pieces"][header.frag_off] = payload
        if not header.more_fragments:
            state["total"] = header.frag_off + len(payload)
        if state["total"] is None:
            return None
        # Check contiguity from 0 to total.
        have = 0
        data = bytearray(state["total"])
        for off in sorted(state["pieces"]):
            piece = state["pieces"][off]
            if off > have:
                return None  # hole
            data[off : off + len(piece)] = piece
            have = max(have, off + len(piece))
        if have < state["total"]:
            return None
        del self._partial[key]
        self.reassembled += 1
        return encapsulate(
            header.src,
            header.dst,
            header.proto,
            bytes(data),
            ident=header.ident,
            ttl=header.ttl,
        )

    def _expire(self):
        now = self._clock()
        dead = [k for k, s in self._partial.items() if s["deadline"] <= now]
        for key in dead:
            del self._partial[key]
            self.timed_out += 1

    def pending(self):
        """Number of incomplete datagrams being held."""
        return len(self._partial)
