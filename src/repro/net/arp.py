"""ARP: the Address Resolution Protocol (RFC 826), for IPv4 over Ethernet.

In the paper's architecture ARP is explicitly *not* on the fast path: the
operating system server answers ARP queries and owns the authoritative
cache ("the handling of exceptional network packets like ARP queries"),
while applications cache mappings from the server and get invalidated by
callback (Section 3.3, reproduced in :mod:`repro.core.metastate`).
"""

import struct

from repro.net.addr import ip_ntoa

OP_REQUEST = 1
OP_REPLY = 2


class ArpTimeout(Exception):
    """No ARP reply after the maximum number of retries (the target is
    absent or unreachable at the link layer)."""

HTYPE_ETHERNET = 1
PTYPE_IPV4 = 0x0800

PACKET_LEN = 28

#: Default cache lifetime, microseconds (BSD used 20 minutes).
DEFAULT_TTL_US = 20 * 60 * 1_000_000.0


class ArpPacket:
    """An ARP request or reply for IPv4-over-Ethernet."""

    __slots__ = ("op", "sender_mac", "sender_ip", "target_mac", "target_ip")

    def __init__(self, op, sender_mac, sender_ip, target_mac, target_ip):
        if op not in (OP_REQUEST, OP_REPLY):
            raise ValueError("bad ARP op: %r" % op)
        self.op = op
        self.sender_mac = bytes(sender_mac)
        self.sender_ip = sender_ip
        self.target_mac = bytes(target_mac)
        self.target_ip = target_ip

    def pack(self):
        return (
            struct.pack("!HHBBH", HTYPE_ETHERNET, PTYPE_IPV4, 6, 4, self.op)
            + self.sender_mac
            + struct.pack("!I", self.sender_ip)
            + self.target_mac
            + struct.pack("!I", self.target_ip)
        )

    @classmethod
    def unpack(cls, data):
        if len(data) < PACKET_LEN:
            raise ValueError("ARP packet too short: %d" % len(data))
        htype, ptype, hlen, plen, op = struct.unpack_from("!HHBBH", data, 0)
        if htype != HTYPE_ETHERNET or ptype != PTYPE_IPV4 or hlen != 6 or plen != 4:
            raise ValueError("unsupported ARP packet type")
        sender_mac = bytes(data[8:14])
        (sender_ip,) = struct.unpack_from("!I", data, 14)
        target_mac = bytes(data[18:24])
        (target_ip,) = struct.unpack_from("!I", data, 24)
        return cls(op, sender_mac, sender_ip, target_mac, target_ip)

    @classmethod
    def request(cls, sender_mac, sender_ip, target_ip):
        return cls(OP_REQUEST, sender_mac, sender_ip, b"\x00" * 6, target_ip)

    def reply_from(self, my_mac):
        """Build the reply a host owning ``target_ip`` would send."""
        return ArpPacket(
            OP_REPLY, my_mac, self.target_ip, self.sender_mac, self.sender_ip
        )

    def __repr__(self):
        kind = "REQUEST" if self.op == OP_REQUEST else "REPLY"
        return "<ARP %s %s -> %s>" % (
            kind,
            ip_ntoa(self.sender_ip),
            ip_ntoa(self.target_ip),
        )


class ArpCache:
    """An IP -> MAC cache with expiry, in simulated time.

    ``clock`` is any zero-argument callable returning the current time in
    microseconds; using a callable keeps the cache usable from both the OS
    server (authoritative) and applications (cached copies).
    """

    def __init__(self, clock, ttl_us=DEFAULT_TTL_US):
        self._clock = clock
        self._ttl = ttl_us
        self._entries = {}
        self.hits = 0
        self.misses = 0

    def insert(self, ip, mac):
        self._entries[ip] = (bytes(mac), self._clock() + self._ttl)

    def lookup(self, ip):
        """The MAC for ``ip``, or None on miss/expiry."""
        entry = self._entries.get(ip)
        if entry is None:
            self.misses += 1
            return None
        mac, expires = entry
        if self._clock() >= expires:
            del self._entries[ip]
            self.misses += 1
            return None
        self.hits += 1
        return mac

    def invalidate(self, ip):
        """Drop one entry (server-driven callback invalidation, §3.3)."""
        self._entries.pop(ip, None)

    def flush(self):
        self._entries.clear()

    def __len__(self):
        return len(self._entries)

    def entries(self):
        """Snapshot of live (ip, mac) pairs."""
        now = self._clock()
        return {
            ip: mac for ip, (mac, expires) in self._entries.items() if expires > now
        }
