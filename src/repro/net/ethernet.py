"""Ethernet II framing."""

import struct

from repro.net.addr import mac_aton

ETHERTYPE_IP = 0x0800
ETHERTYPE_ARP = 0x0806

HEADER_LEN = 14
MTU = 1500  # maximum payload
MIN_PAYLOAD = 46  # minimum payload (frames are padded up to this)

_TYPE_STRUCT = struct.Struct("!H")


class EthernetHeader:
    """A parsed Ethernet II header."""

    __slots__ = ("dst", "src", "ethertype")

    def __init__(self, dst, src, ethertype):
        self.dst = mac_aton(dst)
        self.src = mac_aton(src)
        self.ethertype = ethertype

    def pack(self):
        return self.dst + self.src + _TYPE_STRUCT.pack(self.ethertype)

    @classmethod
    def unpack(cls, frame):
        if len(frame) < HEADER_LEN:
            raise ValueError("frame too short for Ethernet header: %d" % len(frame))
        (ethertype,) = _TYPE_STRUCT.unpack_from(frame, 12)
        return cls(frame[0:6], frame[6:12], ethertype)

    def __repr__(self):
        from repro.net.addr import mac_ntoa

        return "<Ether %s -> %s type=0x%04x>" % (
            mac_ntoa(self.src),
            mac_ntoa(self.dst),
            self.ethertype,
        )


def encapsulate(dst_mac, src_mac, ethertype, payload):
    """Build a full frame, padding the payload to the Ethernet minimum."""
    if len(payload) > MTU:
        raise ValueError("payload %d exceeds Ethernet MTU %d" % (len(payload), MTU))
    if len(payload) < MIN_PAYLOAD:
        payload = bytes(payload) + b"\x00" * (MIN_PAYLOAD - len(payload))
    return EthernetHeader(dst_mac, src_mac, ethertype).pack() + bytes(payload)


def decapsulate(frame):
    """Split a frame into (header, payload)."""
    header = EthernetHeader.unpack(frame)
    return header, bytes(frame[HEADER_LEN:])
