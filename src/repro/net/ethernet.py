"""Ethernet II framing."""

import struct

from repro.net.addr import mac_aton

ETHERTYPE_IP = 0x0800
ETHERTYPE_ARP = 0x0806

HEADER_LEN = 14
MTU = 1500  # maximum payload
MIN_PAYLOAD = 46  # minimum payload (frames are padded up to this)

_TYPE_STRUCT = struct.Struct("!H")


class EthernetHeader:
    """A parsed Ethernet II header."""

    __slots__ = ("dst", "src", "ethertype")

    def __init__(self, dst, src, ethertype):
        # MACs arrive as 6-byte slices on the per-frame path; string
        # forms only appear at configuration time.
        self.dst = dst if dst.__class__ is bytes and len(dst) == 6 else mac_aton(dst)
        self.src = src if src.__class__ is bytes and len(src) == 6 else mac_aton(src)
        self.ethertype = ethertype

    def pack(self):
        return self.dst + self.src + _TYPE_STRUCT.pack(self.ethertype)

    @classmethod
    def unpack(cls, frame):
        # Per-frame path: slices of a bytes frame are already 6-byte
        # ``bytes``, so skip ``__init__`` and store the slots directly.
        if frame.__class__ is not bytes:
            frame = bytes(frame)  # bytearray/TaggedFrame: slice as bytes
        if len(frame) < HEADER_LEN:
            raise ValueError("frame too short for Ethernet header: %d" % len(frame))
        (ethertype,) = _TYPE_STRUCT.unpack_from(frame, 12)
        header = cls.__new__(cls)
        header.dst = frame[0:6]
        header.src = frame[6:12]
        header.ethertype = ethertype
        return header

    def __repr__(self):
        from repro.net.addr import mac_ntoa

        return "<Ether %s -> %s type=0x%04x>" % (
            mac_ntoa(self.src),
            mac_ntoa(self.dst),
            self.ethertype,
        )


def encapsulate(dst_mac, src_mac, ethertype, payload):
    """Build a full frame, padding the payload to the Ethernet minimum.

    Header construction and packing are written out inline — this runs
    once per transmitted frame.
    """
    n = len(payload)
    if n > MTU:
        raise ValueError("payload %d exceeds Ethernet MTU %d" % (n, MTU))
    if n < MIN_PAYLOAD:
        payload = bytes(payload) + b"\x00" * (MIN_PAYLOAD - n)
    dst = dst_mac if dst_mac.__class__ is bytes and len(dst_mac) == 6 \
        else mac_aton(dst_mac)
    src = src_mac if src_mac.__class__ is bytes and len(src_mac) == 6 \
        else mac_aton(src_mac)
    return dst + src + _TYPE_STRUCT.pack(ethertype) + bytes(payload)


def decapsulate(frame):
    """Split a frame into (header, payload)."""
    header = EthernetHeader.unpack(frame)
    return header, bytes(frame[HEADER_LEN:])
