"""The TCP connection machine.

:class:`TCPConnection` is a complete, sans-I/O TCP endpoint.  The hosting
environment supplies segments (:meth:`segment_arrives`), drives the two
BSD-style timers (:meth:`tick_slow` every 500 ms, :meth:`tick_fast` every
200 ms of simulated time), performs user operations, and drains the
outbox of segments the machine wants transmitted.

Session migration (the heart of the paper's architecture) is
:meth:`export_state` / :meth:`import_state`: the complete protocol state —
sequence variables, windows, both data queues, timers, and congestion
state — moves between the OS server's address space and the
application's.
"""

from itertools import count as _counter

from repro.net.tcp import input as tcp_input
from repro.net.tcp import output as tcp_output
from repro.net.tcp.congestion import CongestionControl
from repro.net.tcp.header import MSS_ETHERNET
from repro.net.tcp.reassembly import ReassemblyQueue
from repro.net.tcp.seq import seq_diff
from repro.net.tcp.state import SEND_OK, TCPState, legal_transition
from repro.net.tcp.tcb import (
    ConnectionTimedOut,
    NotConnected,
    ReceiveBuffer,
    SendBuffer,
    TCPError,
)
from repro.net.tcp.timers import (
    RTTEstimator,
    TCPT_2MSL,
    TCPT_KEEP,
    TCPT_PERSIST,
    TCPT_REXMT,
    TCPTV_KEEP_IDLE,
    TCPTV_MSL,
)

#: Deterministic initial-sequence-number source (BSD stepped a global).
_iss_source = _counter(1000)


def _next_iss():
    return (next(_iss_source) * 64009) % (1 << 32)


class TCPConfig:
    """Tunables for one connection.

    ``window_scale`` requests RFC 1323 window scaling with the given
    shift (0-14); None disables the option entirely.  Scaling only takes
    effect when both endpoints request it, per the RFC.
    """

    __slots__ = ("mss", "snd_buf", "rcv_buf", "nodelay", "delayed_ack",
                 "msl_ticks", "window_scale", "keepalive",
                 "keepalive_idle_ticks", "keepalive_interval_ticks",
                 "keepalive_probes")

    def __init__(self, mss=MSS_ETHERNET, snd_buf=24 * 1024, rcv_buf=24 * 1024,
                 nodelay=False, delayed_ack=True, msl_ticks=TCPTV_MSL,
                 window_scale=None, keepalive=False,
                 keepalive_idle_ticks=TCPTV_KEEP_IDLE,
                 keepalive_interval_ticks=150, keepalive_probes=8):
        if mss < 1:
            raise ValueError("mss must be positive")
        if window_scale is not None and not 0 <= window_scale <= 14:
            raise ValueError("window_scale must be in 0..14")
        self.mss = mss
        self.snd_buf = snd_buf
        self.rcv_buf = rcv_buf
        self.nodelay = nodelay
        self.delayed_ack = delayed_ack
        self.msl_ticks = msl_ticks
        self.window_scale = window_scale
        #: SO_KEEPALIVE: probe an idle peer, drop it if it stays silent.
        self.keepalive = keepalive
        self.keepalive_idle_ticks = keepalive_idle_ticks
        self.keepalive_interval_ticks = keepalive_interval_ticks
        self.keepalive_probes = keepalive_probes


class TCPStats:
    """Per-connection counters."""

    __slots__ = ("segs_sent", "segs_received", "bytes_sent", "bytes_received",
                 "retransmits", "acks_sent", "dup_acks_received",
                 "out_of_order", "bad_segments")

    def __init__(self):
        self.segs_sent = 0
        self.segs_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.retransmits = 0
        self.acks_sent = 0
        self.dup_acks_received = 0
        self.out_of_order = 0
        self.bad_segments = 0


class TCPConnection:
    """One TCP endpoint.  See the module docstring for the driving model."""

    def __init__(self, local, remote=None, config=None, name=""):
        self.config = config or TCPConfig()
        self.local = local  # (ip, port)
        self.remote = remote  # (ip, port) or None until connected
        self.name = name
        self.state = TCPState.CLOSED

        # Send sequence space (RFC 793 names).
        self.iss = 0
        self.snd_una = 0
        self.snd_nxt = 0
        self.snd_max = 0  # highest snd_nxt ever (for retransmit logic)
        self.snd_wnd = 0
        self.snd_wl1 = 0
        self.snd_wl2 = 0
        self.snd_up = 0

        # Receive sequence space.
        self.irs = 0
        self.rcv_nxt = 0
        self.rcv_adv = 0  # highest window edge advertised
        self.rcv_up = 0
        self.urgent_valid = False

        # RFC 1323 window scaling (0 shift unless negotiated on the SYNs).
        self.snd_scale = 0  # applied to windows the peer advertises
        self.rcv_scale = 0  # applied to windows we advertise

        # Data queues.
        self.snd_buffer = SendBuffer(self.config.snd_buf)
        self.rcv_buffer = ReceiveBuffer(self.config.rcv_buf)
        self.reass = ReassemblyQueue()

        # Shutdown bookkeeping.
        self.fin_queued = False  # user called close(); FIN follows the data
        self.fin_sent = False
        self.fin_received = False

        # Timers: tick counters, 0 == disarmed.
        self.timers = {TCPT_REXMT: 0, TCPT_PERSIST: 0, TCPT_2MSL: 0,
                       TCPT_KEEP: 0}
        self._keep_probes_sent = 0
        self.t_idle = 0
        self.t_rtt = 0  # active RTT measurement counter (0 = not timing)
        self.rtt_seq = 0  # sequence number being timed
        self.rtt = RTTEstimator()
        self.cc = CongestionControl(self.config.mss)

        # Output control flags.
        self.ack_now = False
        self.delack_pending = False

        self.peer_mss = MSS_ETHERNET
        #: Cached min(config.mss, peer_mss); maintained whenever
        #: peer_mss changes (handshake, migration) so per-segment code
        #: reads an attribute instead of calling effective_mss().
        self.eff_mss = (self.config.mss if self.config.mss < MSS_ETHERNET
                        else MSS_ETHERNET)
        self.error = None  # a TCPError subclass instance once dead
        self.stats = TCPStats()
        self._outbox = []
        #: Telemetry hook (a :class:`repro.metrics.TCPProbe` when the
        #: world's metrics registry is enabled, else None).  Not part of
        #: migrated state: the adopting stack attaches its own probe.
        self.probe = None

    # ------------------------------------------------------------------
    # State handling
    # ------------------------------------------------------------------

    def set_state(self, new_state):
        if not legal_transition(self.state, new_state):
            raise TCPError(
                "illegal transition %s -> %s" % (self.state.name, new_state.name)
            )
        self.state = new_state

    @property
    def is_closed(self):
        return self.state == TCPState.CLOSED

    @property
    def is_established(self):
        return self.state == TCPState.ESTABLISHED

    def flight_size(self):
        """Bytes currently in flight (snd_nxt - snd_una)."""
        return max(0, seq_diff(self.snd_nxt, self.snd_una))

    def effective_mss(self):
        return self.eff_mss

    def buffer_levels(self):
        """Socket-buffer occupancy for telemetry (read-only)."""
        return {
            "sndq": len(self.snd_buffer),
            "snd_space": self.snd_buffer.space(),
            "rcvq": len(self.rcv_buffer),
            "rcv_space": self.rcv_buffer.space(),
            "reass": len(self.reass),
        }

    # ------------------------------------------------------------------
    # User calls (OPEN / SEND / RECEIVE / CLOSE / ABORT)
    # ------------------------------------------------------------------

    def open_passive(self):
        if self.state != TCPState.CLOSED:
            raise TCPError("open on non-CLOSED connection")
        self.set_state(TCPState.LISTEN)

    def open_active(self, remote):
        if self.state != TCPState.CLOSED:
            raise TCPError("open on non-CLOSED connection")
        self.remote = remote
        self.iss = _next_iss()
        self.snd_una = self.iss
        self.snd_nxt = self.iss
        self.snd_max = self.iss
        self.snd_up = self.iss
        self.set_state(TCPState.SYN_SENT)
        tcp_output.tcp_output(self)

    def send(self, data):
        """Queue user data; returns bytes accepted (0 when buffer is full).

        The caller (socket layer) blocks and retries when 0 is returned
        and the user asked for blocking semantics.
        """
        self.raise_if_dead()
        if self.state not in SEND_OK:
            if self.state in (TCPState.SYN_SENT, TCPState.SYN_RECEIVED,
                              TCPState.LISTEN):
                raise NotConnected("send before connection established")
            raise TCPError("send after close")
        taken = self.snd_buffer.append(bytes(data))
        if taken:
            tcp_output.tcp_output(self)
        return taken

    def send_urgent(self, data):
        """Queue ``data`` with the last byte marked urgent (MSG_OOB).

        Follows BSD's SO_OOBINLINE semantics: the urgent data stays in
        the stream; the urgent pointer tells the receiver where it ends.
        The urgent pointer must be set *before* transmission so the URG
        flag rides the data segments.  Returns the bytes accepted.
        """
        from repro.net.tcp.seq import seq_add

        self.raise_if_dead()
        if self.state not in SEND_OK:
            raise NotConnected("urgent send on unconnected session")
        taken = self.snd_buffer.append(bytes(data))
        if taken:
            self.snd_up = seq_add(self.snd_una, len(self.snd_buffer))
            tcp_output.tcp_output(self, force=True)  # urgent data is pushed
        return taken

    def urgent_offset(self):
        """Bytes of normal data before the end of urgent data, or None.

        0 means the next unread byte is the last urgent byte's successor
        boundary; BSD's SIOCATMARK ioctl answers ``offset == 0``.
        """
        if not self.urgent_valid:
            return None
        from repro.net.tcp.seq import seq_add, seq_diff

        unread_start = seq_add(self.rcv_nxt, -len(self.rcv_buffer))
        offset = seq_diff(self.rcv_up, unread_start)
        if offset < 0:
            return None  # the mark was consumed
        return offset

    def receivable(self):
        """Bytes ready for the user right now."""
        return len(self.rcv_buffer)

    def at_eof(self):
        """True when the peer's FIN has been consumed (no more data ever)."""
        return self.fin_received and len(self.rcv_buffer) == 0

    def receive(self, max_bytes):
        """Take up to ``max_bytes`` of in-order data (may be empty)."""
        self.raise_if_dead()
        data = self.rcv_buffer.take(max_bytes)
        if data:
            tcp_output.window_update(self)
        return data

    def close(self):
        """User close: send FIN after queued data (half-close supported)."""
        self.raise_if_dead()
        if self.state == TCPState.CLOSED:
            return
        if self.state in (TCPState.LISTEN, TCPState.SYN_SENT):
            self._enter_closed(None)
            return
        if self.fin_queued:
            return  # close is idempotent
        self.fin_queued = True
        if self.state == TCPState.ESTABLISHED:
            self.set_state(TCPState.FIN_WAIT_1)
        elif self.state == TCPState.CLOSE_WAIT:
            self.set_state(TCPState.LAST_ACK)
        elif self.state == TCPState.SYN_RECEIVED:
            self.set_state(TCPState.FIN_WAIT_1)
        tcp_output.tcp_output(self)

    def abort(self):
        """User abort: RST the peer and drop everything."""
        if self.state in (TCPState.SYN_RECEIVED, TCPState.ESTABLISHED,
                          TCPState.FIN_WAIT_1, TCPState.FIN_WAIT_2,
                          TCPState.CLOSE_WAIT, TCPState.CLOSING,
                          TCPState.LAST_ACK):
            tcp_output.send_rst(self)
        self._enter_closed(None)

    def raise_if_dead(self):
        if self.error is not None:
            raise self.error

    def _enter_closed(self, error):
        self.state = TCPState.CLOSED  # terminal; always legal
        self.error = error
        for timer in self.timers:
            self.timers[timer] = 0

    # ------------------------------------------------------------------
    # Network input / output plumbing
    # ------------------------------------------------------------------

    def segment_arrives(self, segment, src_ip=None):
        """Process one arriving segment (already checksum-verified)."""
        self.stats.segs_received += 1
        # BSD zeroes t_idle on every arriving segment; without this, any
        # momentary fully-acked instant trips the idle-restart cwnd
        # collapse and bulk sends degrade to one segment per ACK.
        self.t_idle = 0
        tcp_input.segment_arrives(self, segment, src_ip)

    def take_output(self):
        """Drain segments the machine wants transmitted."""
        out, self._outbox = self._outbox, []
        return out

    def has_output(self):
        return bool(self._outbox)

    def emit(self, segment):
        """Queue a fully-formed segment for the environment to transmit."""
        self._outbox.append(segment)
        self.stats.segs_sent += 1
        self.stats.bytes_sent += len(segment.payload)

    def output(self, force=False):
        """Ask the send side to transmit whatever it legally can."""
        tcp_output.tcp_output(self, force=force)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    def tick_fast(self):
        """200 ms tick: flush delayed ACKs."""
        if self.delack_pending:
            self.delack_pending = False
            self.ack_now = True
            tcp_output.tcp_output(self)

    def tick_slow(self):
        """500 ms tick: countdown timers, idle time, RTT measurement."""
        if self.state == TCPState.CLOSED:
            return
        self.t_idle += 1
        if self.t_rtt:
            self.t_rtt += 1
        if (
            self.config.keepalive
            and self.state == TCPState.ESTABLISHED
            and not self.timer_armed(TCPT_KEEP)
            and self.t_idle >= self.config.keepalive_idle_ticks
        ):
            self._timer_fired(TCPT_KEEP)
        for name in (TCPT_REXMT, TCPT_PERSIST, TCPT_2MSL, TCPT_KEEP):
            if self.timers[name] > 0:
                self.timers[name] -= 1
                if self.timers[name] == 0:
                    self._timer_fired(name)
                    if self.state == TCPState.CLOSED:
                        return

    def _timer_fired(self, name):
        if name == TCPT_REXMT:
            tcp_output.retransmit_timeout(self)
        elif name == TCPT_PERSIST:
            tcp_output.persist_timeout(self)
        elif name == TCPT_2MSL:
            self._enter_closed(None)
        elif name == TCPT_KEEP:
            self._keepalive_fired()

    def _keepalive_fired(self):
        """Send a keepalive probe, or give up on a silent peer.

        Any arriving segment zeroes ``t_idle``; a peer that answers the
        probe therefore also resets the probe counter below.
        """
        if self.t_idle < self.config.keepalive_idle_ticks:
            self._keep_probes_sent = 0
            return  # traffic resumed; re-arm from the idle check
        if self._keep_probes_sent >= self.config.keepalive_probes:
            self._enter_closed(ConnectionTimedOut("keepalive: peer silent"))
            return
        self._keep_probes_sent += 1
        tcp_output.send_keepalive_probe(self)
        self.start_timer(TCPT_KEEP, self.config.keepalive_interval_ticks)

    def start_timer(self, name, ticks):
        self.timers[name] = max(1, int(ticks))

    def stop_timer(self, name):
        self.timers[name] = 0

    def timer_armed(self, name):
        return self.timers[name] > 0

    # ------------------------------------------------------------------
    # Session migration (Section 3.2 of the paper)
    # ------------------------------------------------------------------

    #: Scalar TCB fields that migrate verbatim.
    _MIGRATED_FIELDS = (
        "iss", "snd_una", "snd_nxt", "snd_max", "snd_wnd", "snd_wl1",
        "snd_wl2", "snd_up", "irs", "rcv_nxt", "rcv_adv", "rcv_up",
        "urgent_valid", "fin_queued", "fin_sent", "fin_received",
        "t_idle", "t_rtt", "rtt_seq", "ack_now", "delack_pending",
        "peer_mss", "snd_scale", "rcv_scale",
    )

    def export_state(self):
        """Serialize the complete protocol state for migration.

        The paper migrates "a local endpoint, a remote endpoint, the
        connection state variables, and a packet filter port"; this is the
        connection-state-variables part, including any unacknowledged or
        undelivered data on the send and receive queues.
        """
        if self._outbox:
            raise TCPError("cannot migrate with undrained output")
        state = {name: getattr(self, name) for name in self._MIGRATED_FIELDS}
        state["state"] = self.state.value
        state["local"] = self.local
        state["remote"] = self.remote
        state["snd_buffer"] = self.snd_buffer.snapshot()
        state["rcv_buffer"] = self.rcv_buffer.snapshot()
        state["timers"] = dict(self.timers)
        state["rtt"] = (self.rtt.srtt, self.rtt.rttvar, self.rtt.rxtshift,
                        self.rtt.samples)
        state["cc"] = (self.cc.cwnd, self.cc.ssthresh)
        state["reass"] = [(seq, bytes(data)) for seq, data in self.reass._segments]
        return state

    def import_state(self, state):
        """Adopt a migrated session's state (the receiving side)."""
        if self.state != TCPState.CLOSED:
            raise TCPError("import into non-CLOSED connection")
        for name in self._MIGRATED_FIELDS:
            setattr(self, name, state[name])
        mss = self.config.mss
        self.eff_mss = mss if mss < self.peer_mss else self.peer_mss
        self.state = TCPState(state["state"])
        self.local = state["local"]
        self.remote = state["remote"]
        self.snd_buffer.restore(state["snd_buffer"])
        self.rcv_buffer.restore(state["rcv_buffer"])
        self.timers = dict(state["timers"])
        self.rtt.srtt, self.rtt.rttvar, self.rtt.rxtshift, self.rtt.samples = (
            state["rtt"]
        )
        self.cc.cwnd, self.cc.ssthresh = state["cc"]
        self.cc.max_window = 0xFFFF << self.snd_scale
        self.reass._segments = [
            [seq, bytearray(data)] for seq, data in state["reass"]
        ]
        self.reass.used = sum(len(data) for _seq, data in state["reass"])

    def __repr__(self):
        return "<TCPConnection %s %s:%d %s>" % (
            self.name or "",
            *self.local,
            self.state.name,
        )
