"""TCP segment encoding and decoding (RFC 793), with the MSS option."""

import struct

from repro.net.checksum import internet_checksum
from repro.net.ip import PROTO_TCP

HEADER_LEN = 20

FIN = 0x01
SYN = 0x02
RST = 0x04
PSH = 0x08
ACK = 0x10
URG = 0x20

OPT_END = 0
OPT_NOP = 1
OPT_MSS = 2
OPT_WSCALE = 3  # RFC 1323 window scaling (the 1992 "high-performance" ext.)

#: MSS on Ethernet: 1500 - 20 (IP) - 20 (TCP).
MSS_ETHERNET = 1460

_FLAG_NAMES = [(FIN, "FIN"), (SYN, "SYN"), (RST, "RST"), (PSH, "PSH"),
               (ACK, "ACK"), (URG, "URG")]

_TCP_STRUCT = struct.Struct("!HHIIBBHHH")
_OPT_MSS_STRUCT = struct.Struct("!BBH")
_OPT_WSCALE_STRUCT = struct.Struct("!BBB")


def flags_str(flags):
    names = [name for bit, name in _FLAG_NAMES if flags & bit]
    return "|".join(names) if names else "-"


class TCPSegment:
    """A parsed (or to-be-packed) TCP segment."""

    __slots__ = ("src_port", "dst_port", "seq", "ack", "flags", "window",
                 "urgent", "mss_option", "wscale_option", "payload")

    def __init__(self, src_port, dst_port, seq=0, ack=0, flags=0, window=0,
                 urgent=0, mss_option=None, wscale_option=None, payload=b""):
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.window = window
        self.urgent = urgent
        self.mss_option = mss_option
        self.wscale_option = wscale_option
        self.payload = bytes(payload)

    # ------------------------------------------------------------------

    def _options(self):
        options = b""
        if self.mss_option is not None:
            options += _OPT_MSS_STRUCT.pack(OPT_MSS, 4, self.mss_option)
        if self.wscale_option is not None:
            options += _OPT_WSCALE_STRUCT.pack(OPT_WSCALE, 3, self.wscale_option)
        return options

    def pack(self, src_ip, dst_ip):
        """Serialize with a valid pseudo-header checksum.

        The option-free shape (every data segment) takes a fast path,
        and the pseudo-header sum is computed inline — this runs once
        per transmitted segment.
        """
        payload = self.payload
        if self.mss_option is None and self.wscale_option is None:
            options = b""
            opt_len = 0
            length = HEADER_LEN + len(payload)
        else:
            options = self._options()
            opt_len = len(options)
            if opt_len % 4:
                options += bytes(4 - opt_len % 4)
                opt_len = len(options)
            length = HEADER_LEN + opt_len + len(payload)
        segment = bytearray(length)
        _TCP_STRUCT.pack_into(
            segment,
            0,
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            ((HEADER_LEN + opt_len) // 4) << 4,
            self.flags,
            self.window,
            0,
            self.urgent,
        )
        if opt_len:
            segment[HEADER_LEN : HEADER_LEN + opt_len] = options
        segment[HEADER_LEN + opt_len :] = payload
        pseudo = (
            (src_ip >> 16) + (src_ip & 0xFFFF)
            + (dst_ip >> 16) + (dst_ip & 0xFFFF)
            + PROTO_TCP + length
        )
        while pseudo >> 16:
            pseudo = (pseudo & 0xFFFF) + (pseudo >> 16)
        checksum = internet_checksum(segment, initial=pseudo)
        segment[16] = checksum >> 8
        segment[17] = checksum & 0xFF
        return bytes(segment)

    @classmethod
    def unpack(cls, src_ip, dst_ip, data, verify=True):
        """Parse and (optionally) checksum-verify a segment.

        Runs once per received segment: the pseudo-header sum and the
        checksum fold are computed inline, option parsing is skipped
        for the 20-byte option-free header, and the segment is built
        with ``__new__`` + direct slot stores.
        """
        size = len(data)
        if size < HEADER_LEN:
            raise ValueError("TCP segment too short: %d" % size)
        (src_port, dst_port, seq, ack, off_byte, flags, window, _cksum,
         urgent) = _TCP_STRUCT.unpack_from(data, 0)
        header_len = (off_byte >> 4) * 4
        if header_len < HEADER_LEN or header_len > size:
            raise ValueError("bad TCP data offset: %d" % header_len)
        if verify:
            total = int.from_bytes(data, "big")
            if size & 1:
                total <<= 8
            if total:
                total %= 0xFFFF
                if not total:
                    total = 0xFFFF
            total += (
                (src_ip >> 16) + (src_ip & 0xFFFF)
                + (dst_ip >> 16) + (dst_ip & 0xFFFF)
                + PROTO_TCP + size
            )
            while total >> 16:
                total = (total & 0xFFFF) + (total >> 16)
            if total != 0xFFFF:
                raise ValueError("bad TCP checksum")
        if header_len > HEADER_LEN:
            mss, wscale = cls._parse_options(data[HEADER_LEN:header_len])
        else:
            mss = wscale = None
        seg = cls.__new__(cls)
        seg.src_port = src_port
        seg.dst_port = dst_port
        seg.seq = seq
        seg.ack = ack
        seg.flags = flags
        seg.window = window
        seg.urgent = urgent
        seg.mss_option = mss
        seg.wscale_option = wscale
        seg.payload = bytes(data[header_len:])
        return seg

    @staticmethod
    def _parse_options(options):
        mss = None
        wscale = None
        i = 0
        while i < len(options):
            kind = options[i]
            if kind == OPT_END:
                break
            if kind == OPT_NOP:
                i += 1
                continue
            if i + 1 >= len(options):
                break  # truncated option
            length = options[i + 1]
            if length < 2 or i + length > len(options):
                break  # malformed
            if kind == OPT_MSS and length == 4:
                mss = struct.unpack_from("!H", options, i + 2)[0]
            elif kind == OPT_WSCALE and length == 3:
                wscale = min(options[i + 2], 14)  # RFC 1323 cap
            i += length
        return mss, wscale

    # ------------------------------------------------------------------

    @property
    def wire_len(self):
        """Sequence space consumed: payload plus SYN/FIN."""
        length = len(self.payload)
        if self.flags & SYN:
            length += 1
        if self.flags & FIN:
            length += 1
        return length

    def __repr__(self):
        return "<TCP %d->%d %s seq=%d ack=%d win=%d len=%d>" % (
            self.src_port,
            self.dst_port,
            flags_str(self.flags),
            self.seq,
            self.ack,
            self.window,
            len(self.payload),
        )
