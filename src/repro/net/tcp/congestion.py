"""Jacobson congestion control (SIGCOMM '88), 4.3BSD-Tahoe style.

Slow start, congestion avoidance, and fast retransmit on three duplicate
ACKs.  Tahoe (not Reno) is what the BNR2/4.3BSD code the paper used
shipped with, so a timeout and a fast retransmit both collapse cwnd back
to one segment.
"""

#: Duplicate-ACK threshold for fast retransmit (BSD tcprexmtthresh).
REXMT_THRESH = 3

#: Maximum window (BSD TCP_MAXWIN).
MAXWIN = 65535


class CongestionControl:
    """Per-connection congestion state."""

    def __init__(self, mss, max_window=MAXWIN):
        self.mss = mss
        self.max_window = max_window  # raised when RFC 1323 scaling is on
        self.cwnd = mss  # start with one segment
        self.ssthresh = max_window
        self.dupacks = 0
        self.fast_retransmits = 0
        self.timeouts = 0

    def window(self, snd_wnd):
        """The usable send window: min(peer window, cwnd)."""
        cwnd = self.cwnd
        return snd_wnd if snd_wnd < cwnd else cwnd

    def in_slow_start(self):
        return self.cwnd < self.ssthresh

    def on_ack(self, acked_new_data):
        """Open the window on an ACK that advances snd_una."""
        self.dupacks = 0
        if not acked_new_data:
            return
        if self.in_slow_start():
            self.cwnd = min(self.cwnd + self.mss, self.max_window)
        else:
            # Congestion avoidance: roughly one MSS per RTT.
            increment = max(1, (self.mss * self.mss) // self.cwnd)
            self.cwnd = min(self.cwnd + increment, self.max_window)

    def on_duplicate_ack(self, flight_size):
        """Count a duplicate ACK; returns True when fast retransmit fires."""
        self.dupacks += 1
        if self.dupacks == REXMT_THRESH:
            self._collapse(flight_size)
            self.fast_retransmits += 1
            return True
        return False

    def on_timeout(self, flight_size):
        """A retransmission timeout: multiplicative decrease + slow start."""
        self._collapse(flight_size)
        self.timeouts += 1

    def _collapse(self, flight_size):
        half_flight = max(2 * self.mss, (flight_size // 2 // self.mss) * self.mss)
        self.ssthresh = half_flight
        self.cwnd = self.mss
        self.dupacks = 0

    def snapshot(self):
        """Current congestion state for telemetry (read-only)."""
        return {
            "cwnd": self.cwnd,
            "ssthresh": self.ssthresh,
            "dupacks": self.dupacks,
            "fast_retransmits": self.fast_retransmits,
            "timeouts": self.timeouts,
            "slow_start": self.in_slow_start(),
        }
