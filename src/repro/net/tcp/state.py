"""The RFC 793 connection state machine: states and legal transitions."""

from enum import Enum


class TCPState(Enum):
    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RECEIVED = "SYN_RECEIVED"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    CLOSING = "CLOSING"
    LAST_ACK = "LAST_ACK"
    TIME_WAIT = "TIME_WAIT"

    # Members are singletons, so identity hashing is equivalent to
    # Enum's Python-level __hash__ — and set-membership tests on states
    # sit on the per-segment fast path.
    __hash__ = object.__hash__


#: States from which user data may be sent.
SEND_OK = frozenset({TCPState.ESTABLISHED, TCPState.CLOSE_WAIT})

#: States in which received data is accepted into the receive queue.
RECEIVE_OK = frozenset(
    {TCPState.ESTABLISHED, TCPState.FIN_WAIT_1, TCPState.FIN_WAIT_2}
)

#: States where the connection is at least half-open.
SYNCHRONIZED = frozenset(
    {
        TCPState.ESTABLISHED,
        TCPState.FIN_WAIT_1,
        TCPState.FIN_WAIT_2,
        TCPState.CLOSE_WAIT,
        TCPState.CLOSING,
        TCPState.LAST_ACK,
        TCPState.TIME_WAIT,
    }
)

#: The legal transition relation, used by tests and a debug assertion.
TRANSITIONS = {
    TCPState.CLOSED: {TCPState.LISTEN, TCPState.SYN_SENT},
    TCPState.LISTEN: {TCPState.SYN_RECEIVED, TCPState.SYN_SENT, TCPState.CLOSED},
    TCPState.SYN_SENT: {
        TCPState.ESTABLISHED,
        TCPState.SYN_RECEIVED,
        TCPState.CLOSED,
    },
    TCPState.SYN_RECEIVED: {
        TCPState.ESTABLISHED,
        TCPState.FIN_WAIT_1,
        TCPState.CLOSED,
        TCPState.LISTEN,
    },
    TCPState.ESTABLISHED: {
        TCPState.FIN_WAIT_1,
        TCPState.CLOSE_WAIT,
        TCPState.CLOSED,
    },
    TCPState.FIN_WAIT_1: {
        TCPState.FIN_WAIT_2,
        TCPState.CLOSING,
        TCPState.TIME_WAIT,
        TCPState.CLOSED,
    },
    TCPState.FIN_WAIT_2: {TCPState.TIME_WAIT, TCPState.CLOSED},
    TCPState.CLOSE_WAIT: {TCPState.LAST_ACK, TCPState.CLOSED},
    TCPState.CLOSING: {TCPState.TIME_WAIT, TCPState.CLOSED},
    TCPState.LAST_ACK: {TCPState.CLOSED},
    TCPState.TIME_WAIT: {TCPState.CLOSED},
}


def legal_transition(old, new):
    """True iff ``old -> new`` is a legal RFC 793 transition."""
    return new in TRANSITIONS.get(old, frozenset())
