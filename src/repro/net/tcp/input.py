"""TCP receive-side processing (the BSD ``tcp_input``).

Implements RFC 793 segment-arrival processing: acceptability checks,
trimming to the window, RST/SYN/ACK/URG handling, in-order and
out-of-order data delivery, FIN processing, and the associated state
transitions.  Called via :meth:`TCPConnection.segment_arrives`.
"""

from repro.net.tcp import output as tcp_output
from repro.net.tcp.header import ACK, FIN, RST, SYN, URG
from repro.net.tcp.seq import (
    MOD,
    _HALF,
    seq_add,
    seq_gt,
    seq_le,
    seq_lt,
)
from repro.net.tcp.state import RECEIVE_OK, TCPState
from repro.net.tcp.tcb import ConnectionRefused, ConnectionReset
from repro.net.tcp.timers import TCPT_2MSL, TCPT_REXMT


def segment_arrives(conn, seg, src_ip=None):
    if conn.state == TCPState.CLOSED:
        rst = tcp_output.rst_for(seg)
        if rst is not None:
            conn.emit(rst)
        return

    if conn.state == TCPState.LISTEN:
        _listen_input(conn, seg, src_ip)
        return

    if conn.state == TCPState.SYN_SENT:
        _syn_sent_input(conn, seg)
        return

    _synchronized_input(conn, seg)


# ----------------------------------------------------------------------
# LISTEN
# ----------------------------------------------------------------------

def _listen_input(conn, seg, src_ip):
    if seg.flags & RST:
        return  # ignore
    if seg.flags & ACK:
        rst = tcp_output.rst_for(seg)
        if rst is not None:
            conn.emit(rst)
        return
    if not seg.flags & SYN:
        return
    # A connection request.  The socket layer is responsible for having
    # cloned a fresh connection per pending SYN; here we become its server
    # half.
    from repro.net.tcp.conn import _next_iss

    conn.remote = (src_ip, seg.src_port)
    conn.irs = seg.seq
    conn.rcv_nxt = seq_add(seg.seq, 1)
    conn.rcv_adv = conn.rcv_nxt
    if seg.mss_option:
        conn.peer_mss = seg.mss_option
        mss = conn.config.mss
        conn.eff_mss = mss if mss < seg.mss_option else seg.mss_option
    _negotiate_wscale(conn, seg)
    conn.iss = _next_iss()
    conn.snd_una = conn.iss
    conn.snd_nxt = conn.iss
    conn.snd_max = conn.iss
    conn.snd_up = conn.iss
    conn.snd_wnd = seg.window
    conn.snd_wl1 = seg.seq
    conn.snd_wl2 = seg.ack
    conn.set_state(TCPState.SYN_RECEIVED)
    tcp_output.tcp_output(conn)


# ----------------------------------------------------------------------
# SYN_SENT
# ----------------------------------------------------------------------

def _syn_sent_input(conn, seg):
    ack_acceptable = False
    if seg.flags & ACK:
        if seq_le(seg.ack, conn.iss) or seq_gt(seg.ack, conn.snd_max):
            if not seg.flags & RST:
                rst = tcp_output.rst_for(seg)
                if rst is not None:
                    conn.emit(rst)
            return
        ack_acceptable = True

    if seg.flags & RST:
        if ack_acceptable:
            conn._enter_closed(ConnectionRefused("connection refused"))
        return

    if not seg.flags & SYN:
        return

    conn.irs = seg.seq
    conn.rcv_nxt = seq_add(seg.seq, 1)
    conn.rcv_adv = conn.rcv_nxt
    if seg.mss_option:
        conn.peer_mss = seg.mss_option
        mss = conn.config.mss
        conn.eff_mss = mss if mss < seg.mss_option else seg.mss_option
    _negotiate_wscale(conn, seg)
    conn.snd_wnd = seg.window  # SYN windows are never scaled (RFC 1323)
    conn.snd_wl1 = seg.seq
    conn.snd_wl2 = seg.ack

    if ack_acceptable:
        conn.snd_una = seg.ack
        if conn.t_rtt and seq_gt(seg.ack, conn.rtt_seq):
            conn.rtt.update(conn.t_rtt)
            conn.t_rtt = 0
        conn.stop_timer(TCPT_REXMT)
        conn.set_state(TCPState.ESTABLISHED)
        conn.ack_now = True
        tcp_output.tcp_output(conn)
        probe = conn.probe
        if probe is not None:
            probe("established")
    else:
        # Simultaneous open.
        conn.set_state(TCPState.SYN_RECEIVED)
        conn.snd_nxt = conn.iss  # re-send our SYN, now with an ACK
        tcp_output.tcp_output(conn)


# ----------------------------------------------------------------------
# Synchronized states
# ----------------------------------------------------------------------

def _negotiate_wscale(conn, seg):
    """RFC 1323: scaling applies only when both SYNs carried the option."""
    if seg.wscale_option is not None and conn.config.window_scale is not None:
        conn.snd_scale = seg.wscale_option
        conn.rcv_scale = conn.config.window_scale
        conn.cc.max_window = 0xFFFF << conn.snd_scale


def _synchronized_input(conn, seg):
    rcv_wnd = tcp_output.receiver_window(conn)

    if not _acceptable(conn, seg, rcv_wnd):
        if not seg.flags & RST:
            conn.ack_now = True
            tcp_output.tcp_output(conn)
        conn.stats.bad_segments += 1
        return

    seg = _trim_to_window(conn, seg, rcv_wnd)

    if seg.flags & RST:
        _rst_input(conn)
        return

    if seg.flags & SYN:
        # A SYN inside the window is fatal (RFC 793 p.71).
        tcp_output.send_rst(conn)
        conn._enter_closed(ConnectionReset("SYN inside window"))
        return

    if not seg.flags & ACK:
        return  # every synchronized-state segment must carry an ACK

    if not _ack_input(conn, seg):
        return  # the ACK killed the connection or was futile

    if seg.flags & URG:
        _urg_input(conn, seg)

    _data_input(conn, seg)

    if conn.state != TCPState.CLOSED:
        tcp_output.tcp_output(conn)

    # Telemetry: sample after the update AND any output it triggered, so
    # the series' last sample equals the connection's final state.
    probe = conn.probe
    if probe is not None:
        probe("ack")


def _acceptable(conn, seg, rcv_wnd):
    """RFC 793 acceptability test (four cases).

    The seq_le/seq_lt/seq_add helpers are written out inline (see
    :mod:`repro.net.tcp.seq`) — this runs once per received segment.
    """
    seg_len = seg.wire_len
    rcv_nxt = conn.rcv_nxt
    seq = seg.seq
    if seg_len == 0 and rcv_wnd == 0:
        return seq == rcv_nxt
    if seg_len == 0:
        d = (rcv_nxt - seq) % MOD
        return ((d == 0 or d >= _HALF)
                and (seq - (rcv_nxt + rcv_wnd)) % MOD >= _HALF)
    if rcv_wnd == 0:
        # Still accept pure ACK information carried with data we must drop.
        return seq == rcv_nxt and not seg.payload
    edge = rcv_nxt + rcv_wnd
    d = (rcv_nxt - seq) % MOD
    if (d == 0 or d >= _HALF) and (seq - edge) % MOD >= _HALF:
        return True
    last = (seq + seg_len - 1) % MOD
    d = (rcv_nxt - last) % MOD
    return (d == 0 or d >= _HALF) and (last - edge) % MOD >= _HALF


def _trim_to_window(conn, seg, rcv_wnd):
    """Drop payload bytes outside [rcv_nxt, rcv_nxt + rcv_wnd)."""
    payload = seg.payload
    seq = seg.seq
    # Front trim (old data; also swallows a retransmitted FIN's SYN bit).
    # seq_diff/seq_add written out inline: once per received segment.
    behind = (conn.rcv_nxt - seq) % MOD
    if behind >= _HALF:
        behind -= MOD
    if behind > 0:
        if seg.flags & SYN:
            seg.flags &= ~SYN
            seq = (seq + 1) % MOD
            behind -= 1
        n = len(payload)
        drop = behind if behind < n else n
        payload = payload[drop:]
        seq = (seq + drop) % MOD
        if behind > drop:
            # The FIN (if any) is also old news.
            seg.flags &= ~FIN
    # Back trim (beyond the window).
    n = len(payload)
    overflow = (seq + n - conn.rcv_nxt - rcv_wnd) % MOD
    if overflow >= _HALF:
        overflow -= MOD
    if overflow > 0:
        keep = n - overflow
        payload = payload[: keep if keep > 0 else 0]
        seg.flags &= ~FIN
    seg.seq = seq
    seg.payload = payload
    return seg


def _rst_input(conn):
    if conn.state == TCPState.SYN_RECEIVED:
        conn._enter_closed(ConnectionRefused("connection refused"))
    elif conn.state in (TCPState.CLOSING, TCPState.LAST_ACK, TCPState.TIME_WAIT):
        conn._enter_closed(None)
    else:
        conn._enter_closed(ConnectionReset("connection reset by peer"))


def _ack_input(conn, seg):
    """Process the ACK field; returns False if processing must stop."""
    if conn.state == TCPState.SYN_RECEIVED:
        if seq_lt(conn.snd_una, seg.ack) or seg.ack == conn.snd_una:
            pass
        if seq_lt(seg.ack, conn.snd_una) or seq_gt(seg.ack, conn.snd_max):
            rst = tcp_output.rst_for(seg)
            if rst is not None:
                conn.emit(rst)
            return False
        conn.set_state(TCPState.ESTABLISHED)
        conn.snd_wnd = seg.window << conn.snd_scale
        conn.snd_wl1 = seg.seq
        conn.snd_wl2 = seg.ack

    # seq_gt/seq_diff/seq_ge/seq_lt written out inline from here down:
    # the ACK field is processed once per received segment.
    if 0 < (seg.ack - conn.snd_max) % MOD < _HALF:
        # ACK for data never sent: ack back and drop.
        conn.ack_now = True
        tcp_output.tcp_output(conn)
        return False

    acked = (seg.ack - conn.snd_una) % MOD
    if acked >= _HALF:
        acked -= MOD

    if acked <= 0:
        # Possible duplicate ACK (Jacobson fast retransmit).
        if (
            acked == 0
            and not seg.payload
            and (seg.window << conn.snd_scale) == conn.snd_wnd
            and conn.snd_una != conn.snd_max
        ):
            conn.stats.dup_acks_received += 1
            if conn.cc.on_duplicate_ack(conn.flight_size()):
                # Tahoe fast retransmit: back to snd_una in slow start.
                conn.snd_nxt = conn.snd_una
                conn.t_rtt = 0
                tcp_output.tcp_output(conn, force=True)
                probe = conn.probe
                if probe is not None:
                    probe("fast_retransmit")
    else:
        # The ACK advances: retire data (and SYN/FIN octets) it covers.
        syn_octet = 1 if conn.snd_una == conn.iss else 0
        data_acked = acked - syn_octet
        fin_octet = 0
        buffered = conn.snd_buffer.used
        if (conn.fin_sent and (seg.ack - conn.snd_max) % MOD < _HALF
                and data_acked > buffered):
            fin_octet = 1
            data_acked -= 1
        conn.snd_buffer.drop(data_acked if data_acked < buffered else buffered)
        if conn.t_rtt and 0 < (seg.ack - conn.rtt_seq) % MOD < _HALF:
            conn.rtt.update(conn.t_rtt)
            conn.t_rtt = 0
        conn.rtt.rxtshift = 0
        conn.cc.on_ack(True)
        conn.snd_una = seg.ack
        if (conn.snd_nxt - conn.snd_una) % MOD >= _HALF:
            conn.snd_nxt = conn.snd_una
        if conn.snd_una == conn.snd_max:
            conn.stop_timer(TCPT_REXMT)
        else:
            conn.start_timer(TCPT_REXMT, conn.rtt.rto_ticks())

        fin_acked = conn.fin_sent and conn.snd_una == conn.snd_max and fin_octet
        _ack_state_transitions(conn, fin_acked or (
            conn.fin_sent and conn.snd_una == conn.snd_max
        ))
        if conn.state == TCPState.CLOSED:
            return False

    _update_send_window(conn, seg)
    return True


def _ack_state_transitions(conn, fin_acked):
    if not fin_acked:
        return
    if conn.state == TCPState.FIN_WAIT_1:
        conn.set_state(TCPState.FIN_WAIT_2)
    elif conn.state == TCPState.CLOSING:
        conn.set_state(TCPState.TIME_WAIT)
        conn.start_timer(TCPT_2MSL, 2 * conn.config.msl_ticks)
    elif conn.state == TCPState.LAST_ACK:
        conn._enter_closed(None)


def _update_send_window(conn, seg):
    # seq_lt/seq_le written out inline: once per received segment.
    d = (conn.snd_wl2 - seg.ack) % MOD
    if (
        (conn.snd_wl1 - seg.seq) % MOD >= _HALF
        or (conn.snd_wl1 == seg.seq and (d == 0 or d >= _HALF))
    ):
        conn.snd_wnd = seg.window << conn.snd_scale
        conn.snd_wl1 = seg.seq
        conn.snd_wl2 = seg.ack


def _urg_input(conn, seg):
    urgent = seq_add(seg.seq, seg.urgent)
    if not conn.urgent_valid or seq_gt(urgent, conn.rcv_up):
        conn.rcv_up = urgent
        conn.urgent_valid = True


def _data_input(conn, seg):
    payload = seg.payload
    fin = bool(seg.flags & FIN)
    if not payload and not fin:
        return
    if payload and conn.state not in RECEIVE_OK:
        return  # data after our FIN exchange completed: ignore

    if payload:
        if seg.seq == conn.rcv_nxt and not conn.reass._segments:
            # Fast path: exactly the next data, nothing queued.
            conn.rcv_buffer.append(payload)
            conn.rcv_nxt = (conn.rcv_nxt + len(payload)) % MOD
            conn.stats.bytes_received += len(payload)
            if conn.config.delayed_ack and not conn.ack_now:
                if conn.delack_pending:
                    conn.ack_now = True  # every second segment acks at once
                else:
                    conn.delack_pending = True
            else:
                conn.ack_now = True
        else:
            conn.stats.out_of_order += 1
            conn.reass.insert(seg.seq, payload)
            data, new_nxt = conn.reass.extract(conn.rcv_nxt)
            if data:
                conn.rcv_buffer.append(data)
                conn.stats.bytes_received += len(data)
                conn.rcv_nxt = new_nxt
            conn.ack_now = True  # out-of-order: duplicate ACK immediately

    if fin:
        fin_seq = (seg.seq + len(payload)) % MOD
        if fin_seq != conn.rcv_nxt:
            return  # FIN beyond a hole: wait for the hole to fill
        if not conn.fin_received:
            conn.fin_received = True
            conn.rcv_nxt = (conn.rcv_nxt + 1) % MOD
        conn.ack_now = True
        if conn.state == TCPState.ESTABLISHED:
            conn.set_state(TCPState.CLOSE_WAIT)
        elif conn.state == TCPState.FIN_WAIT_1:
            # Our FIN is not yet acked (else we'd be in FIN_WAIT_2).
            conn.set_state(TCPState.CLOSING)
        elif conn.state == TCPState.FIN_WAIT_2:
            conn.set_state(TCPState.TIME_WAIT)
            conn.start_timer(TCPT_2MSL, 2 * conn.config.msl_ticks)
        elif conn.state == TCPState.TIME_WAIT:
            conn.start_timer(TCPT_2MSL, 2 * conn.config.msl_ticks)
