"""TCP send-side processing (the BSD ``tcp_output`` and timer actions).

All functions operate on a :class:`~repro.net.tcp.conn.TCPConnection`
(imported lazily by that module to avoid a cycle) and queue outgoing
segments on its outbox.
"""

from repro.net.tcp.header import ACK, FIN, PSH, RST, SYN, URG, TCPSegment
from repro.net.tcp.seq import (
    MOD,
    _HALF,
    seq_add,
    seq_diff,
    seq_gt,
    seq_lt,
    seq_max,
)
from repro.net.tcp.state import SYNCHRONIZED, TCPState
from repro.net.tcp.tcb import ConnectionTimedOut
from repro.net.tcp.timers import TCPT_PERSIST, TCPT_REXMT

#: Cap every advertised window at the 16-bit field.
MAX_WINDOW = 65535

#: Persist-probe backoff bounds, in slow ticks (BSD TCPTV_PERSMIN/MAX).
PERSIST_MIN = 10
PERSIST_MAX = 120


def receiver_window(conn):
    """The window to advertise: receive-buffer space with receiver-side
    silly-window avoidance, never reneging on what was already offered.

    Returns the *actual* window in bytes; with RFC 1323 scaling in effect
    it is rounded down to the scale granularity and capped at the scaled
    16-bit maximum."""
    # Inline of rcv_buffer.space() - len(reass) and the seq_diff/min/max
    # cascade — this runs for every segment built.
    buf = conn.rcv_buffer
    free = buf.hiwat - buf.used
    space = (free if free > 0 else 0) - conn.reass.used
    if space < buf.hiwat // 4 and space < conn.eff_mss:
        space = 0  # silly window avoidance (receiver side)
    cap = MAX_WINDOW << conn.rcv_scale
    if space > cap:
        space = cap
    elif space < 0:
        space = 0
    space = (space >> conn.rcv_scale) << conn.rcv_scale
    already_offered = (conn.rcv_adv - conn.rcv_nxt) % MOD
    if already_offered >= _HALF:  # rcv_adv behind rcv_nxt: nothing extra
        return space
    return space if space >= already_offered else already_offered


def _make_segment(conn, seq, flags, payload=b"", mss_option=None,
                  wscale_option=None):
    window = receiver_window(conn)
    # RFC 1323: the window field of a SYN is never scaled.
    field = window if flags & SYN else window >> conn.rcv_scale
    if field > MAX_WINDOW:
        field = MAX_WINDOW
    segment = TCPSegment(
        src_port=conn.local[1],
        dst_port=conn.remote[1],
        seq=seq,
        ack=conn.rcv_nxt if flags & ACK else 0,
        flags=flags,
        window=field,
        payload=payload,
        mss_option=mss_option,
        wscale_option=wscale_option,
    )
    # rcv_adv = seq_max(rcv_adv, rcv_nxt + window), inlined.
    offered = (conn.rcv_nxt + window) % MOD
    if (conn.rcv_adv - offered) % MOD >= _HALF:
        conn.rcv_adv = offered
    conn.ack_now = False
    conn.delack_pending = False
    if flags & ACK:
        conn.stats.acks_sent += 1
    conn.emit(segment)
    return segment


def tcp_output(conn, force=False):
    """Send whatever the connection legally can right now.

    Mirrors the decision structure of BSD's tcp_output: data-bearing
    segments governed by the send window, congestion window, and Nagle;
    then window updates; then bare ACKs; looping while a full-size segment
    went out ("sendalot").
    """
    if conn.state in (TCPState.CLOSED, TCPState.LISTEN):
        return

    # Connection-establishment segments.
    if conn.state == TCPState.SYN_SENT:
        if conn.snd_nxt == conn.iss:
            _send_syn(conn, ACK if conn.irs else 0)
        return
    if conn.state == TCPState.SYN_RECEIVED:
        if conn.snd_nxt == conn.iss:
            _send_syn(conn, ACK)
        elif conn.ack_now:
            # E.g. answering the peer's SYN|ACK in a simultaneous open.
            _make_segment(conn, conn.snd_nxt, ACK)
        return

    idle = conn.snd_una == conn.snd_max
    if idle and conn.t_idle >= conn.rtt.rto_ticks():
        # Slow-start restart after an idle period (Jacobson).
        conn.cc.cwnd = conn.eff_mss

    sendalot = True
    while sendalot:
        sendalot = False
        mss = conn.eff_mss
        # off = max(0, seq_diff(snd_nxt, snd_una)), inlined.
        off = (conn.snd_nxt - conn.snd_una) % MOD
        if off >= _HALF:
            off = 0
        # win = cc.window(snd_wnd) = min(snd_wnd, cwnd), inlined.
        win = conn.snd_wnd
        cwnd = conn.cc.cwnd
        if cwnd < win:
            win = cwnd
        if force and win == 0:
            win = 1  # window probe: force out one byte
        buffered = conn.snd_buffer.used
        # length = max(0, min(buffered - off, win - off, mss)), inlined.
        length = buffered - off
        winoff = win - off
        if winoff < length:
            length = winoff
        if mss < length:
            length = mss
        if length < 0:
            length = 0

        fin_here = (
            conn.fin_queued
            and off + length == buffered
            and not (conn.fin_sent and conn.snd_nxt == conn.snd_max)
        )

        send_data = False
        if length > 0:
            if length == mss:
                send_data = True
            elif idle or conn.config.nodelay:
                send_data = True  # Nagle passes: nothing outstanding
            elif force:
                send_data = True
            elif seq_lt(conn.snd_nxt, conn.snd_max):
                send_data = True  # retransmission of previously sent data
            elif length >= conn.snd_wnd // 2 and conn.snd_wnd > 0:
                send_data = True  # half the peer's window — worth sending

        send_fin = fin_here and (length > 0 or off == buffered)
        if send_fin and length == 0:
            # A bare FIN still needs Nagle-free transmission.
            send_data = True

        window_update_due = _window_update_due(conn)

        if send_data or (send_fin and length == 0):
            _send_data_segment(conn, off, length, send_fin)
            if length == mss and off + length < buffered:
                sendalot = True
            continue

        if conn.ack_now or window_update_due:
            _make_segment(conn, conn.snd_nxt, ACK)
            return

        # Nothing sent: arm the persist timer if data waits on zero window.
        if (
            buffered - off > 0
            and conn.snd_wnd == 0
            and not conn.timer_armed(TCPT_REXMT)
            and not conn.timer_armed(TCPT_PERSIST)
        ):
            conn.rtt.rxtshift = 0
            _start_persist(conn)
        return


def _window_update_due(conn):
    """BSD: send a window update if it opens by 2 segments or half a buffer.

    The candidate window is capped at the 16-bit field before comparing
    against what was advertised; otherwise buffers larger than 64 KB make
    every arriving segment look like a huge window opening and the
    receiver ACKs every packet.
    """
    if conn.state not in SYNCHRONIZED:
        return False
    max_window = MAX_WINDOW << conn.rcv_scale
    buf = conn.rcv_buffer
    free = buf.hiwat - buf.used
    new_window = (free if free > 0 else 0) - conn.reass.used
    if new_window > max_window:
        new_window = max_window
    # advertised = seq_diff(rcv_adv, rcv_nxt), inlined (signed).
    advertised = (conn.rcv_adv - conn.rcv_nxt) % MOD
    if advertised >= _HALF:
        advertised -= MOD
    gain = new_window - advertised
    if gain <= 0:
        return False
    if gain >= 2 * conn.eff_mss:
        return True
    hiwat = buf.hiwat
    return gain >= (hiwat if hiwat < max_window else max_window) // 2


def _send_syn(conn, extra_flags):
    segment = _make_segment(
        conn,
        conn.iss,
        SYN | extra_flags,
        mss_option=conn.config.mss,
        wscale_option=conn.config.window_scale,
    )
    conn.snd_nxt = seq_add(conn.iss, 1)
    conn.snd_max = seq_max(conn.snd_max, conn.snd_nxt)
    if conn.t_rtt == 0:
        conn.t_rtt = 1
        conn.rtt_seq = conn.iss
    conn.start_timer(TCPT_REXMT, conn.rtt.rto_ticks())
    return segment


def _send_data_segment(conn, off, length, include_fin):
    payload = conn.snd_buffer.slice_from(off, length)
    flags = ACK
    if include_fin:
        flags |= FIN
    if length and off + length == conn.snd_buffer.used:
        flags |= PSH
    urgent = 0
    if seq_lt(conn.snd_nxt, conn.snd_up):
        # Urgent data lies ahead: point at its end (RFC 793 URG).
        flags |= URG
        urgent = min(seq_diff(conn.snd_up, conn.snd_nxt), 0xFFFF)
    retransmitting = seq_lt(conn.snd_nxt, conn.snd_max)
    segment = _make_segment(conn, conn.snd_nxt, flags, payload=payload)
    segment.urgent = urgent
    if retransmitting:
        conn.stats.retransmits += 1

    advance = length + (1 if include_fin else 0)
    if include_fin:
        conn.fin_sent = True
    old_nxt = conn.snd_nxt
    conn.snd_nxt = seq_add(conn.snd_nxt, advance)
    if seq_gt(conn.snd_nxt, conn.snd_max):
        conn.snd_max = conn.snd_nxt
        # Time this transmission if nothing is being timed (Karn's rule is
        # honoured because retransmissions never start a measurement).
        if conn.t_rtt == 0:
            conn.t_rtt = 1
            conn.rtt_seq = old_nxt
    if not conn.timer_armed(TCPT_REXMT) and conn.snd_nxt != conn.snd_una:
        conn.stop_timer(TCPT_PERSIST)
        conn.start_timer(TCPT_REXMT, conn.rtt.rto_ticks())


def _start_persist(conn):
    ticks = conn.rtt.rto_ticks()
    conn.start_timer(TCPT_PERSIST, min(max(ticks, PERSIST_MIN), PERSIST_MAX))


def _probe(conn, event):
    """Telemetry hook: fire the connection's tcp_probe, if attached."""
    probe = conn.probe
    if probe is not None:
        probe(event)


def retransmit_timeout(conn):
    """The REXMT timer fired: back off and go back to snd_una."""
    if conn.rtt.backoff():
        conn._enter_closed(ConnectionTimedOut("too many retransmissions"))
        return
    conn.cc.on_timeout(conn.flight_size())
    conn.t_rtt = 0  # Karn: abandon any in-progress measurement
    conn.snd_nxt = conn.snd_una
    if conn.state in (TCPState.SYN_SENT, TCPState.SYN_RECEIVED):
        # Re-send the SYN: _send_syn keys off snd_nxt == iss.
        conn.stats.retransmits += 1
        conn.start_timer(TCPT_REXMT, conn.rtt.rto_ticks())
        _send_syn(conn, ACK if conn.state == TCPState.SYN_RECEIVED else 0)
        _probe(conn, "timeout")
        return
    conn.start_timer(TCPT_REXMT, conn.rtt.rto_ticks())
    tcp_output(conn, force=True)
    _probe(conn, "timeout")


def persist_timeout(conn):
    """The persist timer fired: probe the zero window with one byte."""
    conn.rtt.rxtshift = min(conn.rtt.rxtshift + 1, 12)
    tcp_output(conn, force=True)
    _probe(conn, "persist")
    if (
        len(conn.snd_buffer) - max(0, seq_diff(conn.snd_nxt, conn.snd_una)) > 0
        and conn.snd_wnd == 0
    ):
        _start_persist(conn)


def window_update(conn):
    """The user drained the receive buffer; advertise the opening if big."""
    if conn.state not in SYNCHRONIZED:
        return
    if _window_update_due(conn):
        _make_segment(conn, conn.snd_nxt, ACK)


def send_keepalive_probe(conn):
    """The classic keepalive probe: an ACK sequenced one byte *before*
    snd_una, which a live peer must answer with a corrective ACK."""
    from repro.net.tcp.seq import seq_add

    _make_segment(conn, seq_add(conn.snd_una, -1), ACK)


def send_rst(conn):
    """Send a RST from a synchronized connection (user abort)."""
    _make_segment(conn, conn.snd_nxt, RST | ACK)


def rst_for(segment, verify_ack=True):
    """Build the RST reply to a segment that reached no live connection.

    RFC 793: if the offending segment had an ACK, the RST carries that
    ACK's sequence number; otherwise it ACKs the segment's contents.
    """
    if segment.flags & RST:
        return None  # never reset a reset
    if segment.flags & ACK:
        return TCPSegment(
            src_port=segment.dst_port,
            dst_port=segment.src_port,
            seq=segment.ack,
            flags=RST,
        )
    return TCPSegment(
        src_port=segment.dst_port,
        dst_port=segment.src_port,
        seq=0,
        ack=seq_add(segment.seq, segment.wire_len),
        flags=RST | ACK,
    )
