"""Out-of-order segment reassembly (the BSD tcp_reass queue)."""

from repro.net.tcp.seq import seq_add, seq_diff, seq_ge, seq_le


class ReassemblyQueue:
    """Holds out-of-order payload keyed by sequence number.

    ``insert`` files an arriving segment; ``extract`` pulls every byte
    that is now contiguous with ``rcv_nxt`` and returns it along with the
    new ``rcv_nxt``.
    """

    def __init__(self):
        self._segments = []  # sorted list of [seq, bytearray]
        self.overlaps_trimmed = 0
        #: Total buffered bytes, maintained by insert/extract so the
        #: per-segment window math reads an attribute instead of
        #: summing the queue (which is almost always empty).
        self.used = 0

    def __len__(self):
        return self.used

    def pending_segments(self):
        return len(self._segments)

    def insert(self, seq, data):
        """File ``data`` at sequence ``seq``, trimming any overlap."""
        if not data:
            return
        data = bytes(data)
        merged = []
        new_seq, new_data = seq, bytearray(data)
        for cur_seq, cur_data in self._segments:
            cur_end = seq_add(cur_seq, len(cur_data))
            new_end = seq_add(new_seq, len(new_data))
            if seq_le(cur_end, new_seq) and cur_end != new_seq:
                merged.append([cur_seq, cur_data])  # entirely before, no touch
            elif seq_ge(cur_seq, new_end) and cur_seq != new_end:
                merged.append([cur_seq, cur_data])  # entirely after, no touch
            else:
                # Overlapping or adjacent: coalesce into the new block.
                self.overlaps_trimmed += 1
                start = new_seq if seq_le(new_seq, cur_seq) else cur_seq
                combined = bytearray()
                first, second = sorted(
                    ([new_seq, new_data], [cur_seq, cur_data]),
                    key=lambda item: seq_diff(item[0], start),
                )
                combined.extend(first[1])
                overlap = seq_diff(seq_add(first[0], len(first[1])), second[0])
                if overlap < len(second[1]):
                    combined.extend(second[1][max(0, overlap):])
                new_seq, new_data = start, combined
        merged.append([new_seq, new_data])
        merged.sort(key=lambda item: item[0])
        # Normalize ordering in sequence space relative to the first block.
        base = merged[0][0]
        merged.sort(key=lambda item: seq_diff(item[0], base))
        self._segments = merged
        self.used = sum(len(data) for _seq, data in merged)

    def extract(self, rcv_nxt):
        """Return (data, new_rcv_nxt): all bytes contiguous from rcv_nxt."""
        out = bytearray()
        remaining = []
        for seg_seq, seg_data in self._segments:
            seg_end = seq_add(seg_seq, len(seg_data))
            if seq_le(seg_end, rcv_nxt):
                continue  # wholly old data
            if seq_le(seg_seq, rcv_nxt):
                skip = seq_diff(rcv_nxt, seg_seq)
                out.extend(seg_data[skip:])
                rcv_nxt = seg_end
            else:
                remaining.append([seg_seq, seg_data])
        self._segments = remaining
        self.used = sum(len(data) for _seq, data in remaining)
        return bytes(out), rcv_nxt
