"""TCP sequence-number arithmetic (comparisons modulo 2**32).

These are the SEQ_LT/LEQ/GT/GEQ macros of the BSD stack.  All comparisons
are window-relative: ``a < b`` iff ``(a - b) mod 2**32`` is "negative" as
a signed 32-bit value.

Every comparison computes its answer directly from ``(a - b) % MOD``
instead of delegating to :func:`seq_diff` — these run per segment, and
the delegation doubled their interpreter cost for no clarity gain.
"""

MOD = 1 << 32
_HALF = MOD >> 1


def seq_add(a, n):
    """``a + n`` modulo 2**32 (n may be negative)."""
    return (a + n) % MOD


def seq_diff(a, b):
    """Signed distance from ``b`` to ``a`` (positive when a is ahead)."""
    d = (a - b) % MOD
    if d >= _HALF:
        d -= MOD
    return d


def seq_lt(a, b):
    return (a - b) % MOD >= _HALF


def seq_le(a, b):
    d = (a - b) % MOD
    return d == 0 or d >= _HALF


def seq_gt(a, b):
    return 0 < (a - b) % MOD < _HALF


def seq_ge(a, b):
    return (a - b) % MOD < _HALF


def seq_max(a, b):
    return a if (a - b) % MOD < _HALF else b


def seq_min(a, b):
    d = (a - b) % MOD
    return a if d == 0 or d >= _HALF else b


def seq_between(low, x, high):
    """``low <= x < high`` in sequence space."""
    # seq_le(low, x) is seq_ge(x, low); seq_lt(x, high) spelled out.
    return (x - low) % MOD < _HALF and (x - high) % MOD >= _HALF
