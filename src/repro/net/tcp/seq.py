"""TCP sequence-number arithmetic (comparisons modulo 2**32).

These are the SEQ_LT/LEQ/GT/GEQ macros of the BSD stack.  All comparisons
are window-relative: ``a < b`` iff ``(a - b) mod 2**32`` is "negative" as
a signed 32-bit value.
"""

MOD = 1 << 32


def seq_add(a, n):
    """``a + n`` modulo 2**32 (n may be negative)."""
    return (a + n) % MOD


def seq_diff(a, b):
    """Signed distance from ``b`` to ``a`` (positive when a is ahead)."""
    d = (a - b) % MOD
    if d >= MOD // 2:
        d -= MOD
    return d


def seq_lt(a, b):
    return seq_diff(a, b) < 0


def seq_le(a, b):
    return seq_diff(a, b) <= 0


def seq_gt(a, b):
    return seq_diff(a, b) > 0


def seq_ge(a, b):
    return seq_diff(a, b) >= 0


def seq_max(a, b):
    return a if seq_ge(a, b) else b


def seq_min(a, b):
    return a if seq_le(a, b) else b


def seq_between(low, x, high):
    """``low <= x < high`` in sequence space."""
    return seq_le(low, x) and seq_lt(x, high)
