"""Socket buffers and TCP error types.

The send buffer is indexed in sequence space: byte 0 of the buffer always
corresponds to ``snd_una``, so ACK processing just drops from the front
and retransmission just re-reads a slice.  The receive buffer is a plain
in-order byte queue the user drains; its free space *is* the advertised
window, exactly as in BSD where ``sbspace(so->so_rcv)`` feeds ``rcv_wnd``.
"""


class TCPError(Exception):
    """Base class for user-visible TCP errors."""


class ConnectionReset(TCPError):
    """The peer reset the connection (RST received)."""


class ConnectionRefused(TCPError):
    """Active open was refused (RST in SYN_SENT)."""


class ConnectionTimedOut(TCPError):
    """Retransmission gave up (rxtshift exceeded the maximum)."""


class NotConnected(TCPError):
    """Operation requires an established connection."""


class SendBuffer:
    """Unacknowledged and unsent outgoing data, anchored at snd_una.

    ``used`` mirrors ``len(self._data)`` so per-segment code can read
    occupancy (and compute ``hiwat - used``) as attribute loads instead
    of ``len()``/``space()`` calls.
    """

    def __init__(self, hiwat):
        if hiwat < 1:
            raise ValueError("send buffer size must be positive")
        self.hiwat = hiwat
        self._data = bytearray()
        self.used = 0

    def __len__(self):
        return self.used

    def space(self):
        free = self.hiwat - self.used
        return free if free > 0 else 0

    def append(self, data):
        """Queue as much of ``data`` as fits; returns the byte count taken."""
        free = self.hiwat - self.used
        n = len(data)
        take = n if n < free else free
        if take <= 0:
            return 0
        self._data.extend(data if take == n else data[:take])
        self.used += take
        return take

    def slice_from(self, offset, length):
        """Bytes for the wire: ``length`` bytes starting ``offset`` past
        snd_una (used by both transmission and retransmission)."""
        if offset < 0:
            raise ValueError("negative send-buffer offset")
        return bytes(self._data[offset : offset + length])

    def drop(self, count):
        """Discard ``count`` acknowledged bytes from the front."""
        if count > self.used:
            raise ValueError("ack drops more than buffered: %d > %d"
                             % (count, self.used))
        del self._data[:count]
        self.used -= count

    def set_hiwat(self, hiwat):
        if hiwat < 1:
            raise ValueError("send buffer size must be positive")
        self.hiwat = hiwat

    def snapshot(self):
        return bytes(self._data)

    def restore(self, data):
        self._data = bytearray(data)
        self.used = len(self._data)


class ReceiveBuffer:
    """In-order received data awaiting the application.

    ``used`` mirrors ``len(self._data)``; see :class:`SendBuffer`.
    """

    def __init__(self, hiwat):
        if hiwat < 1:
            raise ValueError("receive buffer size must be positive")
        self.hiwat = hiwat
        self._data = bytearray()
        self.used = 0

    def __len__(self):
        return self.used

    def space(self):
        free = self.hiwat - self.used
        return free if free > 0 else 0

    def append(self, data):
        self._data.extend(data)
        self.used += len(data)

    def take(self, count):
        """Remove and return up to ``count`` bytes from the front."""
        if count < 0:
            raise ValueError("negative receive count")
        out = bytes(self._data[:count])
        taken = len(out)
        del self._data[:taken]
        self.used -= taken
        return out

    def peek(self, count):
        return bytes(self._data[:count])

    def set_hiwat(self, hiwat):
        if hiwat < 1:
            raise ValueError("receive buffer size must be positive")
        self.hiwat = hiwat

    def snapshot(self):
        return bytes(self._data)

    def restore(self, data):
        self._data = bytearray(data)
        self.used = len(self._data)
