"""A complete TCP implementation (RFC 793 + Jacobson congestion control).

The implementation is *sans-I/O*: :class:`~repro.net.tcp.conn.TCPConnection`
is a pure protocol machine fed with arriving segments, timer ticks, and
user calls; it emits outgoing segments into an outbox that the hosting
environment (kernel stack, UX server, or the paper's user-level protocol
library) drains.  This is what lets one TCP codebase run in all three
placements, mirroring the paper's reuse of the BSD networking code.

Connection state can be exported and imported wholesale — the mechanism
behind the paper's session migration between the OS server and the
application (Section 3.2).
"""

from repro.net.tcp.conn import TCPConnection, TCPConfig
from repro.net.tcp.state import TCPState
from repro.net.tcp.header import TCPSegment, MSS_ETHERNET

__all__ = ["TCPConnection", "TCPConfig", "TCPState", "TCPSegment", "MSS_ETHERNET"]
