"""TCP timers and round-trip-time estimation.

Constants and structure follow 4.3BSD: a coarse 500 ms "slow" timer drives
retransmission/persist/2MSL countdowns kept as tick counters in the TCB,
and a 200 ms "fast" timer drives delayed ACKs.  RTT estimation is
Jacobson's mean/deviation estimator (SIGCOMM '88), in tick units.
"""

#: Slow timeout granularity, microseconds (BSD PR_SLOWHZ = 2/sec).
SLOW_TICK_US = 500_000.0

#: Fast (delayed-ACK) timeout granularity (BSD PR_FASTHZ = 5/sec).
FAST_TICK_US = 200_000.0

#: Timer slots, as in BSD's t_timer[].
TCPT_REXMT = "rexmt"
TCPT_PERSIST = "persist"
TCPT_KEEP = "keep"
TCPT_2MSL = "2msl"

#: Bounds for the retransmit timer, in slow ticks.
TCPTV_MIN = 2  # 1 second
TCPTV_REXMTMAX = 128  # 64 seconds

#: Initial RTT when nothing is measured yet, in slow ticks (BSD: 3 s RTO).
TCPTV_SRTTBASE = 0
TCPTV_SRTTDFLT = 6  # 3 seconds

#: MSL for 2MSL (TIME_WAIT) handling, in slow ticks (BSD: 30 s).
TCPTV_MSL = 60

#: Keepalive idle time, in slow ticks (BSD: 2 hours).
TCPTV_KEEP_IDLE = 14400

#: Maximum consecutive retransmissions before the connection is dropped.
TCP_MAXRXTSHIFT = 12

#: Exponential backoff table (BSD tcp_backoff[]).
BACKOFF = [1, 2, 4, 8, 16, 32, 64, 64, 64, 64, 64, 64, 64]
_BACKOFF_MAX = len(BACKOFF) - 1


class RTTEstimator:
    """Jacobson/Karels smoothed RTT + deviation, in slow-tick units.

    Uses the BSD fixed-point scaling: ``srtt`` is stored * 8 and ``rttvar``
    * 4, so the shifts below match the classic code.
    """

    SRTT_SHIFT = 3
    RTTVAR_SHIFT = 2

    def __init__(self):
        self.srtt = TCPTV_SRTTBASE  # scaled by 8
        self.rttvar = TCPTV_SRTTDFLT * 2  # scaled by 4
        self.rxtshift = 0
        self.samples = 0
        self.last_rtt = 0  # most recent raw measurement, in slow ticks

    def update(self, rtt_ticks):
        """Fold in one RTT measurement (Karn's rule: callers must only
        measure un-retransmitted segments)."""
        self.samples += 1
        # Clamp: a zero-tick measurement would seed srtt/rttvar at 0 on
        # the first sample, wedging the estimator at non-positive values.
        rtt = max(1, int(rtt_ticks))
        self.last_rtt = rtt
        if self.srtt != 0:
            delta = rtt - 1 - (self.srtt >> self.SRTT_SHIFT)
            self.srtt += delta
            if self.srtt <= 0:
                self.srtt = 1
            if delta < 0:
                delta = -delta
            delta -= self.rttvar >> self.RTTVAR_SHIFT
            self.rttvar += delta
            if self.rttvar <= 0:
                self.rttvar = 1
        else:
            # First measurement: seed srtt and set rttvar to srtt/2.
            self.srtt = rtt << self.SRTT_SHIFT
            self.rttvar = rtt << (self.RTTVAR_SHIFT - 1)
        self.rxtshift = 0

    def rto_ticks(self):
        """Current retransmission timeout in slow ticks, with backoff."""
        if self.srtt == 0:
            base = TCPTV_SRTTDFLT
        else:
            # BSD's TCP_REXMTVAL: srtt/8 + rttvar.
            base = (self.srtt >> self.SRTT_SHIFT) + self.rttvar
        shift = self.rxtshift
        rto = base * BACKOFF[shift if shift < _BACKOFF_MAX else _BACKOFF_MAX]
        if rto > TCPTV_REXMTMAX:
            rto = TCPTV_REXMTMAX
        return rto if rto > TCPTV_MIN else TCPTV_MIN

    def backoff(self):
        """Record a retransmission; returns True if the connection should drop."""
        self.rxtshift += 1
        return self.rxtshift > TCP_MAXRXTSHIFT

    def srtt_us(self):
        """The smoothed RTT in microseconds (descaled, tick-converted)."""
        return (self.srtt / (1 << self.SRTT_SHIFT)) * SLOW_TICK_US

    def rttvar_us(self):
        """The RTT deviation in microseconds (descaled, tick-converted)."""
        return (self.rttvar / (1 << self.RTTVAR_SHIFT)) * SLOW_TICK_US

    def snapshot(self):
        """Raw fixed-point state for telemetry (read-only)."""
        return {
            "srtt": self.srtt,
            "rttvar": self.rttvar,
            "rxtshift": self.rxtshift,
            "samples": self.samples,
            "last_rtt": self.last_rtt,
            "rto_ticks": self.rto_ticks(),
        }
