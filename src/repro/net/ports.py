"""The TCP/UDP port namespace manager.

The paper keeps port allocation in the operating system server: "it is
necessary to interact with a local IP port manager to ensure that the
endpoint is uniquely named; the operating system is a convenient place to
implement this manager" (Section 3.2).  One :class:`PortManager` instance
per protocol lives in the OS server; applications never allocate ports
directly.
"""


class PortInUse(Exception):
    """The requested (address, port) binding conflicts with a live one."""


class PortManager:
    """Tracks port bindings for one protocol on one host.

    A binding is (local_ip, port) where local_ip may be 0 (INADDR_ANY).
    Binding a specific address conflicts with an existing wildcard binding
    of the same port and vice versa, matching BSD semantics without
    SO_REUSEADDR.
    """

    #: BSD 4.3's ephemeral range.
    EPHEMERAL_FIRST = 1024
    EPHEMERAL_LAST = 5000

    def __init__(self, name=""):
        self.name = name
        self._bound = {}  # port -> set of local_ips (0 == wildcard)
        self._next_ephemeral = self.EPHEMERAL_FIRST

    def bind(self, local_ip, port):
        """Claim (local_ip, port); raises :class:`PortInUse` on conflict."""
        if not 0 < port <= 65535:
            raise ValueError("port out of range: %r" % port)
        owners = self._bound.get(port, set())
        if 0 in owners or (local_ip == 0 and owners) or local_ip in owners:
            raise PortInUse("%s port %d already bound" % (self.name, port))
        self._bound.setdefault(port, set()).add(local_ip)
        return port

    def bind_ephemeral(self, local_ip):
        """Allocate and claim a fresh ephemeral port."""
        for _ in range(self.EPHEMERAL_LAST - self.EPHEMERAL_FIRST + 1):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral > self.EPHEMERAL_LAST:
                self._next_ephemeral = self.EPHEMERAL_FIRST
            owners = self._bound.get(port)
            if not owners:
                self._bound[port] = {local_ip}
                return port
        raise PortInUse("%s ephemeral port space exhausted" % self.name)

    def release(self, local_ip, port):
        """Release a binding made with :meth:`bind` or :meth:`bind_ephemeral`."""
        owners = self._bound.get(port)
        if not owners or local_ip not in owners:
            raise KeyError("%s port %d not bound to %r" % (self.name, port, local_ip))
        owners.discard(local_ip)
        if not owners:
            del self._bound[port]

    def is_bound(self, port):
        return bool(self._bound.get(port))

    def bound_count(self):
        return sum(len(owners) for owners in self._bound.values())
