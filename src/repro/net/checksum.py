"""The Internet checksum (RFC 1071), used by IP, UDP, and TCP.

The implementation exploits the fact that the one's-complement sum of
big-endian 16-bit words equals ``256 * sum(even bytes) + sum(odd bytes)``
followed by carry folding, which lets Python compute it at C speed with
``sum()`` over byte slices.
"""


def ones_complement_add(a, b):
    """Add two 16-bit values with end-around carry."""
    total = a + b
    return (total & 0xFFFF) + (total >> 16)


def _raw_sum(data):
    """One's-complement accumulation of ``data`` as big-endian 16-bit words."""
    if len(data) % 2:
        data = bytes(data) + b"\x00"
    total = sum(data[0::2]) * 256 + sum(data[1::2])
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def internet_checksum(data, initial=0):
    """RFC 1071 checksum of ``data``; ``initial`` folds in a pseudo-header sum."""
    total = _raw_sum(data)
    while initial >> 16:
        initial = (initial & 0xFFFF) + (initial >> 16)
    total = ones_complement_add(total, initial)
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def pseudo_header_sum(src_ip, dst_ip, proto, length):
    """Partial sum of the TCP/UDP pseudo-header (not complemented)."""
    total = (
        (src_ip >> 16)
        + (src_ip & 0xFFFF)
        + (dst_ip >> 16)
        + (dst_ip & 0xFFFF)
        + proto
        + length
    )
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def verify_checksum(data, initial=0):
    """True iff ``data`` (checksum field included) sums to the all-ones value."""
    total = _raw_sum(data)
    total = ones_complement_add(total, initial)
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total == 0xFFFF
