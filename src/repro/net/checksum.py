"""The Internet checksum (RFC 1071), used by IP, UDP, and TCP.

The implementation exploits the fact that the buffer read as one big
base-256 integer is congruent, modulo 0xFFFF, to its one's-complement
sum of big-endian 16-bit words (because 0x10000 == 1 mod 0xFFFF), which
lets Python compute the whole sum with a single C-level
``int.from_bytes`` and one modulo — no slicing, no copying.
"""


def ones_complement_add(a, b):
    """Add two 16-bit values with end-around carry."""
    total = a + b
    return (total & 0xFFFF) + (total >> 16)


def _raw_sum(data):
    """One's-complement accumulation of ``data`` as big-endian 16-bit words.

    Accepts bytes, bytearray, or memoryview without copying.  An odd
    length is handled by shifting left one byte, which is exactly what
    zero-padding the buffer to a whole number of words would do.

    The congruence trick: the end-around-carry fold of the word sum is
    the unique value in ``[0, 0xFFFF]`` congruent to it mod 0xFFFF that
    is zero only for an all-zero sum — i.e. ``total % 0xFFFF``, with a
    nonzero multiple of 0xFFFF mapping to 0xFFFF rather than 0.
    """
    total = int.from_bytes(data, "big")
    if len(data) & 1:
        total <<= 8
    if total:
        total %= 0xFFFF
        return total if total else 0xFFFF
    return 0


def internet_checksum(data, initial=0):
    """RFC 1071 checksum of ``data``; ``initial`` folds in a pseudo-header sum.

    ``_raw_sum`` and the end-around-carry folds are written out inline:
    this runs once per segment in each direction, and the two helper
    calls were pure interpreter overhead.
    """
    total = int.from_bytes(data, "big")
    if len(data) & 1:
        total <<= 8
    if total:
        total %= 0xFFFF
        if not total:
            total = 0xFFFF
    while initial >> 16:
        initial = (initial & 0xFFFF) + (initial >> 16)
    total += initial
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def pseudo_header_sum(src_ip, dst_ip, proto, length):
    """Partial sum of the TCP/UDP pseudo-header (not complemented)."""
    total = (
        (src_ip >> 16)
        + (src_ip & 0xFFFF)
        + (dst_ip >> 16)
        + (dst_ip & 0xFFFF)
        + proto
        + length
    )
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def verify_checksum(data, initial=0):
    """True iff ``data`` (checksum field included) sums to the all-ones value."""
    total = int.from_bytes(data, "big")
    if len(data) & 1:
        total <<= 8
    if total:
        total %= 0xFFFF
        if not total:
            total = 0xFFFF
    total += initial
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total == 0xFFFF
