"""Byte-level protocol implementations: Ethernet, ARP, IPv4, UDP, TCP.

Everything in this package operates on genuine packed bytes with real
checksums — it is the functional half of the reproduction, shared by all
three protocol placements (in-kernel, server, library) exactly as the
paper reuses one BSD-derived protocol codebase everywhere.
"""

from repro.net.addr import ip_aton, ip_ntoa, mac_ntoa
from repro.net.checksum import internet_checksum, ones_complement_add, verify_checksum

__all__ = [
    "ip_aton",
    "ip_ntoa",
    "mac_ntoa",
    "internet_checksum",
    "ones_complement_add",
    "verify_checksum",
]
