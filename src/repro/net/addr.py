"""Address types and conversions.

IPv4 addresses are 32-bit ints internally (cheap to compare and mask);
MAC addresses are 6-byte ``bytes``.  Dotted-quad and colon-hex string
forms are for configuration and display only.
"""

import struct

BROADCAST_MAC = b"\xff\xff\xff\xff\xff\xff"


def ip_aton(text):
    """'10.0.0.1' -> 32-bit int.  Accepts ints unchanged."""
    if isinstance(text, int):
        if not 0 <= text <= 0xFFFFFFFF:
            raise ValueError("IPv4 address out of range: %r" % text)
        return text
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError("malformed IPv4 address: %r" % text)
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError("malformed IPv4 address: %r" % text)
        value = (value << 8) | octet
    return value


def ip_ntoa(value):
    """32-bit int -> '10.0.0.1'."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError("IPv4 address out of range: %r" % value)
    return "%d.%d.%d.%d" % (
        (value >> 24) & 0xFF,
        (value >> 16) & 0xFF,
        (value >> 8) & 0xFF,
        value & 0xFF,
    )


def ip_pack(value):
    """32-bit int -> 4 network-order bytes."""
    return struct.pack("!I", ip_aton(value) if isinstance(value, str) else value)


def ip_unpack(data):
    """4 network-order bytes -> 32-bit int."""
    if len(data) != 4:
        raise ValueError("need exactly 4 bytes, got %d" % len(data))
    return struct.unpack("!I", data)[0]


def mac_ntoa(mac):
    """6 bytes -> 'aa:bb:cc:dd:ee:ff'."""
    if len(mac) != 6:
        raise ValueError("MAC address must be 6 bytes")
    return ":".join("%02x" % b for b in mac)


def mac_aton(text):
    """'aa:bb:cc:dd:ee:ff' -> 6 bytes.  Accepts bytes unchanged."""
    if isinstance(text, (bytes, bytearray)):
        if len(text) != 6:
            raise ValueError("MAC address must be 6 bytes")
        return bytes(text)
    parts = text.split(":")
    if len(parts) != 6:
        raise ValueError("malformed MAC address: %r" % text)
    return bytes(int(p, 16) for p in parts)


def make_mac(host_id):
    """Deterministic locally-administered MAC for simulated host ``host_id``."""
    return struct.pack("!HI", 0x0200, host_id & 0xFFFFFFFF)


def netmask_from_prefix(prefixlen):
    """Prefix length -> 32-bit netmask int."""
    if not 0 <= prefixlen <= 32:
        raise ValueError("prefix length out of range: %r" % prefixlen)
    if prefixlen == 0:
        return 0
    return (0xFFFFFFFF << (32 - prefixlen)) & 0xFFFFFFFF
