"""The IP routing table.

Routing entries are long-lived shared metastate: in the paper's design the
operating system server owns the authoritative table and applications
cache entries from it (Section 3.3).  The table itself is a classic
longest-prefix-match structure.
"""

from repro.net.addr import ip_aton, ip_ntoa, netmask_from_prefix


class Route:
    """One routing table entry."""

    __slots__ = ("prefix", "prefixlen", "gateway", "iface", "generation")

    def __init__(self, prefix, prefixlen, iface, gateway=None, generation=0):
        self.prefix = ip_aton(prefix) & netmask_from_prefix(prefixlen)
        self.prefixlen = prefixlen
        self.gateway = ip_aton(gateway) if gateway is not None else None
        self.iface = iface
        self.generation = generation

    @property
    def is_direct(self):
        """True for directly-attached networks (no gateway hop)."""
        return self.gateway is None

    def matches(self, dst):
        return (dst & netmask_from_prefix(self.prefixlen)) == self.prefix

    def __repr__(self):
        via = "direct" if self.is_direct else "via %s" % ip_ntoa(self.gateway)
        return "<Route %s/%d %s dev %s>" % (
            ip_ntoa(self.prefix),
            self.prefixlen,
            via,
            self.iface,
        )


class RouteTable:
    """Longest-prefix-match routing with a generation counter.

    The generation number increments on every mutation; application-side
    caches compare generations to detect staleness (in addition to the
    explicit invalidation callbacks the server issues).
    """

    def __init__(self):
        self._routes = []
        self.generation = 0
        # Fast path for the overwhelmingly common shape (one /24 per
        # attached or reachable segment plus maybe a default route): a
        # dict keyed on the masked /24 prefix.  Valid as a shortcut only
        # while no route is more specific than /24 — a longer prefix
        # must win, so its presence disables the dict and lookups fall
        # back to the longest-prefix-first scan.
        self._fast24 = {}
        self._longest = 0

    def add(self, prefix, prefixlen, iface, gateway=None):
        self.generation += 1
        route = Route(prefix, prefixlen, iface, gateway, generation=self.generation)
        self._routes.append(route)
        # Longest prefix first so lookup can take the first match.
        self._routes.sort(key=lambda r: -r.prefixlen)
        if prefixlen == 24:
            # setdefault: among equal /24s the scan returns the one
            # added first (the sort is stable), so keep that one.
            self._fast24.setdefault(route.prefix, route)
        if prefixlen > self._longest:
            self._longest = prefixlen
        return route

    def remove(self, prefix, prefixlen):
        """Remove a route; returns True if one was removed."""
        target = ip_aton(prefix) & netmask_from_prefix(prefixlen)
        for i, route in enumerate(self._routes):
            if route.prefix == target and route.prefixlen == prefixlen:
                del self._routes[i]
                self.generation += 1
                self._reindex()
                return True
        return False

    def _reindex(self):
        """Rebuild the /24 fast path after a removal."""
        self._fast24 = {}
        self._longest = 0
        for route in self._routes:
            if route.prefixlen == 24:
                self._fast24.setdefault(route.prefix, route)
            if route.prefixlen > self._longest:
                self._longest = route.prefixlen

    def lookup(self, dst):
        """The most specific route for ``dst``, or None."""
        dst = ip_aton(dst)
        if self._longest <= 24:
            route = self._fast24.get(dst & 0xFFFFFF00)
            if route is not None:
                return route
        for route in self._routes:
            if route.matches(dst):
                return route
        return None

    def routes(self):
        """Snapshot of all routes, most specific first."""
        return list(self._routes)

    def __len__(self):
        return len(self._routes)
