"""The protocol engine: socket-level TCP/UDP over IP over Ethernet.

One :class:`NetworkStack` instance is the protocol machinery for one
placement: the in-kernel stack, the UX server's stack, the OS server's
setup stack, or one application's protocol library.  All of them run this
same code (as the paper reuses the BSD code everywhere); what differs is
the :class:`~repro.stack.context.ExecutionContext` (whose CPU priority,
lock package, and accounting they charge) and the :class:`NetEnv` (how
frames reach the wire and how ARP/routing metastate is found).

All public operations are generators to be driven inside a simulation
process.  Calls into the sans-I/O TCP machine itself are atomic (no
yields), so the engine is race-free under the cooperative scheduler.
"""

from repro.mem.mbuf import MbufStats
from repro.net import arp, ethernet, icmp, ip, udp
from repro.net.ports import PortManager
from repro.net.tcp import TCPConfig, TCPConnection, TCPState
from repro.net.tcp.header import SYN, TCPSegment
from repro.net.tcp.output import rst_for
from repro.net.tcp.tcb import TCPError
from repro.net.tcp.timers import FAST_TICK_US, SLOW_TICK_US
from repro.sim.process import Timeout
from repro.sim.scale import ScaleSimulator
from repro.stack import dispatch
from repro.stack.instrument import Layer
from repro.trace import adopt_trace, current_trace, frame_trace


class SocketTimeout(Exception):
    """A blocking socket operation exceeded its deadline."""


class PortUnreachable(Exception):
    """ICMP port unreachable arrived for a connected UDP session — the
    moral equivalent of BSD's ECONNREFUSED on a connected datagram
    socket."""


class Notifier:
    """Edge-triggered broadcast wakeup: waiters re-check their condition."""

    def __init__(self, sim, name=""):
        self._sim = sim
        self._event = sim.event(name)
        self.waiters = 0

    def wait(self):
        """``yield notifier.wait()`` — wakes on the next :meth:`fire`."""
        self.waiters += 1
        return self._event

    def fire(self):
        if self._event.triggered:
            return
        event, self._event = self._event, self._sim.event(self._event.name)
        self.waiters = 0
        event.succeed()


class NetEnv:
    """How a stack reaches the network: wire output plus metastate.

    * ``send_frame(ctx, frame)`` — generator; puts a full Ethernet frame
      on the wire, charging the caller's context (placements route this
      through the kernel's send trap or straight to the device).
    * ``resolve(ctx, next_hop_ip)`` — generator returning the MAC address
      (in-kernel ARP, server ARP, or the library's cached metastate).
    * ``route(dst_ip)`` — plain call returning the next-hop IP.

    The optional fast-path pair splits ``resolve`` at its cache probe so
    train dispatch can fuse the resolve entry charge into a batch:

    * ``arp_lookup(next_hop_ip)`` — plain call; the cache probe that
      ``resolve`` performs right after its entry charge (same counters,
      same expiry), returning the MAC or None.
    * ``resolve_miss(ctx, next_hop_ip)`` — generator; the miss tail of
      ``resolve``, verbatim (request/retry loop or metastate RPC).

    Environments that do not provide them leave ``arp_lookup`` None and
    callers fall back to the plain ``resolve`` generator.
    """

    def __init__(self, local_ip, local_mac, send_frame, resolve, route,
                 arp_lookup=None, resolve_miss=None):
        self.local_ip = local_ip
        self.local_mac = local_mac
        self.send_frame = send_frame
        self.resolve = resolve
        self.route = route
        self.arp_lookup = arp_lookup
        self.resolve_miss = resolve_miss


class TCPSession:
    """A TCP endpoint plus its blocking-IO plumbing."""

    def __init__(self, stack, conn, owns_port=True):
        self.stack = stack
        self.conn = conn
        m = getattr(stack, "metrics", None)
        if m is not None and m.enabled:
            m.attach_tcp_probe(conn, stack.name)
        self.notify = Notifier(stack.ctx.sim, "tcp.notify")
        self.accept_queue = []  # completed child sessions (listeners only)
        self.backlog = 0
        self.children = {}  # pending (not yet accepted) child sessions
        self.parent = None
        self.selected = False  # a select() is outstanding on this session
        self.recv_timeout_us = None  # SO_RCVTIMEO, None = block forever
        #: Trace id of the most recent inbound segment (per-packet
        #: tracing); the receiver's copyout adopts it.
        self.last_rx_trace = None
        #: When that segment landed in the receive buffer — consumed by
        #: the next tcp_recv to attribute socket-buffer wait, then reset.
        self.last_rx_time = None
        #: Trace id of the most recent outbound segment; an RTO episode
        #: in the timer loop is attributed to this trace.
        self.last_tx_trace = None
        #: Whether closing this session releases its local port binding
        #: (false for accepted children, which share the listener's port,
        #: and for sessions migrated in from another stack).
        self.owns_port = owns_port
        #: Scale-mode tick registry bookkeeping: the stack's slow-tick
        #: count when this session was parked as quiescent, or None
        #: while enrolled (or on the default engine, which ticks every
        #: session unconditionally).
        self._detick_slow = None

    @property
    def local(self):
        return self.conn.local

    @property
    def remote(self):
        return self.conn.remote

    def __repr__(self):
        return "<TCPSession %s:%d %s>" % (*self.conn.local, self.conn.state.name)


class UDPSession:
    """A UDP endpoint: a datagram queue plus blocking-IO plumbing."""

    DEFAULT_HIWAT = 41600  # BSD's udp receive-buffer default

    def __init__(self, stack, local, hiwat=DEFAULT_HIWAT):
        self.stack = stack
        self.local = local  # (ip, port)
        self.remote = None
        self.queue = []  # [(src_addr, payload, trace_id, enqueued_at)]
        self.queued_bytes = 0
        self.hiwat = hiwat
        self.notify = Notifier(stack.ctx.sim, "udp.notify")
        self.drops = 0
        self.selected = False
        self.recv_timeout_us = None  # SO_RCVTIMEO, None = block forever
        self.error = None  # an exception instance (ICMP error delivery)
        #: Telemetry hook (receive-queue occupancy, bytes); bound by the
        #: metrics registry when enabled, else None.
        self.depth_gauge = None
        m = getattr(stack, "metrics", None)
        if m is not None and m.enabled:
            m.attach_udp_gauge(self, stack.name)

    def enqueue(self, src_addr, payload, trace=None):
        if self.queued_bytes + len(payload) > self.hiwat:
            self.drops += 1
            return False
        self.queue.append((src_addr, payload, trace,
                           self.stack.ctx.sim.now))
        self.queued_bytes += len(payload)
        gauge = self.depth_gauge
        if gauge is not None:
            gauge.record(self.queued_bytes)
        return True

    def dequeue(self):
        src, payload, trace, enqueued_at = self.queue.pop(0)
        self.queued_bytes -= len(payload)
        gauge = self.depth_gauge
        if gauge is not None:
            gauge.record(self.queued_bytes)
        return src, payload, trace, enqueued_at

    def __repr__(self):
        return "<UDPSession %s:%d>" % self.local


class NetworkStack:
    """TCP/UDP/IP protocol machinery bound to one execution context."""

    def __init__(self, ctx, env, name="", udp_send_copies=True,
                 shared_buffers=False, tcp_defaults=None,
                 port_managers=None, metrics=None):
        self.ctx = ctx
        self.env = env
        self.name = name
        #: The world's MetricsRegistry (or None).  Sessions created on
        #: this stack attach their telemetry through it when enabled.
        self.metrics = metrics
        #: False models the library's reference-passing UDP send path.
        self.udp_send_copies = udp_send_copies
        #: True models the NEWAPI shared application/stack buffers (§4.2).
        self.shared_buffers = shared_buffers
        self.tcp_defaults = tcp_defaults or {}
        if port_managers is None:
            port_managers = {
                "tcp": PortManager("tcp"),
                "udp": PortManager("udp"),
            }
        self.ports = port_managers
        self._tcp = {}  # (lport, rip, rport) -> TCPSession; listeners (lport, None, None)
        self._udp = {}
        self.mbuf_stats = MbufStats()
        self.reassembler = ip.Reassembler(lambda: ctx.sim.now)
        self._ip_ident = 0
        self._shutdown = False
        self.unmatched_tcp = 0
        self.unmatched_udp = 0
        self.ip_input_errors = 0
        self.not_for_host = 0
        #: 4-tuples of sessions migrated away from this stack.  Straggler
        #: segments for them are dropped silently (the peer retransmits
        #: into the session's new filter) instead of drawing a RST.
        self.migrated_tombstones = set()
        #: Called with (proto, local_port, remote_addr, exception) when an
        #: ICMP error matches no session in this stack — the OS server
        #: uses it to upcall errors into application-managed sessions.
        self.icmp_error_hook = None
        self._pings = {}  # (ident, seq) -> Event
        self._ping_ident = 0
        self.icmp_echoes_answered = 0
        self.icmp_errors_sent = 0
        self.select_notify = Notifier(ctx.sim, "select")
        #: Scale-mode armed-session registry.  On the default engine
        #: (None) the timer loop scans every session each tick, exactly
        #: as 1993 BSD did — the bit-identical contract.  On a
        #: :class:`~repro.sim.scale.ScaleSimulator` the loop touches
        #: only sessions that actually need ticking (a pending delayed
        #: ACK, an armed countdown timer, a running RTT measurement, or
        #: keepalive duty), so a world with thousands of mostly-idle
        #: sessions pays per armed session, not per session.
        self._armed = {} if isinstance(ctx.sim, ScaleSimulator) else None
        self._slow_ticks = 0
        self._timer_proc = ctx.sim.spawn(self._timer_loop(), name="%s.timers" % name)

    def shutdown(self, interrupt=False):
        """Stop the timer loop (ends the simulation's pending work).

        With ``interrupt=True`` the timer process is torn down immediately
        instead of on its next tick — the crash path, and the way a test
        quiesces a stack without running out the clock.
        """
        self._shutdown = True
        if interrupt and self._timer_proc.alive:
            self._timer_proc.interrupt("stack shutdown")

    # ==================================================================
    # TCP socket operations
    # ==================================================================

    def tcp_config(self, **overrides):
        settings = dict(self.tcp_defaults)
        settings.update(overrides)
        return TCPConfig(**settings)

    def tcp_create(self, local_port=None, config=None):
        """Create an unconnected TCP session (plain call, no charges)."""
        if local_port is None:
            local_port = self.ports["tcp"].bind_ephemeral(self.env.local_ip)
        else:
            self.ports["tcp"].bind(self.env.local_ip, local_port)
        conn = TCPConnection(
            (self.env.local_ip, local_port), config=config or self.tcp_config()
        )
        return TCPSession(self, conn)

    def tcp_listen(self, session, backlog=5):
        if session.conn.state != TCPState.CLOSED:
            raise TCPError("listen on active session")
        session.conn.open_passive()
        session.backlog = max(1, backlog)
        self._tcp[(session.local[1], None, None)] = session

    def tcp_connect(self, session, remote):
        """Active open; blocks until ESTABLISHED or failure."""
        session.conn.open_active(remote)
        self._register(session)
        yield from self._tcp_drain(session)
        while True:
            conn = session.conn
            if conn.is_established:
                return
            if conn.state == TCPState.CLOSED:
                self._deregister(session)
                conn.raise_if_dead()
                raise TCPError("connection failed")
            yield session.notify.wait()

    def tcp_accept(self, listener):
        """Block until a completed connection is available; return it."""
        while True:
            if listener.accept_queue:
                child = listener.accept_queue.pop(0)
                return child
            if listener.conn.state != TCPState.LISTEN:
                raise TCPError("accept on non-listening session")
            yield listener.notify.wait()

    def _trace_send_entry(self, size):
        """Start a "send" trace for callers that entered the stack
        directly (placement socket APIs begin one at their own entry, in
        which case this is a no-op)."""
        tracer = getattr(self.ctx.accounting, "tracer", None)
        if (tracer is not None and tracer.enabled
                and tracer.current() is None):
            tracer.begin("send", host=self.name, size=size)

    def tcp_send(self, session, data):
        """Blocking send of all of ``data`` (charges the copyin path)."""
        p = self.ctx.params
        data = bytes(data)
        sent = 0
        if self._armed is not None:
            self._arm(session)
        self._trace_send_entry(len(data))
        yield self.ctx.charge_lock(Layer.ENTRY_COPYIN)
        while sent < len(data):
            taken = session.conn.send(data[sent:])
            if taken:
                if self.shared_buffers:
                    yield self.ctx.charge(Layer.ENTRY_COPYIN, p.mbuf_alloc)
                else:
                    self.ctx.crossings.data_copies += 1
                    yield self.ctx.charge_batch((
                        (Layer.ENTRY_COPYIN, p.mbuf_alloc),
                        (Layer.ENTRY_COPYIN,
                         p.copy_fixed + p.copy_per_byte * taken),
                    ))
                self.mbuf_stats.allocated += 1
                sent += taken
                yield from self._tcp_drain(session)
            else:
                yield session.notify.wait()
                session.conn.raise_if_dead()
        return sent

    def tcp_recv(self, session, max_bytes, timeout_us=None):
        """Blocking receive; returns b"" at EOF (peer closed).

        ``timeout_us`` gives SO_RCVTIMEO semantics: the call raises
        :class:`SocketTimeout` if no data arrives in time.
        """
        deadline = None if timeout_us is None else self.ctx.sim.now + timeout_us
        while True:
            conn = session.conn
            if conn.receivable():
                if session.last_rx_trace is not None:
                    # Join the inbound segment's timeline for the copyout.
                    adopt_trace(self.ctx.sim, session.last_rx_trace)
                    rx_time = session.last_rx_time
                    session.last_rx_time = None  # consume: record once
                    tracer = self.ctx.accounting.tracer
                    if (tracer is not None and tracer.enabled
                            and rx_time is not None):
                        waited = self.ctx.sim.now - rx_time
                        if waited > 0:
                            tracer.record_wait(
                                session.last_rx_trace, self.name,
                                "socket_queue", "queue", rx_time, waited)
                else:
                    tracer = self.ctx.accounting.tracer
                    if tracer is not None and tracer.requests is not None:
                        adopt_trace(self.ctx.sim, None)
                data = conn.receive(max_bytes)
                if self.shared_buffers:
                    yield self.ctx.charge(
                        Layer.COPYOUT_EXIT, self.ctx.params.proc_call
                    )
                else:
                    yield self.ctx.charge_copy(Layer.COPYOUT_EXIT, len(data))
                yield from self._tcp_drain(session)  # window updates
                return data
            if conn.at_eof():
                return b""
            conn.raise_if_dead()
            if conn.state == TCPState.CLOSED:
                return b""
            yield from self._wait_or_timeout(session.notify, deadline)

    def _wait_or_timeout(self, notifier, deadline):
        """Wait for a notifier firing, honouring an optional deadline."""
        if deadline is None:
            yield notifier.wait()
            return
        from repro.sim.events import any_of

        remaining = deadline - self.ctx.sim.now
        if remaining <= 0:
            raise SocketTimeout("receive timed out")
        yield any_of(
            self.ctx.sim, [notifier.wait(), self.ctx.sim.timeout(remaining)]
        )
        if self.ctx.sim.now >= deadline:
            raise SocketTimeout("receive timed out")

    def tcp_shutdown(self, session):
        """shutdown(SHUT_WR): send FIN after queued data, keep reading.

        The session stays where it is (unlike close, which migrates it in
        the library placement); the read half remains usable until the
        peer's FIN arrives.
        """
        session.conn.close()
        yield from self._tcp_drain(session)

    def tcp_close(self, session):
        """Close (FIN); does not linger for the handshake to finish."""
        session.conn.close()
        yield from self._tcp_drain(session)
        self._maybe_reap(session)

    def tcp_abort(self, session):
        session.conn.abort()
        yield from self._tcp_drain(session)
        self._maybe_reap(session)

    def tcp_poll(self, session):
        """Non-blocking readiness snapshot (select support)."""
        conn = session.conn
        return {
            "readable": conn.receivable() > 0
            or conn.at_eof()
            or bool(session.accept_queue)
            or conn.state == TCPState.CLOSED,
            "writable": conn.is_established and conn.snd_buffer.space() > 0,
            "error": conn.error is not None,
        }

    # ------------------------------------------------------------------
    # Session registration and migration
    # ------------------------------------------------------------------

    def _arm(self, session):
        """Enroll a session in the scale-mode tick registry (no-op on
        the default engine).

        A session re-enrolling after a quiescent stretch is credited the
        slow ticks it slept through: BSD's ``t_idle`` keeps counting on
        an idle connection, and tcp_output's idle-restart of the
        congestion window depends on it."""
        armed = self._armed
        if armed is None or session in armed:
            return
        detick = session._detick_slow
        if detick is not None:
            session.conn.t_idle += self._slow_ticks - detick
            session._detick_slow = None
        armed[session] = True

    def touch(self, session):
        """Public re-enrollment hook (e.g. enabling keepalive on an
        already-idle session must restart its ticks)."""
        self._arm(session)

    @staticmethod
    def _needs_ticks(conn):
        """Whether a session still needs the 200/500 ms tick stream."""
        if conn.delack_pending or conn.t_rtt:
            return True
        for ticks in conn.timers.values():
            if ticks:
                return True
        return conn.config.keepalive and conn.is_established

    def _register(self, session):
        lport = session.local[1]
        rip, rport = session.remote if session.remote else (None, None)
        self._tcp[(lport, rip, rport)] = session
        self._arm(session)

    def _deregister(self, session):
        lport = session.local[1]
        rip, rport = session.remote if session.remote else (None, None)
        self._tcp.pop((lport, rip, rport), None)

    def adopt_tcp_state(self, state, config=None):
        """Import a migrated TCP session into this stack (Section 3.2)."""
        conn = TCPConnection((0, 0), config=config or self.tcp_config())
        conn.import_state(state)
        session = TCPSession(self, conn, owns_port=False)
        self.clear_tombstone(conn.local[1], conn.remote)
        self._register(session)
        return session

    def tcp_migration_snapshot(self, session):
        """Sequence-space metadata a server records about a session that
        lives in this (library) stack — what re-registration replays."""
        conn = session.conn
        return {"snd_nxt": conn.snd_nxt, "rcv_nxt": conn.rcv_nxt}

    def export_tcp_session(self, session):
        """Export a session's state and remove it from this stack.

        The 4-tuple is tombstoned so stragglers still in this stack's
        input path do not trigger RSTs while the session lives elsewhere.
        """
        self._deregister(session)
        lport = session.local[1]
        rip, rport = session.remote if session.remote else (None, None)
        self.migrated_tombstones.add((lport, rip, rport))
        return session.conn.export_state()

    def clear_tombstone(self, local_port, remote):
        """Drop a tombstone (the session migrated back to this stack)."""
        rip, rport = remote if remote else (None, None)
        self.migrated_tombstones.discard((local_port, rip, rport))

    def _maybe_reap(self, session):
        """Deregister sessions that reached CLOSED."""
        if session.conn.state == TCPState.CLOSED:
            self._deregister(session)
            if session.owns_port:
                session.owns_port = False
                try:
                    self.ports["tcp"].release(self.env.local_ip, session.local[1])
                except KeyError:
                    pass  # already released

    # ==================================================================
    # UDP socket operations
    # ==================================================================

    def udp_create(self, local_port=None, hiwat=UDPSession.DEFAULT_HIWAT):
        if local_port is None:
            local_port = self.ports["udp"].bind_ephemeral(self.env.local_ip)
        else:
            self.ports["udp"].bind(self.env.local_ip, local_port)
        session = UDPSession(self, (self.env.local_ip, local_port), hiwat=hiwat)
        self._udp[(local_port, None, None)] = session
        return session

    def udp_connect(self, session, remote):
        """Pin the remote endpoint (BSD 'connected' UDP)."""
        self._udp.pop((session.local[1], None, None), None)
        session.remote = remote
        self._udp[(session.local[1], remote[0], remote[1])] = session

    def udp_send(self, session, data, dst=None):
        """Send one datagram (blocking only on the device queue)."""
        p = self.ctx.params
        if dst is None:
            dst = session.remote
        if dst is None:
            raise ValueError("unconnected UDP send needs a destination")
        self._trace_send_entry(len(data))
        if self.udp_send_copies and not self.shared_buffers:
            self.ctx.crossings.data_copies += 1
            yield self.ctx.charge_batch((
                (Layer.ENTRY_COPYIN, p.socket_layer),
                (Layer.ENTRY_COPYIN,
                 p.copy_fixed + p.copy_per_byte * len(data)),
                (Layer.ENTRY_COPYIN, p.mbuf_alloc),
            ))
        else:
            # The library references the caller's data in place: entry is
            # a procedure call (Table 4: 6-7 us flat for library UDP).
            yield self.ctx.charge(Layer.ENTRY_COPYIN, p.proc_call)
        self.mbuf_stats.allocated += 1
        datagram = udp.encapsulate(
            self.env.local_ip, dst[0], session.local[1], dst[1], data
        )
        pairs = (
            (Layer.TCP_UDP_OUTPUT,
             p.checksum_fixed + p.checksum_per_byte * len(datagram)),
            (Layer.TCP_UDP_OUTPUT,
             p.header_build + p.socket_layer + self.ctx.locks.lock_cost),
        )
        if dispatch.TRAIN_DISPATCH and self.env.arp_lookup is not None:
            yield from self._ip_output_train(ip.PROTO_UDP, dst[0], datagram,
                                             pairs)
        else:
            yield self.ctx.charge_batch(pairs)
            yield from self.ip_output(ip.PROTO_UDP, dst[0], datagram)

    def udp_recv(self, session, timeout_us=None):
        """Blocking receive of one datagram; returns (src_addr, payload).

        A pending ICMP error on a connected session is raised (once), as
        BSD reports ECONNREFUSED on the next operation.  ``timeout_us``
        gives SO_RCVTIMEO semantics (:class:`SocketTimeout`).
        """
        deadline = None if timeout_us is None else self.ctx.sim.now + timeout_us
        while not session.queue:
            if session.error is not None:
                error, session.error = session.error, None
                raise error
            yield from self._wait_or_timeout(session.notify, deadline)
        src, payload, rx_trace, enqueued_at = session.dequeue()
        if rx_trace is not None:
            adopt_trace(self.ctx.sim, rx_trace)
            tracer = self.ctx.accounting.tracer
            if tracer is not None and tracer.enabled:
                waited = self.ctx.sim.now - enqueued_at
                if waited > 0:
                    tracer.record_wait(rx_trace, self.name, "socket_queue",
                                       "queue", enqueued_at, waited)
        else:
            tracer = self.ctx.accounting.tracer
            if tracer is not None and tracer.requests is not None:
                # Selective mode: this datagram is untraced — clear any
                # stale context so the copyout is not misattributed.
                adopt_trace(self.ctx.sim, None)
        if self.shared_buffers:
            yield self.ctx.charge(Layer.COPYOUT_EXIT, self.ctx.params.proc_call)
        else:
            yield self.ctx.charge_copy(Layer.COPYOUT_EXIT, len(payload))
        return src, payload

    def udp_close(self, session):
        key_any = (session.local[1], None, None)
        if session.remote:
            self._udp.pop(
                (session.local[1], session.remote[0], session.remote[1]), None
            )
        self._udp.pop(key_any, None)
        try:
            self.ports["udp"].release(self.env.local_ip, session.local[1])
        except KeyError:
            pass

    def adopt_udp_session(self, local, remote=None,
                          hiwat=UDPSession.DEFAULT_HIWAT):
        """Install a migrated (server-created) UDP session."""
        session = UDPSession(self, local, hiwat=hiwat)
        session.remote = remote
        if remote:
            self._udp[(local[1], remote[0], remote[1])] = session
        else:
            self._udp[(local[1], None, None)] = session
        return session

    def udp_poll(self, session):
        return {"readable": bool(session.queue), "writable": True,
                "error": False}

    # ==================================================================
    # IP output
    # ==================================================================

    def ip_output(self, proto, dst_ip, payload, ttl=None):
        """Wrap ``payload`` in IP (+Ethernet) and transmit, fragmenting to
        the MTU when necessary."""
        p = self.ctx.params
        self._ip_ident = (self._ip_ident + 1) & 0xFFFF
        yield self.ctx.charge(Layer.IP_OUTPUT, p.ip_output_overhead)
        packet = ip.encapsulate(
            self.env.local_ip, dst_ip, proto, payload, ident=self._ip_ident,
            ttl=ttl if ttl is not None else ip.DEFAULT_TTL,
        )
        next_hop = self.env.route(dst_ip)
        for frag in ip.fragment(packet, ethernet.MTU):
            mac = yield from self.env.resolve(self.ctx, next_hop)
            frame = ethernet.encapsulate(
                mac, self.env.local_mac, ethernet.ETHERTYPE_IP, frag
            )
            yield from self.env.send_frame(self.ctx, frame)

    def _tcp_drain(self, session):
        """Transmit everything the TCP machine queued (charging the
        tcp_output layer costs)."""
        if self._armed is not None:
            self._arm(session)
        proc = self.ctx.sim.current
        tid = proc.trace_ctx if proc is not None else None
        if tid is not None:
            session.last_tx_trace = tid
        conn = session.conn
        while conn._outbox:  # has_output() inlined (hot drain loop)
            for seg in conn.take_output():
                p = self.ctx.params
                yield self.ctx.charge_batch((
                    (Layer.TCP_UDP_OUTPUT,
                     p.header_build + p.socket_layer
                     + self.ctx.locks.lock_cost),
                    (Layer.TCP_UDP_OUTPUT,
                     p.checksum_fixed
                     + p.checksum_per_byte * (len(seg.payload) + 20)),
                ))
                packed = seg.pack(self.env.local_ip, conn.remote[0])
                yield from self.ip_output(ip.PROTO_TCP, conn.remote[0], packed)
        self._maybe_reap(session)

    def _ip_output_train(self, proto, dst_ip, payload, pre_pairs):
        """:meth:`ip_output` with the caller's pending charges fused in.

        Bit-identical to ``charge_batch(pre_pairs)`` followed by
        ``ip_output``: every (layer, cost) pair keeps its own CPU
        acquire/sleep/release point and the same sequence, only the pure
        computation between them (encapsulation, routing) moves.  The
        common single-fragment case additionally fuses the resolve entry
        charge (``env.resolve`` charges ETHER_OUTPUT proc_call *before*
        its cache probe, so probing after the batch is the same schedule)
        and probes the ARP cache with a plain call, falling to the
        ``resolve_miss`` generator only on a miss.  Fragmented packets
        take the legacy per-fragment path.
        """
        p = self.ctx.params
        env = self.env
        self._ip_ident = (self._ip_ident + 1) & 0xFFFF
        packet = ip.encapsulate(
            env.local_ip, dst_ip, proto, payload, ident=self._ip_ident,
            ttl=ip.DEFAULT_TTL,
        )
        if len(packet) > ethernet.MTU:
            yield self.ctx.charge_batch(
                pre_pairs + ((Layer.IP_OUTPUT, p.ip_output_overhead),))
            next_hop = env.route(dst_ip)
            for frag in ip.fragment(packet, ethernet.MTU):
                mac = yield from env.resolve(self.ctx, next_hop)
                frame = ethernet.encapsulate(
                    mac, env.local_mac, ethernet.ETHERTYPE_IP, frag
                )
                yield from env.send_frame(self.ctx, frame)
            return
        yield self.ctx.charge_batch(
            pre_pairs + ((Layer.IP_OUTPUT, p.ip_output_overhead),
                         (Layer.ETHER_OUTPUT, p.proc_call)))
        next_hop = env.route(dst_ip)
        mac = env.arp_lookup(next_hop)
        if mac is None:
            mac = yield from env.resolve_miss(self.ctx, next_hop)
        frame = ethernet.encapsulate(
            mac, env.local_mac, ethernet.ETHERTYPE_IP, packet
        )
        yield from env.send_frame(self.ctx, frame)

    def _drain_train(self, session):
        """:meth:`_tcp_drain` with the per-segment output charges and the
        single-fragment IP output fused into one batch per segment."""
        if self._armed is not None:
            self._arm(session)
        proc = self.ctx.sim.current
        tid = proc.trace_ctx if proc is not None else None
        if tid is not None:
            session.last_tx_trace = tid
        conn = session.conn
        p = self.ctx.params
        fast = self.env.arp_lookup is not None
        out_cost = p.header_build + p.socket_layer + self.ctx.locks.lock_cost
        while conn._outbox:  # has_output() inlined (hot drain loop)
            for seg in conn.take_output():
                pairs = (
                    (Layer.TCP_UDP_OUTPUT, out_cost),
                    (Layer.TCP_UDP_OUTPUT,
                     p.checksum_fixed
                     + p.checksum_per_byte * (len(seg.payload) + 20)),
                )
                packed = seg.pack(self.env.local_ip, conn.remote[0])
                if fast:
                    yield from self._ip_output_train(
                        ip.PROTO_TCP, conn.remote[0], packed, pairs)
                else:
                    yield self.ctx.charge_batch(pairs)
                    yield from self.ip_output(
                        ip.PROTO_TCP, conn.remote[0], packed)
        self._maybe_reap(session)

    # ==================================================================
    # Receive path
    # ==================================================================

    def input_frame(self, frame):
        """Process one Ethernet frame handed up by the packet filter.

        Charges the receive-path layers: mbuf packaging, IP input, TCP/UDP
        input (including the checksum over the data), and user wakeup.
        """
        p = self.ctx.params
        yield self.ctx.charge(
            Layer.MBUF_QUEUE, p.mbuf_alloc + self.ctx.locks.lock_cost
        )
        self.mbuf_stats.allocated += 1
        try:
            _eth, packet = ethernet.decapsulate(frame)
        except ValueError:
            return
        yield self.ctx.charge(Layer.IPINTR, p.ipintr_overhead)
        try:
            packet = self.reassembler.input(packet)
        except ValueError:
            return
        if packet is None:
            return  # fragment: incomplete
        try:
            header, payload = ip.decapsulate(packet, verify=True)
        except ValueError:
            # A corrupted IP header must cost this one frame, not the
            # input loop that carried it — every later frame on the
            # session funnels through the same consumer process.
            self.ip_input_errors += 1
            return
        if header.dst != self.env.local_ip:
            # Not addressed to this host.  The in-kernel placements catch
            # whole protocols with one filter, so on a shared segment a
            # stack sees its neighbors' traffic; answering it (RSTs, port
            # unreachables) or delivering it to a same-port session would
            # corrupt the neighbors' sessions.  BSD's ip_input drops here
            # unless the host is a forwarder; so do we.
            self.not_for_host += 1
            return
        if header.proto == ip.PROTO_TCP:
            yield from self._tcp_input(header, payload)
        elif header.proto == ip.PROTO_UDP:
            yield from self._udp_input(header, payload, packet)
        elif header.proto == ip.PROTO_ICMP:
            yield from self._icmp_input(header, payload)

    def input_train(self, frames, adopt=False):
        """Process a train of frames with the per-frame charge prologues
        fused and the TCP/UDP input paths inlined.

        Bit-identical to ``for f in frames: yield from input_frame(f)``
        (with a per-frame ``adopt_trace`` first when ``adopt`` is set):
        every (layer, cost) pair keeps its own CPU acquire/sleep/release
        point in the same order, and only pure computation (decapsulation,
        demux dict probes) moves across charge boundaries.  Early-exit
        paths charge exactly the pairs the legacy path had charged by
        that point.
        """
        ctx = self.ctx
        p = ctx.params
        sim = ctx.sim
        charge = ctx.charge
        charge_batch = ctx.charge_batch
        mbuf_cost = p.mbuf_alloc + ctx.locks.lock_cost
        in_cost = p.header_build + ctx.locks.lock_cost + p.socket_layer
        checksum_fixed = p.checksum_fixed
        checksum_per_byte = p.checksum_per_byte
        mbuf_stats = self.mbuf_stats
        local_ip = self.env.local_ip
        for frame in frames:
            if adopt:
                proc = sim.current
                if proc is not None:
                    proc.trace_ctx = getattr(frame, "trace_id", None)
            # ethernet.decapsulate is pure: hoisting it before the mbuf
            # charge lets the common case fuse mbuf + ipintr into one
            # batch while a truncated frame still costs exactly the mbuf
            # charge the legacy path had issued before failing.
            try:
                _eth, packet = ethernet.decapsulate(frame)
            except ValueError:
                yield charge(Layer.MBUF_QUEUE, mbuf_cost)
                mbuf_stats.allocated += 1
                continue
            yield charge_batch((
                (Layer.MBUF_QUEUE, mbuf_cost),
                (Layer.IPINTR, p.ipintr_overhead),
            ))
            mbuf_stats.allocated += 1
            try:
                packet = self.reassembler.input(packet)
            except ValueError:
                continue
            if packet is None:
                continue  # fragment: incomplete
            try:
                header, payload = ip.decapsulate(packet, verify=True)
            except ValueError:
                self.ip_input_errors += 1
                continue
            if header.dst != local_ip:
                self.not_for_host += 1
                continue
            proto = header.proto
            if proto == ip.PROTO_TCP:
                # _tcp_input inlined; TCPSegment.unpack is pure, so the
                # checksum charge fuses with the header/lock/socket
                # charge for well-formed segments.
                try:
                    seg = TCPSegment.unpack(header.src, header.dst, payload)
                except ValueError:
                    yield ctx.charge_checksum(Layer.TCP_UDP_INPUT,
                                              len(payload))
                    continue  # corrupt segment: drop silently
                yield charge_batch((
                    (Layer.TCP_UDP_INPUT,
                     checksum_fixed + checksum_per_byte * len(payload)),
                    (Layer.TCP_UDP_INPUT, in_cost),
                ))
                if (seg.dst_port, header.src,
                        seg.src_port) in self.migrated_tombstones:
                    continue  # straggler for a migrated session
                session = self._tcp_demux(header.src, seg)
                if session is None:
                    self.unmatched_tcp += 1
                    rst = rst_for(seg)
                    if rst is not None:
                        packed = rst.pack(local_ip, header.src)
                        yield from self.ip_output(ip.PROTO_TCP, header.src,
                                                  packed)
                    continue
                conn = session.conn
                was_listener = conn.state == TCPState.LISTEN
                if not was_listener and self._armed is not None:
                    self._arm(session)
                proc = sim.current
                session.last_rx_trace = (proc.trace_ctx
                                         if proc is not None else None)
                session.last_rx_time = sim._now
                conn.segment_arrives(seg, src_ip=header.src)
                if was_listener and conn.state == TCPState.SYN_RECEIVED:
                    self._register(session)
                if session.notify.waiters:
                    yield ctx.charge_wakeup(Layer.WAKEUP_USER)
                session.notify.fire()
                if session.selected:
                    self.select_notify.fire()
                yield from self._drain_train(session)
                self._promote_child(session)
                if conn.state == TCPState.CLOSED:
                    self._maybe_reap(session)
            elif proto == ip.PROTO_UDP:
                # _udp_input inlined; udp.decapsulate is pure, so the
                # three input charges fuse for well-formed datagrams.
                try:
                    uh, data = udp.decapsulate(header.src, header.dst,
                                               payload)
                except ValueError:
                    yield ctx.charge_checksum(Layer.TCP_UDP_INPUT,
                                              len(payload))
                    continue
                yield charge_batch((
                    (Layer.TCP_UDP_INPUT,
                     checksum_fixed + checksum_per_byte * len(payload)),
                    (Layer.TCP_UDP_INPUT,
                     p.header_build + ctx.locks.lock_cost),
                    (Layer.TCP_UDP_INPUT, p.socket_layer),
                ))
                session = self._udp.get((uh.dst_port, header.src,
                                         uh.src_port))
                if session is None:
                    session = self._udp.get((uh.dst_port, None, None))
                if session is None:
                    self.unmatched_udp += 1
                    yield from self._send_port_unreachable(header, packet)
                    continue
                session.enqueue((header.src, uh.src_port), data,
                                trace=current_trace(sim))
                if session.notify.waiters:
                    yield ctx.charge_wakeup(Layer.WAKEUP_USER)
                session.notify.fire()
                if session.selected:
                    self.select_notify.fire()
            elif proto == ip.PROTO_ICMP:
                yield from self._icmp_input(header, payload)

    def _tcp_input(self, header, payload):
        p = self.ctx.params
        yield self.ctx.charge_checksum(Layer.TCP_UDP_INPUT, len(payload))
        try:
            seg = TCPSegment.unpack(header.src, header.dst, payload)
        except ValueError:
            return  # corrupt segment: drop silently, as TCP does
        yield self.ctx.charge(
            Layer.TCP_UDP_INPUT,
            p.header_build + self.ctx.locks.lock_cost + p.socket_layer,
        )
        if (seg.dst_port, header.src, seg.src_port) in self.migrated_tombstones:
            return  # straggler for a migrated session: drop silently
        session = self._tcp_demux(header.src, seg)
        if session is None:
            self.unmatched_tcp += 1
            rst = rst_for(seg)
            if rst is not None:
                packed = rst.pack(self.env.local_ip, header.src)
                yield from self.ip_output(ip.PROTO_TCP, header.src, packed)
            return
        conn = session.conn
        was_listener = conn.state == TCPState.LISTEN
        sim = self.ctx.sim
        if not was_listener and self._armed is not None:
            self._arm(session)
        proc = sim.current
        session.last_rx_trace = proc.trace_ctx if proc is not None else None
        session.last_rx_time = sim._now
        conn.segment_arrives(seg, src_ip=header.src)
        if was_listener and conn.state == TCPState.SYN_RECEIVED:
            self._register(session)
        yield from self._wake(session.notify, session.selected)
        yield from self._tcp_drain(session)
        self._promote_child(session)
        if conn.state == TCPState.CLOSED:
            self._maybe_reap(session)

    def _tcp_demux(self, src_ip, seg):
        """Find the session for a segment: exact 4-tuple, then listener."""
        exact = self._tcp.get((seg.dst_port, src_ip, seg.src_port))
        if exact is not None:
            return exact
        listener = self._tcp.get((seg.dst_port, None, None))
        if listener is None:
            return None
        # A listener never processes segments itself: each SYN gets a
        # fresh child connection (BSD's sonewconn), bounded by the backlog.
        # Anything else — say a straggler ACK from a connection that died
        # with a crashed server incarnation — must NOT clone a child: the
        # unmatched path answers it with a RST addressed from the segment.
        if not seg.flags & SYN:
            return None
        if len(listener.children) + len(listener.accept_queue) >= listener.backlog:
            return None  # backlog full: drop, the peer will retry
        # Children inherit the listener's buffer sizes and options, as
        # BSD-accepted sockets do.
        lcfg = listener.conn.config
        child_conn = TCPConnection(
            (self.env.local_ip, seg.dst_port),
            config=self.tcp_config(
                snd_buf=listener.conn.snd_buffer.hiwat,
                rcv_buf=listener.conn.rcv_buffer.hiwat,
                nodelay=lcfg.nodelay,
                delayed_ack=lcfg.delayed_ack,
                mss=lcfg.mss,
                window_scale=lcfg.window_scale,
            ),
        )
        child_conn.open_passive()
        child = TCPSession(self, child_conn, owns_port=False)
        child.parent = listener
        listener.children[(src_ip, seg.src_port)] = child
        return child

    def _promote_child(self, session):
        """Move a completed child connection onto its listener's queue."""
        listener = session.parent
        if listener is None:
            return
        if session.conn.state in (TCPState.ESTABLISHED, TCPState.CLOSE_WAIT):
            key = (session.remote[0], session.remote[1])
            if key in listener.children:
                del listener.children[key]
                listener.accept_queue.append(session)
                listener.notify.fire()
        elif session.conn.state == TCPState.CLOSED:
            key = (session.remote[0], session.remote[1]) if session.remote else None
            listener.children.pop(key, None)

    def _udp_input(self, header, payload, packet=None):
        p = self.ctx.params
        yield self.ctx.charge_checksum(Layer.TCP_UDP_INPUT, len(payload))
        try:
            uh, data = udp.decapsulate(header.src, header.dst, payload)
        except ValueError:
            return
        yield self.ctx.charge_batch((
            (Layer.TCP_UDP_INPUT, p.header_build + self.ctx.locks.lock_cost),
            (Layer.TCP_UDP_INPUT, p.socket_layer),
        ))
        session = self._udp.get((uh.dst_port, header.src, uh.src_port))
        if session is None:
            session = self._udp.get((uh.dst_port, None, None))
        if session is None:
            self.unmatched_udp += 1
            if packet is not None:
                yield from self._send_port_unreachable(header, packet)
            return
        session.enqueue((header.src, uh.src_port), data,
                        trace=current_trace(self.ctx.sim))
        yield from self._wake(session.notify, session.selected)

    # ==================================================================
    # ICMP (the "exceptional packets" of Section 3.1)
    # ==================================================================

    def _send_port_unreachable(self, header, original_packet):
        message = icmp.ICMPMessage.port_unreachable(original_packet)
        self.icmp_errors_sent += 1
        yield self.ctx.charge(
            Layer.TCP_UDP_OUTPUT, self.ctx.params.header_build
        )
        yield from self.ip_output(ip.PROTO_ICMP, header.src, message.pack())

    def _icmp_input(self, header, payload):
        p = self.ctx.params
        yield self.ctx.charge_checksum(Layer.TCP_UDP_INPUT, len(payload))
        try:
            message = icmp.ICMPMessage.unpack(payload)
        except ValueError:
            return
        yield self.ctx.charge(Layer.TCP_UDP_INPUT, p.header_build)
        if message.type == icmp.TYPE_ECHO_REQUEST:
            self.icmp_echoes_answered += 1
            reply = message.echo_reply()
            yield from self.ip_output(ip.PROTO_ICMP, header.src, reply.pack())
        elif message.type == icmp.TYPE_ECHO_REPLY:
            event = self._pings.pop((message.ident, message.seq), None)
            if event is not None and not event.triggered:
                event.succeed(("reply", header.src, self.ctx.sim.now))
        elif message.is_error:
            self._icmp_error(header, message)

    def _icmp_error(self, outer_header, message):
        """Deliver an ICMP error to the session that provoked it."""
        quoted = message.quoted_packet()
        try:
            inner = ip.IPHeader.unpack(quoted, verify=False)
        except ValueError:
            return
        if inner.proto == ip.PROTO_ICMP and len(quoted) >= inner.header_len + 8:
            # An error about one of our echo probes: resolve the pending
            # ping with who reported it (the traceroute mechanism).
            ident = int.from_bytes(
                quoted[inner.header_len + 4 : inner.header_len + 6], "big"
            )
            seq = int.from_bytes(
                quoted[inner.header_len + 6 : inner.header_len + 8], "big"
            )
            event = self._pings.pop((ident, seq), None)
            if event is not None and not event.triggered:
                kind = ("exceeded"
                        if message.type == icmp.TYPE_TIME_EXCEEDED
                        else "unreachable")
                event.succeed((kind, outer_header.src, self.ctx.sim.now))
            return
        if inner.proto != ip.PROTO_UDP or len(quoted) < inner.header_len + 4:
            return  # TCP errors are left to its own retransmit machinery
        sport = int.from_bytes(
            quoted[inner.header_len : inner.header_len + 2], "big"
        )
        dport = int.from_bytes(
            quoted[inner.header_len + 2 : inner.header_len + 4], "big"
        )
        error = PortUnreachable(
            "udp port %d unreachable at %s" % (dport, inner.dst)
        )
        session = self._udp.get((sport, inner.dst, dport))
        if session is not None:
            session.error = error
            session.notify.fire()
        elif self.icmp_error_hook is not None:
            self.icmp_error_hook(ip.PROTO_UDP, sport, (inner.dst, dport), error)

    def icmp_probe(self, dst_ip, ttl=None, payload_size=56,
                   timeout_us=5_000_000.0):
        """Send one ICMP echo probe; returns (status, reporter_ip, rtt_us).

        ``status`` is "reply" (the target answered), "exceeded" (a router
        killed the TTL — the traceroute signal), "unreachable", or
        "timeout".  ``reporter_ip`` identifies who answered.
        """
        from repro.sim.events import any_of

        self._ping_ident = (self._ping_ident + 1) & 0xFFFF
        key = (self._ping_ident, 1)
        request = icmp.ICMPMessage.echo_request(
            key[0], key[1], payload=b"\x00" * payload_size
        )
        event = self.ctx.sim.event("ping")
        self._pings[key] = event
        started = self.ctx.sim.now
        try:
            yield from self.ip_output(ip.PROTO_ICMP, dst_ip, request.pack(),
                                      ttl=ttl)
        except arp.ArpTimeout:
            self._pings.pop(key, None)
            return ("timeout", None, None)
        timeout = self.ctx.sim.timeout(timeout_us)
        winner, value = yield any_of(self.ctx.sim, [event, timeout])
        if winner is event:
            status, reporter, when = value
            return (status, reporter, when - started)
        self._pings.pop(key, None)
        return ("timeout", None, None)

    def ping(self, dst_ip, payload_size=56, timeout_us=5_000_000.0):
        """Send an ICMP echo request; returns the RTT in microseconds, or
        None on timeout.  (The simulated /sbin/ping.)"""
        status, _reporter, rtt = yield from self.icmp_probe(
            dst_ip, payload_size=payload_size, timeout_us=timeout_us
        )
        return rtt if status == "reply" else None

    def traceroute(self, dst_ip, max_hops=16, timeout_us=3_000_000.0):
        """Discover the path to ``dst_ip`` hop by hop.

        Returns a list of (hop_number, reporter_ip_or_None, rtt_us_or_None)
        ending at the target (or after ``max_hops``).
        """
        hops = []
        for ttl in range(1, max_hops + 1):
            status, reporter, rtt = yield from self.icmp_probe(
                dst_ip, ttl=ttl, timeout_us=timeout_us
            )
            if status == "timeout":
                hops.append((ttl, None, None))
            else:
                hops.append((ttl, reporter, rtt))
                if status == "reply":
                    break
        return hops

    def _wake(self, notifier, selected=False):
        """Fire a notifier, charging the wakeup cost if anyone is waiting."""
        if notifier.waiters:
            yield self.ctx.charge_wakeup(Layer.WAKEUP_USER)
        notifier.fire()
        if selected:
            self.select_notify.fire()

    # ==================================================================
    # Timers
    # ==================================================================

    def _timer_loop(self):
        """Drive TCP's 200 ms fast and 500 ms slow timers.

        On the default engine every session the stack owns is scanned
        each tick, as 1993 BSD's ``tcp_slowtimo`` did.  In scale mode
        the armed-session registry replaces that linear scan: only
        sessions with live timer work are visited, quiescent ones park
        until an API call, arriving segment, or drain re-arms them (see
        :meth:`_arm`)."""
        elapsed = 0.0
        next_slow = SLOW_TICK_US
        while not self._shutdown:
            yield Timeout(FAST_TICK_US)
            elapsed += FAST_TICK_US
            slow = elapsed >= next_slow
            if slow:
                next_slow += SLOW_TICK_US
                self._slow_ticks += 1
                # Telemetry piggybacks on the slow tick: pull gauges get
                # sampled here without any dedicated simulation process.
                # Every stack's timer loop ticks at the same instants, so
                # the registry dedupes by simulated time.
                m = self.metrics
                if m is not None and m.enabled:
                    m.sample()
            armed = self._armed
            sessions = list(self._tcp.values()) if armed is None else list(armed)
            tracer = self.ctx.accounting.tracer
            trace_rexmt = tracer is not None and tracer.enabled
            for session in sessions:
                conn = session.conn
                if conn.state == TCPState.CLOSED:
                    self._maybe_reap(session)
                    if armed is not None:
                        armed.pop(session, None)
                        session._detick_slow = None
                    continue
                conn.tick_fast()
                if slow:
                    if trace_rexmt and session.last_tx_trace is not None:
                        # Observe an RTO episode: if this slow tick fires
                        # the retransmit timer, the interval the sender
                        # just sat out (approximated by the pre-backoff
                        # RTO) is loss-recovery time on the last traced
                        # outbound segment's request.  Pure observation —
                        # tick_slow runs identically either way.
                        before = conn.stats.retransmits
                        rto_us = conn.rtt.rto_ticks() * SLOW_TICK_US
                        conn.tick_slow()
                        if conn.stats.retransmits > before:
                            now = self.ctx.sim.now
                            tracer.record_wait(
                                session.last_tx_trace, self.name,
                                "tcp_rexmt", "loss-recovery",
                                now - rto_us, rto_us)
                    else:
                        conn.tick_slow()
                if conn.has_output():
                    yield from self._tcp_drain(session)
                    yield from self._wake(session.notify, session.selected)
                elif slow and conn.state == TCPState.CLOSED:
                    yield from self._wake(session.notify, session.selected)
                if armed is not None:
                    if conn.state == TCPState.CLOSED:
                        self._maybe_reap(session)
                        armed.pop(session, None)
                        session._detick_slow = None
                    elif slow and not self._needs_ticks(conn):
                        armed.pop(session, None)
                        session._detick_slow = self._slow_ticks

    # ==================================================================
    # Introspection
    # ==================================================================

    def tcp_session_count(self):
        return len(self._tcp)

    def udp_session_count(self):
        return len(self._udp)
