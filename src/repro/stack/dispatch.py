"""Batched packet-train dispatch switch.

The train-dispatch paths (:meth:`NetworkStack.input_train`, the kernel's
train interrupt loop, the fused charge batches on the send path) are
bit-identical to the legacy per-frame paths by construction: every
``(layer, cost)`` pair keeps its own CPU acquire/sleep/release point
(see :meth:`repro.stack.context.ExecutionContext.charge_batch`), and only
pure Python computation moves relative to the charges.  The switch exists
so the speedup can be *measured* instead of asserted — the wall-clock
benchmark (:mod:`repro.analysis.bench_wallclock`) runs every harness both
ways and reports the Python-call-volume ratio — and so a suspected
batching bug can be bisected by flipping one flag.

Components read the flag when they are built (loops are chosen at spawn
time) and on the per-call send fast paths, so flipping it between world
constructions is enough for an A/B run in one process.  Set
``REPRO_TRAIN_DISPATCH=0`` in the environment to default it off.
"""

import os

TRAIN_DISPATCH = os.environ.get("REPRO_TRAIN_DISPATCH", "1") != "0"


def train_dispatch_enabled():
    return TRAIN_DISPATCH


def set_train_dispatch(enabled):
    """Flip the dispatch mode; returns the previous value."""
    global TRAIN_DISPATCH
    previous = TRAIN_DISPATCH
    TRAIN_DISPATCH = bool(enabled)
    return previous
