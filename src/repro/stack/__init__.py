"""One protocol engine, three placements.

:mod:`repro.stack.context` supplies the execution context (CPU, cost
model, lock package, instrumentation) under which the shared protocol
engine (:mod:`repro.stack.engine`) runs — in the kernel, in the UX
server, or in the application's protocol library.
"""

from repro.stack.context import ExecutionContext
from repro.stack.instrument import Layer, LayerAccounting
from repro.stack.engine import NetworkStack, SocketTimeout

__all__ = [
    "ExecutionContext",
    "Layer",
    "LayerAccounting",
    "NetworkStack",
    "SocketTimeout",
]
