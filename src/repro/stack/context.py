"""The execution context: where (and how expensively) protocol code runs.

An :class:`ExecutionContext` binds the shared protocol engine to one
placement: it knows which CPU to charge, at what scheduling priority, with
which synchronization package (lightweight locks in the kernel and the
protocol library; the simulated-spl machinery in the UX server), and which
:class:`~repro.stack.instrument.LayerAccounting` to attribute costs to.
"""

from repro.hw.cpu import Priority
from repro.sim.process import Charge
from repro.sim.sync import Condition, Lock
from repro.stack.instrument import CrossingCounter, LayerAccounting


class LockPackage:
    """Cost model of a synchronization package.

    The paper attributes the UX server's slow tcp_output/mbuf/wakeup paths
    to its "priority levels and locks" machinery, later replaced with
    lighter-weight versions (footnote 4).  ``lock_cost`` is charged per
    protocol-entry synchronization; ``wakeup_cost`` per thread wakeup.
    """

    def __init__(self, name, lock_cost, wakeup_cost):
        self.name = name
        self.lock_cost = lock_cost
        self.wakeup_cost = wakeup_cost


def light_locks(params):
    """The library/kernel lightweight package."""
    return LockPackage("light", params.lock_light, params.wakeup_light)


def spl_locks(params):
    """The UX server's simulated-spl package."""
    return LockPackage("spl", params.lock_spl, params.wakeup_spl)


class ExecutionContext:
    """Everything the protocol engine needs to run in one placement."""

    def __init__(self, sim, cpu, priority=Priority.APPLICATION,
                 locks=None, accounting=None, crossings=None, name=""):
        self.sim = sim
        self.cpu = cpu
        self.params = cpu.params
        self.priority = priority
        self.locks = locks if locks is not None else light_locks(cpu.params)
        self.accounting = accounting if accounting is not None else LayerAccounting()
        self.crossings = crossings if crossings is not None else CrossingCounter()
        self.name = name
        #: Charges are immutable (the per-execution state lives in the
        #: Process), so identical requests — and protocol costs repeat
        #: constantly — can share one object instead of reallocating.
        #: Keys are ``(layer, cost)`` for singles and the pairs tuple
        #: for batches; the shapes cannot collide.
        self._charge_cache = {}

    # ------------------------------------------------------------------
    # Charging helpers.  Each returns a :class:`~repro.sim.process.Charge`
    # request that the process machinery executes directly — either
    # ``yield ctx.charge(...)`` (fastest) or the legacy
    # ``yield from ctx.charge(...)`` (one tiny compatibility frame).
    # Side effects such as crossing counts happen at call time, which is
    # indistinguishable from the simulation's point of view because
    # callers always yield the charge immediately.
    # ------------------------------------------------------------------

    def charge(self, layer, cost):
        """Charge ``cost`` microseconds attributed to ``layer``.

        Cache hits use ``in`` + subscript rather than ``dict.get``:
        both run as bytecode, not as a method call, and this is the
        hottest lookup in the simulator.
        """
        cache = self._charge_cache
        key = (layer, cost)
        if key in cache:
            return cache[key]
        charge = cache[key] = Charge(
            self.cpu, self.priority, self.accounting, ((layer, cost),)
        )
        return charge

    def charge_batch(self, charges):
        """Charge several ``(layer, cost)`` pairs back to back.

        Each pair keeps its own CPU acquire/release point, so scheduling
        (and therefore every simulated metric) is identical to issuing
        the charges one ``charge()`` at a time — only the Python
        overhead between the pairs is fused away.
        """
        cache = self._charge_cache
        if charges in cache:
            return cache[charges]
        charge = cache[charges] = Charge(
            self.cpu, self.priority, self.accounting, charges
        )
        return charge

    def charge_copy(self, layer, nbytes):
        """A main-memory copy of ``nbytes``."""
        p = self.params
        self.crossings.data_copies += 1
        return self.charge(layer, p.copy_fixed + p.copy_per_byte * nbytes)

    def charge_checksum(self, layer, nbytes):
        p = self.params
        return self.charge(
            layer, p.checksum_fixed + p.checksum_per_byte * nbytes
        )

    def charge_lock(self, layer):
        """One protocol-entry synchronization (package-dependent cost)."""
        return self.charge(layer, self.locks.lock_cost)

    def charge_wakeup(self, layer):
        """Waking a blocked thread (package-dependent cost)."""
        return self.charge(layer, self.locks.wakeup_cost)

    def charge_boundary_crossing(self, layer):
        """A user/kernel protection boundary crossing (trap or return)."""
        self.crossings.user_kernel += 1
        return self.charge(layer, self.params.trap)

    # ------------------------------------------------------------------
    # Synchronization objects in this context
    # ------------------------------------------------------------------

    def lock(self, name=""):
        return Lock(self.sim, name="%s.%s" % (self.name, name))

    def condition(self, lock=None, name=""):
        return Condition(self.sim, lock, name="%s.%s" % (self.name, name))

    def __repr__(self):
        return "<ExecutionContext %s prio=%d locks=%s>" % (
            self.name,
            self.priority,
            self.locks.name,
        )
