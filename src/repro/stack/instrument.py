"""Per-layer latency accounting — the instrumentation behind Table 4.

The paper determined "the time spent in the various protocol layers using
a high-resolution timer"; we accumulate the simulated CPU charges instead,
attributed to the same layer names the paper reports.
"""

from collections import defaultdict


class Layer:
    """Table 4's component names."""

    # Send path.
    ENTRY_COPYIN = "entry/copyin"
    TCP_UDP_OUTPUT = "tcp,udp_output"
    IP_OUTPUT = "ip_output"
    ETHER_OUTPUT = "ether_output"

    # Receive path.
    DEVICE_READ = "device intr/read"
    NETISR_FILTER = "netisr/packet filter"
    KERNEL_COPYOUT = "kernel copyout"
    MBUF_QUEUE = "mbuf/queue"
    IPINTR = "ipintr"
    TCP_UDP_INPUT = "tcp,udp_input"
    WAKEUP_USER = "wakeup user thread"
    COPYOUT_EXIT = "copyout/exit"

    SEND_PATH = (ENTRY_COPYIN, TCP_UDP_OUTPUT, IP_OUTPUT, ETHER_OUTPUT)
    RECEIVE_PATH = (
        DEVICE_READ,
        NETISR_FILTER,
        KERNEL_COPYOUT,
        MBUF_QUEUE,
        IPINTR,
        TCP_UDP_INPUT,
        WAKEUP_USER,
        COPYOUT_EXIT,
    )

    #: Components that involve a protection boundary crossing per
    #: placement, marked with asterisks in the paper's Table 4.
    ALL = SEND_PATH + RECEIVE_PATH


class LayerAccounting:
    """Accumulates simulated CPU time per protocol layer.

    A ledger can additionally mirror every charge into a per-packet
    :class:`~repro.trace.recorder.TraceRecorder` by setting ``tracer``
    (and an ``owner`` label identifying this ledger in the span stream).
    The hook lives here — not in :class:`ExecutionContext` — because some
    kernel paths attribute costs by calling :meth:`add` directly.
    """

    __slots__ = ("totals", "counts", "enabled", "tracer", "owner")

    def __init__(self):
        self.totals = defaultdict(float)
        self.counts = defaultdict(int)
        self.enabled = True
        self.tracer = None
        self.owner = ""

    def add(self, layer, cost):
        if not self.enabled:
            return
        self.totals[layer] += cost
        self.counts[layer] += 1
        tracer = self.tracer
        # Check .enabled here too so a disabled recorder costs nothing
        # beyond the attribute test (it would return immediately anyway).
        if tracer is not None and tracer.enabled:
            tracer.record(self.owner, layer, cost)

    def total(self, layer):
        return self.totals.get(layer, 0.0)

    def mean(self, layer, per=None):
        """Average cost per occurrence (or per ``per`` explicit events)."""
        denom = per if per is not None else self.counts.get(layer, 0)
        if not denom:
            return 0.0
        return self.totals.get(layer, 0.0) / denom

    def reset(self):
        self.totals.clear()
        self.counts.clear()

    def snapshot(self):
        return dict(self.totals)

    def path_total(self, layers, per=None):
        return sum(self.mean(layer, per=per) for layer in layers)


class CrossingCounter:
    """Counts protection-boundary crossings and OS-server interactions.

    This is the quantitative version of Figure 1: on the send/receive
    fast path, the library placement crosses the user/kernel boundary
    once each way and never talks to the OS server.
    """

    __slots__ = ("user_kernel", "server_rpcs", "data_copies")

    def __init__(self):
        self.user_kernel = 0
        self.server_rpcs = 0
        self.data_copies = 0

    def reset(self):
        self.user_kernel = 0
        self.server_rpcs = 0
        self.data_copies = 0

    def snapshot(self):
        return {
            "user_kernel_crossings": self.user_kernel,
            "server_rpcs": self.server_rpcs,
            "data_copies": self.data_copies,
        }
