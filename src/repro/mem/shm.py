"""Shared-memory packet rings (the Library-SHM packet filter interface).

Section 4.1 of the paper describes a modified packet filter that
"transfers data in memory shared between the kernel and the application"
and "uses a lightweight condition variable to signal a protocol library
that new data has arrived".  The win is amortization: the library can
consume several packets per wakeup, so the scheduling overhead of packet
delivery is paid once per *train* of packets rather than once per packet.

This module models that ring.  The kernel side deposits packets with
:meth:`deposit`; the library side blocks in :meth:`receive` and drains
everything available after a single wakeup.  ``wakeups`` versus
``packets_delivered`` quantifies the amortization, and a full ring drops
packets (with accounting) the way a real fixed-size ring would.
"""

from repro.sim.sync import Condition, Lock


class SharedPacketRing:
    """A bounded single-producer ring in (simulated) shared memory."""

    def __init__(self, sim, slots=64, name="shmring"):
        if slots < 1:
            raise ValueError("ring needs at least one slot")
        self._sim = sim
        self.slots = slots
        self.name = name
        self._lock = Lock(sim, name + ".lock")
        self._cond = Condition(sim, self._lock, name + ".cond")
        self._packets = []
        self.wakeups = 0
        self.packets_delivered = 0
        self.packets_dropped = 0

    def __len__(self):
        return len(self._packets)

    def deposit(self, packet):
        """Kernel side: add a packet; returns False (dropped) when full.

        Signalling the condition variable costs nothing here — the kernel
        charges ``condvar_signal`` itself, since that cost belongs to the
        kernel's CPU accounting, not to the ring.
        """
        if len(self._packets) >= self.slots:
            self.packets_dropped += 1
            return False
        # Keep the packet object as-is: frames are immutable bytes (often
        # a trace-tagged subclass) and a bytes() copy would strip the tag.
        self._packets.append(packet)
        self._cond.notify()
        return True

    def needs_wakeup(self):
        """True when a depositor should pay the wakeup cost (library waiting)."""
        return self._cond.waiting() > 0

    def receive(self):
        """Library side: block until packets are available, take them all.

        Returns the list of packets drained by this single wakeup.
        """
        # No try/finally here: Condition.wait releases the lock while
        # suspended, so an interrupt (or GC close) mid-wait must not
        # trigger a release we no longer own.
        yield from self._lock.acquire()
        while not self._packets:
            yield from self._cond.wait()
        batch, self._packets = self._packets, []
        self._lock.release()
        self.wakeups += 1
        self.packets_delivered += len(batch)
        return batch

    def try_receive(self):
        """Non-blocking drain; returns (possibly empty) list of packets."""
        batch, self._packets = self._packets, []
        if batch:
            self.wakeups += 1
            self.packets_delivered += len(batch)
        return batch

    def amortization(self):
        """Average packets consumed per wakeup so far."""
        if self.wakeups == 0:
            return 0.0
        return self.packets_delivered / self.wakeups
