"""BSD mbufs: the protocols' internal unit of memory allocation.

The paper's protocol code (BNR2 / 4.3BSD derived) stores all packet data
in chains of fixed-size ``mbuf`` structures; ``entry/copyin`` in Table 4
is precisely the cost of converting a user buffer into an mbuf chain.  We
reproduce the structure faithfully enough for the costs and the classic
operations (prepend, adj, split, copy, pullup, cat) to be meaningful,
because the layered protocol code manipulates headers exactly this way.

Sizes follow 4.3BSD: small mbufs hold up to 112 bytes of data (128 minus
the header), and larger payloads go to 2048-byte clusters.
"""

MLEN = 112  # data bytes in a small mbuf
MHLEN = 100  # data bytes in a packet-header mbuf (leaves leading space)
MCLBYTES = 2048  # bytes in a cluster
MINCLSIZE = 208  # smallest amount worth putting in a cluster


class MbufStats:
    """Allocation statistics, for tests and the cost model."""

    __slots__ = ("allocated", "freed", "cluster_allocs")

    def __init__(self):
        self.allocated = 0
        self.freed = 0
        self.cluster_allocs = 0

    @property
    def live(self):
        return self.allocated - self.freed


class Mbuf:
    """One link of an mbuf chain.

    ``data`` is a ``memoryview``-friendly ``bytes`` slice; ``leading``
    tracks free space before the data, so headers can be prepended without
    allocation (the common fast path in the send direction).
    """

    __slots__ = ("buf", "off", "len", "next", "is_cluster")

    def __init__(self, capacity=MLEN, leading=0, is_cluster=False):
        self.buf = bytearray(capacity + leading)
        self.off = leading
        self.len = 0
        self.next = None
        self.is_cluster = is_cluster

    # ------------------------------------------------------------------
    # Single-mbuf accessors
    # ------------------------------------------------------------------

    @property
    def data(self):
        """The live bytes of this mbuf."""
        # A memoryview slice costs nothing; bytes() then copies once.
        # Slicing the bytearray directly would copy twice.
        return bytes(memoryview(self.buf)[self.off : self.off + self.len])

    def set_data(self, payload):
        if self.off + len(payload) > len(self.buf):
            raise ValueError("payload %d too large for mbuf" % len(payload))
        self.buf[self.off : self.off + len(payload)] = payload
        self.len = len(payload)

    def leading_space(self):
        return self.off

    def trailing_space(self):
        return len(self.buf) - self.off - self.len

    # ------------------------------------------------------------------
    # Chain construction
    # ------------------------------------------------------------------

    @classmethod
    def from_bytes(cls, payload, stats=None, header_space=16):
        """Build an mbuf chain holding ``payload``.

        The first mbuf reserves ``header_space`` leading bytes so protocol
        headers can be prepended in place.  Returns the head of the chain;
        an empty payload still yields one (empty) mbuf.
        """
        head = None
        tail = None
        remaining = memoryview(payload)
        first = True
        while first or len(remaining):
            leading = header_space if first else 0
            if len(remaining) >= MINCLSIZE:
                m = cls(capacity=MCLBYTES, leading=leading, is_cluster=True)
                if stats is not None:
                    stats.cluster_allocs += 1
            else:
                m = cls(capacity=MLEN, leading=leading)
            if stats is not None:
                stats.allocated += 1
            take = min(len(remaining), len(m.buf) - m.off)
            m.set_data(remaining[:take])
            remaining = remaining[take:]
            if head is None:
                head = m
            else:
                tail.next = m
            tail = m
            first = False
        return head

    def to_bytes(self):
        """Flatten the whole chain into one bytes object."""
        # join() reads the memoryviews directly, so each mbuf's bytes
        # are copied exactly once, into the result.
        parts = []
        m = self
        while m is not None:
            parts.append(memoryview(m.buf)[m.off : m.off + m.len])
            m = m.next
        return b"".join(parts)

    @staticmethod
    def _slice(m):
        return bytes(memoryview(m.buf)[m.off : m.off + m.len])

    def chain_len(self):
        """Total data bytes in the chain."""
        total = 0
        m = self
        while m is not None:
            total += m.len
            m = m.next
        return total

    def chain_count(self):
        """Number of mbufs in the chain."""
        count = 0
        m = self
        while m is not None:
            count += 1
            m = m.next
        return count

    def free_chain(self, stats=None):
        """Account for freeing the whole chain."""
        if stats is not None:
            stats.freed += self.chain_count()

    # ------------------------------------------------------------------
    # The classic m_* operations
    # ------------------------------------------------------------------

    def prepend(self, header, stats=None):
        """``m_prepend``: put ``header`` in front of the chain.

        Uses the head mbuf's leading space when possible; otherwise
        allocates a new head mbuf.  Returns the (possibly new) head.
        """
        header = bytes(header)
        if len(header) <= self.off:
            self.off -= len(header)
            self.buf[self.off : self.off + len(header)] = header
            self.len += len(header)
            return self
        m = Mbuf(capacity=max(MLEN, len(header)), leading=0)
        if stats is not None:
            stats.allocated += 1
        m.set_data(header)
        m.next = self
        return m

    def adj(self, count):
        """``m_adj``: trim ``count`` bytes from the front (positive) or the
        back (negative) of the chain, in place."""
        if count >= 0:
            m = self
            while m is not None and count > 0:
                take = min(count, m.len)
                m.off += take
                m.len -= take
                count -= take
                m = m.next
            if count > 0:
                raise ValueError("adj beyond chain length")
        else:
            count = -count
            total = self.chain_len()
            if count > total:
                raise ValueError("adj beyond chain length")
            keep = total - count
            m = self
            while m is not None:
                if keep >= m.len:
                    keep -= m.len
                else:
                    m.len = keep
                    keep = 0
                m = m.next

    def copy(self, off=0, length=None, stats=None):
        """``m_copym``: a new chain holding ``length`` bytes from ``off``.

        4.3BSD shares clusters copy-on-write; we copy for simplicity — the
        cost model charges for the copy where the real code would, and
        correctness is identical.
        """
        total = self.chain_len()
        if length is None:
            length = total - off
        if off < 0 or off + length > total:
            raise ValueError("copy range out of bounds")
        # Gather only the requested range, as views — no flattening of
        # the whole chain, one copy into the new chain's buffers.
        parts = []
        skip = off
        need = length
        m = self
        while m is not None and need > 0:
            if skip >= m.len:
                skip -= m.len
            else:
                take = min(m.len - skip, need)
                start = m.off + skip
                parts.append(memoryview(m.buf)[start : start + take])
                skip = 0
                need -= take
            m = m.next
        return Mbuf.from_bytes(b"".join(parts), stats=stats)

    def cat(self, other):
        """``m_cat``: append ``other``'s chain to this one."""
        m = self
        while m.next is not None:
            m = m.next
        m.next = other

    def pullup(self, count):
        """``m_pullup``: ensure the first ``count`` bytes are contiguous in
        the head mbuf.  Returns the head (self)."""
        if count > self.chain_len():
            raise ValueError("pullup beyond chain length")
        if self.len >= count:
            return self
        # Gather just the first ``count`` bytes; the tail mbufs keep
        # their buffers (only their windows move) instead of the whole
        # chain being flattened and rebuilt.
        parts = [memoryview(self.buf)[self.off : self.off + self.len]]
        need = count - self.len
        m = self.next
        while need > 0:
            take = min(m.len, need)
            parts.append(memoryview(m.buf)[m.off : m.off + take])
            m.off += take
            m.len -= take
            need -= take
            if m.len == 0:
                m = m.next
        head = b"".join(parts)
        if len(self.buf) < count:
            self.buf = bytearray(count)
        self.off = 0
        self.buf[:count] = head
        self.len = count
        while m is not None and m.len == 0:
            m = m.next
        self.next = m
        return self

    def split(self, off, stats=None):
        """``m_split``: split the chain at ``off``; returns the tail chain
        and truncates self to the first ``off`` bytes."""
        total = self.chain_len()
        if off < 0 or off > total:
            raise ValueError("split point out of bounds")
        tail_bytes = self.to_bytes()[off:]
        self.adj(-(total - off))
        return Mbuf.from_bytes(tail_bytes, stats=stats, header_space=0)

    def __repr__(self):
        return "<Mbuf chain len=%d bufs=%d>" % (self.chain_len(), self.chain_count())
