"""Memory machinery: BSD mbuf chains and shared-memory packet rings."""

from repro.mem.mbuf import MCLBYTES, MHLEN, MLEN, Mbuf, MbufStats
from repro.mem.shm import SharedPacketRing

__all__ = ["Mbuf", "MbufStats", "MLEN", "MHLEN", "MCLBYTES", "SharedPacketRing"]
