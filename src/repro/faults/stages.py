"""The built-in fault stages.

Loss models (independent and Gilbert–Elliott bursty), payload corruption,
duplication, delay jitter, reordering, time-windowed blackholes and
partitions, and NIC receive-queue overflow.  Each stage keeps its own
counters; compose them in a :class:`~repro.faults.plan.FaultPlan`.
"""

from repro.faults.plan import FaultStage

#: Ethernet header bytes at the front of every frame; corruption targets
#: the payload beyond them so the frame still demultiplexes.
ETHER_HEADER = 14


def flip_payload_byte(frame, rng):
    """Invert one byte of ``frame``'s payload (past the Ethernet header).

    A frame with no payload (len <= 14) is returned unchanged: there is
    nothing to corrupt without hitting the header, which would just look
    like a demux miss rather than exercising the checksum path.
    """
    if len(frame) <= ETHER_HEADER:
        return None
    span = len(frame) - ETHER_HEADER
    pos = ETHER_HEADER + min(int(rng.random() * span), span - 1)
    mutated = bytearray(frame)
    mutated[pos] ^= 0xFF
    return bytes(mutated)


class BernoulliLoss(FaultStage):
    """Independent per-frame loss at a fixed rate (the classic knob)."""

    name = "loss"

    def __init__(self, rate):
        self.rate = rate
        self.dropped = 0

    def transit(self, t, rng, now):
        if self.rate and rng.random() < self.rate:
            self.dropped += 1
            return []
        return [t]

    def counters(self):
        return {"dropped": self.dropped}


class GilbertElliottLoss(FaultStage):
    """Two-state bursty loss (Gilbert–Elliott).

    The channel is *good* or *bad*; each state drops frames at its own
    rate, and after every frame the state flips with the configured
    transition probabilities.  Mean burst length is ``1 / p_exit_bad``
    frames; long-run loss is well above what an independent model with the
    same average would concentrate into any single window — which is what
    actually stresses retransmission and congestion machinery.
    """

    name = "gilbert-elliott"

    def __init__(self, p_enter_bad, p_exit_bad, loss_good=0.0, loss_bad=1.0):
        self.p_enter_bad = p_enter_bad
        self.p_exit_bad = p_exit_bad
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.state = "good"
        self.dropped = 0
        self.bursts = 0

    def transit(self, t, rng, now):
        rate = self.loss_bad if self.state == "bad" else self.loss_good
        drop = bool(rate) and rng.random() < rate
        if self.state == "good":
            if rng.random() < self.p_enter_bad:
                self.state = "bad"
                self.bursts += 1
        elif rng.random() < self.p_exit_bad:
            self.state = "good"
        if drop:
            self.dropped += 1
            return []
        return [t]

    def counters(self):
        return {"dropped": self.dropped, "bursts": self.bursts}


class Corrupt(FaultStage):
    """Flip one payload byte at a fixed rate (checksum-path exercise)."""

    name = "corrupt"

    def __init__(self, rate):
        self.rate = rate
        self.corrupted = 0

    def transit(self, t, rng, now):
        if self.rate and rng.random() < self.rate:
            mutated = flip_payload_byte(t.frame, rng)
            if mutated is not None:
                t.frame = mutated
                self.corrupted += 1
        return [t]

    def counters(self):
        return {"corrupted": self.corrupted}


class Duplicate(FaultStage):
    """Deliver an extra copy of some frames, slightly later."""

    name = "duplicate"

    def __init__(self, rate, gap_us=100.0):
        self.rate = rate
        self.gap_us = gap_us
        self.duplicated = 0

    def transit(self, t, rng, now):
        if self.rate and rng.random() < self.rate:
            self.duplicated += 1
            twin = t.copy()
            twin.delay_us += self.gap_us
            return [t, twin]
        return [t]

    def counters(self):
        return {"duplicated": self.duplicated}


class DelayJitter(FaultStage):
    """Add ``base_us`` plus uniform jitter in [0, jitter_us) to delivery."""

    name = "delay-jitter"

    def __init__(self, base_us=0.0, jitter_us=0.0):
        self.base_us = base_us
        self.jitter_us = jitter_us
        self.delayed = 0
        self.total_delay_us = 0.0

    def transit(self, t, rng, now):
        extra = self.base_us
        if self.jitter_us:
            extra += rng.random() * self.jitter_us
        if extra:
            t.delay_us += extra
            self.delayed += 1
            self.total_delay_us += extra
        return [t]

    def counters(self):
        return {"delayed": self.delayed,
                "total_delay_us": round(self.total_delay_us, 1)}


class Reorder(FaultStage):
    """Hold some frames back so later frames overtake them.

    ``hold_us`` should exceed a few frame times; a held full-size segment
    lets several successors arrive first, which is what drives duplicate
    ACKs and fast retransmit in the receiver-visible order.
    """

    name = "reorder"

    def __init__(self, rate, hold_us=3000.0):
        self.rate = rate
        self.hold_us = hold_us
        self.reordered = 0

    def transit(self, t, rng, now):
        if self.rate and rng.random() < self.rate:
            t.delay_us += self.hold_us
            self.reordered += 1
        return [t]

    def counters(self):
        return {"reordered": self.reordered}


class Blackhole(FaultStage):
    """Time-windowed blackhole: during [start_us, end_us) frames vanish.

    ``nics=None`` silences the whole wire.  With a set of NICs, frames
    *sent by* them are dropped and frames *addressed to the wire* skip
    them on delivery (``direction`` narrows this to ``"tx"`` or ``"rx"``).
    Blackholing every NIC of one host partitions it from the segment, so
    this stage doubles as the per-NIC partition primitive.
    """

    name = "blackhole"

    def __init__(self, start_us, end_us, nics=None, direction="both"):
        if direction not in ("tx", "rx", "both"):
            raise ValueError("direction must be tx/rx/both, got %r" % direction)
        self.start_us = start_us
        self.end_us = end_us
        self.nics = set(nics) if nics is not None else None
        self.direction = direction
        self.dropped = 0
        self.shunned = 0  # deliveries suppressed on the receive side

    def active(self, now):
        return self.start_us <= now < self.end_us

    def transit(self, t, rng, now):
        if not self.active(now):
            return [t]
        if self.nics is None:
            self.dropped += 1
            return []
        if self.direction in ("tx", "both") and t.sender in self.nics:
            self.dropped += 1
            return []
        if self.direction in ("rx", "both"):
            fresh = self.nics - t.exclude
            if fresh:
                t.exclude |= fresh
                self.shunned += len(fresh)
        return [t]

    def counters(self):
        return {"dropped": self.dropped, "shunned": self.shunned}


class RxOverflow(FaultStage):
    """Force receive-ring overflow on NICs during a time window.

    Models a host too slow (or too wedged) to drain its receive ring: the
    ring's effective capacity is clamped to ``limit`` frames between
    ``start_us`` and ``end_us``, so arrivals beyond it are dropped by the
    NIC itself and show up in its ``frames_dropped`` counter, exactly like
    a real overrun.
    """

    name = "rx-overflow"

    def __init__(self, start_us, end_us, nics, limit=0):
        self.start_us = start_us
        self.end_us = end_us
        self.nics = list(nics)
        self.limit = limit
        self.windows = 0
        self.overflow_drops = 0
        self._baseline = {}

    def install(self, wire, sim):
        sim.call_at(max(self.start_us, sim.now), self._begin)
        sim.call_at(max(self.end_us, sim.now), self._end)

    def _begin(self):
        self.windows += 1
        for nic in self.nics:
            self._baseline[nic] = nic.frames_dropped
            nic.rx_limit_override = self.limit

    def _end(self):
        for nic in self.nics:
            nic.rx_limit_override = None
            self.overflow_drops += nic.frames_dropped - self._baseline.get(nic, 0)
        self._baseline.clear()

    def counters(self):
        return {"windows": self.windows, "overflow_drops": self.overflow_drops}
