"""Composable, deterministic fault injection for the simulated network.

The paper's central claim is that decomposition isolates failure: data
transfer lives in each application's library while the heavyweight
machinery lives in a restartable OS server.  Exercising that claim needs
richer faults than independent Bernoulli frame drops — bursty loss,
reordering, duplication, delay jitter, partitions, receive-queue
overflow, and server crashes.  This package provides the wire-level half:
a :class:`FaultPlan` is an ordered pipeline of :class:`FaultStage` objects
hooked between frame serialization and NIC delivery on an
:class:`~repro.hw.wire.EthernetWire`.  Every stage draws from the plan's
single seeded RNG, so a whole chaotic run is reproducible from one seed.

The server-crash half lives in :mod:`repro.osserver.netserver`
(``crash()``/``restart()``) and :mod:`repro.kernel.ipc`
(:class:`~repro.kernel.ipc.ServerCrashed`, RPC retry with backoff).

The *control-plane* half lives in :mod:`repro.faults.control`: a
:class:`ControlFaultPlan` aims the same seeded-stage machinery at proxy
RPCs, IPC delivery ports, and the server's own request handling (drops,
duplicates, delays, stalls, transient failures, crash-during-op), all
composable with a wire plan in the same run.
"""

from repro.faults.control import (
    ControlFaultPlan,
    ControlFaultStage,
    IpcDelay,
    IpcDuplicate,
    IpcLoss,
    RpcDelay,
    RpcDrop,
    RpcDuplicate,
    RpcReplyDelay,
    RpcStall,
    ServerCrashOnOp,
    ServerFlakyOp,
    ServerSlowOp,
)
from repro.faults.plan import FaultPlan, FaultStage, Transit
from repro.faults.stages import (
    BernoulliLoss,
    Blackhole,
    Corrupt,
    DelayJitter,
    Duplicate,
    GilbertElliottLoss,
    Reorder,
    RxOverflow,
)

__all__ = [
    "FaultPlan",
    "FaultStage",
    "Transit",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "Corrupt",
    "Duplicate",
    "DelayJitter",
    "Reorder",
    "Blackhole",
    "RxOverflow",
    "ControlFaultPlan",
    "ControlFaultStage",
    "RpcDrop",
    "RpcDelay",
    "RpcStall",
    "RpcDuplicate",
    "RpcReplyDelay",
    "IpcLoss",
    "IpcDuplicate",
    "IpcDelay",
    "ServerSlowOp",
    "ServerFlakyOp",
    "ServerCrashOnOp",
]
