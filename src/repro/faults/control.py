"""Control-plane fault injection: RPCs, IPC channels, and the server.

The wire pipeline (:mod:`repro.faults.plan`) exercises the *data* path;
this module aims the same seeded-stage machinery at the control plane —
the proxy RPCs of Table 1, the per-packet IPC delivery ports of the
Library-IPC configuration, and the OS server's own request handling:

* request faults — drop, delay, stall, duplicate a client's RPC request;
* reply faults — delay a server reply so replies arrive reordered (or
  after the caller's deadline, exercising the replay path);
* IPC faults — drop/duplicate/delay packet-delivery messages;
* serve faults — slow-op CPU stalls, transient op failures
  (:class:`~repro.kernel.ipc.ServerBusy`), and crash-during-op, landing
  the crash deterministically *before* or *after* a named handler's side
  effects.

Determinism matches the wire plan's contract: every decision draws from
the plan's single seeded RNG in arrival order, so an injected schedule is
a pure function of (workload, seed).  An unattached plan costs nothing;
an attached plan with no stages arms no deadlines and perturbs no
schedules (the zero-overhead property tests pin this).

Safety rule: request/reply stages skip :data:`LONG_OPS` — calls that
legitimately block for unbounded time (accept, recv, select) — unless a
stage is given an explicit ``ops`` filter.  Dropping a call that has no
deadline would otherwise wedge its caller forever, which is a test-harness
bug rather than an interesting fault.
"""

import random

from repro.kernel.ipc import ServerBusy

#: Server calls that may block indefinitely by design; per-attempt
#: deadlines and drop/duplicate faults do not apply to them by default.
LONG_OPS = frozenset({
    "proxy_select", "proxy_accept", "accept", "recv", "recvfrom", "select",
})

#: Default per-attempt reply deadline for short control ops once a plan
#: with stages is attached (microseconds).
DEFAULT_DEADLINE_US = 500_000.0


class ControlFaultStage:
    """Base class for one composable control-plane fault.

    Subclasses override the hooks for the planes they perturb; every hook
    receives the plan's RNG so the whole schedule stays seed-determined.
    """

    name = "control-stage"

    def _targets(self, op):
        """Default op filter: explicit ``ops`` wins; otherwise skip the
        indefinitely-blocking calls (see module docstring)."""
        ops = getattr(self, "ops", None)
        if ops is not None:
            return op in ops
        return op not in LONG_OPS

    def on_request(self, op, rng):
        """Return ``(drop, duplicate, delay_us)`` or None."""
        return None

    def on_reply(self, op, rng):
        """Return extra reply delay in microseconds (0 for none)."""
        return 0.0

    def on_ipc(self, rng):
        """Return ``(drop, duplicate, delay_us)`` or None."""
        return None

    def on_serve(self, op, rng):
        """Return ``(stall_us, fail_exc, crash_when)`` or None."""
        return None

    def counters(self):
        return {}

    def __repr__(self):
        pairs = " ".join("%s=%s" % kv for kv in sorted(self.counters().items()))
        return "<%s %s>" % (type(self).__name__, pairs)


# ----------------------------------------------------------------------
# RPC request / reply stages
# ----------------------------------------------------------------------


class RpcDrop(ControlFaultStage):
    """The kernel loses the request message; the caller recovers via its
    per-attempt deadline and an idempotent (req_id) retry."""

    name = "rpc-drop"

    def __init__(self, rate, ops=None):
        self.rate = rate
        self.ops = frozenset(ops) if ops is not None else None
        self.dropped = 0

    def on_request(self, op, rng):
        if self._targets(op) and rng.random() < self.rate:
            self.dropped += 1
            return (True, False, 0.0)
        return None

    def counters(self):
        return {"dropped": self.dropped}


class RpcDelay(ControlFaultStage):
    """Extra in-transit latency on the request message."""

    name = "rpc-delay"

    def __init__(self, rate, delay_us, jitter_us=0.0, ops=None):
        self.rate = rate
        self.delay_us = delay_us
        self.jitter_us = jitter_us
        self.ops = frozenset(ops) if ops is not None else None
        self.delayed = 0

    def on_request(self, op, rng):
        if self._targets(op) and rng.random() < self.rate:
            self.delayed += 1
            return (False, False,
                    self.delay_us + rng.random() * self.jitter_us)
        return None

    def counters(self):
        return {"delayed": self.delayed}


class RpcStall(ControlFaultStage):
    """A long request stall — enough to trip deadlines and breakers."""

    name = "rpc-stall"

    def __init__(self, rate, stall_us, ops=None):
        self.rate = rate
        self.stall_us = stall_us
        self.ops = frozenset(ops) if ops is not None else None
        self.stalled = 0

    def on_request(self, op, rng):
        if self._targets(op) and rng.random() < self.rate:
            self.stalled += 1
            return (False, False, self.stall_us)
        return None

    def counters(self):
        return {"stalled": self.stalled}


class RpcDuplicate(ControlFaultStage):
    """The request message is delivered twice; the server's replay cache
    must keep the handler's side effects single-shot."""

    name = "rpc-duplicate"

    def __init__(self, rate, ops=None):
        self.rate = rate
        self.ops = frozenset(ops) if ops is not None else None
        self.duplicated = 0

    def on_request(self, op, rng):
        if self._targets(op) and rng.random() < self.rate:
            self.duplicated += 1
            return (False, True, 0.0)
        return None

    def counters(self):
        return {"duplicated": self.duplicated}


class RpcReplyDelay(ControlFaultStage):
    """Delay the reply message: replies reorder, and past the caller's
    deadline the op completes server-side with the reply dropped —
    exactly the at-least-once window the replay cache exists for."""

    name = "rpc-reply-delay"

    def __init__(self, rate, delay_us, jitter_us=0.0, ops=None):
        self.rate = rate
        self.delay_us = delay_us
        self.jitter_us = jitter_us
        self.ops = frozenset(ops) if ops is not None else None
        self.delayed = 0

    def on_reply(self, op, rng):
        if self._targets(op) and rng.random() < self.rate:
            self.delayed += 1
            return self.delay_us + rng.random() * self.jitter_us
        return 0.0

    def counters(self):
        return {"delayed": self.delayed}


# ----------------------------------------------------------------------
# IPC packet-delivery stages (the Library-IPC per-packet message ports
# and the servers' kernel->server packet input port)
# ----------------------------------------------------------------------


class IpcLoss(ControlFaultStage):
    """Drop a packet-delivery message in the kernel; the transport's
    own retransmission recovers (data-plane resilience, PR 1)."""

    name = "ipc-loss"

    def __init__(self, rate):
        self.rate = rate
        self.dropped = 0

    def on_ipc(self, rng):
        if rng.random() < self.rate:
            self.dropped += 1
            return (True, False, 0.0)
        return None

    def counters(self):
        return {"dropped": self.dropped}


class IpcDuplicate(ControlFaultStage):
    name = "ipc-duplicate"

    def __init__(self, rate):
        self.rate = rate
        self.duplicated = 0

    def on_ipc(self, rng):
        if rng.random() < self.rate:
            self.duplicated += 1
            return (False, True, 0.0)
        return None

    def counters(self):
        return {"duplicated": self.duplicated}


class IpcDelay(ControlFaultStage):
    name = "ipc-delay"

    def __init__(self, rate, delay_us, jitter_us=0.0):
        self.rate = rate
        self.delay_us = delay_us
        self.jitter_us = jitter_us
        self.delayed = 0

    def on_ipc(self, rng):
        if rng.random() < self.rate:
            self.delayed += 1
            return (False, False,
                    self.delay_us + rng.random() * self.jitter_us)
        return None

    def counters(self):
        return {"delayed": self.delayed}


# ----------------------------------------------------------------------
# Server-side stages
# ----------------------------------------------------------------------


class ServerSlowOp(ControlFaultStage):
    """The handler blocks before doing its work (a page fault being
    serviced, a lock held elsewhere): ops complete but their tail
    stretches, and the stalled request keeps occupying an admission
    slot without burning the host CPU."""

    name = "server-slow-op"

    def __init__(self, rate, stall_us, ops=None):
        self.rate = rate
        self.stall_us = stall_us
        self.ops = frozenset(ops) if ops is not None else None
        self.stalled = 0

    def on_serve(self, op, rng):
        if self._targets(op) and rng.random() < self.rate:
            self.stalled += 1
            return (self.stall_us, None, None)
        return None

    def counters(self):
        return {"stalled": self.stalled}


class ServerFlakyOp(ControlFaultStage):
    """The handler fails transiently before any side effect; the client
    sees a retryable :class:`~repro.kernel.ipc.ServerBusy`."""

    name = "server-flaky-op"

    def __init__(self, rate, ops=None):
        self.rate = rate
        self.ops = frozenset(ops) if ops is not None else None
        self.failed = 0

    def on_serve(self, op, rng):
        if self._targets(op) and rng.random() < self.rate:
            self.failed += 1
            return (0.0, ServerBusy("transient failure in %s" % op), None)
        return None

    def counters(self):
        return {"failed": self.failed}


class ServerCrashOnOp(ControlFaultStage):
    """Crash the server while handling the nth matching op.

    ``when="before"`` crashes with the request consumed but no side
    effects run (the client's retry re-executes); ``when="after"``
    crashes between the handler's side effects and its reply — the
    at-least-once window where replay/re-registration must make the
    retried op safe.  Fires once per plan (the controller restarts the
    server; a crash loop is a different experiment).
    """

    name = "server-crash-on-op"

    def __init__(self, op, nth=1, when="before"):
        if when not in ("before", "after"):
            raise ValueError("when must be 'before' or 'after'")
        self.op = op
        self.nth = nth
        self.when = when
        self.matched = 0
        self.crashes = 0

    def on_serve(self, op, rng):
        if op != self.op or self.crashes:
            return None
        self.matched += 1
        if self.matched == self.nth:
            self.crashes += 1
            return (0.0, None, self.when)
        return None

    def counters(self):
        return {"matched": self.matched, "crashes": self.crashes}


# ----------------------------------------------------------------------
# The plan
# ----------------------------------------------------------------------


class ControlFaultPlan:
    """An ordered, seeded pipeline of control-plane fault stages.

    Attach with :meth:`attach`; all four hooks aggregate their stages'
    decisions in stage order.  ``default_deadline_us`` is the per-attempt
    reply deadline armed for short ops while the plan has stages (long
    ops never get an implicit deadline; see :data:`LONG_OPS`).
    """

    def __init__(self, stages=(), seed=None, rng=None,
                 default_deadline_us=DEFAULT_DEADLINE_US):
        self.stages = list(stages)
        if rng is None:
            rng = random.Random(0 if seed is None else seed)
        self.rng = rng
        self.default_deadline_us = default_deadline_us
        self.requests_seen = 0
        self.ipc_seen = 0

    def add(self, stage):
        self.stages.append(stage)
        return self

    def deadline_for(self, op):
        if not self.stages or op in LONG_OPS:
            return None
        return self.default_deadline_us

    # -- hooks called from repro.kernel.ipc ----------------------------

    def on_request(self, op):
        self.requests_seen += 1
        drop = dup = False
        delay = 0.0
        for stage in self.stages:
            action = stage.on_request(op, self.rng)
            if action is not None:
                d, u, extra = action
                drop = drop or d
                dup = dup or u
                delay += extra
        return drop, dup, delay

    def on_reply(self, op):
        delay = 0.0
        for stage in self.stages:
            delay += stage.on_reply(op, self.rng)
        return delay

    def on_ipc(self):
        self.ipc_seen += 1
        drop = dup = False
        delay = 0.0
        for stage in self.stages:
            action = stage.on_ipc(self.rng)
            if action is not None:
                d, u, extra = action
                drop = drop or d
                dup = dup or u
                delay += extra
        return drop, dup, delay

    def on_serve(self, op):
        stall = 0.0
        fail = None
        crash = None
        for stage in self.stages:
            action = stage.on_serve(op, self.rng)
            if action is not None:
                s, f, c = action
                stall += s
                if fail is None:
                    fail = f
                if crash is None:
                    crash = c
        return stall, fail, crash

    # -- wiring --------------------------------------------------------

    def attach(self, server, libraries=()):
        """Hook this plan into a server's RPC port, its kernel->server
        packet-input port, and (for Library-IPC apps) the per-session
        delivery ports the libraries create from now on."""
        server.rpc.faults = self
        port = getattr(server, "_input_port", None)
        if port is not None:
            port.faults = self
        for library in libraries:
            library.control_faults = self
        return self

    # -- reporting (mirrors FaultPlan) ---------------------------------

    def counters(self):
        report = {}
        for i, stage in enumerate(self.stages):
            key = stage.name
            if key in report:
                key = "%s#%d" % (stage.name, i)
            report[key] = stage.counters()
        return report

    def total(self, counter):
        return sum(c.get(counter, 0) for c in
                   (stage.counters() for stage in self.stages))

    def __repr__(self):
        return "<ControlFaultPlan %d stages>" % len(self.stages)
