"""The fault pipeline: transits, stages, and plans.

A frame that finished serializing on the wire becomes a :class:`Transit`;
the plan pushes it through each stage in order.  A stage may drop it
(return ``[]``), mutate it (corruption, added delay, excluded receivers),
or fan it out (duplication).  Whatever transits survive the pipeline are
delivered by the wire after their accumulated delay.

Determinism: all randomness comes from the plan's single ``rng`` and the
stage order is fixed, so a run is a pure function of (workload, seed).
"""

import random


class Transit:
    """One frame in flight between serialization and delivery.

    ``delay_us`` accumulates extra delivery delay (on top of the wire's
    propagation delay); ``exclude`` is a set of NICs that must not receive
    this transit (receiver-side blackholing).
    """

    __slots__ = ("frame", "sender", "delay_us", "exclude")

    def __init__(self, frame, sender, delay_us=0.0, exclude=None):
        self.frame = frame
        self.sender = sender
        self.delay_us = delay_us
        self.exclude = exclude if exclude is not None else set()

    def copy(self):
        return Transit(self.frame, self.sender, self.delay_us,
                       set(self.exclude))

    def __repr__(self):
        return "<Transit %d bytes +%.1fus>" % (len(self.frame), self.delay_us)


class FaultStage:
    """Base class for one composable fault.

    Subclasses override :meth:`transit` (and optionally :meth:`install`,
    for stages that need to schedule window boundaries).  Counters are
    surfaced through :meth:`counters` and aggregated by the plan for
    ``analysis.netstat``.
    """

    name = "stage"

    def install(self, wire, sim):
        """Called once when the plan is attached to a wire."""

    def transit(self, t, rng, now):
        """Transform one :class:`Transit`; return the surviving transits."""
        return [t]

    def counters(self):
        return {}

    def __repr__(self):
        pairs = " ".join("%s=%s" % kv for kv in sorted(self.counters().items()))
        return "<%s %s>" % (type(self).__name__, pairs)


class FaultPlan:
    """An ordered, seeded pipeline of fault stages for one wire."""

    def __init__(self, stages=(), seed=None, rng=None):
        self.stages = list(stages)
        if rng is None:
            rng = random.Random(0 if seed is None else seed)
        self.rng = rng
        self.wire = None
        self.frames_in = 0
        self.frames_delivered = 0

    def add(self, stage):
        self.stages.append(stage)
        if self.wire is not None:
            stage.install(self.wire, self.wire._sim)
        return self

    def attach(self, wire, sim):
        self.wire = wire
        for stage in self.stages:
            stage.install(wire, sim)

    def apply(self, frame, sender, now):
        """Run one serialized frame through the pipeline.

        Returns the list of :class:`Transit` objects to deliver (empty if
        every copy was dropped).
        """
        self.frames_in += 1
        transits = [Transit(frame, sender)]
        for stage in self.stages:
            survivors = []
            for t in transits:
                survivors.extend(stage.transit(t, self.rng, now))
            transits = survivors
            if not transits:
                break
        self.frames_delivered += len(transits)
        return transits

    def counters(self):
        """Per-stage counters, keyed by stage name (deduplicated)."""
        report = {}
        for i, stage in enumerate(self.stages):
            key = stage.name
            if key in report:
                key = "%s#%d" % (stage.name, i)
            report[key] = stage.counters()
        return report

    def total(self, counter):
        """Sum one named counter across every stage that exposes it."""
        return sum(c.get(counter, 0) for c in
                   (stage.counters() for stage in self.stages))

    def __repr__(self):
        return "<FaultPlan %d stages>" % len(self.stages)
