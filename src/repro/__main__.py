"""``python -m repro`` — a one-minute demonstration.

Runs a TCP exchange over the paper's decomposed architecture, prints a
netstat-style view of both hosts mid-flight, and finishes with a
miniature of Table 2 (one throughput number per placement).

For the full evaluation, run ``pytest benchmarks/ --benchmark-only`` or
``python -m repro.analysis.report``.
"""

from repro.analysis.netstat import format_report, host_report
from repro.apps.ttcp import ttcp
from repro.core.sockets import SOCK_STREAM
from repro.net.addr import ip_aton
from repro.world.configs import CONFIGS, build_network


def demo_exchange():
    print("=" * 64)
    print("Protocol Service Decomposition (Maeda & Bershad, SOSP 1993)")
    print("=" * 64)
    network, pa, pb = build_network("library-shm-ipf")
    api_a = pa.new_app(name="server-app")
    api_b = pb.new_app(name="client-app")
    ready = network.sim.event()
    midpoint = network.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7000)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, _ = yield from api_a.accept(fd)
        data = yield from api_a.recv_exactly(cfd, 4096)
        midpoint.succeed()
        yield from api_a.send_all(cfd, data)

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (ip_aton("10.0.0.1"), 7000))
        yield from api_b.send_all(fd, bytes(4096))
        yield midpoint
        yield from api_b.recv_exactly(fd, 4096)
        return "echoed 4 KB"

    _s, result = network.run_all([server(), client()], until=60_000_000)
    print("\n%s in %.1f ms of simulated time\n" % (result,
                                                   network.sim.now / 1000))
    print(format_report(host_report(pa)))
    print()


def demo_throughput():
    print("=" * 64)
    print("Table 2 in miniature — ttcp, 1 MB, simulated 10 Mb/s Ethernet")
    print("=" * 64)
    for key in ("mach25", "ux", "library-shm-ipf"):
        network, pa, pb = build_network(key)
        result = ttcp(network, pb, pa, total_bytes=1024 * 1024,
                      rcvbuf_kb=CONFIGS[key].best_rcvbuf_kb)
        print("%-34s %5.0f KB/s   (paper: %d)"
              % (CONFIGS[key].label, result.throughput_kbs,
                 CONFIGS[key].paper["tput"]))
    print()
    print("Full evaluation: pytest benchmarks/ --benchmark-only")


if __name__ == "__main__":
    demo_exchange()
    demo_throughput()
