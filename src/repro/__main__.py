"""``python -m repro`` — demos and introspection tools.

Subcommands::

    python -m repro               # the classic one-minute demo
    python -m repro demo          # same, explicitly
    python -m repro netstat       # canned world, netstat-style report
    python -m repro probe         # metrics-enabled TCP transfer: cwnd
                                  # time series + telemetry summary
    python -m repro forensics     # render a tailstudy --forensics
                                  # document: attribution + exemplars
    python -m repro ops           # one unified ops report: sessions,
                                  # control plane, metrics, tracer
                                  # health, islands, flight recorder
    python -m repro profile X     # run bench harness X under cProfile,
                                  # print the top-N cumulative table

``netstat`` and ``probe`` build a small canned world, run a workload,
and pretty-print what the observability layers saw.  ``probe`` can also
export the tcp_probe series (``--jsonl``/``--csv``) and emit a
markdown summary for CI step summaries (``--markdown``).  ``forensics``
consumes a JSON document produced by ``python -m repro.analysis.tailstudy
--forensics``: it prints the chosen cell's latency-attribution table and
its slowest exemplar's critical path as a text timeline, and can export
the exemplar as a chrome://tracing document (``--chrome``).

For the full evaluation, run ``pytest benchmarks/ --benchmark-only`` or
``python -m repro.analysis.report``.
"""

import argparse
import sys

from repro.analysis.netstat import format_report, host_report
from repro.apps.ttcp import ttcp
from repro.core.sockets import SOCK_STREAM
from repro.net.addr import ip_aton
from repro.world.configs import CONFIGS, build_network


def demo_exchange():
    print("=" * 64)
    print("Protocol Service Decomposition (Maeda & Bershad, SOSP 1993)")
    print("=" * 64)
    network, pa, pb = build_network("library-shm-ipf")
    api_a = pa.new_app(name="server-app")
    api_b = pb.new_app(name="client-app")
    ready = network.sim.event()
    midpoint = network.sim.event()

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, 7000)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, _ = yield from api_a.accept(fd)
        data = yield from api_a.recv_exactly(cfd, 4096)
        midpoint.succeed()
        yield from api_a.send_all(cfd, data)

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (ip_aton("10.0.0.1"), 7000))
        yield from api_b.send_all(fd, bytes(4096))
        yield midpoint
        yield from api_b.recv_exactly(fd, 4096)
        return "echoed 4 KB"

    _s, result = network.run_all([server(), client()], until=60_000_000)
    print("\n%s in %.1f ms of simulated time\n" % (result,
                                                   network.sim.now / 1000))
    print(format_report(host_report(pa)))
    print()


def demo_throughput():
    print("=" * 64)
    print("Table 2 in miniature — ttcp, 1 MB, simulated 10 Mb/s Ethernet")
    print("=" * 64)
    for key in ("mach25", "ux", "library-shm-ipf"):
        network, pa, pb = build_network(key)
        result = ttcp(network, pb, pa, total_bytes=1024 * 1024,
                      rcvbuf_kb=CONFIGS[key].best_rcvbuf_kb)
        print("%-34s %5.0f KB/s   (paper: %d)"
              % (CONFIGS[key].label, result.throughput_kbs,
                 CONFIGS[key].paper["tput"]))
    print()
    print("Full evaluation: pytest benchmarks/ --benchmark-only")


def cmd_demo(_args):
    demo_exchange()
    demo_throughput()
    return 0


def cmd_netstat(args):
    """Run a short transfer with telemetry on, then report both hosts."""
    network, pa, pb = build_network(args.config)
    network.metrics.enable()
    result = ttcp(network, pb, pa, total_bytes=args.bytes,
                  rcvbuf_kb=CONFIGS[args.config].best_rcvbuf_kb)
    print("%s: moved %d bytes at %.0f KB/s (simulated)\n"
          % (args.config, result.bytes_moved, result.throughput_kbs))
    for placement in (pa, pb):
        print(format_report(host_report(placement)))
        print()
    return 0


def _ascii_chart(points, width=64, height=12):
    """Plot (t, value) points as a crude terminal chart."""
    numeric = [(t, v) for t, v in points if isinstance(v, (int, float))]
    if len(numeric) < 2:
        return "(not enough samples to chart)"
    t0, t1 = numeric[0][0], numeric[-1][0]
    vmax = max(v for _t, v in numeric)
    vmin = min(v for _t, v in numeric)
    span_t = (t1 - t0) or 1.0
    span_v = (vmax - vmin) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for t, v in numeric:
        x = min(width - 1, int((t - t0) / span_t * (width - 1)))
        y = min(height - 1, int((v - vmin) / span_v * (height - 1)))
        grid[height - 1 - y][x] = "*"
    lines = []
    for i, row in enumerate(grid):
        label = vmax if i == 0 else (vmin if i == height - 1 else None)
        prefix = "%8s |" % ("%g" % label if label is not None else "")
        lines.append(prefix + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + "t=%.0fus .. %.0fus" % (t0, t1))
    return "\n".join(lines)


def cmd_probe(args):
    from repro.analysis.timeseries import (
        export_csv,
        export_jsonl,
        probe_summary,
        probe_summary_markdown,
    )

    network, pa, pb = build_network(args.config)
    network.metrics.enable()
    result = ttcp(network, pb, pa, total_bytes=args.bytes,
                  rcvbuf_kb=CONFIGS[args.config].best_rcvbuf_kb)
    metrics = network.metrics

    if args.jsonl:
        with open(args.jsonl, "w") as handle:
            lines = export_jsonl(metrics, handle)
        print("wrote %d samples to %s" % (lines, args.jsonl),
              file=sys.stderr)
    if args.csv:
        with open(args.csv, "w", newline="") as handle:
            rows = export_csv(metrics, handle)
        print("wrote %d rows to %s" % (rows, args.csv), file=sys.stderr)

    if args.markdown:
        print("### tcp_probe summary (%s, %d bytes, %.0f KB/s simulated)"
              % (args.config, result.bytes_moved, result.throughput_kbs))
        print()
        print(probe_summary_markdown(metrics), end="")
        return 0

    print("%s: moved %d bytes at %.0f KB/s (simulated)\n"
          % (args.config, result.bytes_moved, result.throughput_kbs))
    summary = probe_summary(metrics)
    for name in sorted(summary):
        row = summary[name]
        print("%-36s %5d samples  cwnd %s..%s  srtt %s..%s"
              % (name, row["samples"],
                 row["cwnd"]["min"], row["cwnd"]["max"],
                 row["srtt"]["min"], row["srtt"]["max"]))
    # Chart the busiest connection's congestion window.
    busiest = max(metrics.tcp_probes, default=None,
                  key=lambda p: p.series.recorded)
    if busiest is not None and busiest.series.samples:
        print("\ncwnd over time — %s" % busiest.series.name)
        print(_ascii_chart(busiest.series.column("cwnd")))
    return 0


def cmd_profile(args):
    """Run a named bench harness (or the WAN tail cell) under cProfile."""
    import cProfile
    import pstats

    from repro.analysis import bench_json, bench_wallclock
    from repro.stack import dispatch

    def tail_cell():
        from repro.analysis import tailstudy

        tailstudy.run_cell(bench_wallclock.PARALLEL_TOPOLOGY,
                           bench_wallclock.PARALLEL_WORKLOAD,
                           "mach25", bench_wallclock.PARALLEL_LOAD)

    targets = {name: harness
               for name, (_message, harness) in bench_json.HARNESSES.items()}
    targets["tailcell"] = tail_cell
    if args.harness not in targets:
        print("profile: unknown harness %r (choose from: %s)"
              % (args.harness, ", ".join(sorted(targets))), file=sys.stderr)
        return 2

    harness = targets[args.harness]
    previous = dispatch.set_train_dispatch(not args.legacy)
    profiler = cProfile.Profile()
    try:
        profiler.enable()
        harness()
        profiler.disable()
    finally:
        dispatch.set_train_dispatch(previous)

    stats = pstats.Stats(profiler)
    total_calls = stats.total_calls
    rows = sorted(stats.stats.items(), key=lambda kv: kv[1][3], reverse=True)
    mode = "legacy" if args.legacy else "batched"
    print("### cProfile — %s (%s dispatch, %s total calls)"
          % (args.harness, mode, "{:,}".format(total_calls)))
    print()
    print("| ncalls | tottime s | cumtime s | function |")
    print("|---|---|---|---|")
    for (filename, lineno, name), value in rows[:args.top]:
        cc, nc, tt, ct, _callers = value
        where = ("%s:%d:%s" % (filename.rpartition("/")[2], lineno, name)
                 if lineno else name)
        ncalls = "{:,}".format(nc) if nc == cc \
            else "{:,}/{:,}".format(nc, cc)
        print("| %s | %.3f | %.3f | `%s` |" % (ncalls, tt, ct, where))
    return 0


def cmd_forensics(args):
    import json

    from repro.analysis.forensics import (
        attribution_markdown,
        exemplar_chrome_trace,
        exemplar_timeline,
        top_contributors,
    )

    try:
        with open(args.json) as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        print("forensics: cannot read %s: %s" % (args.json, exc),
              file=sys.stderr)
        return 2
    cells = [r for r in doc.get("results", []) if "forensics" in r]
    if not cells:
        print("forensics: no forensic cells in %s (run tailstudy with "
              "--forensics)" % args.json, file=sys.stderr)
        return 2
    if args.placement:
        cells = [r for r in cells if r["placement"] == args.placement]
    if args.load is not None:
        cells = [r for r in cells if r["load"] == args.load]
    if not cells:
        print("forensics: no cell matches placement=%r load=%r"
              % (args.placement, args.load), file=sys.stderr)
        return 2
    cell = cells[0]
    block = cell["forensics"]
    exemplars = block["exemplars"]

    if args.summary:
        rows = top_contributors(block, k=args.top)
        print("### Top p99 contributors — %s load %.2f"
              % (cell["placement"], cell["load"]))
        print()
        print("| # | layer | cause | us | share |")
        print("|---|---|---|---|---|")
        for i, row in enumerate(rows, 1):
            share = ("%.1f%%" % (100.0 * row["share"])
                     if row["share"] is not None else "n/a")
            print("| %d | %s | %s | %.1f | %s |"
                  % (i, row["layer"], row["cause"], row["us"], share))
        return 0

    print("cell: %s load %.2f — p99 %s us (%d completed, %d censored; "
          "sampling 1-in-%d)"
          % (cell["placement"], cell["load"], cell["latency_us"]["p99"],
             cell["completed"], cell["censored"], block["sample_every"]))
    which = "tail" if block["tail"]["rows"] else "attribution"
    print()
    print("latency attribution (%s, %d requests, %.1f us total):"
          % (which, block[which]["requests"], block[which]["total_us"]))
    print(attribution_markdown(block, which=which))
    if not exemplars:
        print("\n(no exemplars: no sampled request completed)")
        return 1
    exemplar = exemplars[0]
    print()
    print(exemplar_timeline(exemplar))
    if args.chrome:
        with open(args.chrome, "w") as handle:
            json.dump(exemplar_chrome_trace(exemplar), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print("\nwrote chrome trace to %s (open in chrome://tracing)"
              % args.chrome, file=sys.stderr)
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Demos and introspection for the simulated world.")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("demo", help="the one-minute demo (default)")

    p_netstat = sub.add_parser(
        "netstat", help="run a canned transfer, print netstat reports")
    p_netstat.add_argument("--config", default="library-shm-ipf",
                           choices=sorted(CONFIGS),
                           help="world configuration (default %(default)s)")
    p_netstat.add_argument("--bytes", type=int, default=256 * 1024,
                           help="transfer size (default %(default)s)")

    p_probe = sub.add_parser(
        "probe", help="metrics-enabled TCP transfer; tcp_probe series")
    p_probe.add_argument("--config", default="library-shm-ipf",
                         choices=sorted(CONFIGS),
                         help="world configuration (default %(default)s)")
    p_probe.add_argument("--bytes", type=int, default=512 * 1024,
                         help="transfer size (default %(default)s)")
    p_probe.add_argument("--jsonl", metavar="PATH",
                         help="export every series as JSON Lines")
    p_probe.add_argument("--csv", metavar="PATH",
                         help="export every series as long-format CSV")
    p_probe.add_argument("--markdown", action="store_true",
                         help="print only a markdown summary table "
                              "(for CI step summaries)")

    p_profile = sub.add_parser(
        "profile", help="run a bench harness under cProfile; top-N table")
    p_profile.add_argument("harness", metavar="HARNESS",
                           help="a bench harness name (see "
                                "repro.analysis.bench_json) or 'tailcell' "
                                "for the seeded 2-site WAN tail-study cell")
    p_profile.add_argument("--top", type=int, default=20,
                           help="rows in the table (default %(default)s)")
    p_profile.add_argument("--legacy", action="store_true",
                           help="profile with packet-train dispatch off "
                                "(REPRO_TRAIN_DISPATCH=0 semantics)")

    p_forensics = sub.add_parser(
        "forensics", help="render a tailstudy --forensics document")
    p_forensics.add_argument("json", metavar="TAILSTUDY_JSON",
                             help="document from tailstudy --forensics")
    p_forensics.add_argument("--placement", default=None,
                             help="select the cell by placement key")
    p_forensics.add_argument("--load", type=float, default=None,
                             help="select the cell by offered load")
    p_forensics.add_argument("--chrome", metavar="PATH",
                             help="write the exemplar as a chrome trace")
    p_forensics.add_argument("--summary", action="store_true",
                             help="print only the top-contributors "
                                  "markdown (for CI step summaries)")
    p_forensics.add_argument("--top", type=int, default=3,
                             help="contributors in --summary "
                                  "(default %(default)s)")

    sub.add_parser(
        "ops", add_help=False,
        help="one unified ops report (see repro.analysis.opsreport)")

    if argv is None:
        argv = sys.argv[1:]
    if argv[:1] == ["ops"]:
        # The ops report owns its own argument parser.
        from repro.analysis.opsreport import main as ops_main
        return ops_main(argv[1:])

    args = parser.parse_args(argv)
    if args.command == "netstat":
        return cmd_netstat(args)
    if args.command == "probe":
        return cmd_probe(args)
    if args.command == "profile":
        return cmd_profile(args)
    if args.command == "forensics":
        return cmd_forensics(args)
    return cmd_demo(args)


if __name__ == "__main__":
    sys.exit(main())
