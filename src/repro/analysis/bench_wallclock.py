"""Wall-clock and interpreter-call tracking for the bench suite.

``BENCH.json`` pins the *simulated* metrics (deterministic, drift
gated); this runner tracks what the simulator costs to run.  Each bench
harness runs twice per mode — once clean for wall clock, once under
``sys.setprofile`` for a call census (the profiler's overhead must not
pollute the timing) — in both dispatch modes:

* ``batched`` — packet-train dispatch on (the default),
* ``legacy``  — ``REPRO_TRAIN_DISPATCH=0`` semantics: per-packet
  dispatch with per-charge context switches.

The census counts both ``call`` events (every Python function entry
*and* every generator-frame resume — the coroutine simulator's unit of
work) and ``c_call`` events (builtins such as ``heappush`` and
``deque.append``), so ``total_calls`` is the full interpreter dispatch
volume.  Call counts are deterministic for a given interpreter; wall
clock is not (the CI step reports it without gating on it)::

    python -m repro.analysis.bench_wallclock -o BENCH_WALLCLOCK.json

**Measuring against the pre-optimization tree.**  The legacy flag is a
faithful A/B for *dispatch shape* (train vs per-packet), but most of
this PR's interpreter-level wins — fused charge prologues, inlined
sequence arithmetic, the allocation-free CPU hand-off — shrink both
modes, so the flag ratio understates the speedup.  The headline
``vs_baseline`` block therefore compares the batched census against a
frozen measurement of the *pre-PR tree*:

* ``--baseline-json PATH`` — output of ``--census-only`` run against a
  checkout of the base commit **with the same interpreter** (CI does
  this with ``git worktree``; this file runs unmodified against the old
  tree, falling back to ``bench_json.collect()`` where the harness
  registry does not exist yet).
* Otherwise ``benchmarks/wallclock_baseline.json`` — a committed
  pinned measurement, used only when the running interpreter's
  major.minor matches the one that produced it (call counts shift
  between interpreter versions).

``--min-call-reduction X`` gates on the ``vs_baseline`` ratio and
fails loudly when no usable baseline is available — it never silently
falls back to the flag A/B ratio.

``--parallel-study`` appends a single-vs-parallel wall-clock comparison
of one seeded two-site WAN tail-study cell on the island backend
(:mod:`repro.sim.parallel`), asserting the two runs' simulated results
are identical before reporting the speedup.  Speedup needs real cores:
on a single-CPU machine the ratio honestly reports ~1x.
"""

import argparse
import json
import os
import sys
import time

from repro.analysis import bench_json

try:
    from repro.stack import dispatch
except ImportError:  # pre-PR tree (census-only runs): no dispatch module
    dispatch = None

SCHEMA = "repro-bench-wallclock/1"
CENSUS_SCHEMA = "repro-bench-census/1"

#: Committed pinned baseline (relative to the repository root).
PINNED_BASELINE = os.path.join("benchmarks", "wallclock_baseline.json")

#: The parallel study's cell: a two-site WAN (one long-haul cut, so two
#: islands of equal weight), every host a client, moderate load.
PARALLEL_TOPOLOGY = dict(kind="wan", hosts=48, seed=11, hosts_per_edge=8,
                         spines=2, sites=2, router_speedup=8.0)
PARALLEL_WORKLOAD = dict(proto="udp", seed=11, clients=0, fanout=2,
                         request_bytes=64, reply_bytes=200,
                         size_dist="fixed", window_us=400_000.0,
                         drain_us=300_000.0)
PARALLEL_LOAD = 0.15


def _harnesses():
    """The bench harnesses as ``(name, callable)`` pairs.

    Falls back to one whole-suite pseudo-harness on trees that predate
    the ``HARNESSES`` registry (the census-only baseline run).
    """
    registry = getattr(bench_json, "HARNESSES", None)
    if registry is not None:
        return [(name, harness)
                for name, (_message, harness) in registry.items()]
    return [("bench_suite", lambda: bench_json.collect())]


def _count_calls(fn):
    """Run ``fn`` under sys.setprofile; returns (python_calls, c_calls).

    ``call`` events include generator resumes — the simulator's unit of
    work; ``c_call`` events cover builtins (heap/deque traffic, struct
    packing, ``len``).
    """
    counts = [0, 0]

    def profiler(_frame, event, _arg):
        if event == "call":
            counts[0] += 1
        elif event == "c_call":
            counts[1] += 1

    sys.setprofile(profiler)
    try:
        fn()
    finally:
        sys.setprofile(None)
    return counts[0], counts[1]


def _measure_harness(harness):
    """(seconds, python_calls, c_calls) for one harness, current mode."""
    begin = time.perf_counter()
    harness()
    seconds = time.perf_counter() - begin
    py_calls, c_calls = _count_calls(harness)
    return seconds, py_calls, c_calls


def census():
    """One whole-suite call census in the tree's default dispatch mode.

    This is the half that must keep working against the pre-PR tree:
    CI checks out the base commit in a worktree and runs this file
    there with ``--census-only`` to produce the baseline honestly, with
    the same interpreter that measures the optimized tree.
    """
    py_total = 0
    c_total = 0
    for _name, harness in _harnesses():
        py_calls, c_calls = _count_calls(harness)
        py_total += py_calls
        c_total += c_calls
    return {
        "schema": CENSUS_SCHEMA,
        "python": sys.version.split()[0],
        "python_calls": py_total,
        "c_calls": c_total,
        "total_calls": py_total + c_total,
    }


def load_baseline(path=None):
    """The frozen pre-PR census to compare against, or (None, reason).

    An explicit ``path`` is trusted (CI measured it with this very
    interpreter).  The committed pinned file is only used when the
    running interpreter's major.minor matches the recorded one.
    """
    if path is not None:
        with open(path) as handle:
            return json.load(handle), None
    if not os.path.exists(PINNED_BASELINE):
        return None, "no baseline: %s not found" % PINNED_BASELINE
    with open(PINNED_BASELINE) as handle:
        baseline = json.load(handle)
    ours = sys.version.split()[0].rsplit(".", 1)[0]
    theirs = str(baseline.get("python", "")).rsplit(".", 1)[0]
    if ours != theirs:
        return None, ("pinned baseline measured on Python %s; running %s "
                      "(call counts are interpreter-specific) — pass "
                      "--baseline-json with a same-interpreter census"
                      % (baseline.get("python"), sys.version.split()[0]))
    return baseline, None


def measure(log=None, parallel_study=False, baseline=None,
            baseline_reason=None):
    """Run every bench harness in both modes; return the document."""
    def say(message):
        if log is not None:
            log(message)

    doc = {
        "schema": SCHEMA,
        "python": sys.version.split()[0],
        "harnesses": {},
    }
    total = {"batched": {"seconds": 0.0, "python_calls": 0, "c_calls": 0},
             "legacy": {"seconds": 0.0, "python_calls": 0, "c_calls": 0}}
    for name, harness in _harnesses():
        entry = {}
        for mode, enabled in (("batched", True), ("legacy", False)):
            say("%s: %s ..." % (mode, name))
            previous = dispatch.set_train_dispatch(enabled)
            try:
                seconds, py_calls, c_calls = _measure_harness(harness)
            finally:
                dispatch.set_train_dispatch(previous)
            entry[mode] = {"seconds": round(seconds, 3),
                           "python_calls": py_calls,
                           "c_calls": c_calls,
                           "total_calls": py_calls + c_calls}
            total[mode]["seconds"] += seconds
            total[mode]["python_calls"] += py_calls
            total[mode]["c_calls"] += c_calls
        entry["call_reduction"] = round(
            entry["legacy"]["total_calls"]
            / max(1, entry["batched"]["total_calls"]), 3)
        entry["speedup"] = round(
            entry["legacy"]["seconds"]
            / max(1e-9, entry["batched"]["seconds"]), 3)
        doc["harnesses"][name] = entry
    for mode in total:
        total[mode]["seconds"] = round(total[mode]["seconds"], 3)
        total[mode]["total_calls"] = (total[mode]["python_calls"]
                                      + total[mode]["c_calls"])
    doc["totals"] = {
        "batched": total["batched"],
        "legacy": total["legacy"],
        "call_reduction": round(
            total["legacy"]["total_calls"]
            / max(1, total["batched"]["total_calls"]), 3),
        "speedup": round(
            total["legacy"]["seconds"]
            / max(1e-9, total["batched"]["seconds"]), 3),
    }
    if baseline is not None:
        batched_total = total["batched"]["total_calls"]
        doc["vs_baseline"] = {
            "ref": baseline.get("ref"),
            "python": baseline.get("python"),
            "baseline_total_calls": baseline["total_calls"],
            "batched_total_calls": batched_total,
            "call_reduction": round(
                baseline["total_calls"] / max(1, batched_total), 3),
        }
    elif baseline_reason is not None:
        doc["vs_baseline"] = {"skipped": baseline_reason}
    if parallel_study:
        say("parallel study: 2-site WAN cell, single vs --parallel 2 ...")
        doc["parallel_study"] = parallel_block()
    return doc


def parallel_block():
    """Single-vs-parallel wall clock on one seeded WAN tail-study cell."""
    from repro.analysis import tailstudy

    runs = {}
    for label, nprocs in (("single_process", 0), ("parallel_2", 2)):
        begin = time.perf_counter()
        cell = tailstudy.run_cell(PARALLEL_TOPOLOGY, PARALLEL_WORKLOAD,
                                  "mach25", PARALLEL_LOAD,
                                  parallel=nprocs)
        seconds = time.perf_counter() - begin
        cell.pop("wallclock_seconds", None)
        runs[label] = {"seconds": round(seconds, 3), "cell": cell}
    identical = (json.dumps(runs["single_process"]["cell"], sort_keys=True)
                 == json.dumps(runs["parallel_2"]["cell"], sort_keys=True))
    return {
        "topology": PARALLEL_TOPOLOGY,
        "load": PARALLEL_LOAD,
        "single_process_seconds": runs["single_process"]["seconds"],
        "parallel_2_seconds": runs["parallel_2"]["seconds"],
        "speedup": round(runs["single_process"]["seconds"]
                         / max(1e-9, runs["parallel_2"]["seconds"]), 3),
        "results_identical": identical,
        "completed": runs["single_process"]["cell"]["completed"],
    }


def markdown(doc):
    """A step-summary table for CI."""
    lines = [
        "### Bench wall-clock and interpreter-call census",
        "",
        "| harness | batched s | legacy s | speedup | batched calls "
        "| legacy calls | A/B reduction |",
        "|---|---|---|---|---|---|---|",
    ]
    rows = list(doc["harnesses"].items()) + [("**total**", doc["totals"])]
    for name, entry in rows:
        if "batched" not in entry:
            continue
        lines.append(
            "| %s | %.3f | %.3f | %.2fx | %s | %s | %.2fx |" % (
                name,
                entry["batched"]["seconds"], entry["legacy"]["seconds"],
                entry["speedup"],
                "{:,}".format(entry["batched"]["total_calls"]),
                "{:,}".format(entry["legacy"]["total_calls"]),
                entry["call_reduction"]))
    versus = doc.get("vs_baseline")
    if versus is not None:
        lines.append("")
        if "skipped" in versus:
            lines.append("vs pre-PR baseline: skipped (%s)."
                         % versus["skipped"])
        else:
            lines.append(
                "**vs pre-PR baseline** (%s, Python %s): %s calls then, "
                "%s batched now — **%.2fx call reduction**."
                % (versus.get("ref") or "pinned", versus.get("python"),
                   "{:,}".format(versus["baseline_total_calls"]),
                   "{:,}".format(versus["batched_total_calls"]),
                   versus["call_reduction"]))
    study = doc.get("parallel_study")
    if study is not None:
        lines += [
            "",
            "Parallel island backend (2-site WAN, %d hosts, load %.2f): "
            "single %.3f s, `--parallel 2` %.3f s — **%.2fx speedup**, "
            "results identical: %s."
            % (study["topology"]["hosts"], study["load"],
               study["single_process_seconds"],
               study["parallel_2_seconds"], study["speedup"],
               study["results_identical"]),
        ]
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.bench_wallclock",
        description="Wall-clock + interpreter-call census of the bench "
                    "suite, batched vs legacy dispatch and vs the "
                    "frozen pre-PR baseline.")
    parser.add_argument("-o", "--output", metavar="PATH",
                        help="write the JSON document here "
                             "(default: stdout)")
    parser.add_argument("--markdown", action="store_true",
                        help="print a markdown summary to stdout "
                             "(for CI step summaries)")
    parser.add_argument("--census-only", action="store_true",
                        help="one whole-suite census in the tree's "
                             "default mode (runs against old trees; "
                             "produces a --baseline-json document)")
    parser.add_argument("--baseline-json", metavar="PATH", default=None,
                        help="a --census-only document measured on the "
                             "base commit with this interpreter "
                             "(overrides the pinned baseline)")
    parser.add_argument("--parallel-study", action="store_true",
                        help="append a single-vs-parallel wall-clock "
                             "comparison of one WAN tail-study cell")
    parser.add_argument("--min-call-reduction", type=float, default=None,
                        metavar="X",
                        help="exit 1 unless the vs-baseline call "
                             "reduction is at least X (deterministic "
                             "per interpreter, so it can gate CI; wall "
                             "clock never does)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress progress messages")
    args = parser.parse_args(argv)

    if args.census_only:
        doc = census()
        if args.output:
            with open(args.output, "w") as handle:
                json.dump(doc, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print("wrote %s" % args.output, file=sys.stderr)
        else:
            json.dump(doc, sys.stdout, indent=2, sort_keys=True)
            sys.stdout.write("\n")
        return 0

    if dispatch is None:
        print("bench_wallclock: this tree has no dispatch module; only "
              "--census-only works here", file=sys.stderr)
        return 2

    log = None if args.quiet else (
        lambda message: print(message, file=sys.stderr))
    baseline, reason = load_baseline(args.baseline_json)
    doc = measure(log=log, parallel_study=args.parallel_study,
                  baseline=baseline, baseline_reason=reason)

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.output, file=sys.stderr)
    if args.markdown:
        print(markdown(doc))
    elif not args.output:
        json.dump(doc, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")

    if args.min_call_reduction is not None:
        versus = doc.get("vs_baseline")
        if versus is None or "call_reduction" not in versus:
            print("bench_wallclock: --min-call-reduction needs a usable "
                  "baseline (%s)"
                  % (versus or {}).get("skipped", "none found"),
                  file=sys.stderr)
            return 1
        ratio = versus["call_reduction"]
        if ratio < args.min_call_reduction:
            print("bench_wallclock: call reduction %.3fx vs baseline is "
                  "below the required %.3fx"
                  % (ratio, args.min_call_reduction), file=sys.stderr)
            return 1
        print("bench_wallclock: call reduction %.3fx vs baseline "
              "(>= %.3fx required)" % (ratio, args.min_call_reduction),
              file=sys.stderr)
    study = doc.get("parallel_study")
    if study is not None and not study["results_identical"]:
        print("bench_wallclock: parallel study results DIVERGED",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
