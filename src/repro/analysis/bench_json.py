"""Headless JSON bench runner and perf-regression comparator.

Runs the paper's Table 1-4 and Figure 1 harnesses without pytest and
emits one schema-versioned JSON document::

    python -m repro.analysis.bench_json -o BENCH.json

Because the simulator is deterministic, every metric except the
wall-clock keys (``wall_clock_seconds`` and the per-harness
``wallclock`` block) is exactly reproducible; any drift between two
runs of the same code is a real behavioural change.  CI compares a fresh
run against ``benchmarks/baseline.json`` and fails on >1% relative
drift of any simulated metric::

    python -m repro.analysis.bench_json --against BENCH.json \\
        --compare benchmarks/baseline.json

After an *intentional* performance change, regenerate the baseline and
commit it:

    PYTHONPATH=src python -m repro.analysis.bench_json -o benchmarks/baseline.json
"""

import argparse
import json
import sys
import time

from repro.analysis.experiments import (
    run_crossings,
    run_proxy_calls,
    run_table2,
)
from repro.analysis.tracing import run_traced_breakdown
from repro.stack.instrument import Layer
from repro.world.configs import DECSTATION_ROWS, GATEWAY_ROWS

#: Bump on any structural change to the emitted document.
SCHEMA = "repro-bench/1"

#: Keys excluded from regression comparison: wall-clock keys are
#: non-deterministic; "metrics" is the optional telemetry block
#: (deterministic, but only present when --metrics is passed, so the
#: gate must not flag its absence from the baseline).
VOLATILE_KEYS = ("wall_clock_seconds", "wallclock", "metrics")

#: Default relative drift tolerance for the CI gate.
DEFAULT_TOLERANCE = 0.01

NEWAPI_KEYS = ("library-ipc", "library-shm", "library-shm-ipf",
               "library-newapi-ipc", "library-newapi-shm",
               "library-newapi-shm-ipf")

TABLE4_SYSTEMS = ("mach25", "ux", "library-shm-ipf")
TABLE4_SIZES = (1, 1472)
FIGURE1_SYSTEMS = ("mach25", "ux", "library-shm-ipf")


def _latency_entry(result):
    return {
        "mean_us": result.mean_rtt_us,
        "p50_us": result.p50_rtt_us,
        "p95_us": result.p95_rtt_us,
        "p99_us": result.p99_rtt_us,
    }


def _table2_entry(row):
    return {
        "throughput_kbs": row.throughput_kbs,
        "tcp_rtt": {str(s): _latency_entry(r)
                    for s, r in sorted(row.tcp_latency.items())},
        "udp_rtt": {str(s): _latency_entry(r)
                    for s, r in sorted(row.udp_latency.items())},
    }


def _h_table1():
    return {"table1_proxy_rpcs": run_proxy_calls()}


def _h_table2_decstation():
    rows = run_table2(DECSTATION_ROWS, platform="decstation",
                      total_bytes=1024 * 1024, rounds=40,
                      tcp_sizes=(1, 1460), udp_sizes=(1, 1472))
    return {"table2_decstation": {r.key: _table2_entry(r) for r in rows}}


def _h_table2_gateway():
    rows = run_table2(GATEWAY_ROWS, platform="gateway",
                      total_bytes=512 * 1024, rounds=20,
                      tcp_sizes=(1,), udp_sizes=(1,))
    return {"table2_gateway": {r.key: _table2_entry(r) for r in rows}}


def _h_table3_newapi():
    rows = run_table2(NEWAPI_KEYS, platform="decstation",
                      total_bytes=1024 * 1024, rounds=20,
                      tcp_sizes=(1460,), udp_sizes=(1472,))
    return {"table3_newapi": {r.key: _table2_entry(r) for r in rows}}


def _h_table4():
    table4 = {}
    trace_stats = {"spans": 0, "traces": 0}
    for key in TABLE4_SYSTEMS:
        per_size = {}
        for size in TABLE4_SIZES:
            result = run_traced_breakdown(key, "udp", size, rounds=100)
            per_size[str(size)] = {
                layer: result.breakdown[layer]
                for layer in Layer.SEND_PATH + Layer.RECEIVE_PATH
            }
            per_size[str(size)]["send_path_total"] = (
                result.breakdown["send path total"])
            per_size[str(size)]["receive_path_total"] = (
                result.breakdown["receive path total"])
            per_size[str(size)]["rtt"] = _latency_entry(result.rtt)
            trace_stats["spans"] += result.spans
            trace_stats["traces"] += result.traces
        table4[key] = per_size
    return {"table4_udp_us": table4, "trace_volume": trace_stats}


def _h_figure1():
    return {"figure1": {key: run_crossings(key) for key in FIGURE1_SYSTEMS}}


#: Named bench harnesses, in document order.  Each entry is
#: (progress message, zero-argument callable returning the document
#: keys it contributes).  Shared by :func:`collect`, the wall-clock
#: tracker (:mod:`repro.analysis.bench_wallclock`), and the
#: ``python -m repro profile`` CLI.
HARNESSES = {
    "table1_proxy_rpcs": ("table 1: proxy interface ...", _h_table1),
    "table2_decstation": ("table 2: DECstation rows ...",
                          _h_table2_decstation),
    "table2_gateway": ("table 2: Gateway rows ...", _h_table2_gateway),
    "table3_newapi": ("table 3: NEWAPI rows ...", _h_table3_newapi),
    "table4_udp_us": ("table 4: trace-derived breakdowns ...", _h_table4),
    "figure1": ("figure 1: crossing counts ...", _h_figure1),
}


def collect(log=None):
    """Run every harness; returns the BENCH document as a dict."""
    def say(msg):
        if log is not None:
            log(msg)

    wall_start = time.monotonic()
    doc = {"schema": SCHEMA}
    #: Per-harness wall-clock metadata.  Volatile (see VOLATILE_KEYS):
    #: the CI drift gate ignores it, but keeping it in the document lets
    #: CI and humans track where the runner's time goes.
    harness_seconds = {}
    mark = time.monotonic()

    def lap(label):
        nonlocal mark
        now = time.monotonic()
        harness_seconds[label] = round(now - mark, 3)
        mark = now

    for name, (message, harness) in HARNESSES.items():
        say(message)
        doc.update(harness())
        lap(name)

    total = round(time.monotonic() - wall_start, 3)
    doc["wall_clock_seconds"] = total
    doc["wallclock"] = {
        "total_seconds": total,
        "harness_seconds": harness_seconds,
    }
    return doc


def collect_metrics_block(config_key="library-shm-ipf", platform="decstation",
                          total_bytes=512 * 1024):
    """One telemetry-enabled TCP transfer, condensed for the BENCH doc.

    Separate from :func:`collect` (which runs everything with telemetry
    off, keeping BENCH.json byte-identical to the baseline): this block
    only appears under the volatile ``metrics`` key when the runner is
    invoked with ``--metrics``.
    """
    from repro.analysis.timeseries import probe_summary
    from repro.apps.ttcp import ttcp
    from repro.world.configs import CONFIGS, build_network

    net, src, dst = build_network(config_key, platform=platform)
    net.metrics.enable()
    result = ttcp(net, src, dst, total_bytes=total_bytes,
                  rcvbuf_kb=CONFIGS[config_key].best_rcvbuf_kb)
    snap = net.metrics.snapshot()
    return {
        "config": config_key,
        "throughput_kbs": result.throughput_kbs,
        "tcp_probes": probe_summary(net.metrics),
        "rtt_ticks": snap["histograms"].get("tcp.rtt_ticks"),
        "gauges": snap["gauges"],
    }


# ----------------------------------------------------------------------
# Regression comparison
# ----------------------------------------------------------------------

def _walk(baseline, current, path, problems, tolerance):
    if isinstance(baseline, dict):
        if not isinstance(current, dict):
            problems.append("%s: expected object, got %r" % (path, current))
            return
        for key in baseline:
            if key in VOLATILE_KEYS:
                continue
            if key not in current:
                problems.append("%s.%s: missing from current run" % (path, key))
                continue
            _walk(baseline[key], current[key], "%s.%s" % (path, key),
                  problems, tolerance)
        for key in current:
            if key not in baseline and key not in VOLATILE_KEYS:
                problems.append("%s.%s: not in baseline" % (path, key))
        return
    if isinstance(baseline, bool) or not isinstance(baseline, (int, float)):
        if baseline != current:
            problems.append("%s: baseline %r != current %r"
                            % (path, baseline, current))
        return
    if not isinstance(current, (int, float)) or isinstance(current, bool):
        problems.append("%s: expected number, got %r" % (path, current))
        return
    denom = max(abs(baseline), 1e-12)
    drift = abs(current - baseline) / denom
    if drift > tolerance:
        problems.append("%s: %.6g -> %.6g (%+.2f%% > ±%.0f%%)" % (
            path, baseline, current, 100.0 * (current - baseline) / denom,
            100.0 * tolerance))


def compare(baseline, current, tolerance=DEFAULT_TOLERANCE):
    """All simulated metrics of ``current`` within ``tolerance`` of
    ``baseline``.  Returns a list of human-readable problem strings."""
    problems = []
    _walk(baseline, current, "$", problems, tolerance)
    return problems


# ----------------------------------------------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.bench_json",
        description="Run the paper's bench harnesses headless; emit/compare "
                    "a schema-versioned BENCH.json.",
    )
    parser.add_argument("-o", "--output", metavar="PATH",
                        help="write the BENCH document here "
                             "(default: stdout)")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="compare against a baseline document; exit 1 "
                             "on >tolerance drift of any simulated metric")
    parser.add_argument("--against", metavar="BENCH",
                        help="with --compare: use this previously generated "
                             "document instead of running the harnesses")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="relative drift tolerance (default %(default)s)")
    parser.add_argument("--metrics", action="store_true",
                        help="append a telemetry block (one metrics-enabled "
                             "TCP run) under the volatile 'metrics' key; "
                             "the drift gate ignores it")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress progress messages")
    args = parser.parse_args(argv)

    log = None if args.quiet else lambda m: print(m, file=sys.stderr)

    if args.against:
        with open(args.against) as handle:
            doc = json.load(handle)
    else:
        doc = collect(log=log)
    if args.metrics and "metrics" not in doc:
        if log is not None:
            log("telemetry: metrics-enabled TCP run ...")
        doc["metrics"] = collect_metrics_block()

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.output, file=sys.stderr)
    elif not args.compare:
        json.dump(doc, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")

    if args.compare:
        with open(args.compare) as handle:
            baseline = json.load(handle)
        problems = compare(baseline, doc, tolerance=args.tolerance)
        if problems:
            print("PERF REGRESSION GATE FAILED: %d metric(s) drifted more "
                  "than ±%.0f%% from %s"
                  % (len(problems), 100.0 * args.tolerance, args.compare))
            for problem in problems:
                print("  " + problem)
            print("\nThe simulator is deterministic, so any drift is a real "
                  "behavioural change.\nIf it is intentional, regenerate the "
                  "baseline and commit it:\n\n    PYTHONPATH=src python -m "
                  "repro.analysis.bench_json -o benchmarks/baseline.json\n")
            return 1
        print("perf gate OK: all simulated metrics within ±%.0f%% of %s"
              % (100.0 * args.tolerance, args.compare))
    return 0


if __name__ == "__main__":
    sys.exit(main())
