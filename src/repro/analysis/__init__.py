"""Experiment orchestration and paper-style table rendering."""

from repro.analysis.tables import format_table, render_latency_table
from repro.analysis.experiments import (
    LATENCY_SIZES_TCP,
    LATENCY_SIZES_UDP,
    run_breakdown,
    run_latency_row,
    run_table2,
    run_throughput,
    search_best_rcvbuf,
)

__all__ = [
    "format_table",
    "render_latency_table",
    "run_throughput",
    "run_latency_row",
    "run_table2",
    "run_breakdown",
    "search_best_rcvbuf",
    "LATENCY_SIZES_TCP",
    "LATENCY_SIZES_UDP",
]
