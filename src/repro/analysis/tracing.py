"""Trace-derived Table 4: fold per-packet spans into layer breakdowns.

:mod:`repro.stack.instrument` accumulates per-layer CPU time in ledgers;
the :class:`~repro.trace.recorder.TraceRecorder` mirrors every one of
those charges as a per-packet span.  Folding the span stream back down
must therefore reproduce the ledgers *tick for tick* — same floats, same
addition order.  This module provides that fold, the crosscheck that
enforces the invariant, and a breakdown runner that derives the paper's
Table 4 from real packet timelines instead of the raw ledgers.
"""

import warnings
from dataclasses import dataclass, field

from repro.apps.protolat import protolat
from repro.stack.instrument import Layer
from repro.world.configs import build_network

#: Span capacity used for breakdown runs: large enough that a full
#: steady-state protolat never evicts (eviction would break the
#: fold-vs-ledger crosscheck).
BREAKDOWN_CAPACITY = 1 << 20


class TraceMismatch(AssertionError):
    """The folded span stream disagrees with the accounting ledgers."""


class TraceRingOverflow(UserWarning):
    """A fold was computed over a lossy ring: spans were overwritten,
    so the totals undercount and any ledger comparison is suspect."""


def placement_ledgers(*placements):
    """Every accounting ledger a set of placements charges into.

    Returns ``{owner: LayerAccounting}``.  Library placements carry two:
    the application-side library ledger and the OS server's own.
    """
    ledgers = {}
    for placement in placements:
        ledgers[placement.accounting.owner] = placement.accounting
        backend = getattr(placement, "_backend", None)
        backend_acct = getattr(backend, "accounting", None)
        if backend_acct is not None and backend_acct is not placement.accounting:
            ledgers[backend_acct.owner] = backend_acct
    return ledgers


def crosscheck(tracer, ledgers):
    """Compare ``tracer.fold()`` against accounting ledgers tick for tick.

    Returns a list of human-readable mismatch strings (empty means the
    invariant holds).  Equality is exact float equality: the fold replays
    the ledgers' additions in the same order, so even rounding must agree.
    """
    if tracer.spans_evicted > 0:
        warnings.warn(
            "crosscheck over a lossy ring: %d spans evicted (capacity "
            "%d); the fold undercounts" % (tracer.spans_evicted,
                                           tracer.capacity),
            TraceRingOverflow, stacklevel=2)
    fold = tracer.fold()
    problems = []
    for owner, acct in ledgers.items():
        folded = fold.get(owner, {})
        for layer in sorted(set(folded) | set(acct.totals)):
            f = folded.get(layer)
            a = acct.totals.get(layer)
            if f != a:
                problems.append(
                    "%s / %s: fold=%r ledger=%r" % (owner, layer, f, a)
                )
    for owner in sorted(set(fold) - set(ledgers)):
        problems.append("untracked owner in span stream: %s" % owner)
    return problems


@dataclass
class TraceBreakdown:
    """A Table 4 column derived from the per-packet span stream."""

    config_key: str
    proto: str
    message_size: int
    rounds: int
    #: layer -> mean us per round trip on the client ledger (the same
    #: shape ``experiments.run_breakdown`` produces), plus the
    #: ``send/receive path total`` and ``measured rtt_us`` keys.
    breakdown: dict = field(default_factory=dict)
    #: owner -> {layer: total us} — the full fold, all ledgers.
    fold: dict = field(default_factory=dict)
    #: Spans folded (steady-state window only).
    spans: int = 0
    #: Per-packet traces observed in the window.
    traces: int = 0
    #: RTT statistics for the same run (with percentiles).
    rtt: object = None


def run_traced_breakdown(config_key, proto, message_size,
                         platform="decstation", rounds=200):
    """Table 4 from traces: like ``experiments.run_breakdown``, but the
    per-layer means come from folding the recorded packet spans, and the
    fold is crosschecked tick-for-tick against the accounting ledgers.

    Raises :class:`TraceMismatch` if any ledger cell disagrees with the
    folded span stream, or if the span ring overflowed (which would make
    the comparison meaningless).
    """
    network, pa, pb = build_network(config_key, platform=platform)
    tracer = network.tracer
    tracer.enable(capacity=BREAKDOWN_CAPACITY)
    window = {"base_spans": 0, "base_traces": 0}

    def reset_ledgers():
        # Steady state only: drop connection-establishment and ARP costs
        # from both the ledgers and the span stream, as run_breakdown does.
        for acct in placement_ledgers(pa, pb).values():
            acct.reset()
        tracer.clear()
        window["base_spans"] = tracer.spans_recorded
        window["base_traces"] = tracer.traces_started

    result = protolat(
        network, pb, pa, proto=proto, message_size=message_size,
        rounds=rounds, on_warm=reset_ledgers,
    )

    recorded = tracer.spans_recorded - window["base_spans"]
    if recorded != len(tracer.spans):
        raise TraceMismatch(
            "span ring overflowed (%d recorded, %d retained); raise "
            "BREAKDOWN_CAPACITY" % (recorded, len(tracer.spans))
        )
    ledgers = placement_ledgers(pa, pb)
    problems = crosscheck(tracer, ledgers)
    if problems:
        raise TraceMismatch(
            "trace fold disagrees with instrument accounting:\n  "
            + "\n  ".join(problems)
        )

    fold = tracer.fold()
    client = fold.get(pb.accounting.owner, {})
    breakdown = {}
    for layer in Layer.SEND_PATH + Layer.RECEIVE_PATH:
        breakdown[layer] = client.get(layer, 0.0) / result.rounds
    breakdown["send path total"] = sum(
        breakdown[l] for l in Layer.SEND_PATH
    )
    breakdown["receive path total"] = sum(
        breakdown[l] for l in Layer.RECEIVE_PATH
    )
    breakdown["measured rtt_us"] = result.mean_rtt_us
    return TraceBreakdown(
        config_key=config_key,
        proto=proto,
        message_size=message_size,
        rounds=result.rounds,
        breakdown=breakdown,
        fold=fold,
        spans=recorded,
        traces=tracer.traces_started - window["base_traces"],
        rtt=result,
    )
