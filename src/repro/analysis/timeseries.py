"""Post-processing for telemetry time series.

Everything here operates on the plain ``(t, *fields)`` sample tuples
that :class:`repro.metrics.TimeSeries` and gauge histories hold — no
numpy, no pandas, deterministic output.  The exporters cover the three
consumers we actually have:

* JSONL (one object per sample) for offline analysis and CI artifacts,
* CSV (long format) for spreadsheets and gnuplot,
* Chrome-trace *counter* events (``ph: "C"``) that merge with the
  per-packet span trace so queue depths and cwnd render as counter
  tracks above the packet timelines in Perfetto.
"""

import csv
import io
import json


def resample(samples, step, t0=None, t1=None):
    """Resample an event-driven ``(t, value)`` series onto a fixed grid.

    Last-observation-carried-forward: the value at grid point ``g`` is
    the most recent sample at or before ``g`` (None before the first
    sample).  Returns a list of ``(t, value)`` pairs at ``t0``, ``t0 +
    step``, ... up to and including the last grid point <= ``t1``.
    """
    if step <= 0:
        raise ValueError("step must be positive")
    samples = list(samples)
    if t0 is None:
        t0 = samples[0][0] if samples else 0.0
    if t1 is None:
        t1 = samples[-1][0] if samples else t0
    out = []
    index = 0
    value = None
    t = t0
    while t <= t1:
        while index < len(samples) and samples[index][0] <= t:
            value = samples[index][1]
            index += 1
        out.append((t, value))
        t += step
    return out


def percentiles(values, ps=(0.5, 0.9, 0.99)):
    """Exact percentiles (nearest-rank) of a value list."""
    ordered = sorted(values)
    if not ordered:
        return {p: None for p in ps}
    out = {}
    for p in ps:
        rank = max(1, int(p * len(ordered) + 0.5))
        out[p] = ordered[min(rank, len(ordered)) - 1]
    return out


def summarize(samples):
    """min/median/max/mean/count of a ``(t, value)`` series, ignoring
    non-numeric values."""
    values = [v for _t, v in samples if isinstance(v, (int, float))]
    if not values:
        return {"count": 0, "min": None, "median": None, "max": None,
                "mean": None}
    pcts = percentiles(values, (0.5,))
    return {
        "count": len(values),
        "min": min(values),
        "median": pcts[0.5],
        "max": max(values),
        "mean": sum(values) / len(values),
    }


def utilization_over_window(samples, window, t1):
    """Utilization over the trailing ``window`` of a *cumulative*
    busy-time series (e.g. ``cpu.busy_us`` / ``wire.busy_us`` gauges).

    The series carries cumulative microseconds; the difference across
    the window divided by the window length is the utilization in it.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    t0 = t1 - window
    before = 0.0
    end = None
    for t, v in samples:
        if t <= t0:
            before = v
        if t <= t1:
            end = v
    if end is None:
        return 0.0
    return max(0.0, (end - before) / window)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


def export_jsonl(registry, fileobj):
    """Write every series as JSON Lines: one object per sample, shaped
    ``{"series": name, "t": t, <field>: value, ...}``.  Returns the
    number of lines written."""
    lines = 0
    for name, fields, samples in registry.series():
        for sample in samples:
            row = {"series": name, "t": sample[0]}
            for field, value in zip(fields, sample[1:]):
                row[field] = value
            fileobj.write(json.dumps(row, sort_keys=True) + "\n")
            lines += 1
    return lines


def load_jsonl(fileobj):
    """Parse :func:`export_jsonl` output back into ``{name: [row, ...]}``."""
    out = {}
    for line in fileobj:
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        out.setdefault(row["series"], []).append(row)
    return out


def export_csv(registry, fileobj):
    """Write every series in long CSV format:
    ``series,t,field,value`` — one row per (sample, field)."""
    writer = csv.writer(fileobj)
    writer.writerow(["series", "t", "field", "value"])
    rows = 0
    for name, fields, samples in registry.series():
        for sample in samples:
            for field, value in zip(fields, sample[1:]):
                writer.writerow([name, sample[0], field, value])
                rows += 1
    return rows


def chrome_counter_events(registry):
    """Telemetry as Chrome-trace counter events (``ph: "C"``).

    Each numeric series field becomes a counter track named
    ``<series>.<field>`` under a ``telemetry`` process row; merged into
    :func:`repro.trace.export.chrome_trace` output they render above
    the packet spans in Perfetto.
    """
    events = []
    for name, fields, samples in registry.series():
        for sample in samples:
            for field, value in zip(fields, sample[1:]):
                if not isinstance(value, (int, float)):
                    continue
                track = name if fields == ("value",) else "%s.%s" % (name, field)
                events.append({
                    "name": track,
                    "ph": "C",
                    "ts": sample[0],
                    "pid": "telemetry",
                    "args": {"value": value},
                })
    return events


def probe_summary(registry):
    """Per-connection cwnd/srtt summaries for every tcp_probe series.

    Returns ``{series_name: {"samples": n, "cwnd": {...}, "srtt":
    {...}}}`` with :func:`summarize` blocks, skipping empty series.
    """
    out = {}
    for probe in registry.tcp_probes:
        series = probe.series
        if not series.samples:
            continue
        out[series.name] = {
            "samples": series.recorded,
            "cwnd": summarize(series.column("cwnd")),
            "srtt": summarize(series.column("srtt")),
        }
    return out


def probe_summary_markdown(registry):
    """The :func:`probe_summary` as a GitHub-flavoured markdown table."""
    summary = probe_summary(registry)
    buf = io.StringIO()
    buf.write("| connection | samples | cwnd min/med/max | srtt min/med/max |\n")
    buf.write("|---|---|---|---|\n")
    for name in sorted(summary):
        row = summary[name]
        cwnd, srtt = row["cwnd"], row["srtt"]
        buf.write("| %s | %d | %s/%s/%s | %s/%s/%s |\n" % (
            name, row["samples"],
            cwnd["min"], cwnd["median"], cwnd["max"],
            srtt["min"], srtt["median"], srtt["max"],
        ))
    return buf.getvalue()
