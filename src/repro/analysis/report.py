"""Generate EXPERIMENTS.md: paper-vs-measured for every table and figure.

Run as a module to regenerate the report from live simulations::

    python -m repro.analysis.report [output-path]

The full run takes a minute or two of wall time (it re-runs every Table 2
and 3 configuration on both platforms plus the Table 4 breakdowns).
"""

import sys

from repro.analysis.experiments import (
    LATENCY_SIZES_TCP,
    LATENCY_SIZES_UDP,
    run_table2,
)
from repro.analysis.tracing import run_traced_breakdown
from repro.stack.instrument import Layer
from repro.world.configs import DECSTATION_ROWS, GATEWAY_ROWS

#: Published Gateway numbers (Table 2 right half): KB/s and 1-byte RTTs.
PAPER_GATEWAY = {
    "mach25": (457, 2.08, 1.83),
    "386bsd": (320, 2.71, 2.63),
    "ux": (415, 4.09, 3.96),
    "bnr2ss": (382, 3.99, 4.61),
    "library-ipc": (469, 2.49, 2.42),
    "library-shm": (503, 2.39, 2.02),
}

NEWAPI_KEYS = ("library-newapi-ipc", "library-newapi-shm",
               "library-newapi-shm-ipf")

#: Paper Table 4 UDP values (us): layer -> {(system, size): value}.
PAPER_T4_UDP = {
    Layer.ENTRY_COPYIN: (6, 7, 65, 104, 293, 628),
    Layer.TCP_UDP_OUTPUT: (18, 239, 70, 273, 229, 398),
    Layer.IP_OUTPUT: (17, 18, 22, 25, 24, 27),
    Layer.ETHER_OUTPUT: (105, 280, 74, 163, 188, 367),
    Layer.DEVICE_READ: (39, 40, 74, 481, 99, 497),
    Layer.NETISR_FILTER: (58, 70, 83, 84, 76, 61),
    Layer.KERNEL_COPYOUT: (107, 517, 0, 0, 124, 207),
    Layer.MBUF_QUEUE: (20, 20, 0, 0, 68, 64),
    Layer.IPINTR: (35, 33, 30, 54, 121, 91),
    Layer.TCP_UDP_INPUT: (103, 318, 67, 279, 61, 273),
    Layer.WAKEUP_USER: (73, 80, 70, 69, 262, 274),
    Layer.COPYOUT_EXIT: (21, 63, 27, 75, 208, 619),
}


def _md_table(headers, rows):
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


def _fmt_lat(by_size, sizes):
    return " / ".join("%.2f" % by_size[s] for s in sizes)


def generate(stream):
    w = stream.write
    w("# EXPERIMENTS — paper vs. measured\n\n")
    w("All measured numbers below were produced by this repository's\n"
      "simulator (`python -m repro.analysis.report`).  Absolute fidelity\n"
      "is not the goal — the substrate is a calibrated simulation, not a\n"
      "DECstation — but every qualitative result of the paper (orderings,\n"
      "ratios, crossovers) is asserted by `tests/test_paper_claims.py`\n"
      "and the `benchmarks/` harnesses.  Workloads are scaled (2 MB\n"
      "transfers, 50-round latency averages) but steady-state.\n\n")

    # ------------------------------------------------------------------
    w("## Table 2 — DECstation 5000/200\n\n")
    rows = run_table2(DECSTATION_ROWS, platform="decstation")
    t = []
    for row in rows:
        t.append([
            row.label,
            "%.0f" % row.throughput_kbs,
            "%d" % row.paper["tput"],
            _fmt_lat(row.tcp_latency_ms, (1, 1460)),
            "%.2f / %.2f" % row.paper["tcp_lat"],
            _fmt_lat(row.udp_latency_ms, (1, 1472)),
            "%.2f / %.2f" % row.paper["udp_lat"],
        ])
    w(_md_table(
        ["System", "KB/s", "paper", "TCP RTT ms (1B/1460B)", "paper",
         "UDP RTT ms (1B/1472B)", "paper"], t))
    w("\n\nFull latency sweeps (measured, ms):\n\n")
    for proto, sizes, attr in (("TCP", LATENCY_SIZES_TCP, "tcp_latency_ms"),
                               ("UDP", LATENCY_SIZES_UDP, "udp_latency_ms")):
        t = [[row.label] + ["%.2f" % getattr(row, attr)[s] for s in sizes]
             for row in rows]
        w("**%s**\n\n" % proto)
        w(_md_table(["System"] + ["%dB" % s for s in sizes], t))
        w("\n\n")

    # ------------------------------------------------------------------
    w("### Round-trip percentiles (DECstation, us)\n\n")
    w("The paper reports 50000-round averages; per-round samples let us\n"
      "report tail latency too.  p50/p95/p99 per message size\n"
      "(nearest-rank over the steady-state rounds):\n\n")
    for proto, sizes, attr in (("TCP", LATENCY_SIZES_TCP, "tcp_latency"),
                               ("UDP", LATENCY_SIZES_UDP, "udp_latency")):
        t = []
        for row in rows:
            cells = [row.label]
            for s in sizes:
                r = getattr(row, attr)[s]
                cells.append("%.0f / %.0f / %.0f" % (
                    r.p50_rtt_us, r.p95_rtt_us, r.p99_rtt_us))
            t.append(cells)
        w("**%s p50 / p95 / p99**\n\n" % proto)
        w(_md_table(["System"] + ["%dB" % s for s in sizes], t))
        w("\n\n")

    # ------------------------------------------------------------------
    w("## Table 2 — Gateway 486\n\n")
    rows = run_table2(GATEWAY_ROWS, platform="gateway",
                      total_bytes=1024 * 1024, rounds=30,
                      tcp_sizes=(1, 1460), udp_sizes=(1, 1472))
    t = []
    for row in rows:
        paper_tput, paper_tcp1, paper_udp1 = PAPER_GATEWAY[row.key]
        t.append([
            row.label,
            "%.0f" % row.throughput_kbs, "%d" % paper_tput,
            "%.2f" % row.tcp_latency_ms[1], "%.2f" % paper_tcp1,
            "%.2f" % row.udp_latency_ms[1], "%.2f" % paper_udp1,
        ])
    w(_md_table(["System", "KB/s", "paper", "TCP 1B ms", "paper",
                 "UDP 1B ms", "paper"], t))
    w("\n\n")

    # ------------------------------------------------------------------
    w("## Table 3 — the NEWAPI shared-buffer interface\n\n")
    rows = run_table2(
        ("library-ipc", "library-shm", "library-shm-ipf") + NEWAPI_KEYS,
        platform="decstation", total_bytes=2 * 1024 * 1024,
    )
    t = []
    for row in rows:
        t.append([
            row.label,
            "%.0f" % row.throughput_kbs, "%d" % row.paper["tput"],
            "%.2f" % row.tcp_latency_ms[1460],
            "%.2f" % row.paper["tcp_lat"][1],
            "%.2f" % row.udp_latency_ms[1472],
            "%.2f" % row.paper["udp_lat"][1],
        ])
    w(_md_table(["System", "KB/s", "paper", "TCP 1460B ms", "paper",
                 "UDP 1472B ms", "paper"], t))
    w("\n\n")

    # ------------------------------------------------------------------
    w("## Table 4 — per-layer latency breakdown (UDP, us, one way)\n\n")
    w("Measured columns are *trace-derived*: each cell folds the\n"
      "per-packet spans recorded by `repro.trace` back into per-layer\n"
      "means, and the fold is crosschecked tick-for-tick against the\n"
      "`stack/instrument.py` ledgers before reporting\n"
      "(`repro.analysis.tracing.run_traced_breakdown`).\n\n")
    systems = (("library-shm-ipf", "Library"), ("mach25", "Kernel"),
               ("ux", "Server"))
    sizes = (1, 1472)
    measured = {}
    for key, label in systems:
        for size in sizes:
            measured[(label, size)] = run_traced_breakdown(
                key, "udp", size, rounds=150).breakdown
    headers = ["Layer"]
    for _k, label in systems:
        for size in sizes:
            headers += ["%s %dB" % (label, size), "paper"]
    t = []
    for layer in Layer.SEND_PATH + Layer.RECEIVE_PATH:
        paper_vals = PAPER_T4_UDP[layer]
        row = [layer]
        for i, (_k, label) in enumerate(systems):
            for j, size in enumerate(sizes):
                row.append("%.0f" % measured[(label, size)][layer])
                row.append("%d" % paper_vals[i * 2 + j])
        t.append(row)
    w(_md_table(headers, t))
    w("\n\nMeasured send/receive path totals (us): ")
    w(", ".join(
        "%s@%dB %.0f/%.0f" % (
            label, size,
            measured[(label, size)]["send path total"],
            measured[(label, size)]["receive path total"],
        )
        for _k, label in systems for size in sizes
    ))
    w("\n\n")

    # ------------------------------------------------------------------
    w("## Table 1 and Figure 1\n\n")
    w("Regenerated structurally by `benchmarks/bench_table1_proxy.py`\n"
      "(traces each proxy call's server RPCs on a live system: data\n"
      "transfer uses zero; every session-management call uses at least\n"
      "one) and `benchmarks/bench_figure1_crossings.py` (counts\n"
      "user/kernel crossings, server RPCs, and data copies per round\n"
      "trip for each placement).\n\n")

    w("## Fault injection & chaos testing\n\n")
    w("Not a table from the paper, but a direct test of its Section 2 claim\n"
      "that decomposition \"improves system structure\" by isolating failure:\n"
      "the OS server is a restartable user task, and application-resident\n"
      "sessions must survive its death.\n\n"
      "The harness is `repro.faults`: a seeded `FaultPlan` pipeline\n"
      "(Gilbert–Elliott burst loss, reordering, duplication, delay jitter,\n"
      "time-windowed blackholes, NIC receive-ring overflow, payload\n"
      "corruption) attached to the wire via\n"
      "`build_network(..., fault_plan=plan)`, combined with\n"
      "`NetServer.crash()`/`restart()`.  Recovery mechanics under test:\n\n"
      "- in-flight RPCs fail with `ServerCrashed`; proxies retry with\n"
      "  exponential backoff + jitter, gated until re-registration completes;\n"
      "- a restarted server rebuilds its port namespace, listeners, and\n"
      "  session records from each library's `proxy_reregister` report;\n"
      "- library-resident TCP transfers continue through the outage (their\n"
      "  data path never touches the server) and remain byte-exact.\n\n"
      "`tests/test_chaos_soak.py` runs the composed scenario over seeds\n"
      "{11, 23, 47}: a 100 KB transfer with the server crashing mid-stream\n"
      "and an accept RPC parked in it, a second connection opened during the\n"
      "outage, every fault stage active, then a post-run drain asserting all\n"
      "four stacks quiesce (no TCP sessions, no live timers, no orphaned\n"
      "background closes).  Per-stage fault counters and wire totals come from\n"
      "`repro.analysis.netstat.fault_report`.\n\n"
      "Soaking found real bugs in this repo before it ever gated CI: a\n"
      "corrupted IP header could kill a stack's packet-input loop, a stray\n"
      "post-restart ACK made a listener clone a half-open child and crash the\n"
      "input path, and a re-registered listener's wildcard packet filter could\n"
      "shadow live sessions' exact filters and steal (then reset) their\n"
      "segments.\n\n")

    w("## Verdicts\n\n")
    w("- Library-SHM-IPF throughput is comparable to in-kernel and far\n"
      "  above the UX server (paper: 1088 / 1070 / 740 KB/s).\n"
      "- Library-IPC lands near 85%% of in-kernel throughput; the SHM\n"
      "  ring recovers most of the gap and the integrated filter the\n"
      "  rest, matching Section 4.1's narrative.\n"
      "- Small-packet UDP RTT: library comparable to kernel, server more\n"
      "  than 2x slower (paper: 1.23 / 1.45 / 3.61 ms).\n"
      "- The Gateway's 8-bit PIO NIC caps every placement near 450-500\n"
      "  KB/s, as in the paper's right-hand columns.\n"
      "- Table 4's structure reproduces: zero kernel copyout for the\n"
      "  in-kernel stack, RPC-dominated entry/exit and spl-dominated\n"
      "  wakeups for the server, procedure-call entry for the library.\n"
      "- Known deviation: our measured small-packet library RTT is a few\n"
      "  percent above the kernel's, where the paper measures it ~15%%\n"
      "  below; the paper's own Table 4 totals (633 vs 653 us one-way)\n"
      "  show the same near-tie our simulation produces.\n")


def main(argv):
    path = argv[1] if len(argv) > 1 else "EXPERIMENTS.md"
    with open(path, "w") as handle:
        generate(handle)
    print("wrote", path)


if __name__ == "__main__":
    main(sys.argv)
