"""The chaos conformance matrix: control-plane faults under invariants.

Every scenario is one cell of {placement} x {workload} x {fault family},
run under one seed:

* **placements** — ``library-shm-ipf`` and ``library-ipc`` (NetServer +
  protocol libraries), ``ux`` (monolithic UnixServer), and ``mach25``
  (in-kernel, no control plane — wire faults only).
* **workloads** — ``ttcp`` (one bulk transfer, byte-checksummed),
  ``protolat`` (request/response echo rounds), and ``churn`` (a loop of
  short connections with a mid-stream ``fork`` and an embryonic socket).
* **fault families** — ``wire`` (the full frame pipeline: burst loss,
  reorder, duplication, jitter, corruption), ``rpc`` (control-plane
  request drop/duplicate/delay, reply delay, IPC channel faults, with
  implicit deadlines), and ``stress`` (server-side slow ops, transient
  failures, admission control with a tiny pending queue, plus — on
  library placements — a full crash/restart outage).

After the workload completes and TIME_WAIT drains, a battery of
invariants must hold: every byte arrived intact, no port stayed bound,
no TCP session survived, every descriptor was closed, the RPC port is
healthy and idle, no background work leaked, and the fault/recovery
counters are mutually consistent.  A violation prints a standalone
reproducer command before the process exits non-zero::

    PYTHONPATH=src python -m repro.analysis.chaos --scenario <id> --seed <n>

CI runs the blocking subset (``--ci``: 3 scenarios x 3 seeds); the full
27-scenario matrix runs via ``--full``.
"""

import argparse
import itertools
import json
import os
import sys

from repro.core.sockets import SOCK_STREAM, SocketError
from repro.faults import (
    ControlFaultPlan,
    Corrupt,
    DelayJitter,
    Duplicate,
    FaultPlan,
    GilbertElliottLoss,
    IpcDelay,
    IpcDuplicate,
    IpcLoss,
    Reorder,
    RpcDelay,
    RpcDrop,
    RpcDuplicate,
    RpcReplyDelay,
    ServerFlakyOp,
    ServerSlowOp,
)
from repro.net.addr import ip_aton
from repro.sim.engine import Deadlock
from repro.world.configs import CONFIGS, STYLE_KERNEL, STYLE_LIBRARY, build_network

IP1 = ip_aton("10.0.0.1")
PORT = 7600
BOUND = 1_200_000_000  # 20 simulated minutes: a hang, not slowness
DRAIN_US = 70_000_000  # outlives TIME_WAIT and the port quarantine

TTCP_BYTES = 48_000
PROTOLAT_ROUNDS = 40
PROTOLAT_MSG = 64
CHURN_CONNS = 5
CHURN_BYTES = 3_000

#: Matrix axes.  ``mach25`` has no control plane, so only wire faults
#: apply there; the crash/restart outage in ``stress`` needs a NetServer,
#: so that family runs on library placements only.
WORKLOADS = ("ttcp", "protolat", "churn")
FAMILY_CONFIGS = {
    "wire": ("library-shm-ipf", "library-ipc", "ux", "mach25"),
    "rpc": ("library-shm-ipf", "library-ipc", "ux"),
    "stress": ("library-shm-ipf", "library-ipc"),
}
DEFAULT_SEEDS = (11, 23, 47)

#: The blocking CI subset: both control-plane fault families (including
#: the crash/restart outage) across two placements and all workloads.
CI_SCENARIOS = (
    "library-shm-ipf/ttcp/stress",
    "library-shm-ipf/churn/rpc",
    "ux/protolat/rpc",
)


def all_scenarios():
    """Every scenario id, in stable matrix order."""
    ids = []
    for family in ("wire", "rpc", "stress"):
        for config in FAMILY_CONFIGS[family]:
            for workload in WORKLOADS:
                ids.append("%s/%s/%s" % (config, workload, family))
    return ids


def payload(n, salt):
    return bytes((i * 31 + salt) % 256 for i in range(n))


# --- fault plan construction ------------------------------------------


def wire_plan(family, seed):
    """The frame-level pipeline.  The ``wire`` family gets the full
    soak treatment; the control-plane families keep a mild jitter so the
    data path stays realistic without dominating runtime."""
    if family == "wire":
        stages = [
            GilbertElliottLoss(p_enter_bad=0.02, p_exit_bad=0.3, loss_bad=0.9),
            Reorder(rate=0.05, hold_us=3000.0),
            Duplicate(rate=0.02, gap_us=150.0),
            DelayJitter(jitter_us=400.0),
            Corrupt(rate=0.01),
        ]
    else:
        stages = [DelayJitter(jitter_us=200.0)]
    return FaultPlan(stages, seed=seed * 7)


def control_plan(family, seed):
    """The control-plane stage list for ``rpc``/``stress`` (None for
    ``wire``: those scenarios prove the fault layer is absent)."""
    if family == "rpc":
        stages = [
            RpcDrop(rate=0.08),
            RpcDuplicate(rate=0.08),
            RpcDelay(rate=0.10, delay_us=2000.0, jitter_us=1000.0),
            RpcReplyDelay(rate=0.08, delay_us=2500.0, jitter_us=1500.0),
            IpcLoss(rate=0.02),
            IpcDuplicate(rate=0.03),
            IpcDelay(rate=0.03, delay_us=800.0, jitter_us=400.0),
        ]
    elif family == "stress":
        stages = [
            ServerSlowOp(rate=0.15, stall_us=4000.0),
            ServerFlakyOp(rate=0.10),
            RpcDuplicate(rate=0.05),
        ]
    else:
        return None
    # A short implicit deadline keeps dropped-request recovery cheap.
    return ControlFaultPlan(stages, seed=seed * 13 + 1,
                            default_deadline_us=150_000.0)


# --- workloads ---------------------------------------------------------


def _ttcp(net, api_a, api_b, seed, ready, accepted, checks):
    data = payload(TTCP_BYTES, salt=seed)

    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, PORT)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, _peer = yield from api_a.accept(fd)
        accepted.succeed()
        got = yield from api_a.recv_exactly(cfd, TTCP_BYTES)
        checks.append(("ttcp bytes", data, got))
        yield from api_a.close(cfd)
        yield from api_a.close(fd)

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, PORT))
        yield from api_b.send_all(fd, data)
        yield from api_b.close(fd)

    return [server(), client()]


def _protolat(net, api_a, api_b, seed, ready, accepted, checks):
    def server():
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, PORT)
        yield from api_a.listen(fd)
        ready.succeed()
        cfd, _peer = yield from api_a.accept(fd)
        accepted.succeed()
        for _ in range(PROTOLAT_ROUNDS):
            msg = yield from api_a.recv_exactly(cfd, PROTOLAT_MSG)
            yield from api_a.send_all(cfd, msg)
        yield from api_a.close(cfd)
        yield from api_a.close(fd)

    def client():
        yield ready
        fd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.connect(fd, (IP1, PORT))
        for i in range(PROTOLAT_ROUNDS):
            msg = payload(PROTOLAT_MSG, salt=seed + i)
            yield from api_b.send_all(fd, msg)
            echo = yield from api_b.recv_exactly(fd, PROTOLAT_MSG)
            checks.append(("protolat round %d" % i, msg, echo))
        yield from api_b.close(fd)

    return [server(), client()]


def _churn(net, api_a, api_b, seed, ready, accepted, checks):
    """Short acked connections in a loop, with retry: a connection that
    dies (e.g. established but never accepted when the server crashes)
    is re-driven end to end, so delivery is exactly-once at the
    application layer.  Connection 2 forks mid-stream — the open session
    migrates back to the server and the tail flows through the
    server-managed path.  One embryonic socket is opened, bound, and
    closed without ever connecting."""
    payloads = [payload(CHURN_BYTES, salt=seed + i) for i in range(CHURN_CONNS)]
    children = []

    def server():
        got = {}
        fd = yield from api_a.socket(SOCK_STREAM)
        yield from api_a.bind(fd, PORT)
        yield from api_a.listen(fd)
        ready.succeed()
        while len(got) < CHURN_CONNS:
            cfd, _peer = yield from api_a.accept(fd)
            if not accepted.triggered:
                accepted.succeed()
            try:
                hdr = yield from api_a.recv_exactly(cfd, 4)
                idx = int.from_bytes(hdr, "big")
                body = yield from api_a.recv_exactly(cfd, CHURN_BYTES)
                got.setdefault(idx, body)  # a duplicate is still acked
                yield from api_a.send_all(cfd, b"A")
            except SocketError:
                pass  # a dead connection: the client will retry it
            yield from api_a.close(cfd)
        yield from api_a.close(fd)
        for i in range(CHURN_CONNS):
            checks.append(("churn conn %d" % i, payloads[i],
                           got.get(i, b"<never delivered>")))

    def deliver(i, forked):
        """One attempt at connection ``i``; returns True once acked."""
        fd = yield from api_b.socket(SOCK_STREAM)
        try:
            yield from api_b.connect(fd, (IP1, PORT))
            yield from api_b.send_all(fd, i.to_bytes(4, "big"))
            if i == 2 and not forked:
                half = CHURN_BYTES // 2
                yield from api_b.send_all(fd, payloads[i][:half])
                child = yield from api_b.fork()
                children.append(child)
                yield from api_b.send_all(fd, payloads[i][half:])
            else:
                yield from api_b.send_all(fd, payloads[i])
            ack = yield from api_b.recv_exactly(fd, 1)
            return ack == b"A"
        except SocketError:
            return False
        finally:
            try:
                yield from api_b.close(fd)
                for child in children:
                    if fd in child.fds.open_fds():
                        yield from child.close(fd)
            except SocketError:
                pass

    def client():
        yield ready
        # An embryonic socket: created, bound, never connected.
        efd = yield from api_b.socket(SOCK_STREAM)
        yield from api_b.bind(efd, PORT + 99)
        yield from api_b.close(efd)
        for i in range(CHURN_CONNS):
            while not (yield from deliver(i, forked=bool(children))):
                yield net.sim.timeout(50_000)  # back off, then re-drive

    return [server(), client()], children


WORKLOAD_FUNCS = {"ttcp": _ttcp, "protolat": _protolat, "churn": _churn}


# --- the runner --------------------------------------------------------


def run_scenario(scenario_id, seed, verbose=False, post_mortem=None):
    """Run one scenario under one seed; returns a result dict with an
    (ideally empty) ``violations`` list and the observed counters.

    With ``post_mortem`` set to a file path, any violated run dumps the
    engine's flight-recorder ring there (text timeline; ``.json`` gets
    the chrome trace) so the moments leading up to the failure are
    reconstructable without a rerun."""
    config, workload, family = scenario_id.split("/")
    if config not in FAMILY_CONFIGS[family]:
        raise ValueError("scenario %r is not in the matrix" % scenario_id)
    # Pin the process-global id counters: app ids seed the per-app retry
    # jitter rngs, so a scenario must see the same id space whether it is
    # the first run in this process or the fiftieth — otherwise the
    # printed reproducer could not reproduce.
    from repro.core.library import ProtocolLibrary
    from repro.osserver.unix_server import ServerSocketAPI
    ProtocolLibrary._next_app_id = 1
    ServerSocketAPI._next_client_id = itertools.count(1)
    spec = CONFIGS[config]
    wplan = wire_plan(family, seed)
    cplan = control_plan(family, seed)
    net, pa, pb = build_network(config, fault_plan=wplan)
    api_a = pa.new_app(name="chaos-srv")
    api_b = pb.new_app(name="chaos-cli")
    backend_a = pa._backend
    if cplan is not None:
        cplan.attach(backend_a,
                     libraries=list(getattr(backend_a, "_apps", {}).values()))
        if family == "stress":
            backend_a.rpc.max_pending = 6

    ready = net.sim.event()
    accepted = net.sim.event()
    checks = []
    extra_apis = []
    made = WORKLOAD_FUNCS[workload](net, api_a, api_b, seed, ready, accepted,
                                    checks)
    if isinstance(made, tuple):
        procs, extra_apis = made
    else:
        procs = made

    outage = family == "stress" and spec.style == STYLE_LIBRARY
    if outage:
        def controller():
            # Crash once the first connection is accepted (and therefore
            # app-managed): later control RPCs — closes, migrations, the
            # next accept — land in the outage and must recover.
            yield accepted
            yield net.sim.timeout(5_000)
            net.sim.flight.note("control", "%s crash" % backend_a.name)
            backend_a.crash()
            yield net.sim.timeout(1_200_000)
            net.sim.flight.note("control", "%s restart" % backend_a.name)
            backend_a.restart()
        procs.append(controller())

    net.sim.flight.note("chaos", "scenario %s seed %d" % (scenario_id, seed))
    violations = []
    deadlock_exc = None
    try:
        net.run_all(procs, until=BOUND)
    except Deadlock as exc:
        deadlock_exc = exc
        violations.append("stuck process (deadlock at %dus): %s"
                          % (net.sim.now, exc))
    except Exception as exc:  # a clean error is still a violation here
        violations.append("workload raised %s: %s" % (type(exc).__name__, exc))

    if not violations:
        net.sim.run(until=net.sim.now + DRAIN_US)
        violations.extend(
            _check_invariants(net, pa, pb, [api_a, api_b] + extra_apis,
                              wplan, cplan, family, outage, checks))

    if violations and post_mortem:
        from repro.trace.flight import chrome_trace, timeline
        text = timeline(net.sim.flight,
                        blocked=getattr(deadlock_exc, "blocked", ()),
                        title="chaos %s seed %d" % (scenario_id, seed))
        with open(post_mortem, "w") as fh:
            fh.write(text + "\n")
            for violation in violations:
                fh.write("violation: %s\n" % violation)
        with open(post_mortem + ".json", "w") as fh:
            json.dump(chrome_trace(net.sim.flight), fh,
                      indent=2, sort_keys=True)
            fh.write("\n")

    counters = {"wire": wplan.counters()}
    if cplan is not None:
        counters["control"] = cplan.counters()
    if getattr(backend_a, "rpc", None) is not None:
        counters["server"] = backend_a.health_snapshot()
        api = getattr(api_a, "control_stats", None)
        if api is not None:
            counters["app_a"] = api_a.control_stats()
    return {
        "scenario": scenario_id,
        "seed": seed,
        "ok": not violations,
        "violations": violations,
        "sim_us": net.sim.now,
        "counters": counters,
    }


def _check_invariants(net, pa, pb, apis, wplan, cplan, family, outage, checks):
    violations = []

    # 1. Every byte arrived intact (workloads recorded expected/actual).
    for label, expected, actual in checks:
        if expected != actual:
            violations.append("%s corrupted: %d bytes expected, got %d, "
                              "first diff at %d"
                              % (label, len(expected), len(actual),
                                 next((i for i, (x, y) in
                                       enumerate(zip(expected, actual))
                                       if x != y), min(len(expected),
                                                       len(actual)))))

    # 2. All descriptors closed.
    for api in apis:
        left = api.fds.open_fds()
        if left:
            violations.append("descriptors left open: %r" % (left,))

    stacks = []
    for label, placement in (("a", pa), ("b", pb)):
        backend = placement._backend
        if hasattr(backend, "stack"):
            stacks.append(("%s-server" % label, backend.stack))
        for library in getattr(backend, "_apps", {}).values():
            stacks.append(("%s-lib:%s" % (label, library.name), library.stack))

    # 3. No TCP session survived the drain; no port stayed bound.
    for label, stack in stacks:
        if stack._tcp:
            violations.append("%s still has TCP sessions: %r"
                              % (label, sorted(stack._tcp)))
        for proto in ("tcp", "udp"):
            bound = stack.ports[proto].bound_count()
            if bound:
                violations.append("%s leaked %d bound %s ports"
                                  % (label, bound, proto))

    # 4. The control plane is healthy and idle.
    for label, placement in (("a", pa), ("b", pb)):
        backend = placement._backend
        rpc = getattr(backend, "rpc", None)
        if rpc is None:
            continue
        if rpc.broken:
            violations.append("%s-server RPC port left broken" % label)
        if rpc.pending():
            violations.append("%s-server has %d undrained requests"
                              % (label, rpc.pending()))
        if rpc._outstanding:
            violations.append("%s-server has %d outstanding replies"
                              % (label, len(rpc._outstanding)))
        if getattr(backend, "_inflight", None):
            violations.append("%s-server has stuck inflight ops" % label)
        if getattr(backend, "_background", None):
            violations.append("%s-server leaked background work" % label)

    # 5. Counter consistency.
    if wplan.frames_in != net.wire.frames_carried:
        violations.append(
            "fault pipeline saw %d frames but the wire carried %d"
            % (wplan.frames_in, net.wire.frames_carried))
    if cplan is not None:
        rpc = pa._backend.rpc
        dropped = cplan.counters().get("rpc-drop", {}).get("dropped", 0)
        if not outage and rpc.deadline_expiries < dropped:
            violations.append(
                "%d requests fault-dropped but only %d deadline expiries "
                "(a dropped request went unnoticed)"
                % (dropped, rpc.deadline_expiries))
        if outage:
            server = pa._backend
            if server.crashes < 1 or server.generation < 1:
                violations.append("outage scheduled but the server never "
                                  "crashed/restarted")

    # 6. Full shutdown: every timer process must die on request.
    for _label, stack in stacks:
        stack.shutdown(interrupt=True)
    net.sim.run(until=net.sim.now + 1)
    for label, stack in stacks:
        if stack._timer_proc.alive:
            violations.append("%s timer process would not die" % label)
    return violations


def run_matrix(scenario_ids, seeds, verbose=False, post_mortem_dir=None):
    """Run scenarios x seeds; returns the list of result dicts.

    ``post_mortem_dir`` names a directory that receives one flight-
    recorder dump per *violated* run (clean runs write nothing)."""
    results = []
    if post_mortem_dir:
        os.makedirs(post_mortem_dir, exist_ok=True)
    for scenario_id in scenario_ids:
        for seed in seeds:
            post_mortem = None
            if post_mortem_dir:
                post_mortem = os.path.join(
                    post_mortem_dir,
                    "%s-seed%d.flight" % (scenario_id.replace("/", "_"),
                                          seed))
            result = run_scenario(scenario_id, seed, verbose=verbose,
                                  post_mortem=post_mortem)
            results.append(result)
            status = "ok" if result["ok"] else "VIOLATION"
            line = "%-32s seed %-3d %s" % (scenario_id, seed, status)
            if verbose or not result["ok"]:
                print(line)
                for violation in result["violations"]:
                    print("    %s" % violation)
                if not result["ok"]:
                    print("    REPRO: PYTHONPATH=src python -m "
                          "repro.analysis.chaos --scenario %s --seed %d"
                          % (scenario_id, seed))
    return results


def summarize(results):
    bad = [r for r in results if not r["ok"]]
    total_retries = sum(
        r["counters"].get("server", {}).get("retried_calls", 0)
        for r in results)
    total_shed = sum(
        r["counters"].get("server", {}).get("requests_shed", 0)
        for r in results)
    total_expiries = sum(
        r["counters"].get("server", {}).get("deadline_expiries", 0)
        for r in results)
    return {
        "runs": len(results),
        "violations": sum(len(r["violations"]) for r in results),
        "failed_runs": len(bad),
        "rpc_retries": total_retries,
        "requests_shed": total_shed,
        "deadline_expiries": total_expiries,
    }


def _induce_deadlock(post_mortem):
    """A flight-recorder smoke used by CI: spawn a process that waits on
    an event nobody will ever trigger, catch the resulting Deadlock, and
    dump the post-mortem.  Exits 0 when the dump names the stuck
    process — this is a test *of the recorder*, not of the matrix."""
    from repro.sim.engine import Simulator
    from repro.trace.flight import dump_deadlock

    sim = Simulator()
    sim.flight.note("chaos", "induced-deadlock smoke")

    def stuck():
        yield sim.event("never-fires")

    sim.spawn(stuck(), name="stuck-proc")
    try:
        sim.run(detect_deadlock=True)
    except Deadlock as exc:
        if post_mortem:
            text = dump_deadlock(sim.flight, exc, post_mortem)
        else:
            from repro.trace.flight import timeline
            text = timeline(sim.flight, blocked=exc.blocked,
                            title="deadlock post-mortem")
        print(text)
        ok = "stuck-proc" in text
        print("induce-deadlock: %s" % ("dump names the stuck process"
                                       if ok else "DUMP IS INCOMPLETE"))
        return 0 if ok else 1
    print("induce-deadlock: the toy simulation failed to deadlock",
          file=sys.stderr)
    return 1


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.chaos",
        description="Run the control-plane chaos conformance matrix.")
    parser.add_argument("--list", action="store_true",
                        help="print every scenario id and exit")
    parser.add_argument("--scenario", action="append", default=None,
                        help="run one scenario id (repeatable)")
    parser.add_argument("--seed", type=int, action="append", default=None,
                        help="seed(s) to run (default: 11 23 47)")
    parser.add_argument("--ci", action="store_true",
                        help="run the blocking CI subset")
    parser.add_argument("--full", action="store_true",
                        help="run the full matrix")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write results as JSON")
    parser.add_argument("--post-mortem", metavar="PATH", default=None,
                        help="flight-recorder dump target: a directory "
                             "(one file per violated run), or the output "
                             "file for --induce-deadlock")
    parser.add_argument("--induce-deadlock", action="store_true",
                        help="smoke test the flight recorder: deadlock a "
                             "toy simulation on purpose and dump its ring")
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.list:
        for scenario_id in all_scenarios():
            print(scenario_id)
        return 0

    if args.induce_deadlock:
        return _induce_deadlock(args.post_mortem)

    if args.scenario:
        known = set(all_scenarios())
        for scenario_id in args.scenario:
            if scenario_id not in known:
                print("chaos: unknown scenario %r (use --list to see the "
                      "matrix)" % scenario_id, file=sys.stderr)
                return 2
        scenario_ids = args.scenario
    elif args.full:
        scenario_ids = all_scenarios()
    else:  # --ci is also the default
        scenario_ids = list(CI_SCENARIOS)
    seeds = tuple(args.seed) if args.seed else DEFAULT_SEEDS

    results = run_matrix(scenario_ids, seeds, verbose=args.verbose,
                         post_mortem_dir=args.post_mortem)
    summary = summarize(results)
    print("chaos: %(runs)d runs, %(failed_runs)d failed, "
          "%(violations)d violations; %(rpc_retries)d RPC retries, "
          "%(requests_shed)d shed, %(deadline_expiries)d deadline expiries"
          % summary)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"summary": summary, "results": results}, fh,
                      indent=2, sort_keys=True)
            fh.write("\n")
    return 1 if summary["failed_runs"] else 0


if __name__ == "__main__":
    sys.exit(main())
